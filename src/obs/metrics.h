// Cycle-accurate metrics registry: counters, gauges and log2-bucket
// histograms, all timestamped in simulated cycles — never wall clock —
// so every value is bit-identical at any worker_threads setting.
//
// Hot-path contract: registration (counter()/gauge()/histogram()) is
// the cold path and may allocate; the returned references are stable
// for the registry's lifetime and incrementing/recording through them
// never allocates. Components hold the references, not names.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace cres::obs {

/// Monotonically increasing event count.
class Counter {
public:
    void inc(std::uint64_t n = 1) noexcept { value_ += n; }
    [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

private:
    friend class MetricsRegistry;
    std::uint64_t value_ = 0;
};

/// Point-in-time level; remembers its high-water mark.
class Gauge {
public:
    void set(std::int64_t v) noexcept {
        value_ = v;
        if (v > max_) max_ = v;
    }
    void add(std::int64_t delta) noexcept { set(value_ + delta); }
    [[nodiscard]] std::int64_t value() const noexcept { return value_; }
    [[nodiscard]] std::int64_t max() const noexcept { return max_; }

private:
    friend class MetricsRegistry;
    std::int64_t value_ = 0;
    std::int64_t max_ = 0;
};

/// Log2-bucket histogram over uint64 samples (cycle latencies, sizes).
/// Bucket 0 holds the value 0; bucket i (i >= 1) holds values in
/// [2^(i-1), 2^i - 1], so the inclusive upper bound is 2^i - 1.
class Histogram {
public:
    static constexpr std::size_t kBucketCount = 65;

    static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
        // Bit width IS the bucket: 0 for v==0, else 1 + floor(log2 v).
        // std::bit_width compiles to a single lzcnt on the hot path.
        return static_cast<std::size_t>(std::bit_width(v));
    }

    /// Inclusive upper bound of bucket `i` (i >= 1); bucket 0 covers {0}.
    static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
        if (i == 0) return 0;
        if (i >= 64) return ~std::uint64_t{0};
        return (std::uint64_t{1} << i) - 1;
    }

    void record(std::uint64_t v) noexcept {
        ++buckets_[bucket_index(v)];
        sum_ += v;
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }

    /// Records `n` identical samples in O(1) — the quiescence-skip bulk
    /// path (docs/SCHEDULER.md). Equivalent to n record(v) calls.
    void record_many(std::uint64_t v, std::uint64_t n) noexcept {
        if (n == 0) return;
        buckets_[bucket_index(v)] += n;
        sum_ += v * n;
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }

    /// Total samples. Derived by summing buckets: queries are cold, so
    /// the hot path doesn't pay for a separate count field.
    [[nodiscard]] std::uint64_t count() const noexcept {
        std::uint64_t n = 0;
        for (const std::uint64_t b : buckets_) n += b;
        return n;
    }
    [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
    /// Smallest recorded sample (0 when empty).
    [[nodiscard]] std::uint64_t min() const noexcept {
        return count() == 0 ? 0 : min_;
    }
    [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
    [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
        return i < kBucketCount ? buckets_[i] : 0;
    }
    /// Index of the highest non-empty bucket (0 when empty).
    [[nodiscard]] std::size_t highest_bucket() const noexcept;

    /// Estimated q-quantile (q in [0,1], clamped), Prometheus
    /// histogram_quantile style: rank = q * count, linear interpolation
    /// between the covering bucket's boundaries, truncated to an
    /// integer and clamped to [min(), max()] so degenerate buckets
    /// (all samples equal) estimate exactly. 0 when empty.
    [[nodiscard]] std::uint64_t estimate_quantile(double q) const noexcept;
    [[nodiscard]] std::uint64_t p50() const noexcept {
        return estimate_quantile(0.50);
    }
    [[nodiscard]] std::uint64_t p95() const noexcept {
        return estimate_quantile(0.95);
    }
    [[nodiscard]] std::uint64_t p99() const noexcept {
        return estimate_quantile(0.99);
    }

private:
    friend class MetricsRegistry;
    std::array<std::uint64_t, kBucketCount> buckets_{};
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/// Named metric store with deterministic (name-ordered) export and
/// merge. Metric names follow Prometheus conventions and may carry a
/// label set inline: `cres_monitor_polls_total{monitor="bus-monitor"}`.
/// Registration is get-or-create, so re-binding a rebuilt component to
/// the same names continues the existing series.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name) { return counters_[name]; }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    Histogram& histogram(const std::string& name) {
        return histograms_[name];
    }

    /// Read-only lookups (nullptr when the metric was never registered).
    [[nodiscard]] const Counter* find_counter(const std::string& name) const;
    [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
    [[nodiscard]] const Histogram* find_histogram(
        const std::string& name) const;

    [[nodiscard]] std::size_t size() const noexcept {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /// Registers the `# HELP` text emitted for `base` (the metric name
    /// without labels) in the Prometheus exposition. First registration
    /// wins, so re-binding rebuilt components is idempotent.
    void set_help(std::string_view base, std::string_view text) {
        help_.emplace(std::string(base), std::string(text));
    }
    /// nullptr when no help text was registered for `base`.
    [[nodiscard]] const std::string* find_help(std::string_view base) const;

    /// Index-ordered deterministic reduction: counters and histogram
    /// buckets sum, gauges sum values and take the max of high-water
    /// marks; help texts union (first wins). Safe to call repeatedly
    /// (fleet folds devices in index order so the result is
    /// thread-count invariant).
    void merge_from(const MetricsRegistry& other);

    /// Prometheus text exposition (metrics sorted by name; histograms
    /// emit cumulative le-buckets up to the highest non-empty bucket,
    /// then +Inf, _sum and _count). Bases with registered help text get
    /// a `# HELP` line immediately before their `# TYPE` line.
    [[nodiscard]] std::string prometheus() const;

    /// One JSON object mirroring the exposition, for CI artifacts and
    /// the structured-log vocabulary ({"counters":{},"gauges":{},
    /// "histograms":{}}).
    [[nodiscard]] std::string json() const;

private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, std::string, std::less<>> help_;
};

}  // namespace cres::obs
