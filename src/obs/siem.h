// Fleet-wide SIEM export stream (modelled on hash-chained audit logs
// with syslog/SIEM forwarding). Two pieces:
//
//  * SiemBuffer — a bounded per-device staging buffer the SSM pushes
//    severity-classified records into as they happen. Bounded means
//    backpressure is explicit: when the fleet drains too rarely the
//    oldest gap is visible as `cres_siem_dropped_total`, never as a
//    silent stall of the device hot path.
//
//  * SiemStream — the fleet-level export. Records are appended in
//    device-index order (deterministic at any worker count) and framed
//    twice from one source of truth: JSONL for machines and RFC 5424
//    syslog lines for operators. Every JSONL record carries a chain
//    field: head_n = HMAC(key, head_{n-1} || SHA256(body_n)) with a
//    zero genesis head, so a verifier holding the export key can check
//    the whole stream offline — like `cres-postmortem-v1`, the MAC
//    covers the exact rendered body bytes and any 1-byte flip fails.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "util/bytes.h"

namespace cres::obs {

/// Record classes carried by the stream. kEvent/kAlert split plain
/// monitor telemetry from records at syslog severity warning or worse;
/// the rest frame SSM lifecycle, per-device evidence anchors and
/// fleet-level campaign incidents.
enum class SiemKind : std::uint8_t {
    kEvent = 0,
    kAlert,
    kState,
    kIncidentOpen,
    kIncidentClose,
    kEvidenceHead,
    kCampaign,
};
constexpr std::size_t kSiemKindCount = 7;

/// Static-storage JSONL name ("event", "alert", ...).
[[nodiscard]] std::string_view siem_kind_name(SiemKind kind) noexcept;

/// Static-storage RFC 5424 MSGID ("EVT", "ALRT", ...).
[[nodiscard]] std::string_view siem_kind_msgid(SiemKind kind) noexcept;

/// One staged record. Severity/facility are RFC 5424 numeric codes,
/// already resolved by the producer (core::syslog_severity /
/// core::syslog_facility), so this layer never sees core enums.
struct SiemEvent {
    std::uint64_t at = 0;
    SiemKind kind = SiemKind::kEvent;
    std::uint8_t severity = 6;   ///< RFC 5424 severity code (0..7).
    std::uint8_t facility = 16;  ///< RFC 5424 facility code.
    std::string category;        ///< core event category name.
    std::string source;          ///< Emitting monitor / component.
    std::string resource;
    std::string detail;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    /// Causal-trace annotation (net::TraceContext propagated down from
    /// the monitor event). When `traced`, the JSONL record carries a
    /// `"trace"` object after `"b"`; untraced records render exactly as
    /// before, so tracing-off streams stay byte-identical.
    bool traced = false;
    std::uint32_t trace_origin = 0;
    std::uint32_t trace_hop = 0;
    std::uint64_t trace_span = 0;
    std::uint64_t trace_parent = 0;
};

/// Bounded per-device staging buffer (see file comment). capacity 0
/// disables the buffer entirely: push() is a counted no-op.
class SiemBuffer {
public:
    explicit SiemBuffer(std::size_t capacity) : capacity_(capacity) {}

    /// Registers `cres_siem_dropped_total` (and re-publishes any drops
    /// counted before binding, so early drops are never lost).
    void bind_metrics(MetricsRegistry& registry);

    /// Stages one record; false (and the drop counter) when full.
    bool push(SiemEvent event);

    /// Removes and returns everything staged, oldest first.
    [[nodiscard]] std::vector<SiemEvent> drain();

    [[nodiscard]] bool enabled() const noexcept { return capacity_ != 0; }
    [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

private:
    std::size_t capacity_;
    std::deque<SiemEvent> events_;
    Counter* m_dropped_ = nullptr;
    std::uint64_t dropped_ = 0;
    std::uint64_t published_ = 0;  ///< Drops already in the counter.
};

/// Offline verification outcome. `bad_line` is the 1-based line number
/// of the first failing line (0 when ok).
struct SiemVerifyResult {
    bool ok = false;
    std::size_t records = 0;
    std::size_t bad_line = 0;
    std::string reason;
};

class SiemStream {
public:
    /// Device index stamped on fleet-level (non-device) records.
    static constexpr std::uint32_t kFleetIndex = 0xffffffffu;

    /// `key` is the fleet export key (HKDF-derived in the platform).
    explicit SiemStream(BytesView key);

    /// Appends one record for `device` (index-ordered by the caller)
    /// and advances the hash chain.
    void append(std::uint32_t device_index, std::string_view device,
                const SiemEvent& event);

    /// Convenience: frames a per-device evidence-chain anchor
    /// (kEvidenceHead, a = record count, detail = chain head hex).
    void append_evidence_head(std::uint32_t device_index,
                              std::string_view device, std::uint64_t at,
                              std::uint64_t evidence_count,
                              std::string_view head_hex);

    [[nodiscard]] std::uint64_t records() const noexcept { return seq_; }
    [[nodiscard]] const crypto::Hash256& head() const noexcept {
        return head_;
    }
    [[nodiscard]] std::string head_hex() const;

    /// The machine stream: one header line, then one chained JSON
    /// object per record.
    [[nodiscard]] const std::string& jsonl() const noexcept {
        return jsonl_;
    }

    /// The operator stream: RFC 5424 lines rendered from the same
    /// records (nil timestamp — simulated cycles live in the SD-E).
    [[nodiscard]] const std::string& syslog() const noexcept {
        return syslog_;
    }

    /// Offline chain verification of an exported JSONL stream.
    [[nodiscard]] static SiemVerifyResult verify(std::string_view jsonl,
                                                 BytesView key);

    /// The fixed first line of every export.
    [[nodiscard]] static std::string_view header() noexcept;

private:
    crypto::HmacSha256 mac_;
    crypto::Hash256 head_{};  ///< Zero genesis.
    std::uint64_t seq_ = 0;
    std::string jsonl_;
    std::string syslog_;
};

}  // namespace cres::obs
