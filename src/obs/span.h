// CSF-lifecycle span tracing. Each security incident becomes one span
// that is opened when the triggering event occurred (its emit cycle)
// and then marked as it moves through the CSF functions:
//
//   detect  — the SSM processed the event and degraded health
//   respond — the first response action was dispatched
//   contain — a containment action (isolate/kill/zeroise/...) finished
//   recover — the platform reported recovery complete (span closes)
//
// Every mark records `at - opened_at` (simulated cycles, so the values
// are deterministic) into a per-phase latency histogram in the bound
// MetricsRegistry; closing also records the total incident duration.
// Marks are idempotent per phase and unknown ids are ignored, so
// callers never need to guard against double-notification. Incidents
// that are never closed remain queryable as orphans.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cres::obs {

enum class CsfPhase : std::uint8_t { kDetect, kRespond, kContain, kRecover };
constexpr std::size_t kCsfPhaseCount = 4;

/// Static-storage phase label ("detect", "respond", ...).
[[nodiscard]] std::string_view csf_phase_name(CsfPhase phase) noexcept;

/// Absolute mark cycles of one (still open) span — the raw data a
/// postmortem bundle or timeline exporter captures before close()
/// retires the span. Bit i of `marked` validates at[i].
struct SpanMarks {
    std::uint64_t id = 0;
    std::uint64_t opened_at = 0;
    std::uint8_t marked = 0;
    std::array<std::uint64_t, kCsfPhaseCount> at{};
};

class SpanTracer {
public:
    /// Registers `<prefix>_<phase>_latency_cycles` histograms (plus
    /// `<prefix>_total_cycles`, `<prefix>_incidents_total` and the
    /// `<prefix>_incidents_open` gauge) in `registry`.
    explicit SpanTracer(MetricsRegistry& registry,
                        const std::string& prefix = "cres_csf");

    /// Opens a new incident span anchored at `at` (the cycle the
    /// triggering event was emitted); returns its id.
    std::uint64_t open(std::uint64_t at);

    /// Records the phase latency for `id`; first mark per phase wins.
    /// Returns false for unknown/closed ids or repeated marks.
    bool mark(std::uint64_t id, CsfPhase phase, std::uint64_t at);

    /// Marks kRecover (if not yet marked), records the total duration
    /// and retires the span. Returns false for unknown ids.
    bool close(std::uint64_t id, std::uint64_t at);

    /// Spans opened but never closed (kept — they are the "incident
    /// still in progress / never recovered" signal, not an error).
    [[nodiscard]] std::size_t open_spans() const noexcept {
        return open_.size();
    }
    [[nodiscard]] std::uint64_t incidents_total() const noexcept {
        return next_id_;
    }
    [[nodiscard]] bool is_open(std::uint64_t id) const {
        return open_.find(id) != open_.end();
    }

    /// Absolute mark cycles of an open span (nullopt for unknown or
    /// retired ids). Read before close() — closing discards the marks.
    [[nodiscard]] std::optional<SpanMarks> marks(std::uint64_t id) const;

    /// Marks of every still-open span, id-ordered (deterministic).
    [[nodiscard]] std::vector<SpanMarks> open_marks() const;

private:
    struct Incident {
        std::uint64_t opened_at = 0;
        std::uint8_t marked = 0;  ///< Bitmask over CsfPhase.
        std::array<std::uint64_t, kCsfPhaseCount> mark_at{};
    };

    MetricsRegistry& registry_;
    Histogram* phase_latency_[kCsfPhaseCount];
    Histogram* total_cycles_;
    Counter* incidents_total_;
    Gauge* incidents_open_;
    std::map<std::uint64_t, Incident> open_;  ///< Ordered: deterministic.
    std::uint64_t next_id_ = 0;
};

}  // namespace cres::obs
