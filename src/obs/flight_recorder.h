// Flight recorder: a fixed-capacity, zero-alloc-at-steady-state ring
// of cycle-stamped telemetry records — the black box every device's
// monitors and SSM feed continuously. When an incident closes, the SSM
// snapshots the ring into a sealed postmortem bundle (postmortem.h) so
// the pre/post-incident telemetry window survives as a verifiable
// artefact even though the ring itself keeps rolling.
//
// Hot-path contract (mirrors MetricsRegistry): intern() is the cold
// path and may allocate; record() never allocates — producers hold the
// recorder pointer plus pre-interned ids, and an unbound producer
// (null pointer) pays one branch. Capacity is fixed at construction;
// once full, each record evicts the oldest (bounded black-box capture,
// unlike the unbounded sim::TraceStream).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cres::obs {

/// How an exporter should render the record: a point event on its
/// source's track, or a counter sample (value in `a`).
enum class FlightRecordType : std::uint8_t { kInstant = 0, kCounter = 1 };

/// One POD ring slot. `source` and `kind` are interned-name ids;
/// `detail` is a NUL-padded truncated context snippet (copying into it
/// is the price of staying allocation-free).
struct FlightRecord {
    static constexpr std::size_t kDetailCapacity = 32;

    std::uint64_t at = 0;
    std::uint16_t source = 0;
    std::uint16_t kind = 0;
    std::uint8_t severity = 0;  ///< Numeric core::EventSeverity (0 = info).
    FlightRecordType type = FlightRecordType::kInstant;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::array<char, kDetailCapacity> detail{};

    [[nodiscard]] std::string_view detail_view() const noexcept {
        std::size_t len = 0;
        while (len < kDetailCapacity && detail[len] != '\0') ++len;
        return {detail.data(), len};
    }
};

class FlightRecorder {
public:
    /// `capacity` slots are allocated up front; 0 disables the recorder
    /// (record() becomes a no-op, nothing should bind to it).
    explicit FlightRecorder(std::size_t capacity);

    // --- Cold path --------------------------------------------------------
    /// Get-or-create a stable id for `name`. Ids are assigned in first-
    /// intern order, so a deterministic binding order yields a
    /// deterministic name table.
    std::uint16_t intern(std::string_view name);

    /// Name for an interned id ("?" for ids never handed out).
    [[nodiscard]] std::string_view name(std::uint16_t id) const noexcept;

    /// Snapshot of the id -> name table (index == id).
    [[nodiscard]] const std::vector<std::string>& names() const noexcept {
        return names_;
    }

    // --- Hot path ---------------------------------------------------------
    /// Appends one record, evicting the oldest when full. Never
    /// allocates; `detail` is truncated to FlightRecord::kDetailCapacity.
    void record(std::uint64_t at, std::uint16_t source, std::uint16_t kind,
                std::uint8_t severity, FlightRecordType type, std::uint64_t a,
                std::uint64_t b, std::string_view detail) noexcept {
        if (ring_.empty()) return;
        FlightRecord& slot = ring_[head_];
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        if (count_ < ring_.size()) ++count_;
        ++emitted_;
        slot.at = at;
        slot.source = source;
        slot.kind = kind;
        slot.severity = severity;
        slot.type = type;
        slot.a = a;
        slot.b = b;
        const std::size_t n =
            detail.size() < FlightRecord::kDetailCapacity
                ? detail.size()
                : FlightRecord::kDetailCapacity;
        // An empty string_view may carry a null data() pointer, which
        // memcpy must never receive even for n == 0.
        if (n != 0) std::memcpy(slot.detail.data(), detail.data(), n);
        if (n < FlightRecord::kDetailCapacity) {
            std::memset(slot.detail.data() + n, 0,
                        FlightRecord::kDetailCapacity - n);
        }
    }

    /// Rare-event convenience (reboot, operator alert): interns the
    /// names on the fly, so it may allocate — not for per-cycle use.
    void record_slow(std::uint64_t at, std::string_view source,
                     std::string_view kind, std::uint8_t severity,
                     FlightRecordType type, std::uint64_t a, std::uint64_t b,
                     std::string_view detail);

    // --- Queries (cold) ---------------------------------------------------
    [[nodiscard]] std::size_t capacity() const noexcept {
        return ring_.size();
    }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    /// Records ever emitted (monotonic; also the sequence number the
    /// next record will get).
    [[nodiscard]] std::uint64_t total_emitted() const noexcept {
        return emitted_;
    }
    /// Records evicted by the ring wrapping.
    [[nodiscard]] std::uint64_t evicted() const noexcept {
        return emitted_ - count_;
    }

    /// Visits live records oldest -> newest.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        const std::size_t first = oldest_index();
        for (std::size_t i = 0; i < count_; ++i) {
            fn(ring_[(first + i) % ring_.size()]);
        }
    }

    /// Live records with at >= cycle, oldest -> newest (copies; cold).
    [[nodiscard]] std::vector<FlightRecord> snapshot_since(
        std::uint64_t cycle) const;

    /// Live records whose global sequence number is >= seq (i.e. the
    /// records emitted after a total_emitted() watermark was taken).
    [[nodiscard]] std::vector<FlightRecord> snapshot_emitted_since(
        std::uint64_t seq) const;

    void clear() noexcept {
        head_ = 0;
        count_ = 0;
        // emitted_ keeps counting: eviction accounting stays truthful.
    }

private:
    [[nodiscard]] std::size_t oldest_index() const noexcept {
        return count_ < ring_.size()
                   ? (head_ + ring_.size() - count_) % ring_.size()
                   : head_;
    }

    std::vector<FlightRecord> ring_;
    std::size_t head_ = 0;   ///< Next slot to write.
    std::size_t count_ = 0;  ///< Live records.
    std::uint64_t emitted_ = 0;
    std::vector<std::string> names_;
    std::map<std::string, std::uint16_t, std::less<>> ids_;
};

}  // namespace cres::obs
