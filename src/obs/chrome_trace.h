// Chrome Trace Event Format builder. Renders spans, alerts, response
// actions and counter samples as the JSON object format that Perfetto
// and chrome://tracing open directly: one process track per device,
// one thread track per telemetry source, counter tracks for sampled
// values.
//
// Determinism contract: pids and tids are assigned in registration
// order and events are serialized in append order, so callers that
// feed the builder in a fixed order (the fleet iterates devices by
// index) produce byte-identical JSON at any worker_threads setting.
// Timestamps are simulated cycles rendered as microseconds (1 cycle =
// 1 us), so the Perfetto timeline reads directly in cycles.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cres::obs {

class ChromeTrace {
public:
    /// Get-or-create the process track for a device; emits the
    /// process_name metadata event on first registration. Pids are
    /// 1-based in registration order.
    std::uint32_t process(std::string_view name);

    /// Get-or-create a thread track under `pid`; emits thread_name
    /// metadata plus a sort-index pin on first registration. Tids are
    /// 1-based in per-process registration order.
    std::uint32_t thread(std::uint32_t pid, std::string_view name);

    /// Point event ("i", thread scope). `detail` becomes args.detail
    /// when non-empty.
    void instant(std::uint32_t pid, std::uint32_t tid, std::string_view name,
                 std::string_view category, std::uint64_t ts,
                 std::string_view detail = {});

    /// Duration event ("X") of `dur` cycles starting at `ts`.
    void complete(std::uint32_t pid, std::uint32_t tid, std::string_view name,
                  std::string_view category, std::uint64_t ts,
                  std::uint64_t dur, std::string_view detail = {});

    /// Counter sample ("C"): one series per `name` on the process track.
    void counter(std::uint32_t pid, std::string_view name, std::uint64_t ts,
                 std::uint64_t value);

    /// Flow-event pair: Perfetto draws an arrow from each flow_start
    /// ("s") to the flow_step ("t") carrying the same `id` — one arrow
    /// per cross-device frame when `id` is the frame's span id. Both
    /// ends must share `category` (Chrome matches flows on cat+id).
    void flow_start(std::uint32_t pid, std::uint32_t tid,
                    std::string_view name, std::string_view category,
                    std::uint64_t ts, std::uint64_t id);
    void flow_step(std::uint32_t pid, std::uint32_t tid,
                   std::string_view name, std::string_view category,
                   std::uint64_t ts, std::uint64_t id);

    [[nodiscard]] std::size_t event_count() const noexcept {
        return events_.size();
    }

    /// The full artefact: {"displayTimeUnit": "ms", "traceEvents": [...]}.
    [[nodiscard]] std::string json() const;

private:
    void push(std::string event) { events_.push_back(std::move(event)); }

    std::vector<std::string> events_;  ///< Pre-rendered JSON objects.
    std::map<std::string, std::uint32_t, std::less<>> pids_;
    /// (pid, thread name) -> tid.
    std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> tids_;
};

}  // namespace cres::obs
