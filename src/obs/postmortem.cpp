#include "obs/postmortem.h"

#include "obs/json.h"
#include "obs/span.h"
#include "util/error.h"

namespace cres::obs {

namespace {

constexpr std::string_view kPrefix =
    "{\"format\": \"cres-postmortem-v1\",\n \"bundle\": ";
constexpr std::string_view kSealMarker =
    ",\n \"seal\": {\"algo\": \"hmac-sha256\", \"tag\": \"";
constexpr std::string_view kSuffix = "\"}}\n";

std::string_view record_type_name(FlightRecordType type) {
    return type == FlightRecordType::kCounter ? "counter" : "instant";
}

}  // namespace

std::string render_postmortem_body(const PostmortemBundle& b) {
    std::string out = "{\"device\": ";
    out += json_quote(b.device);
    out += ", \"incident_id\": " + std::to_string(b.incident_id);
    out += ", \"opened_at\": " + std::to_string(b.opened_at);
    out += ", \"closed_at\": " + std::to_string(b.closed_at);
    out += ", \"window_begin\": " + std::to_string(b.window_begin);

    out += ",\n  \"phases\": {";
    bool first = true;
    for (std::size_t i = 0; i < PostmortemBundle::kCsfPhaseCount; ++i) {
        if ((b.marked & (1u << i)) == 0) continue;
        if (!first) out += ", ";
        first = false;
        out += json_quote(csf_phase_name(static_cast<CsfPhase>(i)));
        out += ": " + std::to_string(b.phase_at[i]);
    }
    out += "}";

    out += ",\n  \"evidence\": {\"count\": " +
           std::to_string(b.evidence_count) + ", \"head\": ";
    out += json_quote(b.evidence_head_hex);
    out += "}";

    const auto resolve = [&b](std::uint16_t id) -> std::string_view {
        return id < b.names.size() ? std::string_view(b.names[id])
                                   : std::string_view("?");
    };
    out += ",\n  \"telemetry\": [";
    first = true;
    for (const FlightRecord& r : b.telemetry) {
        out += first ? "\n   " : ",\n   ";
        first = false;
        out += "{\"at\": " + std::to_string(r.at);
        out += ", \"source\": " + json_quote(resolve(r.source));
        out += ", \"kind\": " + json_quote(resolve(r.kind));
        out += ", \"severity\": " + std::to_string(r.severity);
        out += ", \"type\": " + json_quote(record_type_name(r.type));
        out += ", \"a\": " + std::to_string(r.a);
        out += ", \"b\": " + std::to_string(r.b);
        out += ", \"detail\": " + json_quote(r.detail_view());
        out += "}";
    }
    out += first ? "]" : "\n  ]";

    if (!b.provenance_json.empty()) {
        // Already-rendered JSON from the fleet provenance reconstructor;
        // embedded verbatim so the seal covers the exact DAG bytes.
        out += ",\n  \"provenance\": ";
        out += b.provenance_json;
    }

    out += ",\n  \"metrics\": ";
    if (b.metrics_json.empty()) {
        out += "null";
    } else {
        // The registry snapshot is already JSON; embed it verbatim
        // (minus its trailing newline).
        std::string_view metrics = b.metrics_json;
        while (!metrics.empty() && metrics.back() == '\n') {
            metrics.remove_suffix(1);
        }
        out += metrics;
    }
    out += "}";
    return out;
}

std::string seal_postmortem(const PostmortemBundle& b,
                            const crypto::HmacSha256& sealer) {
    const std::string body = render_postmortem_body(b);
    const crypto::Hash256 tag = sealer.tag(
        BytesView(reinterpret_cast<const std::uint8_t*>(body.data()),
                  body.size()));
    std::string out;
    out.reserve(body.size() + 128);
    out += kPrefix;
    out += body;
    out += kSealMarker;
    out += to_hex(BytesView(tag.data(), tag.size()));
    out += kSuffix;
    return out;
}

bool verify_postmortem(std::string_view sealed_json, BytesView seal_key) {
    if (sealed_json.substr(0, kPrefix.size()) != kPrefix) return false;
    const std::size_t marker = sealed_json.rfind(kSealMarker);
    if (marker == std::string_view::npos || marker < kPrefix.size()) {
        return false;
    }
    const std::string_view body =
        sealed_json.substr(kPrefix.size(), marker - kPrefix.size());
    // The artefact must end exactly with `<tag>"}}\n` — a strict frame,
    // so a flip anywhere (even in the closing braces) fails.
    if (sealed_json.size() < kSuffix.size() ||
        sealed_json.substr(sealed_json.size() - kSuffix.size()) != kSuffix) {
        return false;
    }
    const std::size_t tag_begin = marker + kSealMarker.size();
    const std::size_t tag_end = sealed_json.size() - kSuffix.size();
    if (tag_end < tag_begin) return false;
    Bytes tag;
    try {
        tag = from_hex(sealed_json.substr(tag_begin, tag_end - tag_begin));
    } catch (const Error&) {
        return false;
    }
    if (tag.size() != std::tuple_size_v<crypto::Hash256>) return false;
    return crypto::hmac_verify(
        seal_key,
        BytesView(reinterpret_cast<const std::uint8_t*>(body.data()),
                  body.size()),
        tag);
}

}  // namespace cres::obs
