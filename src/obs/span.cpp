#include "obs/span.h"

namespace cres::obs {

std::string_view csf_phase_name(CsfPhase phase) noexcept {
    switch (phase) {
        case CsfPhase::kDetect: return "detect";
        case CsfPhase::kRespond: return "respond";
        case CsfPhase::kContain: return "contain";
        case CsfPhase::kRecover: return "recover";
    }
    return "?";
}

SpanTracer::SpanTracer(MetricsRegistry& registry, const std::string& prefix)
    : registry_(registry) {
    for (std::size_t i = 0; i < kCsfPhaseCount; ++i) {
        phase_latency_[i] = &registry_.histogram(
            prefix + "_" +
            std::string(csf_phase_name(static_cast<CsfPhase>(i))) +
            "_latency_cycles");
    }
    total_cycles_ = &registry_.histogram(prefix + "_total_cycles");
    incidents_total_ = &registry_.counter(prefix + "_incidents_total");
    incidents_open_ = &registry_.gauge(prefix + "_incidents_open");
}

std::uint64_t SpanTracer::open(std::uint64_t at) {
    const std::uint64_t id = next_id_++;
    open_.emplace(id, Incident{at, 0, {}});
    incidents_total_->inc();
    incidents_open_->set(static_cast<std::int64_t>(open_.size()));
    return id;
}

bool SpanTracer::mark(std::uint64_t id, CsfPhase phase, std::uint64_t at) {
    const auto it = open_.find(id);
    if (it == open_.end()) return false;
    const std::uint8_t bit =
        static_cast<std::uint8_t>(1u << static_cast<unsigned>(phase));
    if ((it->second.marked & bit) != 0) return false;
    it->second.marked = static_cast<std::uint8_t>(it->second.marked | bit);
    it->second.mark_at[static_cast<std::size_t>(phase)] = at;
    phase_latency_[static_cast<std::size_t>(phase)]->record(
        at - it->second.opened_at);
    return true;
}

std::optional<SpanMarks> SpanTracer::marks(std::uint64_t id) const {
    const auto it = open_.find(id);
    if (it == open_.end()) return std::nullopt;
    return SpanMarks{id, it->second.opened_at, it->second.marked,
                     it->second.mark_at};
}

std::vector<SpanMarks> SpanTracer::open_marks() const {
    std::vector<SpanMarks> out;
    out.reserve(open_.size());
    for (const auto& [id, incident] : open_) {  // Ordered map: id order.
        out.push_back(SpanMarks{id, incident.opened_at, incident.marked,
                                incident.mark_at});
    }
    return out;
}

bool SpanTracer::close(std::uint64_t id, std::uint64_t at) {
    const auto it = open_.find(id);
    if (it == open_.end()) return false;
    (void)mark(id, CsfPhase::kRecover, at);
    total_cycles_->record(at - it->second.opened_at);
    open_.erase(it);
    incidents_open_->set(static_cast<std::int64_t>(open_.size()));
    return true;
}

}  // namespace cres::obs
