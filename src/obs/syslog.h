// RFC 5424 numeric vocabulary (severity and facility codes plus the
// PRI computation) shared by the JSONL log sink, the core event
// mapping table and the SIEM export stream, so every exporter agrees
// on the wire codes. Kept in its own namespace — <syslog.h> defines
// LOG_* macros and we must not collide with them.
#pragma once

#include <cstdint>
#include <string_view>

namespace cres::obs::rfc5424 {

// Severities (RFC 5424 §6.2.1, table 2).
inline constexpr std::uint8_t kEmergency = 0;
inline constexpr std::uint8_t kAlert = 1;
inline constexpr std::uint8_t kCritical = 2;
inline constexpr std::uint8_t kError = 3;
inline constexpr std::uint8_t kWarning = 4;
inline constexpr std::uint8_t kNotice = 5;
inline constexpr std::uint8_t kInformational = 6;
inline constexpr std::uint8_t kDebug = 7;

// Facilities (RFC 5424 §6.2.1, table 1). Only the codes this platform
// emits are named; local0..7 carry the monitor categories.
inline constexpr std::uint8_t kFacKern = 0;
inline constexpr std::uint8_t kFacAudit = 13;
inline constexpr std::uint8_t kFacLocal0 = 16;
inline constexpr std::uint8_t kFacLocal1 = 17;
inline constexpr std::uint8_t kFacLocal2 = 18;
inline constexpr std::uint8_t kFacLocal3 = 19;
inline constexpr std::uint8_t kFacLocal4 = 20;
inline constexpr std::uint8_t kFacLocal5 = 21;
inline constexpr std::uint8_t kFacLocal6 = 22;
inline constexpr std::uint8_t kFacLocal7 = 23;

/// PRI = facility * 8 + severity (RFC 5424 §6.2.1).
[[nodiscard]] constexpr std::uint8_t pri(std::uint8_t facility,
                                         std::uint8_t severity) noexcept {
    return static_cast<std::uint8_t>(facility * 8 + (severity & 0x7));
}

/// Static-storage keyword for a severity code ("emerg".."debug").
[[nodiscard]] constexpr std::string_view severity_keyword(
    std::uint8_t severity) noexcept {
    switch (severity & 0x7) {
        case kEmergency: return "emerg";
        case kAlert: return "alert";
        case kCritical: return "crit";
        case kError: return "err";
        case kWarning: return "warning";
        case kNotice: return "notice";
        case kInformational: return "info";
        case kDebug: return "debug";
    }
    return "?";
}

/// Static-storage keyword for the facility codes this platform emits.
[[nodiscard]] constexpr std::string_view facility_keyword(
    std::uint8_t facility) noexcept {
    switch (facility) {
        case kFacKern: return "kern";
        case kFacAudit: return "audit";
        case kFacLocal0: return "local0";
        case kFacLocal1: return "local1";
        case kFacLocal2: return "local2";
        case kFacLocal3: return "local3";
        case kFacLocal4: return "local4";
        case kFacLocal5: return "local5";
        case kFacLocal6: return "local6";
        case kFacLocal7: return "local7";
        default: return "?";
    }
}

}  // namespace cres::obs::rfc5424
