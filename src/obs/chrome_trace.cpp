#include "obs/chrome_trace.h"

#include "obs/json.h"

namespace cres::obs {

namespace {

void field_u64(std::string& out, std::string_view key, std::uint64_t value) {
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(value);
}

void field_str(std::string& out, std::string_view key,
               std::string_view value) {
    out += '"';
    out += key;
    out += "\":";
    out += json_quote(value);
}

}  // namespace

std::uint32_t ChromeTrace::process(std::string_view name) {
    const auto it = pids_.find(name);
    if (it != pids_.end()) return it->second;
    const auto pid = static_cast<std::uint32_t>(pids_.size() + 1);
    pids_.emplace(std::string(name), pid);

    std::string e = "{\"ph\":\"M\",";
    field_u64(e, "pid", pid);
    e += ",\"tid\":0,\"name\":\"process_name\",\"args\":{";
    field_str(e, "name", name);
    e += "}}";
    push(std::move(e));

    // Pin the timeline order to registration (device-index) order.
    std::string s = "{\"ph\":\"M\",";
    field_u64(s, "pid", pid);
    s += ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{\"sort_index\":";
    s += std::to_string(pid);
    s += "}}";
    push(std::move(s));
    return pid;
}

std::uint32_t ChromeTrace::thread(std::uint32_t pid, std::string_view name) {
    const auto key = std::make_pair(pid, std::string(name));
    const auto it = tids_.find(key);
    if (it != tids_.end()) return it->second;
    std::uint32_t next = 1;
    for (const auto& [existing, tid] : tids_) {
        if (existing.first == pid && tid >= next) next = tid + 1;
    }
    tids_.emplace(key, next);

    std::string e = "{\"ph\":\"M\",";
    field_u64(e, "pid", pid);
    e += ',';
    field_u64(e, "tid", next);
    e += ",\"name\":\"thread_name\",\"args\":{";
    field_str(e, "name", name);
    e += "}}";
    push(std::move(e));

    std::string s = "{\"ph\":\"M\",";
    field_u64(s, "pid", pid);
    s += ',';
    field_u64(s, "tid", next);
    s += ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":";
    s += std::to_string(next);
    s += "}}";
    push(std::move(s));
    return next;
}

void ChromeTrace::instant(std::uint32_t pid, std::uint32_t tid,
                          std::string_view name, std::string_view category,
                          std::uint64_t ts, std::string_view detail) {
    std::string e = "{\"ph\":\"i\",";
    field_u64(e, "pid", pid);
    e += ',';
    field_u64(e, "tid", tid);
    e += ',';
    field_str(e, "name", name);
    e += ',';
    field_str(e, "cat", category);
    e += ',';
    field_u64(e, "ts", ts);
    e += ",\"s\":\"t\"";
    if (!detail.empty()) {
        e += ",\"args\":{";
        field_str(e, "detail", detail);
        e += '}';
    }
    e += '}';
    push(std::move(e));
}

void ChromeTrace::complete(std::uint32_t pid, std::uint32_t tid,
                           std::string_view name, std::string_view category,
                           std::uint64_t ts, std::uint64_t dur,
                           std::string_view detail) {
    std::string e = "{\"ph\":\"X\",";
    field_u64(e, "pid", pid);
    e += ',';
    field_u64(e, "tid", tid);
    e += ',';
    field_str(e, "name", name);
    e += ',';
    field_str(e, "cat", category);
    e += ',';
    field_u64(e, "ts", ts);
    e += ',';
    field_u64(e, "dur", dur);
    if (!detail.empty()) {
        e += ",\"args\":{";
        field_str(e, "detail", detail);
        e += '}';
    }
    e += '}';
    push(std::move(e));
}

namespace {

/// Shared rendering for the "s"/"t" flow phases; identical field order
/// so the golden file pins both ends the same way. Flow ids are span
/// ids — full 64-bit values — rendered as a hex string: JSON numbers
/// above 2^53 lose precision in double-based consumers (jq, browsers),
/// which would alias distinct spans, and the trace format accepts
/// string ids.
std::string render_flow(char phase, std::uint32_t pid, std::uint32_t tid,
                        std::string_view name, std::string_view category,
                        std::uint64_t ts, std::uint64_t id) {
    std::string e = "{\"ph\":\"";
    e += phase;
    e += "\",";
    field_u64(e, "pid", pid);
    e += ',';
    field_u64(e, "tid", tid);
    e += ',';
    field_str(e, "name", name);
    e += ',';
    field_str(e, "cat", category);
    e += ',';
    field_u64(e, "ts", ts);
    e += ",\"id\":\"0x";
    static constexpr char kHex[] = "0123456789abcdef";
    bool started = false;
    for (int shift = 60; shift >= 0; shift -= 4) {
        const auto nibble = static_cast<unsigned>((id >> shift) & 0xF);
        if (nibble != 0) started = true;
        if (started || shift == 0) e += kHex[nibble];
    }
    e += "\"}";
    return e;
}

}  // namespace

void ChromeTrace::flow_start(std::uint32_t pid, std::uint32_t tid,
                             std::string_view name, std::string_view category,
                             std::uint64_t ts, std::uint64_t id) {
    push(render_flow('s', pid, tid, name, category, ts, id));
}

void ChromeTrace::flow_step(std::uint32_t pid, std::uint32_t tid,
                            std::string_view name, std::string_view category,
                            std::uint64_t ts, std::uint64_t id) {
    push(render_flow('t', pid, tid, name, category, ts, id));
}

void ChromeTrace::counter(std::uint32_t pid, std::string_view name,
                          std::uint64_t ts, std::uint64_t value) {
    std::string e = "{\"ph\":\"C\",";
    field_u64(e, "pid", pid);
    e += ",\"tid\":0,";
    field_str(e, "name", name);
    e += ',';
    field_u64(e, "ts", ts);
    e += ",\"args\":{\"value\":";
    e += std::to_string(value);
    e += "}}";
    push(std::move(e));
}

std::string ChromeTrace::json() const {
    std::string out = "{\"displayTimeUnit\": \"ms\",\n \"traceEvents\": [";
    bool first = true;
    for (const std::string& event : events_) {
        out += first ? "\n  " : ",\n  ";
        first = false;
        out += event;
    }
    out += "\n ]}\n";
    return out;
}

}  // namespace cres::obs
