#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace cres::obs {

namespace {

/// Splits `cres_x_total{monitor="bus"}` into base name and label body
/// (without braces). Names without labels return an empty label body.
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) {
    const std::size_t brace = name.find('{');
    if (brace == std::string_view::npos) return {name, {}};
    std::string_view labels = name.substr(brace + 1);
    if (!labels.empty() && labels.back() == '}') {
        labels.remove_suffix(1);
    }
    return {name.substr(0, brace), labels};
}

/// Emits the `# HELP` (when registered) and `# TYPE` lines once per
/// base name (input is name-sorted, so equal bases are adjacent).
void type_line(std::string& out, std::string& last_base,
               std::string_view base, std::string_view type,
               const std::map<std::string, std::string, std::less<>>& help) {
    if (last_base == base) return;
    last_base.assign(base);
    if (const auto it = help.find(base); it != help.end()) {
        out += "# HELP ";
        out += base;
        out += ' ';
        out += it->second;
        out += '\n';
    }
    out += "# TYPE ";
    out += base;
    out += ' ';
    out += type;
    out += '\n';
}

/// Composes `base{labels,extra}` / `base{extra}` / `base` as needed.
std::string with_labels(std::string_view base, std::string_view labels,
                        std::string_view extra = {}) {
    std::string out(base);
    if (labels.empty() && extra.empty()) return out;
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
    return out;
}

}  // namespace

std::size_t Histogram::highest_bucket() const noexcept {
    for (std::size_t i = kBucketCount; i-- > 0;) {
        if (buckets_[i] != 0) return i;
    }
    return 0;
}

std::uint64_t Histogram::estimate_quantile(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;

    // Prometheus histogram_quantile: find the bucket covering rank
    // q * n, then interpolate linearly between the bucket's boundary
    // values by the rank's position inside the bucket population.
    const double rank = q * static_cast<double>(n);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        const std::uint64_t c = buckets_[i];
        if (c == 0) continue;
        if (static_cast<double>(cum + c) >= rank) {
            const std::uint64_t lower = i == 0 ? 0 : bucket_upper(i - 1);
            std::uint64_t upper = bucket_upper(i);
            if (upper > max_) upper = max_;  // Tighten the top bucket.
            const double frac =
                (rank - static_cast<double>(cum)) / static_cast<double>(c);
            double v = static_cast<double>(lower) +
                       frac * static_cast<double>(upper - lower);
            if (v < 0.0) v = 0.0;
            auto estimate = static_cast<std::uint64_t>(v);
            if (estimate < min()) estimate = min();
            if (estimate > max_) estimate = max_;
            return estimate;
        }
        cum += c;
    }
    return max_;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

const std::string* MetricsRegistry::find_help(std::string_view base) const {
    const auto it = help_.find(base);
    return it == help_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
    for (const auto& [name, c] : other.counters_) {
        counters_[name].value_ += c.value_;
    }
    for (const auto& [name, g] : other.gauges_) {
        Gauge& mine = gauges_[name];
        mine.value_ += g.value_;
        mine.max_ = std::max(mine.max_, g.max_);
    }
    for (const auto& [name, h] : other.histograms_) {
        Histogram& mine = histograms_[name];
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
            mine.buckets_[i] += h.buckets_[i];
        }
        mine.sum_ += h.sum_;
        mine.min_ = std::min(mine.min_, h.min_);
        mine.max_ = std::max(mine.max_, h.max_);
    }
    for (const auto& [base, text] : other.help_) {
        help_.emplace(base, text);
    }
}

std::string MetricsRegistry::prometheus() const {
    std::string out;
    std::string last_base;

    for (const auto& [name, c] : counters_) {
        const auto [base, labels] = split_labels(name);
        type_line(out, last_base, base, "counter", help_);
        out += with_labels(base, labels);
        out += ' ';
        out += std::to_string(c.value());
        out += '\n';
    }
    for (const auto& [name, g] : gauges_) {
        const auto [base, labels] = split_labels(name);
        type_line(out, last_base, base, "gauge", help_);
        out += with_labels(base, labels);
        out += ' ';
        out += std::to_string(g.value());
        out += '\n';
        // The high-water mark rides along as a sibling gauge.
        std::string max_base(base);
        max_base += "_max";
        out += with_labels(max_base, labels);
        out += ' ';
        out += std::to_string(g.max());
        out += '\n';
    }
    for (const auto& [name, h] : histograms_) {
        const auto [base, labels] = split_labels(name);
        type_line(out, last_base, base, "histogram", help_);
        std::string bucket_base(base);
        bucket_base += "_bucket";
        const std::size_t top = h.highest_bucket();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= top && h.count() != 0; ++i) {
            cumulative += h.bucket(i);
            out += with_labels(
                bucket_base, labels,
                "le=\"" + std::to_string(Histogram::bucket_upper(i)) + "\"");
            out += ' ';
            out += std::to_string(cumulative);
            out += '\n';
        }
        out += with_labels(bucket_base, labels, "le=\"+Inf\"");
        out += ' ';
        out += std::to_string(h.count());
        out += '\n';
        out += with_labels(std::string(base) + "_sum", labels);
        out += ' ';
        out += std::to_string(h.sum());
        out += '\n';
        out += with_labels(std::string(base) + "_count", labels);
        out += ' ';
        out += std::to_string(h.count());
        out += '\n';
    }
    return out;
}

std::string MetricsRegistry::json() const {
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json_quote(name) + ": " + std::to_string(c.value());
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json_quote(name) + ": {\"value\": " +
               std::to_string(g.value()) +
               ", \"max\": " + std::to_string(g.max()) + "}";
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json_quote(name) + ": {\"count\": " +
               std::to_string(h.count()) +
               ", \"sum\": " + std::to_string(h.sum()) +
               ", \"min\": " + std::to_string(h.min()) +
               ", \"max\": " + std::to_string(h.max()) + ", \"buckets\": [";
        const std::size_t top = h.highest_bucket();
        for (std::size_t i = 0; i <= top && h.count() != 0; ++i) {
            if (i > 0) out += ", ";
            out += std::to_string(h.bucket(i));
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

}  // namespace cres::obs
