// Minimal JSON string escaping shared by the metrics exporter and the
// structured log sink, so every JSON artefact escapes identically.
#pragma once

#include <string>
#include <string_view>

namespace cres::obs {

inline void json_escape_into(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
}

[[nodiscard]] inline std::string json_quote(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    json_escape_into(out, s);
    out += '"';
    return out;
}

}  // namespace cres::obs
