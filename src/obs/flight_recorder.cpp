#include "obs/flight_recorder.h"

namespace cres::obs {

FlightRecorder::FlightRecorder(std::size_t capacity) : ring_(capacity) {}

std::uint16_t FlightRecorder::intern(std::string_view name) {
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint16_t>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
}

std::string_view FlightRecorder::name(std::uint16_t id) const noexcept {
    return id < names_.size() ? std::string_view(names_[id])
                              : std::string_view("?");
}

void FlightRecorder::record_slow(std::uint64_t at, std::string_view source,
                                 std::string_view kind, std::uint8_t severity,
                                 FlightRecordType type, std::uint64_t a,
                                 std::uint64_t b, std::string_view detail) {
    if (ring_.empty()) return;
    record(at, intern(source), intern(kind), severity, type, a, b, detail);
}

std::vector<FlightRecord> FlightRecorder::snapshot_since(
    std::uint64_t cycle) const {
    std::vector<FlightRecord> out;
    for_each([&](const FlightRecord& r) {
        if (r.at >= cycle) out.push_back(r);
    });
    return out;
}

std::vector<FlightRecord> FlightRecorder::snapshot_emitted_since(
    std::uint64_t seq) const {
    std::vector<FlightRecord> out;
    // The oldest live record has sequence number emitted_ - count_.
    std::uint64_t record_seq = emitted_ - count_;
    for_each([&](const FlightRecord& r) {
        if (record_seq >= seq) out.push_back(r);
        ++record_seq;
    });
    return out;
}

}  // namespace cres::obs
