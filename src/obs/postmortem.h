// Sealed incident postmortem bundles. When a CSF incident span closes,
// the SSM snapshots its flight-recorder window, the metrics JSON
// snapshot, the span's phase marks and the evidence-chain head into
// one PostmortemBundle, then seals it with the device's keyed
// HmacSha256 so the artefact is tamper-evident and verifiable offline:
// a verifier holding the seal key needs only the JSON text.
//
// Sealing scheme: the HMAC covers the exact bytes of the rendered
// "bundle" JSON value (render_postmortem_body). The sealed artefact
// wraps that body verbatim, so verify_postmortem() can re-extract it
// by the fixed delimiters without a JSON parser — any 1-byte flip in
// the body (or the tag) fails verification.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/hmac.h"
#include "obs/flight_recorder.h"
#include "util/bytes.h"

namespace cres::obs {

struct PostmortemBundle {
    static constexpr std::size_t kCsfPhaseCount = 4;

    std::string device;  ///< Node name (process identity in the trace).
    std::uint64_t incident_id = 0;
    std::uint64_t opened_at = 0;  ///< Triggering event's emit cycle.
    std::uint64_t closed_at = 0;  ///< Recovery-complete cycle.
    /// Start of the captured pre-incident telemetry window.
    std::uint64_t window_begin = 0;

    /// CSF phase marks: bit i of `marked` set => phase i was marked at
    /// absolute cycle phase_at[i] (detect/respond/contain/recover).
    std::uint8_t marked = 0;
    std::array<std::uint64_t, kCsfPhaseCount> phase_at{};

    /// Flight-recorder window (pre-window at open + everything until
    /// close) and the id -> name table resolving its interned ids.
    std::vector<FlightRecord> telemetry;
    std::vector<std::string> names;

    /// Metrics registry JSON snapshot at close (empty when unbound).
    std::string metrics_json;

    /// Causal-provenance JSON object (fleet campaign bundles only):
    /// patient zero, hop depths and the reconstructed infection edges.
    /// Rendered as a "provenance" key when non-empty, so device
    /// bundles (which never set it) are byte-identical to the v1
    /// rendering.
    std::string provenance_json;

    /// Evidence-chain anchor: record count and chain head at close.
    std::uint64_t evidence_count = 0;
    std::string evidence_head_hex;
};

/// Canonical JSON body — the exact bytes the seal covers.
[[nodiscard]] std::string render_postmortem_body(const PostmortemBundle& b);

/// The complete sealed artefact (format "cres-postmortem-v1").
[[nodiscard]] std::string seal_postmortem(const PostmortemBundle& b,
                                          const crypto::HmacSha256& sealer);

/// Offline verification of a sealed artefact against the seal key.
/// False on malformed input, a wrong key, or any body/tag tampering.
[[nodiscard]] bool verify_postmortem(std::string_view sealed_json,
                                     BytesView seal_key);

}  // namespace cres::obs
