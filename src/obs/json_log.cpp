#include "obs/json_log.h"

#include <cctype>
#include <string>

#include "obs/json.h"

namespace cres::obs {

Logger::Sink json_log_sink(std::ostream& out,
                           std::function<std::uint64_t()> clock) {
    return [&out, clock = std::move(clock)](LogLevel level,
                                            std::string_view message) {
        std::string line = "{\"at\": ";
        line += std::to_string(clock ? clock() : 0);
        line += ", \"source\": \"log\", \"kind\": \"";
        for (const char c : log_level_name(level)) {
            line += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        }
        line += "\", \"detail\": ";
        line += json_quote(message);
        line += "}\n";
        out << line;
    };
}

}  // namespace cres::obs
