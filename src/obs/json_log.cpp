#include "obs/json_log.h"

#include <cctype>
#include <string>

#include "obs/json.h"
#include "obs/syslog.h"

namespace cres::obs {

namespace {

// Log levels onto RFC 5424 severity codes — the same vocabulary the
// SIEM stream uses (core events map via core::syslog_severity).
std::uint8_t log_level_syslog_severity(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kTrace:
        case LogLevel::kDebug: return rfc5424::kDebug;
        case LogLevel::kInfo: return rfc5424::kInformational;
        case LogLevel::kWarn: return rfc5424::kWarning;
        case LogLevel::kError: return rfc5424::kError;
        default: return rfc5424::kInformational;
    }
}

}  // namespace

Logger::Sink json_log_sink(std::ostream& out,
                           std::function<std::uint64_t()> clock) {
    return [&out, clock = std::move(clock)](LogLevel level,
                                            std::string_view message) {
        std::string line = "{\"at\": ";
        line += std::to_string(clock ? clock() : 0);
        line += ", \"source\": \"log\", \"kind\": \"";
        for (const char c : log_level_name(level)) {
            line += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        }
        line += "\", \"severity\": ";
        line += std::to_string(log_level_syslog_severity(level));
        line += ", \"detail\": ";
        line += json_quote(message);
        line += "}\n";
        out << line;
    };
}

}  // namespace cres::obs
