#include "obs/siem.h"

#include <utility>

#include "obs/json.h"
#include "obs/syslog.h"

namespace cres::obs {

namespace {

constexpr std::string_view kHeaderLine = "{\"format\":\"cres-siem-v1\"}";
constexpr std::string_view kChainDelim = ",\"chain\":\"";

[[nodiscard]] BytesView text_view(std::string_view s) noexcept {
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// RFC 5424 §6.3.3 SD-PARAM value escaping: `"`, `\` and `]`.
void sd_escape_into(std::string& out, std::string_view s) {
    for (const char c : s) {
        if (c == '"' || c == '\\' || c == ']') out += '\\';
        out += c;
    }
}

}  // namespace

std::string_view siem_kind_name(SiemKind kind) noexcept {
    switch (kind) {
        case SiemKind::kEvent: return "event";
        case SiemKind::kAlert: return "alert";
        case SiemKind::kState: return "state";
        case SiemKind::kIncidentOpen: return "incident-open";
        case SiemKind::kIncidentClose: return "incident-close";
        case SiemKind::kEvidenceHead: return "evidence-head";
        case SiemKind::kCampaign: return "campaign";
    }
    return "?";
}

std::string_view siem_kind_msgid(SiemKind kind) noexcept {
    switch (kind) {
        case SiemKind::kEvent: return "EVT";
        case SiemKind::kAlert: return "ALRT";
        case SiemKind::kState: return "STATE";
        case SiemKind::kIncidentOpen: return "INCOPEN";
        case SiemKind::kIncidentClose: return "INCCLOSE";
        case SiemKind::kEvidenceHead: return "EVHEAD";
        case SiemKind::kCampaign: return "CAMPAIGN";
    }
    return "?";
}

// --- SiemBuffer -----------------------------------------------------------

void SiemBuffer::bind_metrics(MetricsRegistry& registry) {
    m_dropped_ = &registry.counter("cres_siem_dropped_total");
    // Publish drops counted before binding exactly once (re-binding a
    // rebuilt engine to the same registry must not double-count).
    if (dropped_ > published_) {
        m_dropped_->inc(dropped_ - published_);
        published_ = dropped_;
    }
}

bool SiemBuffer::push(SiemEvent event) {
    if (events_.size() >= capacity_) {
        ++dropped_;
        if (m_dropped_ != nullptr) {
            m_dropped_->inc();
            ++published_;
        }
        return false;
    }
    events_.push_back(std::move(event));
    return true;
}

std::vector<SiemEvent> SiemBuffer::drain() {
    std::vector<SiemEvent> out;
    out.reserve(events_.size());
    for (SiemEvent& event : events_) out.push_back(std::move(event));
    events_.clear();
    return out;
}

// --- SiemStream -----------------------------------------------------------

SiemStream::SiemStream(BytesView key) : mac_(key) {
    jsonl_.append(kHeaderLine);
    jsonl_ += '\n';
}

std::string_view SiemStream::header() noexcept { return kHeaderLine; }

void SiemStream::append(std::uint32_t device_index, std::string_view device,
                        const SiemEvent& event) {
    // Body: the exact bytes the per-record digest covers. Field order
    // is part of the format — verifiers split on fixed delimiters.
    std::string body = "{\"seq\":";
    body += std::to_string(seq_);
    body += ",\"at\":";
    body += std::to_string(event.at);
    body += ",\"device\":";
    body += json_quote(device);
    body += ",\"index\":";
    body += std::to_string(device_index);
    body += ",\"kind\":\"";
    body += siem_kind_name(event.kind);
    body += "\",\"pri\":";
    body += std::to_string(rfc5424::pri(event.facility, event.severity));
    body += ",\"severity\":";
    body += std::to_string(event.severity);
    body += ",\"facility\":";
    body += std::to_string(event.facility);
    body += ",\"category\":";
    body += json_quote(event.category);
    body += ",\"source\":";
    body += json_quote(event.source);
    body += ",\"resource\":";
    body += json_quote(event.resource);
    body += ",\"detail\":";
    body += json_quote(event.detail);
    body += ",\"a\":";
    body += std::to_string(event.a);
    body += ",\"b\":";
    body += std::to_string(event.b);
    if (event.traced) {
        // Optional causal-trace object: absent on untraced records so
        // tracing-off streams are byte-identical to the v1 rendering.
        body += ",\"trace\":{\"origin\":";
        body += std::to_string(event.trace_origin);
        body += ",\"hop\":";
        body += std::to_string(event.trace_hop);
        body += ",\"span\":";
        body += std::to_string(event.trace_span);
        body += ",\"parent\":";
        body += std::to_string(event.trace_parent);
        body += '}';
    }
    body += '}';

    const crypto::Hash256 digest = crypto::sha256(text_view(body));
    head_ = mac_.tag_pair({head_.data(), head_.size()},
                          {digest.data(), digest.size()});
    ++seq_;

    body.pop_back();  // Re-open the object for the chain field.
    jsonl_ += body;
    jsonl_ += kChainDelim;
    jsonl_ += to_hex({head_.data(), head_.size()});
    jsonl_ += "\"}\n";

    // The operator rendering, from the same record. HEADER uses the
    // nil timestamp: wall clock does not exist in the simulation, so
    // the cycle stamp lives in the structured-data element instead.
    syslog_ += '<';
    syslog_ += std::to_string(rfc5424::pri(event.facility, event.severity));
    syslog_ += ">1 - ";
    syslog_.append(device.empty() ? "-" : device);
    syslog_ += ' ';
    syslog_.append(event.source.empty() ? "-" : event.source);
    syslog_ += " - ";
    syslog_ += siem_kind_msgid(event.kind);
    syslog_ += " [cres at=\"";
    syslog_ += std::to_string(event.at);
    syslog_ += "\" category=\"";
    sd_escape_into(syslog_, event.category);
    syslog_ += "\" resource=\"";
    sd_escape_into(syslog_, event.resource);
    syslog_ += "\" a=\"";
    syslog_ += std::to_string(event.a);
    syslog_ += "\" b=\"";
    syslog_ += std::to_string(event.b);
    syslog_ += "\"] ";
    syslog_ += event.detail;
    syslog_ += '\n';
}

void SiemStream::append_evidence_head(std::uint32_t device_index,
                                      std::string_view device,
                                      std::uint64_t at,
                                      std::uint64_t evidence_count,
                                      std::string_view head_hex) {
    SiemEvent anchor;
    anchor.at = at;
    anchor.kind = SiemKind::kEvidenceHead;
    anchor.severity = rfc5424::kInformational;
    anchor.facility = rfc5424::kFacAudit;
    anchor.category = "system";
    anchor.source = "ssm";
    anchor.resource = "evidence-chain";
    anchor.detail = std::string(head_hex);
    anchor.a = evidence_count;
    append(device_index, device, anchor);
}

std::string SiemStream::head_hex() const {
    return to_hex({head_.data(), head_.size()});
}

SiemVerifyResult SiemStream::verify(std::string_view jsonl, BytesView key) {
    SiemVerifyResult result;
    const crypto::HmacSha256 mac(key);
    crypto::Hash256 head{};  // Zero genesis, same as the stream.

    std::size_t line_no = 0;
    std::size_t pos = 0;
    bool saw_header = false;
    while (pos < jsonl.size()) {
        std::size_t end = jsonl.find('\n', pos);
        if (end == std::string_view::npos) end = jsonl.size();
        const std::string_view line = jsonl.substr(pos, end - pos);
        pos = end + 1;
        ++line_no;

        if (!saw_header) {
            if (line != kHeaderLine) {
                result.bad_line = line_no;
                result.reason = "missing cres-siem-v1 header";
                return result;
            }
            saw_header = true;
            continue;
        }
        if (line.empty()) {
            result.bad_line = line_no;
            result.reason = "empty record line";
            return result;
        }

        // Split off the chain field. Inside JSON string values every
        // `"` is escaped, so the delimiter cannot occur in data; rfind
        // keeps the split well-defined regardless.
        const std::size_t delim = line.rfind(kChainDelim);
        if (delim == std::string_view::npos) {
            result.bad_line = line_no;
            result.reason = "record has no chain field";
            return result;
        }
        const std::size_t hex_begin = delim + kChainDelim.size();
        // 64 hex chars + closing `"}`.
        if (line.size() != hex_begin + 66 ||
            line.substr(line.size() - 2) != "\"}") {
            result.bad_line = line_no;
            result.reason = "malformed chain field";
            return result;
        }
        const std::string_view chain_hex = line.substr(hex_begin, 64);

        std::string body(line.substr(0, delim));
        body += '}';
        const crypto::Hash256 digest = crypto::sha256(text_view(body));
        head = mac.tag_pair({head.data(), head.size()},
                            {digest.data(), digest.size()});
        if (to_hex({head.data(), head.size()}) != chain_hex) {
            result.bad_line = line_no;
            result.reason = "chain mismatch";
            return result;
        }
        ++result.records;
    }

    if (!saw_header) {
        result.bad_line = 0;
        result.reason = "empty stream";
        return result;
    }
    result.ok = true;
    return result;
}

}  // namespace cres::obs
