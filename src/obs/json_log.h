// Structured JSON sink for util/log.h. Each log line becomes one JSON
// object per line (JSONL) using the same vocabulary as trace records
// and the metrics snapshot: {"at": <cycle>, "source": "log",
// "kind": "<level>", "severity": <rfc5424>, "detail": "<message>"} —
// so logs, telemetry and metrics correlate on the `at` / `source` /
// `kind` fields, and `severity` carries the RFC 5424 code shared with
// the SIEM export stream (obs/syslog.h).
#pragma once

#include <functional>
#include <ostream>

#include "util/log.h"

namespace cres::obs {

/// Returns a sink that writes JSONL to `out`. `clock` supplies the
/// simulated cycle for the "at" field; when empty, "at" is 0 (a
/// process-global logger has no single simulation clock). The stream
/// must outlive the sink's installation.
[[nodiscard]] Logger::Sink json_log_sink(
    std::ostream& out, std::function<std::uint64_t()> clock = {});

}  // namespace cres::obs
