#include "sim/trace.h"

#include "util/serial.h"

namespace cres::sim {

void TraceStream::emit(TraceRecord record) {
    ++kind_counts_[record.kind];
    records_.push_back(std::move(record));
    note_emit(records_.back());
}

void TraceStream::emit(Cycle at, std::string source, std::string kind,
                       std::string detail, std::uint64_t a, std::uint64_t b) {
    ++kind_counts_[kind];
    records_.push_back(TraceRecord{at, std::move(source), std::move(kind),
                                   std::move(detail), a, b});
    note_emit(records_.back());
}

void TraceStream::bind_metrics(obs::MetricsRegistry& registry) {
    m_records_ = &registry.gauge("cres_trace_records");
    m_bytes_ = &registry.gauge("cres_trace_bytes_approx");
    update_gauges();  // A stream bound late reports its backlog at once.
}

std::vector<TraceRecord> TraceStream::since(Cycle cycle) const {
    std::vector<TraceRecord> out;
    for (const auto& r : records_) {
        if (r.at >= cycle) out.push_back(r);
    }
    return out;
}

std::vector<TraceRecord> TraceStream::of_kind(const std::string& kind) const {
    std::vector<TraceRecord> out;
    for (const auto& r : records_) {
        if (r.kind == kind) out.push_back(r);
    }
    return out;
}

std::size_t TraceStream::count_kind(const std::string& kind) const noexcept {
    const auto it = kind_counts_.find(kind);
    return it == kind_counts_.end() ? 0 : it->second;
}

Bytes TraceStream::encode(const TraceRecord& record) {
    BinaryWriter w;
    w.u64(record.at);
    w.str(record.source);
    w.str(record.kind);
    w.str(record.detail);
    w.u64(record.a);
    w.u64(record.b);
    return w.take();
}

}  // namespace cres::sim
