// Structured telemetry stream. Every architectural component (CPU, bus,
// peripherals, monitors) can emit records; the System Security Manager
// consumes them to build the evidence log — the paper's "continuity of
// data stream" is measured over these records.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/bytes.h"

namespace cres::sim {

/// One telemetry record. `a` and `b` carry kind-specific scalars
/// (e.g. address and value for a bus write).
struct TraceRecord {
    Cycle at = 0;
    std::string source;  ///< Component name, e.g. "bus0", "cpu".
    std::string kind;    ///< Record type, e.g. "write", "trap", "alert".
    std::string detail;  ///< Free-form human-readable context.
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/// Append-only record stream with simple query helpers.
class TraceStream {
public:
    void emit(TraceRecord record);
    void emit(Cycle at, std::string source, std::string kind,
              std::string detail = {}, std::uint64_t a = 0,
              std::uint64_t b = 0);

    [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
    [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

    /// Approximate heap footprint of the stream (record structs plus
    /// string payload lengths) — the observable cost of the stream
    /// being unbounded. Maintained on emit, reset by clear().
    [[nodiscard]] std::uint64_t bytes_approx() const noexcept {
        return bytes_approx_;
    }

    /// Registers the `cres_trace_records` / `cres_trace_bytes_approx`
    /// gauges so the stream's unbounded growth is visible on long runs.
    /// Unbound streams (the default) pay one null check per emit.
    void bind_metrics(obs::MetricsRegistry& registry);

    /// Records with at >= cycle. Copies; prefer for_each_since on hot
    /// or large streams.
    [[nodiscard]] std::vector<TraceRecord> since(Cycle cycle) const;

    /// Records whose kind matches. Copies; prefer for_each_of_kind on
    /// hot or large streams.
    [[nodiscard]] std::vector<TraceRecord> of_kind(const std::string& kind) const;

    /// Non-copying queries: visit matching records in emission order.
    template <typename Fn>
    void for_each_since(Cycle cycle, Fn&& fn) const {
        for (const auto& r : records_) {
            if (r.at >= cycle) fn(r);
        }
    }
    template <typename Fn>
    void for_each_of_kind(const std::string& kind, Fn&& fn) const {
        for (const auto& r : records_) {
            if (r.kind == kind) fn(r);
        }
    }

    /// Number of records of the given kind — O(log #kinds) via the
    /// per-kind count index maintained on emit, not an O(n) scan.
    [[nodiscard]] std::size_t count_kind(const std::string& kind) const noexcept;

    /// Distinct kinds seen so far with their counts (name-ordered).
    [[nodiscard]] const std::map<std::string, std::size_t>& kind_counts()
        const noexcept {
        return kind_counts_;
    }

    /// Drops all records (models a reboot wiping volatile telemetry —
    /// the failure mode the paper attributes to passive architectures).
    void clear() noexcept {
        records_.clear();
        kind_counts_.clear();
        bytes_approx_ = 0;
        update_gauges();
    }

    /// Serializes one record for hashing into the evidence chain.
    /// Byte-identical to the historical encoding: the count index is
    /// query-side state and never enters the hash.
    static Bytes encode(const TraceRecord& record);

private:
    void note_emit(const TraceRecord& record) noexcept {
        bytes_approx_ += sizeof(TraceRecord) + record.source.size() +
                         record.kind.size() + record.detail.size();
        update_gauges();
    }
    void update_gauges() noexcept {
        if (m_records_ == nullptr) return;
        m_records_->set(static_cast<std::int64_t>(records_.size()));
        m_bytes_->set(static_cast<std::int64_t>(bytes_approx_));
    }

    std::vector<TraceRecord> records_;
    std::map<std::string, std::size_t> kind_counts_;  ///< emit-maintained.
    std::uint64_t bytes_approx_ = 0;
    obs::Gauge* m_records_ = nullptr;  ///< Null until bind_metrics.
    obs::Gauge* m_bytes_ = nullptr;
};

}  // namespace cres::sim
