// Structured telemetry stream. Every architectural component (CPU, bus,
// peripherals, monitors) can emit records; the System Security Manager
// consumes them to build the evidence log — the paper's "continuity of
// data stream" is measured over these records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/bytes.h"

namespace cres::sim {

/// One telemetry record. `a` and `b` carry kind-specific scalars
/// (e.g. address and value for a bus write).
struct TraceRecord {
    Cycle at = 0;
    std::string source;  ///< Component name, e.g. "bus0", "cpu".
    std::string kind;    ///< Record type, e.g. "write", "trap", "alert".
    std::string detail;  ///< Free-form human-readable context.
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/// Append-only record stream with simple query helpers.
class TraceStream {
public:
    void emit(TraceRecord record);
    void emit(Cycle at, std::string source, std::string kind,
              std::string detail = {}, std::uint64_t a = 0,
              std::uint64_t b = 0);

    [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
    [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

    /// Records with at >= cycle.
    [[nodiscard]] std::vector<TraceRecord> since(Cycle cycle) const;

    /// Records whose kind matches.
    [[nodiscard]] std::vector<TraceRecord> of_kind(const std::string& kind) const;

    /// Number of records of the given kind.
    [[nodiscard]] std::size_t count_kind(const std::string& kind) const noexcept;

    /// Drops all records (models a reboot wiping volatile telemetry —
    /// the failure mode the paper attributes to passive architectures).
    void clear() noexcept { records_.clear(); }

    /// Serializes one record for hashing into the evidence chain.
    static Bytes encode(const TraceRecord& record);

private:
    std::vector<TraceRecord> records_;
};

}  // namespace cres::sim
