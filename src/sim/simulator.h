// Discrete-event / cycle-stepped simulation kernel.
//
// The platform uses a hybrid model: components that need per-cycle
// behaviour (CPU, DMA, watchdog, monitors) register as Tickables and are
// stepped on every cycle; sporadic behaviour (timer expiry, attack
// injection, network delivery) is scheduled on the event queue.
//
// Quiescence (docs/SCHEDULER.md): a Tickable may additionally report
// when its next architecturally visible work is due via
// next_activity(). When every registered component is quiescent and no
// event is due, run_until() fast-forwards the clock to the earliest
// wake point instead of cycle-stepping, after asking each component to
// skip() the gap. skip() must leave the component bit-identical to
// having ticked every skipped cycle — the fast path is a scheduling
// optimisation, never a semantics change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/error.h"

namespace cres::sim {

/// Simulated time, in clock cycles.
using Cycle = std::uint64_t;

/// A component stepped once per simulated cycle.
///
/// Quiescence contract: next_activity(now) may return
///  - `now`            — the component does architecturally visible work
///                       this cycle; the kernel must step per-cycle.
///  - a cycle `w > now` — every tick in [now, w) is replicable by
///                       skip(); the first visible work is at `w`.
///  - `kIdleForever`   — no tick does visible work until some external
///                       input (bus write, IRQ, event) re-arms the
///                       component; ticks are still replicated by
///                       skip().
/// When the kernel jumps from `now` to `now + n` (with
/// `now + n <= next_activity(now)` for every component), it calls
/// skip(now, n) on each component, which must reproduce the exact state
/// n consecutive tick(now)..tick(now+n-1) calls would have produced.
/// skip() must not register/unregister tickables or schedule events.
class Tickable {
public:
    /// next_activity() sentinel: quiescent until externally re-armed.
    static constexpr Cycle kIdleForever = ~Cycle{0};

    virtual ~Tickable() = default;
    virtual void tick(Cycle now) = 0;

    /// Earliest cycle >= now at which tick() does architecturally
    /// visible work. Defaults to `now` (always active), so components
    /// that do not implement the protocol simply disable fast-forward.
    [[nodiscard]] virtual Cycle next_activity(Cycle now) { return now; }

    /// Replays `cycles` consecutive quiescent ticks starting at `now`
    /// in O(1)/O(work). Only called when
    /// `now + cycles <= next_activity(now)` held at the jump decision.
    virtual void skip(Cycle now, Cycle cycles) {
        (void)now;
        (void)cycles;
    }
};

/// Move-only callable with small-buffer optimisation: event actions the
/// size of a few captured pointers (the steady-state case — e.g. the
/// fleet's nic-pump closure) are stored inline, so scheduling them
/// allocates nothing. Larger callables fall back to the heap.
class EventFn {
public:
    EventFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
            vtable_ = &inline_vtable<Fn>;
        } else {
            ::new (static_cast<void*>(storage_))
                Fn*(new Fn(std::forward<F>(fn)));
            vtable_ = &boxed_vtable<Fn>;
        }
    }

    EventFn(EventFn&& other) noexcept { move_from(other); }
    EventFn& operator=(EventFn&& other) noexcept {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }
    EventFn(const EventFn&) = delete;
    EventFn& operator=(const EventFn&) = delete;
    ~EventFn() { reset(); }

    void operator()() { vtable_->invoke(storage_); }
    [[nodiscard]] explicit operator bool() const noexcept {
        return vtable_ != nullptr;
    }

private:
    static constexpr std::size_t kInlineSize = 48;

    struct VTable {
        void (*invoke)(void* storage);
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void* storage) noexcept;
    };

    template <typename Fn>
    static constexpr VTable inline_vtable{
        [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
        [](void* dst, void* src) noexcept {
            Fn* from = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void* s) noexcept {
            std::launder(reinterpret_cast<Fn*>(s))->~Fn();
        }};

    template <typename Fn>
    static constexpr VTable boxed_vtable{
        [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
        [](void* dst, void* src) noexcept {
            Fn** from = std::launder(reinterpret_cast<Fn**>(src));
            ::new (dst) Fn*(*from);
        },
        [](void* s) noexcept {
            delete *std::launder(reinterpret_cast<Fn**>(s));
        }};

    void move_from(EventFn& other) noexcept {
        vtable_ = other.vtable_;
        if (vtable_ != nullptr) {
            vtable_->relocate(storage_, other.storage_);
            other.vtable_ = nullptr;
        }
    }
    void reset() noexcept {
        if (vtable_ != nullptr) {
            vtable_->destroy(storage_);
            vtable_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize]{};
    const VTable* vtable_ = nullptr;
};

/// The simulation kernel: owns the clock, the event queue and the list
/// of per-cycle components. Not thread-safe and deliberately free of
/// global state: every mutable field lives on the instance, so a
/// kernel is thread-confined — the parallel fleet runner gives each
/// device-node's simulator to exactly one worker per phase and needs
/// no locks on the hot path. One kernel per scenario/node.
class Simulator {
public:
    Simulator() = default;

    /// Current simulated time.
    [[nodiscard]] Cycle now() const noexcept { return now_; }

    /// Registers a per-cycle component. The pointer must outlive the
    /// simulator run (platform objects own their components).
    /// Registration during a tick takes effect next cycle.
    void add_tickable(Tickable* component);

    /// Removes a previously registered component. Safe to call from
    /// inside tick(): the slot is nulled immediately (the component
    /// receives no further ticks, including later in the same cycle)
    /// and compacted after the cycle completes.
    void remove_tickable(Tickable* component) noexcept;

    /// Schedules `action` to run at absolute cycle `at` (>= now).
    /// Events at the same cycle run in scheduling order. The label is
    /// interned: scheduling a previously seen label allocates nothing.
    void schedule_at(Cycle at, std::string_view label, EventFn action);

    /// Schedules `action` to run `delta` cycles from now.
    void schedule_in(Cycle delta, std::string_view label, EventFn action);

    /// Advances exactly one cycle: fires due events, then ticks all
    /// components.
    void step();

    /// Advances `cycles` cycles.
    void run_for(Cycle cycles);

    /// Advances until now() == target (no-op when already past). With
    /// quiescence enabled (the default) stretches where every component
    /// is idle and no event is due are skipped in one jump; results are
    /// bit-identical to per-cycle stepping (docs/SCHEDULER.md).
    void run_until(Cycle target);

    /// Enables/disables quiescence fast-forward (differential testing).
    void set_quiescence(bool enabled) noexcept { quiescence_ = enabled; }
    [[nodiscard]] bool quiescence() const noexcept { return quiescence_; }

    /// True when the event queue is empty.
    [[nodiscard]] bool idle() const noexcept { return events_.empty(); }

    /// Number of events executed so far (telemetry).
    [[nodiscard]] std::uint64_t events_fired() const noexcept {
        return events_fired_;
    }

    /// Cycles fast-forwarded (not individually stepped) so far.
    [[nodiscard]] std::uint64_t cycles_skipped() const noexcept {
        return cycles_skipped_;
    }

    /// Resolves an interned label id (telemetry/tests).
    [[nodiscard]] std::string_view label_name(std::uint32_t id) const {
        return id < labels_.size() ? std::string_view{labels_[id]}
                                   : std::string_view{};
    }

private:
    struct Event {
        Cycle at;
        std::uint64_t seq;
        std::uint32_t label;
        EventFn action;
    };
    struct EventLater {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };
    struct LabelHash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const noexcept {
            return std::hash<std::string_view>{}(s);
        }
        std::size_t operator()(const std::string& s) const noexcept {
            return std::hash<std::string_view>{}(s);
        }
    };

    void fire_due_events();
    std::uint32_t intern_label(std::string_view label);
    /// Earliest quiescent wake across tickables, capped at `limit`;
    /// returns now_ when any component is active this cycle.
    [[nodiscard]] Cycle earliest_wake(Cycle limit);

    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_fired_ = 0;
    std::uint64_t cycles_skipped_ = 0;
    bool quiescence_ = true;
    bool ticking_ = false;
    bool compact_pending_ = false;
    std::priority_queue<Event, std::vector<Event>, EventLater> events_;
    std::vector<Tickable*> tickables_;
    std::vector<std::string> labels_;
    std::unordered_map<std::string, std::uint32_t, LabelHash,
                       std::equal_to<>>
        label_ids_;
};

}  // namespace cres::sim
