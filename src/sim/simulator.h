// Discrete-event / cycle-stepped simulation kernel.
//
// The platform uses a hybrid model: components that need per-cycle
// behaviour (CPU, DMA, watchdog, monitors) register as Tickables and are
// stepped on every cycle; sporadic behaviour (timer expiry, attack
// injection, network delivery) is scheduled on the event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "util/error.h"

namespace cres::sim {

/// Simulated time, in clock cycles.
using Cycle = std::uint64_t;

/// A component stepped once per simulated cycle.
class Tickable {
public:
    virtual ~Tickable() = default;
    virtual void tick(Cycle now) = 0;
};

/// The simulation kernel: owns the clock, the event queue and the list
/// of per-cycle components. Not thread-safe and deliberately free of
/// global state: every mutable field lives on the instance, so a
/// kernel is thread-confined — the parallel fleet runner gives each
/// device-node's simulator to exactly one worker per phase and needs
/// no locks on the hot path. One kernel per scenario/node.
class Simulator {
public:
    Simulator() = default;

    /// Current simulated time.
    [[nodiscard]] Cycle now() const noexcept { return now_; }

    /// Registers a per-cycle component. The pointer must outlive the
    /// simulator run (platform objects own their components).
    void add_tickable(Tickable* component);

    /// Removes a previously registered component.
    void remove_tickable(Tickable* component) noexcept;

    /// Schedules `action` to run at absolute cycle `at` (>= now).
    /// Events at the same cycle run in scheduling order.
    void schedule_at(Cycle at, std::string label, std::function<void()> action);

    /// Schedules `action` to run `delta` cycles from now.
    void schedule_in(Cycle delta, std::string label,
                     std::function<void()> action);

    /// Advances exactly one cycle: fires due events, then ticks all
    /// components.
    void step();

    /// Advances `cycles` cycles.
    void run_for(Cycle cycles);

    /// Advances until now() == target (no-op when already past).
    void run_until(Cycle target);

    /// True when the event queue is empty.
    [[nodiscard]] bool idle() const noexcept { return events_.empty(); }

    /// Number of events executed so far (telemetry).
    [[nodiscard]] std::uint64_t events_fired() const noexcept {
        return events_fired_;
    }

private:
    struct Event {
        Cycle at;
        std::uint64_t seq;
        std::string label;
        std::function<void()> action;
    };
    struct EventLater {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    void fire_due_events();

    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_fired_ = 0;
    std::priority_queue<Event, std::vector<Event>, EventLater> events_;
    std::vector<Tickable*> tickables_;
};

}  // namespace cres::sim
