#include "sim/simulator.h"

#include <algorithm>

namespace cres::sim {

void Simulator::add_tickable(Tickable* component) {
    if (component == nullptr) {
        throw SimError("add_tickable: null component");
    }
    tickables_.push_back(component);
}

void Simulator::remove_tickable(Tickable* component) noexcept {
    std::erase(tickables_, component);
}

void Simulator::schedule_at(Cycle at, std::string label,
                            std::function<void()> action) {
    if (at < now_) {
        throw SimError("schedule_at: cannot schedule in the past (" +
                       label + ")");
    }
    events_.push(Event{at, next_seq_++, std::move(label), std::move(action)});
}

void Simulator::schedule_in(Cycle delta, std::string label,
                            std::function<void()> action) {
    schedule_at(now_ + delta, std::move(label), std::move(action));
}

void Simulator::fire_due_events() {
    while (!events_.empty() && events_.top().at <= now_) {
        // Copy out before pop so the action may schedule more events.
        auto action = events_.top().action;
        events_.pop();
        ++events_fired_;
        action();
    }
}

void Simulator::step() {
    fire_due_events();
    // Snapshot: a tick may register/unregister components; those changes
    // take effect next cycle.
    const std::vector<Tickable*> snapshot = tickables_;
    for (Tickable* t : snapshot) t->tick(now_);
    ++now_;
}

void Simulator::run_for(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) step();
}

void Simulator::run_until(Cycle target) {
    while (now_ < target) step();
}

}  // namespace cres::sim
