#include "sim/simulator.h"

#include <algorithm>

namespace cres::sim {

void Simulator::add_tickable(Tickable* component) {
    if (component == nullptr) {
        throw SimError("add_tickable: null component");
    }
    tickables_.push_back(component);
}

void Simulator::remove_tickable(Tickable* component) noexcept {
    if (ticking_) {
        // Mid-cycle removal: null the slot so the component receives no
        // further ticks (this cycle included); compact after the cycle.
        for (Tickable*& slot : tickables_) {
            if (slot == component) {
                slot = nullptr;
                compact_pending_ = true;
            }
        }
        return;
    }
    std::erase(tickables_, component);
}

std::uint32_t Simulator::intern_label(std::string_view label) {
    const auto it = label_ids_.find(label);
    if (it != label_ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(labels_.size());
    labels_.emplace_back(label);
    label_ids_.emplace(labels_.back(), id);
    return id;
}

void Simulator::schedule_at(Cycle at, std::string_view label,
                            EventFn action) {
    if (at < now_) {
        throw SimError("schedule_at: cannot schedule in the past (" +
                       std::string(label) + ")");
    }
    events_.push(
        Event{at, next_seq_++, intern_label(label), std::move(action)});
}

void Simulator::schedule_in(Cycle delta, std::string_view label,
                            EventFn action) {
    schedule_at(now_ + delta, label, std::move(action));
}

void Simulator::fire_due_events() {
    while (!events_.empty() && events_.top().at <= now_) {
        // Move out before pop so the action may schedule more events.
        // Mutating `action` never reorders the heap: ordering depends
        // only on (at, seq).
        EventFn action =
            std::move(const_cast<Event&>(events_.top()).action);
        events_.pop();
        ++events_fired_;
        action();
    }
}

void Simulator::step() {
    fire_due_events();
    // A tick may register/unregister components. Additions land beyond
    // the captured bound and tick from the next cycle; removals null
    // their slot immediately (see remove_tickable).
    const std::size_t bound = tickables_.size();
    ticking_ = true;
    for (std::size_t i = 0; i < bound; ++i) {
        Tickable* t = tickables_[i];
        if (t != nullptr) t->tick(now_);
    }
    ticking_ = false;
    if (compact_pending_) {
        std::erase(tickables_, static_cast<Tickable*>(nullptr));
        compact_pending_ = false;
    }
    ++now_;
}

void Simulator::run_for(Cycle cycles) { run_until(now_ + cycles); }

Cycle Simulator::earliest_wake(Cycle limit) {
    Cycle wake = limit;
    for (Tickable* t : tickables_) {
        const Cycle na = t->next_activity(now_);
        if (na <= now_) return now_;  // active this cycle
        if (na < wake) wake = na;
    }
    return wake;
}

void Simulator::run_until(Cycle target) {
    if (!quiescence_) {
        while (now_ < target) step();
        return;
    }
    while (now_ < target) {
        // Events due this cycle force a normal step (their actions may
        // re-arm components).
        if (!events_.empty() && events_.top().at <= now_) {
            step();
            continue;
        }
        Cycle limit = target;
        if (!events_.empty() && events_.top().at < limit) {
            limit = events_.top().at;
        }
        const Cycle wake = earliest_wake(limit);
        if (wake <= now_) {
            step();
            continue;
        }
        // Every component is quiescent until `wake` and no event is
        // due before it: replay the gap in O(components) and jump.
        const Cycle skipped = wake - now_;
        for (Tickable* t : tickables_) t->skip(now_, skipped);
        now_ = wake;
        cycles_skipped_ += skipped;
    }
}

}  // namespace cres::sim
