// Forward declaration so the platform scenario can reference attacks
// without a dependency cycle (attack depends on platform).
#pragma once

namespace cres::attack {
class Attack;
}  // namespace cres::attack
