#include "attack/attacks.h"

#include "boot/update.h"

namespace cres::attack {

namespace {

const mem::BusAttr kDebugAttr{mem::Master::kDebug, false, true};
const mem::BusAttr kAttackerAttr{mem::Master::kAttacker, false, false};

}  // namespace

void StackSmashAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "plant-gadget", [this, &node] {
        // The vulnerability writes through the task's own pointers:
        // model as a direct (off-bus) memory corruption.
        const isa::Program gadget =
            platform::exfil_gadget_program(platform::gadget_origin());
        node.app_ram.load(gadget.origin - platform::kAppRamBase, gadget.code);

        // Race the loop: repeatedly overwrite the saved return address.
        const mem::Addr slot_offset =
            platform::saved_lr_slot() - platform::kAppRamBase;
        for (int i = 0; i < kAttempts; ++i) {
            node.sim.schedule_in(
                static_cast<sim::Cycle>(i) * kAttemptSpacing, "smash",
                [this, &node, slot_offset] {
                    const mem::Addr target = platform::gadget_origin();
                    Bytes addr_bytes(4);
                    for (int b = 0; b < 4; ++b) {
                        addr_bytes[static_cast<std::size_t>(b)] =
                            static_cast<std::uint8_t>(target >> (8 * b));
                    }
                    node.app_ram.load(slot_offset, addr_bytes);
                    // Objective reached once the pc lands in the gadget.
                    if (node.cpu.pc() >= platform::gadget_origin() &&
                        node.cpu.pc() < platform::gadget_origin() + 0x200) {
                        mark_success();
                    }
                });
        }
        // Late success check (pivot may land after the last smash).
        node.sim.schedule_in(
            static_cast<sim::Cycle>(kAttempts) * kAttemptSpacing + 2000,
            "smash-check", [this, &node] {
                if (node.cpu.pc() >= platform::gadget_origin() &&
                    node.cpu.pc() < platform::gadget_origin() + 0x200) {
                    mark_success();
                }
            });
    });
}

void CodeInjectionAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "code-injection", [this, &node] {
        // Overwrite the loop's first instructions with a jump into a
        // planted gadget, over the bus, as the debug master.
        const isa::Program gadget =
            platform::exfil_gadget_program(platform::gadget_origin());
        if (!node.bus.write_block(platform::gadget_origin(), gadget.code,
                                  kDebugAttr)) {
            return;
        }
        // j gadget, encoded relative to the loop head.
        const mem::Addr loop_head = platform::kCodeBase + 0x20;
        isa::Instruction jmp;
        jmp.opcode = isa::Opcode::kJal;
        jmp.rd = 0;
        jmp.imm = static_cast<std::uint16_t>(
            (platform::gadget_origin() - loop_head) & 0xffff);
        const std::uint32_t word = isa::encode(jmp);
        if (node.bus.write(loop_head, 4, word, kDebugAttr) ==
            mem::BusResponse::kOk) {
            mark_success();
        }
    });
}

void DmaExfilAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "dma-exfil", [this, &node] {
        node.dma.start_transfer(platform::kSecretBase,
                                platform::kNicBase + dev::Nic::kRegTxByte,
                                platform::kSecretSize, /*secure=*/false,
                                /*dst_fixed=*/true);
        node.sim.schedule_in(platform::kSecretSize / 2, "dma-send",
                             [this, &node] {
                                 // Flush the staged bytes as a frame.
                                 std::uint32_t io = 1;
                                 if (node.bus.access(
                                         mem::BusOp::kWrite,
                                         platform::kNicBase +
                                             dev::Nic::kRegTxSend,
                                         4, io, kDebugAttr) ==
                                     mem::BusResponse::kOk) {
                                     if (node.nic.frames_sent() > 0) {
                                         mark_success();
                                     }
                                 }
                             });
    });
}

void BusTamperAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "bus-tamper", [this, &node] {
        // Step 1: clear the secure attribute ([34]).
        if (!node.bus.set_secure_only("tee_ram", false)) return;

        // Step 2: read the attestation key with non-secure accesses and
        // push it out through the NIC, spread over time.
        const auto placement = node.tee.placement("attest");
        if (!placement) return;
        for (std::uint32_t i = 0; i < placement->size; ++i) {
            node.sim.schedule_in(
                10 + static_cast<sim::Cycle>(i) * 20, "tamper-read",
                [this, &node, addr = placement->addr + i] {
                    const auto byte = node.bus.read(addr, 1, kAttackerAttr);
                    if (!byte) return;
                    ++key_bytes_read_;
                    std::uint32_t io = *byte;
                    (void)node.bus.access(
                        mem::BusOp::kWrite,
                        platform::kNicBase + dev::Nic::kRegTxByte, 4, io,
                        kAttackerAttr);
                });
        }
        node.sim.schedule_in(10 + placement->size * 20 + 10, "tamper-send",
                             [this, &node] {
                                 std::uint32_t io = 1;
                                 (void)node.bus.access(
                                     mem::BusOp::kWrite,
                                     platform::kNicBase +
                                         dev::Nic::kRegTxSend,
                                     4, io, kAttackerAttr);
                                 if (key_bytes_read_ > 0) mark_success();
                             });
    });
}

void SensorSpoofAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "sensor-spoof", [this, &node] {
        node.sensor.set_spoof(
            [v = spoof_value_](sim::Cycle) { return v; });
        mark_success();  // The feed is compromised from this point.
    });
}

void ReplayAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "replay-capture", [this, &node] {
        link_.set_tap([this](const Bytes& frame,
                             bool from_a) -> std::optional<Bytes> {
            // Capture traffic *toward* the victim so the replay is a
            // frame the victim already accepted once.
            if (from_a != victim_is_a_ && captured_.empty()) {
                captured_ = frame;
            }
            return frame;
        });
        node.sim.schedule_in(5000, "replay-inject", [this, &node] {
            link_.clear_tap();
            if (!captured_.empty()) {
                // A single stale frame is indistinguishable from a
                // retransmission (advisory-grade at the monitor); a
                // real replay attack hammers the captured frame, which
                // is what crosses the burst threshold.
                for (int i = 0; i < 3; ++i) {
                    link_.inject(captured_, victim_is_a_);
                }
                mark_success();  // The forged frames reached the victim.
            }
        });
    });
}

void MitmTamperAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "mitm-tamper", [this, &node] {
        (void)node;
        link_.set_tap([this](const Bytes& frame,
                             bool) -> std::optional<Bytes> {
            if (frame.size() < 16) return frame;
            Bytes modified = frame;
            modified[12] ^= 0xff;  // Flip payload bits.
            mark_success();        // Tampered traffic is on the wire.
            return modified;
        });
    });
}

void MitmTamperAttack::stop() {
    link_.clear_tap();
}

void FirmwareDowngradeAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "fw-downgrade", [this, &node] {
        if (!node.update_agent) return;
        const auto status = node.update_agent->install(old_image_);
        if (status == boot::UpdateStatus::kOk &&
            node.update_agent->activate()) {
            mark_success();  // The old image is now the active slot.
        }
    });
}

void TaskHangAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "task-hang", [this, &node] {
        node.cpu.halt();
        mark_success();
    });
}

void GlitchAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "glitch", [this, &node] {
        node.power.inject_glitch(voltage_, duration_);
        mark_success();
    });
}

void SsmKillAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "ssm-kill", [this, &node] {
        if (node.ssm && node.ssm->attempt_compromise("kernel-exploit")) {
            mark_success();
        }
    });
}

void BusProbeAttack::launch(platform::Node& node, sim::Cycle at) {
    note_launch(at);
    node.sim.schedule_at(at, "bus-probe", [this, &node] {
        for (int i = 0; i < 32; ++i) {
            node.sim.schedule_in(
                static_cast<sim::Cycle>(i) * 5, "probe",
                [&node, i] {
                    (void)node.bus.read(
                        0x9000'0000u + static_cast<mem::Addr>(i) * 0x1000, 4,
                        kAttackerAttr);
                });
        }
        mark_success();  // Recon always "works"; detection is the test.
    });
}

}  // namespace cres::attack
