// The attack library: one class per modelled attack mechanism.
#pragma once

#include <optional>

#include "attack/attack.h"
#include "boot/image.h"
#include "dev/nic.h"
#include "platform/workload.h"

namespace cres::attack {

/// Software-vulnerability memory corruption: plants an exfiltration
/// gadget in the data region and repeatedly overwrites the control
/// loop's saved return address so execution pivots into the gadget
/// (stack smashing / ROP pivot — the class behind [15], [16]).
/// Corruption happens through the task's own (buggy) writes, so it is
/// invisible at the bus-master level; only behaviour betrays it.
class StackSmashAttack : public Attack {
public:
    std::string name() const override { return "stack-smash-hijack"; }
    std::string mechanism() const override {
        return "software memory-corruption pivot to planted shellcode "
               "(secure-boot-time integrity cannot see runtime smashes)";
    }
    void launch(platform::Node& node, sim::Cycle at) override;

    /// Repeated overwrite attempts (the smash races the victim's loop).
    static constexpr int kAttempts = 40;
    static constexpr sim::Cycle kAttemptSpacing = 100;
};

/// Debug-port code injection: rewrites live program text over the bus
/// (JTAG-class physical access).
class CodeInjectionAttack : public Attack {
public:
    std::string name() const override { return "debug-code-injection"; }
    std::string mechanism() const override {
        return "external debug master rewrites executable text in place";
    }
    void launch(platform::Node& node, sim::Cycle at) override;
};

/// Malicious DMA programming: streams the application secret into the
/// NIC transmit port without the CPU ever touching it.
class DmaExfilAttack : public Attack {
public:
    std::string name() const override { return "dma-exfiltration"; }
    std::string mechanism() const override {
        return "compromised driver programs the DMA engine to copy "
               "secrets to a network FIFO (peripheral-master abuse)";
    }
    void launch(platform::Node& node, sim::Cycle at) override;
};

/// Bus-attribute tampering [34]: clears the TEE region's secure
/// attribute via the reconfiguration surface, then reads the
/// attestation key with plain non-secure transactions and exfiltrates.
class BusTamperAttack : public Attack {
public:
    std::string name() const override { return "bus-attribute-tamper"; }
    std::string mechanism() const override {
        return "FPGA-assisted clearing of TrustZone security attributes "
               "(Benhani et al. [34]) followed by key extraction";
    }
    void launch(platform::Node& node, sim::Cycle at) override;

    [[nodiscard]] std::size_t key_bytes_read() const noexcept {
        return key_bytes_read_;
    }

private:
    std::size_t key_bytes_read_ = 0;
};

/// Sensor spoofing: feeds the control loop implausible physics.
class SensorSpoofAttack : public Attack {
public:
    explicit SensorSpoofAttack(double spoof_value = 500.0)
        : spoof_value_(spoof_value) {}
    std::string name() const override { return "sensor-spoof"; }
    std::string mechanism() const override {
        return "compromised transducer feed drives the control loop "
               "with fabricated physics";
    }
    void launch(platform::Node& node, sim::Cycle at) override;

private:
    double spoof_value_;
};

/// M2M replay: captures an authenticated frame off the link and
/// re-injects it later.
class ReplayAttack : public Attack {
public:
    explicit ReplayAttack(dev::Link& link, bool victim_is_a)
        : link_(link), victim_is_a_(victim_is_a) {}
    std::string name() const override { return "m2m-replay"; }
    std::string mechanism() const override {
        return "man-in-the-middle captures and replays authenticated "
               "M2M frames";
    }
    void launch(platform::Node& node, sim::Cycle at) override;

private:
    dev::Link& link_;
    bool victim_is_a_;
    Bytes captured_;
};

/// M2M tampering: flips payload bits in transit (active MITM).
class MitmTamperAttack : public Attack {
public:
    explicit MitmTamperAttack(dev::Link& link) : link_(link) {}
    std::string name() const override { return "m2m-tamper"; }
    std::string mechanism() const override {
        return "active man-in-the-middle modifies frames in flight";
    }
    void launch(platform::Node& node, sim::Cycle at) override;
    void stop();

private:
    dev::Link& link_;
};

/// Firmware downgrade [16]: offers a validly-signed but older image to
/// the update agent.
class FirmwareDowngradeAttack : public Attack {
public:
    explicit FirmwareDowngradeAttack(Bytes old_image_bytes)
        : old_image_(std::move(old_image_bytes)) {}
    std::string name() const override { return "firmware-downgrade"; }
    std::string mechanism() const override {
        return "replay of a validly-signed older image (TrustZone "
               "downgrade attack, Yue et al. [16])";
    }
    void launch(platform::Node& node, sim::Cycle at) override;

private:
    Bytes old_image_;
};

/// Task-hang / watchdog starvation: the application stops making
/// progress (crash loop or deliberate stall).
class TaskHangAttack : public Attack {
public:
    std::string name() const override { return "task-hang"; }
    std::string mechanism() const override {
        return "fault or attack halts the control task; liveness is "
               "only recoverable via watchdog reboot on the baseline";
    }
    void launch(platform::Node& node, sim::Cycle at) override;
};

/// Voltage glitch (fault injection).
class GlitchAttack : public Attack {
public:
    GlitchAttack(double voltage = 1.0, sim::Cycle duration = 500)
        : voltage_(voltage), duration_(duration) {}
    std::string name() const override { return "voltage-glitch"; }
    std::string mechanism() const override {
        return "supply-voltage fault injection attempting to corrupt "
               "execution";
    }
    void launch(platform::Node& node, sim::Cycle at) override;

private:
    double voltage_;
    sim::Cycle duration_;
};

/// Kernel-level attempt to kill the security function itself — the
/// §V-1 isolation ablation: succeeds only against a shared-resource
/// (TEE-style) security manager.
class SsmKillAttack : public Attack {
public:
    std::string name() const override { return "ssm-kill"; }
    std::string mechanism() const override {
        return "kernel compromise attacks the security manager's own "
               "resources (possible only when they are shared, as in a "
               "TEE [32])";
    }
    void launch(platform::Node& node, sim::Cycle at) override;
};

/// Address-space reconnaissance: sweeps unmapped addresses looking for
/// hidden devices (precursor activity).
class BusProbeAttack : public Attack {
public:
    std::string name() const override { return "bus-probe"; }
    std::string mechanism() const override {
        return "address-space scanning for undocumented peripherals";
    }
    void launch(platform::Node& node, sim::Cycle at) override;
};

}  // namespace cres::attack
