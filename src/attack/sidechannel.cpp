#include "attack/sidechannel.h"

namespace cres::attack {

namespace {

const mem::BusAttr kVictimAttr{mem::Master::kCpu, /*secure=*/true,
                               /*privileged=*/true};
const mem::BusAttr kAttackerAttr{mem::Master::kAttacker, /*secure=*/false,
                                 /*privileged=*/false};

}  // namespace

SideChannelLab::SideChannelLab(const Config& config)
    : cache_("shared-cache", 0x4000, config.line_size, config.line_count),
      line_size_(config.line_size),
      line_count_(config.line_count),
      rng_(config.seed) {
    bus_.map(mem::RegionConfig{"shared-cache", 0x0, 0x4000, false, false},
             cache_);
}

void SideChannelLab::victim_access(std::uint8_t secret_nibble) {
    // One lookup in the secret-indexed table: entry n occupies cache
    // set n (entries are one line apart, table starts at set 0).
    (void)bus_.read(kTableBase + (secret_nibble & 0x0f) * line_size_, 4,
                    kVictimAttr);
}

void SideChannelLab::prime() {
    // kAttackerBase is line_count/... chosen so attacker addresses land
    // in the same 16 sets with different tags: offset 0x400 = 64 lines
    // of 16 bytes = exactly one full wrap for the default geometry.
    for (std::uint32_t n = 0; n < 16; ++n) {
        (void)bus_.read(kAttackerBase + n * line_size_, 4, kAttackerAttr);
    }
}

std::optional<std::uint8_t> SideChannelLab::probe() {
    std::optional<std::uint8_t> evicted;
    for (std::uint32_t n = 0; n < 16; ++n) {
        (void)bus_.read(kAttackerBase + n * line_size_, 4, kAttackerAttr);
        if (bus_.last_latency() >= mem::CachedRam::kMissLatency) {
            if (evicted.has_value()) return std::nullopt;  // Noise.
            evicted = static_cast<std::uint8_t>(n);
        }
    }
    return evicted;
}

std::optional<std::uint8_t> SideChannelLab::steal_nibble(
    std::uint8_t true_nibble) {
    prime();
    victim_access(true_nibble);
    return probe();
}

void SideChannelLab::plant_spectre_secret(BytesView secret) {
    cache_.backing().load(kSpectreSecret, secret);
}

void SideChannelLab::spectre_victim(std::uint32_t index, bool mistrained) {
    const bool in_bounds = index < kArrayLen;
    if (!in_bounds && !mistrained) {
        return;  // Correctly-predicted bounds check: nothing happens.
    }
    // The (possibly speculative) array read. Cache and timing effects
    // are real even when the architectural result will be squashed.
    const auto value =
        bus_.read(kVictimArray + index, 1, kVictimAttr);
    if (!value) return;
    // The data-dependent table touch — the transmitter.
    (void)bus_.read(kTableBase + (*value & 0x0f) * line_size_, 4,
                    kVictimAttr);
    // When !in_bounds, the architectural result is discarded here: the
    // squash cannot un-warm the cache line — that is [17]/[18].
}

std::optional<std::uint8_t> SideChannelLab::spectre_steal_nibble(
    std::uint32_t secret_index) {
    // Mistrain the predictor with in-bounds calls.
    for (std::uint32_t i = 0; i < 4; ++i) {
        spectre_victim(i % kArrayLen, false);
    }
    prime();
    // Out-of-bounds, speculatively executed.
    spectre_victim(kArrayLen + secret_index, true);
    return probe();
}

double SideChannelLab::spectre_recovery_accuracy(BytesView secret) {
    plant_spectre_secret(secret);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        const auto guess =
            spectre_steal_nibble(static_cast<std::uint32_t>(i));
        if (guess.has_value() && *guess == (secret[i] & 0x0f)) ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(secret.size());
}

double SideChannelLab::recovery_accuracy(std::size_t trials) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < trials; ++i) {
        const auto secret = static_cast<std::uint8_t>(rng_.uniform(16));
        const auto guess = steal_nibble(secret);
        if (guess.has_value() && *guess == secret) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(trials);
}

}  // namespace cres::attack
