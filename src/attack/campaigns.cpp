#include "attack/campaigns.h"

#include <algorithm>
#include <deque>

#include "util/serial.h"

namespace cres::attack {

namespace {

/// A worm probe: channel wire format (u64 sequence | blob payload |
/// 32-byte tag) with the claimed origin index in the sequence field and
/// a tag the attacker cannot forge — the victim rejects it as bad-tag
/// and surfaces the origin as channel-peer metadata.
Bytes forge_probe(std::uint64_t origin_index) {
    BinaryWriter w;
    w.u64(origin_index);
    w.blob(to_bytes("worm-beacon"));
    const Bytes bogus_tag(32, 0x77);
    w.raw(bogus_tag);
    return w.take();
}

}  // namespace

void WormCampaign::launch(platform::Fleet& fleet) {
    const std::size_t fleet_size = fleet.size();
    if (fleet_size == 0 || opt_.patient_zero >= fleet_size) return;
    const std::size_t budget =
        opt_.max_infections == 0
            ? fleet_size
            : std::min(opt_.max_infections, fleet_size);
    const std::size_t fanout = std::max<std::size_t>(1, opt_.fanout);

    // Deterministic BFS: each infected device claims the next
    // uninfected indices in ascending order as its victims.
    struct Infected {
        std::size_t index;
        sim::Cycle at;
    };
    std::vector<bool> infected(fleet_size, false);
    std::deque<Infected> frontier;
    infected[opt_.patient_zero] = true;
    frontier.push_back({opt_.patient_zero, opt_.start});
    infections_ = 1;
    first_probe_at_ = 0;

    std::size_t next_victim = 0;
    while (!frontier.empty() && infections_ < budget) {
        const Infected parent = frontier.front();
        frontier.pop_front();
        const sim::Cycle probe_at = parent.at + opt_.hop_interval;
        for (std::size_t child = 0;
             child < fanout && infections_ < budget; ++child) {
            while (next_victim < fleet_size && infected[next_victim]) {
                ++next_victim;
            }
            if (next_victim >= fleet_size) return;
            const std::size_t victim = next_victim;
            infected[victim] = true;
            ++infections_;
            frontier.push_back({victim, probe_at});
            if (first_probe_at_ == 0 || probe_at < first_probe_at_) {
                first_probe_at_ = probe_at;
            }

            probes_.push_back(forge_probe(parent.index));
            const Bytes& probe = probes_.back();
            dev::Link& link = fleet.link(victim);
            fleet.device(victim).sim.schedule_at(
                probe_at, "worm-probe",
                [&link, &probe] { link.inject(probe, /*to_a=*/true); });
        }
    }
}

void CoordinatedReplayCampaign::launch(platform::Fleet& fleet) {
    const std::size_t targets = opt_.device_count == 0
                                    ? fleet.size()
                                    : std::min(opt_.device_count,
                                               fleet.size());
    captured_.assign(fleet.size(), Bytes{});
    replayed_.assign(fleet.size(), 0);

    for (std::size_t i = 0; i < targets; ++i) {
        dev::Link& link = fleet.link(i);
        platform::Node& node = fleet.device(i);

        // Capture the outbound telemetry frame carrying the target
        // sequence. The tap runs on the device's own worker thread and
        // touches only this device's capture slot.
        node.sim.schedule_at(opt_.capture_start, "replay-tap", [this, &link,
                                                                i] {
            link.set_tap([this, i](const Bytes& frame,
                                   bool from_a) -> std::optional<Bytes> {
                if (from_a && captured_[i].empty() && frame.size() >= 8) {
                    std::uint64_t seq = 0;
                    for (int b = 0; b < 8; ++b) {
                        seq |= static_cast<std::uint64_t>(
                                   frame[static_cast<std::size_t>(b)])
                               << (8 * b);
                    }
                    if (seq == opt_.sequence) captured_[i] = frame;
                }
                return frame;
            });
        });

        // The replay wave: re-inject the stale frame twice. The first
        // copy is accepted (the device had never consumed it — one-way
        // telemetry), which makes the second copy a true replay: one
        // advisory per device, fingerprinted by the frame's sequence.
        const sim::Cycle at =
            opt_.replay_at + static_cast<sim::Cycle>(i) * opt_.stagger;
        node.sim.schedule_at(at, "replay-wave", [this, &link, i] {
            link.clear_tap();
            if (captured_[i].empty()) return;
            link.inject(captured_[i], /*to_a=*/true);
            link.inject(captured_[i], /*to_a=*/true);
            replayed_[i] = 1;
        });
    }
}

std::size_t CoordinatedReplayCampaign::replayed_devices() const {
    std::size_t count = 0;
    for (const std::uint8_t hit : replayed_) count += hit;
    return count;
}

void StaggeredDowngradeCampaign::launch(platform::Fleet& fleet) {
    const std::size_t targets = opt_.device_count == 0
                                    ? fleet.size()
                                    : std::min(opt_.device_count,
                                               fleet.size());
    // One vendor-signed stale image, serialized once, pushed everywhere
    // (a real downgrade campaign re-serves one old release).
    image_bytes_ =
        fleet.make_signed_image("legacy-fw", opt_.offered_version)
            .serialize();
    installs_scheduled_ = 0;

    for (std::size_t i = 0; i < targets; ++i) {
        platform::Node& node = fleet.device(i);
        // The estate already runs good_version: committed rollback
        // floors are what makes the stale offer a regression.
        (void)node.counters.advance("fw_version", opt_.good_version);
        const sim::Cycle at =
            opt_.start + static_cast<sim::Cycle>(i) * opt_.stagger;
        node.sim.schedule_at(at, "stale-install", [this, &node] {
            if (node.update_agent) {
                (void)node.update_agent->install(image_bytes_);
            }
        });
        ++installs_scheduled_;
    }
}

}  // namespace cres::attack
