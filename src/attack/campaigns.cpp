#include "attack/campaigns.h"

#include <algorithm>
#include <deque>

#include "net/trace.h"
#include "util/serial.h"

namespace cres::attack {

namespace {

/// A worm probe: channel wire format (u64 sequence | blob payload |
/// optional trace extension | 32-byte tag) with the claimed origin
/// index in the sequence field and a tag the attacker cannot forge —
/// the victim rejects it as bad-tag and surfaces the origin (and the
/// claimed trace context, when present) as channel-peer metadata.
Bytes forge_probe(std::uint64_t origin_index,
                  const net::TraceContext* trace) {
    BinaryWriter w;
    w.u64(origin_index);
    w.blob(to_bytes("worm-beacon"));
    if (trace != nullptr) net::write_trace(w, *trace);
    const Bytes bogus_tag(32, 0x77);
    w.raw(bogus_tag);
    return w.take();
}

/// Worm span ids live in their own namespace (bit 63 set) so they can
/// never collide with legitimate channel spans ((device << 32) | seq).
std::uint64_t worm_span(std::size_t parent, std::uint64_t seq) {
    return (std::uint64_t{1} << 63) |
           (static_cast<std::uint64_t>(parent) << 32) | seq;
}

}  // namespace

void WormCampaign::launch(platform::Fleet& fleet) {
    const std::size_t fleet_size = fleet.size();
    if (fleet_size == 0 || opt_.patient_zero >= fleet_size) return;
    const std::size_t budget =
        opt_.max_infections == 0
            ? fleet_size
            : std::min(opt_.max_infections, fleet_size);
    const std::size_t fanout = std::max<std::size_t>(1, opt_.fanout);

    // Deterministic BFS: each infected device claims the next
    // uninfected indices in ascending order as its victims.
    struct Infected {
        std::size_t index;
        sim::Cycle at;
        std::uint32_t depth;
        std::uint64_t span;  ///< Span of the probe that infected it.
    };
    const bool traced = fleet.config().causal_tracing;
    std::vector<bool> infected(fleet_size, false);
    std::deque<Infected> frontier;
    infected[opt_.patient_zero] = true;
    // Patient zero's root span anchors the DAG (no probe created it).
    frontier.push_back({opt_.patient_zero, opt_.start, 0,
                        worm_span(opt_.patient_zero, 0)});
    infections_ = 1;
    first_probe_at_ = 0;
    edges_.clear();
    max_depth_ = 0;

    std::size_t next_victim = 0;
    std::uint64_t probe_seq = 0;
    while (!frontier.empty() && infections_ < budget) {
        const Infected parent = frontier.front();
        frontier.pop_front();
        const sim::Cycle probe_at = parent.at + opt_.hop_interval;
        for (std::size_t child = 0;
             child < fanout && infections_ < budget; ++child) {
            while (next_victim < fleet_size && infected[next_victim]) {
                ++next_victim;
            }
            if (next_victim >= fleet_size) return;
            const std::size_t victim = next_victim;
            infected[victim] = true;
            ++infections_;
            const std::uint32_t hop = parent.depth + 1;
            const std::uint64_t span = worm_span(parent.index, ++probe_seq);
            frontier.push_back({victim, probe_at, hop, span});
            if (first_probe_at_ == 0 || probe_at < first_probe_at_) {
                first_probe_at_ = probe_at;
            }
            edges_.push_back({static_cast<std::uint32_t>(parent.index),
                              static_cast<std::uint32_t>(victim), hop});
            max_depth_ = std::max(max_depth_, hop);

            // A worm riding the traced channel inherits its parent's
            // context like any legitimate frame: origin = the chain
            // root, hop = depth, parent span = the infecting probe.
            net::TraceContext ctx;
            ctx.origin_device =
                static_cast<std::uint32_t>(opt_.patient_zero);
            ctx.hop = hop;
            ctx.span_id = span;
            ctx.parent_span_id = parent.span;
            probes_.push_back(
                forge_probe(parent.index, traced ? &ctx : nullptr));
            const Bytes& probe = probes_.back();
            dev::Link& link = fleet.link(victim);
            fleet.device(victim).sim.schedule_at(
                probe_at, "worm-probe",
                [&link, &probe] { link.inject(probe, /*to_a=*/true); });

            // The sending side of the flow: a "net-send" flight record
            // on the parent's own black box (its worker, its timeline),
            // so the Perfetto flow arrow has both endpoints — the
            // victim's "net-recv" record is produced by its channel.
            if (traced) {
                platform::Node& origin_node = fleet.device(parent.index);
                origin_node.sim.schedule_at(
                    probe_at, "worm-send",
                    [&origin_node, ctx] {
                        if (origin_node.recorder.capacity() == 0) return;
                        origin_node.recorder.record_slow(
                            origin_node.sim.now(), "net", "net-send",
                            /*severity=*/0,
                            obs::FlightRecordType::kInstant, ctx.span_id,
                            (std::uint64_t{ctx.origin_device} << 32) |
                                ctx.hop,
                            {});
                    });
            }
        }
    }
}

void CoordinatedReplayCampaign::launch(platform::Fleet& fleet) {
    const std::size_t targets = opt_.device_count == 0
                                    ? fleet.size()
                                    : std::min(opt_.device_count,
                                               fleet.size());
    captured_.assign(fleet.size(), Bytes{});
    replayed_.assign(fleet.size(), 0);

    for (std::size_t i = 0; i < targets; ++i) {
        dev::Link& link = fleet.link(i);
        platform::Node& node = fleet.device(i);

        // Capture the outbound telemetry frame carrying the target
        // sequence. The tap runs on the device's own worker thread and
        // touches only this device's capture slot.
        node.sim.schedule_at(opt_.capture_start, "replay-tap", [this, &link,
                                                                i] {
            link.set_tap([this, i](const Bytes& frame,
                                   bool from_a) -> std::optional<Bytes> {
                if (from_a && captured_[i].empty() && frame.size() >= 8) {
                    std::uint64_t seq = 0;
                    for (int b = 0; b < 8; ++b) {
                        seq |= static_cast<std::uint64_t>(
                                   frame[static_cast<std::size_t>(b)])
                               << (8 * b);
                    }
                    if (seq == opt_.sequence) captured_[i] = frame;
                }
                return frame;
            });
        });

        // The replay wave: re-inject the stale frame twice. The first
        // copy is accepted (the device had never consumed it — one-way
        // telemetry), which makes the second copy a true replay: one
        // advisory per device, fingerprinted by the frame's sequence.
        const sim::Cycle at =
            opt_.replay_at + static_cast<sim::Cycle>(i) * opt_.stagger;
        node.sim.schedule_at(at, "replay-wave", [this, &link, i] {
            link.clear_tap();
            if (captured_[i].empty()) return;
            link.inject(captured_[i], /*to_a=*/true);
            link.inject(captured_[i], /*to_a=*/true);
            replayed_[i] = 1;
        });
    }
}

std::size_t CoordinatedReplayCampaign::replayed_devices() const {
    std::size_t count = 0;
    for (const std::uint8_t hit : replayed_) count += hit;
    return count;
}

void StaggeredDowngradeCampaign::launch(platform::Fleet& fleet) {
    const std::size_t targets = opt_.device_count == 0
                                    ? fleet.size()
                                    : std::min(opt_.device_count,
                                               fleet.size());
    // One vendor-signed stale image, serialized once, pushed everywhere
    // (a real downgrade campaign re-serves one old release).
    image_bytes_ =
        fleet.make_signed_image("legacy-fw", opt_.offered_version)
            .serialize();
    installs_scheduled_ = 0;

    for (std::size_t i = 0; i < targets; ++i) {
        platform::Node& node = fleet.device(i);
        // The estate already runs good_version: committed rollback
        // floors are what makes the stale offer a regression.
        (void)node.counters.advance("fw_version", opt_.good_version);
        const sim::Cycle at =
            opt_.start + static_cast<sim::Cycle>(i) * opt_.stagger;
        node.sim.schedule_at(at, "stale-install", [this, &node] {
            if (node.update_agent) {
                (void)node.update_agent->install(image_bytes_);
            }
        });
        ++installs_scheduled_;
    }
}

}  // namespace cres::attack
