// Attack-injection framework. Each attack reproduces, at the
// architectural level, the mechanism of an attack class the paper
// cites (Section IV) or motivates (Sections I, III). Attacks schedule
// their own steps on the node's simulator and keep ground-truth impact
// counters so experiments can measure containment independently of the
// defence's own telemetry.
#pragma once

#include <cstdint>
#include <string>

#include "platform/node.h"

namespace cres::attack {

class Attack {
public:
    virtual ~Attack() = default;

    [[nodiscard]] virtual std::string name() const = 0;
    /// What real-world mechanism this models (with paper citation).
    [[nodiscard]] virtual std::string mechanism() const = 0;

    /// Schedules the attack against `node` starting at cycle `at`.
    virtual void launch(platform::Node& node, sim::Cycle at) = 0;

    /// Ground truth: did the attack achieve its objective at any point?
    [[nodiscard]] bool succeeded() const noexcept { return succeeded_; }
    [[nodiscard]] sim::Cycle launched_at() const noexcept {
        return launched_at_;
    }

protected:
    void mark_success() noexcept { succeeded_ = true; }
    void note_launch(sim::Cycle at) noexcept { launched_at_ = at; }

private:
    bool succeeded_ = false;
    sim::Cycle launched_at_ = 0;
};

}  // namespace cres::attack
