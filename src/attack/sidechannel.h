// Cache timing side-channel laboratory: a concrete prime+probe covert
// channel across the secure/non-secure boundary, the attack family the
// paper's Section IV cites ([17],[18], cache attacks on TEEs [32]).
//
// Setup: a secure-world "crypto service" performs one table lookup per
// invocation, indexed by a secret nibble (the classic T-table leak).
// Table entries are one cache line apart. A non-secure attacker who
// shares the cache primes the 16 conflicting lines with its own data,
// triggers the victim, then probes: the one probe that misses (slow)
// names the secret nibble. No access check is ever violated — the
// secret crosses the isolation boundary purely through timing, which
// is why trust-based protection cannot stop it and a behavioural
// monitor (CacheMonitor) plus an active countermeasure (cache
// partitioning) is needed.
#pragma once

#include <cstdint>
#include <optional>

#include "mem/bus.h"
#include "mem/cache.h"
#include "util/rng.h"

namespace cres::attack {

class SideChannelLab {
public:
    struct Config {
        std::uint32_t line_size = 16;
        std::uint32_t line_count = 64;
        std::uint64_t seed = 1;
    };

    SideChannelLab() : SideChannelLab(Config{}) {}
    explicit SideChannelLab(const Config& config);

    /// The secure-world victim: one secret-indexed table lookup.
    void victim_access(std::uint8_t secret_nibble);

    /// Attacker: fill the 16 victim-conflicting cache sets.
    void prime();

    /// Attacker: time re-reads of the primed lines; returns the nibble
    /// whose set was evicted, or nullopt when none (channel closed).
    [[nodiscard]] std::optional<std::uint8_t> probe();

    /// One full prime -> victim -> probe round.
    [[nodiscard]] std::optional<std::uint8_t> steal_nibble(
        std::uint8_t true_nibble);

    /// Runs `trials` rounds with random secrets; returns the fraction
    /// recovered correctly (~1.0 open channel, ~1/16 or less closed).
    [[nodiscard]] double recovery_accuracy(std::size_t trials);

    [[nodiscard]] mem::CachedRam& cache() noexcept { return cache_; }
    [[nodiscard]] mem::Bus& bus() noexcept { return bus_; }

    /// Countermeasure under test.
    void enable_partitioning() { cache_.set_partitioned(true); }

    // --- Spectre-PHT gadget (paper §IV, [18]) ---------------------------
    // The victim service performs a bounds-checked array read followed
    // by a data-dependent table access:
    //     if (index < kArrayLen) y = table[array[index] & 0xf];
    // With the branch predictor mistrained, the out-of-bounds read and
    // the dependent table touch still execute *speculatively*: the
    // architectural result is squashed but the cache line stays warm.
    // The attacker chooses `index` to reach a secret byte beyond the
    // array and reads it out through the cache, one nibble at a time —
    // without a single architecturally-permitted access to the secret.

    static constexpr std::uint32_t kArrayLen = 16;

    /// Plants secret bytes directly beyond the victim array.
    void plant_spectre_secret(BytesView secret);

    /// The victim's bounds-checked service. `mistrained` selects
    /// whether the predictor speculates past the bounds check.
    void spectre_victim(std::uint32_t index, bool mistrained);

    /// One Spectre round against the secret byte at `secret_index`
    /// (recovers its low nibble via prime -> mistrain+gadget -> probe).
    [[nodiscard]] std::optional<std::uint8_t> spectre_steal_nibble(
        std::uint32_t secret_index);

    /// Fraction of planted secret nibbles recovered.
    [[nodiscard]] double spectre_recovery_accuracy(BytesView secret);

private:
    static constexpr mem::Addr kTableBase = 0x0;      // Victim table.
    static constexpr mem::Addr kAttackerBase = 0x400; // Same sets, new tags.
    // The array lives in cache sets 16-17 so its own accesses never
    // alias the 16 probed sets (0-15).
    static constexpr mem::Addr kVictimArray = 0x500;  // Bounds-checked array.
    static constexpr mem::Addr kSpectreSecret =
        kVictimArray + kArrayLen;                     // Behind the array.

    mem::Bus bus_;
    mem::CachedRam cache_;
    std::uint32_t line_size_;
    std::uint32_t line_count_;
    Rng rng_;
};

}  // namespace cres::attack
