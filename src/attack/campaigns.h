// Fleet-scale attack campaigns. Unlike the single-node attacks in
// attacks.h, each campaign is orchestrated across a whole Fleet and is
// deliberately paced so that *no individual device* sees more than
// advisory-grade noise: the campaign is only visible to the fleet
// correlation tier (platform/fleet_monitor.h). Every step is scheduled
// on the owning device's simulator before Fleet::run(), so campaigns
// are bit-identical at any worker_threads setting.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "platform/fleet.h"

namespace cres::attack {

/// Worm-style propagation over the M2M channel: an infected device
/// probes its next victims with forged frames whose sequence field
/// carries the sender's device index (the channel-peer metadata a real
/// worm beacon leaks). Each victim rejects the frame (bad tag) with a
/// single advisory — far below any per-device threshold — but the
/// fleet tier links the (origin -> victim) edges into an infection
/// graph and flags the growing component.
class WormCampaign {
public:
    struct Options {
        std::size_t patient_zero = 0;
        /// New victims each infected device probes per generation.
        std::size_t fanout = 2;
        sim::Cycle start = 2000;
        /// Delay between a device's infection and its own probes.
        sim::Cycle hop_interval = 1500;
        /// Total devices to infect (patient zero included); 0 = all.
        std::size_t max_infections = 0;
    };

    /// One ground-truth infection edge, in schedule order.
    struct Edge {
        std::uint32_t parent = 0;
        std::uint32_t child = 0;
        std::uint32_t hop = 0;  ///< Child's depth below patient zero.
    };

    WormCampaign() = default;
    explicit WormCampaign(Options options) : opt_(options) {}

    /// Schedules every probe; call before Fleet::run(). When the fleet
    /// runs with causal_tracing, each probe carries a forged-but-honest
    /// trace-context extension (a worm that propagates over the traced
    /// channel inherits its parent's context like any other frame), so
    /// the fleet tier can reconstruct the exact infection DAG.
    void launch(platform::Fleet& fleet);

    /// Ground truth: devices infected (patient zero included).
    [[nodiscard]] std::size_t infections() const noexcept {
        return infections_;
    }
    /// Cycle of the first scheduled probe injection.
    [[nodiscard]] sim::Cycle first_probe_at() const noexcept {
        return first_probe_at_;
    }
    /// Ground truth for provenance checks: the true patient zero and
    /// every (parent -> child) infection edge the campaign scheduled.
    [[nodiscard]] std::size_t patient_zero() const noexcept {
        return opt_.patient_zero;
    }
    [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
        return edges_;
    }
    [[nodiscard]] std::uint32_t max_depth() const noexcept {
        return max_depth_;
    }

private:
    Options opt_;
    std::size_t infections_ = 0;
    sim::Cycle first_probe_at_ = 0;
    std::vector<Edge> edges_;
    std::uint32_t max_depth_ = 0;
    /// One forged probe frame per (parent, victim) edge. A deque keeps
    /// element addresses stable while probes are appended — the
    /// scheduled lambdas hold references into it.
    std::deque<Bytes> probes_;
};

/// Coordinated M2M replay: one operator captures the telemetry frame
/// with the same sequence number on every targeted device's link, then
/// replays it fleet-wide inside a tight window. Each device sees one
/// advisory-grade stale frame (a retransmission, as far as it can
/// tell); the shared fingerprint across >= k devices is the campaign.
class CoordinatedReplayCampaign {
public:
    struct Options {
        /// Telemetry sequence number to capture — the fingerprint. Every
        /// device emits it eventually, so captures line up fleet-wide.
        std::uint64_t sequence = 2;
        sim::Cycle capture_start = 0;
        sim::Cycle replay_at = 40000;
        /// Per-device replay offset (keeps the wave inside the fleet
        /// correlation window while avoiding a single-cycle spike).
        sim::Cycle stagger = 40;
        /// Devices targeted (index 0..n-1); 0 = the whole fleet.
        std::size_t device_count = 0;
    };

    CoordinatedReplayCampaign() = default;
    explicit CoordinatedReplayCampaign(Options options) : opt_(options) {}

    /// Installs the capture taps and schedules the replay wave; call
    /// before Fleet::run().
    void launch(platform::Fleet& fleet);

    /// Ground truth: devices where the stale frame was re-injected.
    [[nodiscard]] std::size_t replayed_devices() const;

private:
    Options opt_;
    /// Per-device capture slot (each device's worker touches only its
    /// own index, so the campaign state is race-free under the pool).
    std::vector<Bytes> captured_;
    std::vector<std::uint8_t> replayed_;
};

/// Staggered downgrade: the attacker pushes a vendor-signed but stale
/// firmware image across the estate in slow waves. Every device's
/// anti-rollback floor rejects the install with one advisory — never
/// enough to raise a local incident — but the same offered version
/// rejected on >= k devices inside the window is an estate-wide
/// downgrade attempt.
class StaggeredDowngradeCampaign {
public:
    struct Options {
        /// Anti-rollback floor each device already committed.
        std::uint32_t good_version = 5;
        /// The stale version the campaign offers (the fingerprint).
        std::uint32_t offered_version = 1;
        sim::Cycle start = 2000;
        /// Delay between consecutive devices' install attempts.
        sim::Cycle stagger = 900;
        /// Devices targeted (index 0..n-1); 0 = the whole fleet.
        std::size_t device_count = 0;
    };

    StaggeredDowngradeCampaign() = default;
    explicit StaggeredDowngradeCampaign(Options options) : opt_(options) {}

    /// Signs the stale image once, raises every device's rollback floor
    /// to good_version and schedules the install waves; call before
    /// Fleet::run().
    void launch(platform::Fleet& fleet);

    /// Ground truth: install attempts scheduled.
    [[nodiscard]] std::size_t installs_scheduled() const noexcept {
        return installs_scheduled_;
    }

private:
    Options opt_;
    Bytes image_bytes_;  ///< Serialized once; installed everywhere.
    std::size_t installs_scheduled_ = 0;
};

}  // namespace cres::attack
