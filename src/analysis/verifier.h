// Static firmware verifier: the Protect-function complement to the
// runtime monitors. Decodes an image's code section, builds a CFG
// (analysis/cfg.h) and runs a pipeline of policy passes:
//
//   decode        image shape: entry point validity, trailing bytes
//   opcode        illegal/undefined opcodes on reachable paths
//   control-flow  direct jump/call targets in-bounds and aligned;
//                 statically resolved indirect jumps into data/MMIO
//   memory        W^X over the SoC segment map: no stores to reachable
//                 code, no execution from data or MMIO
//   stack         bounded worst-case stack depth along CFG paths
//                 (tightened by absint.h loop-bound certificates)
//   privilege     banned-opcode policy (e.g. privileged ops in
//                 unprivileged images)
//   bounds        abstract-interpretation in-bounds/alignment proofs
//                 and provably out-of-bounds accesses (absint.h)
//   taint         untrusted-input flow (NIC/DMA/sensor) into indirect
//                 jumps, store addresses and privileged CSR writes
//   reachability  unreachable-code reporting (informational)
//
// The same Report drives the secure-boot/update admission gate and the
// cres_lint offline auditor.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/report.h"
#include "boot/admission.h"
#include "boot/image.h"
#include "util/bytes.h"

namespace cres::analysis {

/// One region of the SoC address space with its access policy.
struct Segment {
    std::string name;
    mem::Addr base = 0;
    mem::Addr size = 0;
    bool writable = false;
    bool executable = false;
    bool secure = false;  ///< Secure-world only (normal images keep out).

    bool operator==(const Segment&) const = default;
};

/// The address-space model the memory and control-flow passes check
/// against. Defaults mirror platform/memmap.h.
struct SegmentMap {
    std::vector<Segment> segments;

    /// The canonical SoC layout: code (x, ro), data (rw, nx), one
    /// segment per peripheral (rw, nx) and the secure TEE RAM.
    static SegmentMap soc_default();

    [[nodiscard]] const Segment* find(mem::Addr addr) const noexcept;

    bool operator==(const SegmentMap&) const = default;
};

/// Policy knobs for the pass pipeline.
struct Policy {
    SegmentMap segments = SegmentMap::soc_default();
    /// Opcodes the image may not use on any reachable path.
    std::vector<isa::Opcode> banned_opcodes;
    /// Worst-case stack depth budget (bytes).
    std::uint32_t max_stack_bytes = 8192;
    /// Promote warnings to admission failures.
    bool warnings_as_errors = false;
    /// Report unreachable code (informational findings).
    bool report_unreachable = true;

    /// Profile for unprivileged images: bans mret/sret/smc/csrw/wfi.
    static Policy unprivileged();

    /// Identity matters for report sharing: a cached Report is only
    /// valid for a consumer that would have analyzed under the same
    /// policy (platform/analysis_cache.h).
    bool operator==(const Policy&) const = default;
};

class FirmwareVerifier {
public:
    FirmwareVerifier() = default;
    explicit FirmwareVerifier(Policy policy) : policy_(std::move(policy)) {}

    /// Analyzes a raw code section loaded at `load_addr`.
    [[nodiscard]] Report analyze(BytesView code, mem::Addr load_addr,
                                 mem::Addr entry) const;

    /// Analyzes a firmware image's payload.
    [[nodiscard]] Report analyze(const boot::FirmwareImage& image) const;

    [[nodiscard]] const Policy& policy() const noexcept { return policy_; }

private:
    Policy policy_;
};

/// Adapts the verifier into the secure-boot/update admission interface.
/// In kWarn mode findings are reported but never block; in kDeny mode
/// errors (and warnings under warnings_as_errors) reject the image.
class AnalysisGate final : public boot::ImageAdmissionGate {
public:
    /// Called after every admission decision (metrics/evidence hook).
    using Observer = std::function<void(const boot::FirmwareImage& image,
                                        const Report& report, bool rejected)>;
    /// Supplies a precomputed (typically fleet-cached) report for an
    /// image; returning nullptr falls back to local analysis.
    using ReportProvider =
        std::function<std::shared_ptr<const Report>(
            const boot::FirmwareImage& image)>;

    AnalysisGate(Policy policy, boot::AdmissionMode mode)
        : verifier_(std::move(policy)), mode_(mode) {}

    boot::AdmissionVerdict admit(const boot::FirmwareImage& image) override;

    void set_observer(Observer observer) { observer_ = std::move(observer); }
    void set_report_provider(ReportProvider provider) {
        report_provider_ = std::move(provider);
    }

    [[nodiscard]] const FirmwareVerifier& verifier() const noexcept {
        return verifier_;
    }
    [[nodiscard]] boot::AdmissionMode mode() const noexcept { return mode_; }

private:
    FirmwareVerifier verifier_;
    boot::AdmissionMode mode_;
    Observer observer_;
    ReportProvider report_provider_;
};

}  // namespace cres::analysis
