// Control-flow-graph construction over a raw CRV32 code section.
//
// The builder decodes every aligned word, then explores from the entry
// point (plus any trap vectors it can resolve), discovering basic
// blocks and recording *facts* — jump sites, resolvable memory
// accesses, per-block stack effects — that the verifier's policy
// passes turn into findings. Within each block a small constant
// propagator tracks registers built from lui/ori/addi chains, so the
// common `li rX, <addr>` materialization resolves absolute jump and
// store targets statically.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "isa/encoding.h"
#include "mem/bus.h"
#include "util/bytes.h"

namespace cres::analysis {

/// One aligned 32-bit word of the code section.
struct DecodedWord {
    std::uint32_t raw = 0;
    isa::Instruction insn;
    bool valid = false;      ///< Opcode field holds a defined opcode.
    bool reachable = false;  ///< Visited by the CFG exploration.
};

/// How a control transfer's target was established.
enum class JumpKind : std::uint8_t {
    kBranch,    ///< Conditional branch (pc-relative).
    kDirect,    ///< jal (pc-relative jump or call).
    kResolved,  ///< jalr whose register value was constant-propagated.
    kIndirect,  ///< jalr with an unknown register value.
    kVector,    ///< csrw mtvec/stvec with a constant handler address.
};

/// A control transfer discovered during exploration.
struct JumpSite {
    mem::Addr at = 0;      ///< Address of the transferring instruction.
    mem::Addr target = 0;  ///< Resolved target (unset for kIndirect).
    JumpKind kind = JumpKind::kDirect;
    bool resolved = false;
    bool is_call = false;  ///< Writes the link register.
};

/// A load/store whose effective address was constant-propagated.
struct MemSite {
    mem::Addr at = 0;        ///< Instruction address.
    mem::Addr target = 0;    ///< Effective data address.
    std::uint8_t size = 4;   ///< Access width in bytes.
    bool is_store = false;
};

/// A basic block: straight-line run of instructions ending at a
/// control transfer, a terminal instruction, or the image edge.
struct BasicBlock {
    mem::Addr start = 0;
    mem::Addr end = 0;  ///< One past the last instruction.
    std::vector<mem::Addr> successors;  ///< In-image successor starts.

    // Stack effects (positive = downward growth in bytes).
    std::int64_t net_growth = 0;      ///< Net growth across the block.
    std::int64_t peak_growth = 0;     ///< Max cumulative growth inside.
    bool stack_reset = false;         ///< sp assigned a fresh constant.
    std::int64_t post_reset_net = 0;  ///< Net growth after the reset.
    std::int64_t post_reset_peak = 0;

    bool indirect_exit = false;  ///< Ends in an unresolved jalr.
    bool terminal = false;       ///< halt/mret/sret/ret: no successors.
    bool falls_off = false;      ///< Ran past the last full word.
    bool sp_clobbered = false;   ///< sp written from a non-constant.
};

/// The constructed graph plus the fact tables the passes consume.
struct Cfg {
    mem::Addr base = 0;   ///< Load address of the code section.
    mem::Addr entry = 0;  ///< Declared entry point.

    std::vector<DecodedWord> words;  ///< One per aligned word, in order.
    std::size_t tail_bytes = 0;      ///< Payload bytes past the last word.

    std::map<mem::Addr, BasicBlock> blocks;  ///< Keyed by start address.
    std::vector<mem::Addr> roots;  ///< Entry + resolved trap vectors.
    std::vector<JumpSite> jumps;
    std::vector<MemSite> accesses;

    [[nodiscard]] bool in_image(mem::Addr addr) const noexcept {
        return addr >= base && addr < base + words.size() * 4;
    }
    /// Word index for an aligned in-image address.
    [[nodiscard]] std::size_t index_of(mem::Addr addr) const noexcept {
        return static_cast<std::size_t>(addr - base) / 4;
    }
    [[nodiscard]] std::size_t reachable_count() const noexcept;
};

/// Decodes `code` loaded at `base` and explores from `entry`.
/// Never throws: malformed input becomes facts for the passes.
Cfg build_cfg(BytesView code, mem::Addr base, mem::Addr entry);

}  // namespace cres::analysis
