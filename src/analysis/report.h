// Findings vocabulary for the static firmware verifier.
//
// Every policy pass reports Findings into one Report; the admission
// gate and the cres_lint CLI read the same structure, so an image
// rejected at boot produces exactly the findings an offline audit
// prints.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mem/bus.h"

namespace cres::analysis {

enum class Severity : std::uint8_t {
    kInfo = 0,     ///< Noteworthy, never gates admission.
    kWarning = 1,  ///< Suspicious; gates only under warnings-as-errors.
    kError = 2,    ///< Policy violation; gates admission in deny mode.
};

/// Static-storage name ("info"/"warning"/"error").
std::string_view severity_name(Severity severity) noexcept;

/// The pass that produced a finding.
enum class PassId : std::uint8_t {
    kDecode,        ///< Image shape: tail bytes, entry point, decode faults.
    kOpcode,        ///< Illegal/undefined opcodes on reachable paths.
    kControlFlow,   ///< Jump/call target validity (bounds + alignment).
    kMemory,        ///< W^X and segment checks on resolvable accesses.
    kStack,         ///< Worst-case stack depth along CFG paths.
    kPrivilege,     ///< Banned-opcode policy.
    kBounds,        ///< Interval-domain in-bounds proofs (absint.h).
    kTaint,         ///< Untrusted-input flow to control/CSR sinks.
    kReachability,  ///< Unreachable-code reporting.
};

/// Static-storage pass name ("decode", "control-flow", ...).
std::string_view pass_name(PassId pass) noexcept;

/// One verifier observation, anchored to an image address.
struct Finding {
    PassId pass = PassId::kDecode;
    Severity severity = Severity::kInfo;
    mem::Addr addr = 0;   ///< Instruction (or entry/target) address.
    std::string code;     ///< Stable machine-readable tag ("wx-violation").
    std::string detail;   ///< Human-readable context.
};

/// The proof artifact the abstract interpreter (absint.h) attaches to a
/// Report: per-instruction proven-safe bits plus per-function stack
/// certificates. It is a pure function of (code, base, entry) — the
/// proofs are computed against the canonical SoC segment map — which is
/// what lets a fleet cache one artifact per distinct firmware and lets
/// the translator bake the safe bits into the shared TranslationImage.
struct ProofAnnotations {
    /// Per-word flags, indexed like Cfg::words.
    enum : std::uint8_t { kLoadProven = 1, kStoreProven = 2 };
    std::vector<std::uint8_t> safe;

    /// Worst-case stack depth proof for one entry point (a CFG root or
    /// a resolved call target). `bound_bytes` is meaningful only when
    /// `bounded`; loop-bound inference can bound counted loops the
    /// syntactic walk reports as unbounded.
    struct StackCertificate {
        mem::Addr entry = 0;
        std::uint64_t bound_bytes = 0;
        bool bounded = false;
    };
    std::vector<StackCertificate> certificates;

    std::size_t mem_ops = 0;     ///< Reachable loads+stores analyzed.
    std::size_t proven_ops = 0;  ///< Proven in-bounds and aligned.

    /// Fraction of reachable memory accesses proven safe (0 when none).
    [[nodiscard]] double coverage() const noexcept {
        return mem_ops == 0 ? 0.0
                            : static_cast<double>(proven_ops) /
                                  static_cast<double>(mem_ops);
    }
};

/// One provable untrusted-input flow: a load from an untrusted source
/// (NIC RX, DMA descriptors, sensor MMIO) whose value reaches a
/// control-flow or CSR sink.
struct TaintTrace {
    mem::Addr source_pc = 0;  ///< The tainting load.
    mem::Addr sink_pc = 0;    ///< The consuming instruction.
    std::string source;       ///< "nic-rx", "dma-desc", "sensor-mmio".
    std::string sink;         ///< "indirect-jump", "store-address", "csr-write".
};

/// Verdict + findings + CFG statistics for one image.
struct Report {
    std::vector<Finding> findings;

    // CFG statistics (filled by the verifier).
    std::size_t words = 0;             ///< Full 32-bit words in the payload.
    std::size_t tail_bytes = 0;        ///< Trailing bytes (< one word).
    std::size_t reachable_insns = 0;   ///< Words reachable as instructions.
    std::size_t blocks = 0;            ///< Basic blocks discovered.
    std::size_t indirect_jumps = 0;    ///< Statically unresolved transfers.
    std::uint32_t max_stack_bytes = 0; ///< Worst-case depth found.
    bool stack_bounded = true;         ///< False when a growing cycle exists.

    /// Proof artifact from the abstract-interpretation passes; shared
    /// (fleet analysis cache) and immutable once attached.
    std::shared_ptr<const ProofAnnotations> proofs;
    /// Provable untrusted-input flows found by the taint pass.
    std::vector<TaintTrace> taint_traces;

    [[nodiscard]] std::size_t count(Severity severity) const noexcept;
    [[nodiscard]] std::size_t errors() const noexcept {
        return count(Severity::kError);
    }
    [[nodiscard]] std::size_t warnings() const noexcept {
        return count(Severity::kWarning);
    }

    /// True when the image passes policy (optionally promoting warnings).
    [[nodiscard]] bool admissible(bool warnings_as_errors = false) const
        noexcept {
        return errors() == 0 && (!warnings_as_errors || warnings() == 0);
    }

    /// One-line digest: "2 errors, 1 warning; first: wx-violation@0x10040".
    [[nodiscard]] std::string summary() const;

    /// Multi-line findings listing (severity, pass, address, detail).
    [[nodiscard]] std::string render() const;
};

}  // namespace cres::analysis
