// Findings vocabulary for the static firmware verifier.
//
// Every policy pass reports Findings into one Report; the admission
// gate and the cres_lint CLI read the same structure, so an image
// rejected at boot produces exactly the findings an offline audit
// prints.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mem/bus.h"

namespace cres::analysis {

enum class Severity : std::uint8_t {
    kInfo = 0,     ///< Noteworthy, never gates admission.
    kWarning = 1,  ///< Suspicious; gates only under warnings-as-errors.
    kError = 2,    ///< Policy violation; gates admission in deny mode.
};

/// Static-storage name ("info"/"warning"/"error").
std::string_view severity_name(Severity severity) noexcept;

/// The pass that produced a finding.
enum class PassId : std::uint8_t {
    kDecode,        ///< Image shape: tail bytes, entry point, decode faults.
    kOpcode,        ///< Illegal/undefined opcodes on reachable paths.
    kControlFlow,   ///< Jump/call target validity (bounds + alignment).
    kMemory,        ///< W^X and segment checks on resolvable accesses.
    kStack,         ///< Worst-case stack depth along CFG paths.
    kPrivilege,     ///< Banned-opcode policy.
    kReachability,  ///< Unreachable-code reporting.
};

/// Static-storage pass name ("decode", "control-flow", ...).
std::string_view pass_name(PassId pass) noexcept;

/// One verifier observation, anchored to an image address.
struct Finding {
    PassId pass = PassId::kDecode;
    Severity severity = Severity::kInfo;
    mem::Addr addr = 0;   ///< Instruction (or entry/target) address.
    std::string code;     ///< Stable machine-readable tag ("wx-violation").
    std::string detail;   ///< Human-readable context.
};

/// Verdict + findings + CFG statistics for one image.
struct Report {
    std::vector<Finding> findings;

    // CFG statistics (filled by the verifier).
    std::size_t words = 0;             ///< Full 32-bit words in the payload.
    std::size_t tail_bytes = 0;        ///< Trailing bytes (< one word).
    std::size_t reachable_insns = 0;   ///< Words reachable as instructions.
    std::size_t blocks = 0;            ///< Basic blocks discovered.
    std::size_t indirect_jumps = 0;    ///< Statically unresolved transfers.
    std::uint32_t max_stack_bytes = 0; ///< Worst-case depth found.
    bool stack_bounded = true;         ///< False when a growing cycle exists.

    [[nodiscard]] std::size_t count(Severity severity) const noexcept;
    [[nodiscard]] std::size_t errors() const noexcept {
        return count(Severity::kError);
    }
    [[nodiscard]] std::size_t warnings() const noexcept {
        return count(Severity::kWarning);
    }

    /// True when the image passes policy (optionally promoting warnings).
    [[nodiscard]] bool admissible(bool warnings_as_errors = false) const
        noexcept {
        return errors() == 0 && (!warnings_as_errors || warnings() == 0);
    }

    /// One-line digest: "2 errors, 1 warning; first: wx-violation@0x10040".
    [[nodiscard]] std::string summary() const;

    /// Multi-line findings listing (severity, pass, address, detail).
    [[nodiscard]] std::string render() const;
};

}  // namespace cres::analysis
