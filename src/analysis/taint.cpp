#include "analysis/taint.h"

namespace cres::analysis {

std::string_view taint_source_name(std::uint8_t mask) noexcept {
    if (mask & kTaintNic) return "nic-rx";
    if (mask & kTaintDma) return "dma-desc";
    if (mask & kTaintSensor) return "sensor-mmio";
    return "untrusted";
}

std::uint8_t taint_source_for_segment(std::string_view segment) noexcept {
    if (segment == "nic") return kTaintNic;
    if (segment == "dma") return kTaintDma;
    if (segment == "sensor") return kTaintSensor;
    return 0;
}

std::string_view taint_sink_name(TaintSinkKind kind) noexcept {
    switch (kind) {
        case TaintSinkKind::kIndirectJump: return "indirect-jump";
        case TaintSinkKind::kStoreAddress: return "store-address";
        case TaintSinkKind::kCsrWrite: return "csr-write";
    }
    return "?";
}

}  // namespace cres::analysis
