#include "analysis/report.h"

#include <iomanip>
#include <sstream>

namespace cres::analysis {

std::string_view severity_name(Severity severity) noexcept {
    switch (severity) {
        case Severity::kInfo: return "info";
        case Severity::kWarning: return "warning";
        case Severity::kError: return "error";
    }
    return "?";
}

std::string_view pass_name(PassId pass) noexcept {
    switch (pass) {
        case PassId::kDecode: return "decode";
        case PassId::kOpcode: return "opcode";
        case PassId::kControlFlow: return "control-flow";
        case PassId::kMemory: return "memory";
        case PassId::kStack: return "stack";
        case PassId::kPrivilege: return "privilege";
        case PassId::kBounds: return "bounds";
        case PassId::kTaint: return "taint";
        case PassId::kReachability: return "reachability";
    }
    return "?";
}

namespace {

void append_addr(std::ostringstream& os, mem::Addr addr) {
    os << "0x" << std::hex << addr << std::dec;
}

}  // namespace

std::size_t Report::count(Severity severity) const noexcept {
    std::size_t n = 0;
    for (const Finding& f : findings) {
        if (f.severity == severity) ++n;
    }
    return n;
}

std::string Report::summary() const {
    std::ostringstream os;
    os << errors() << " error(s), " << warnings() << " warning(s), "
       << count(Severity::kInfo) << " info";
    for (const Finding& f : findings) {
        if (f.severity != Severity::kError) continue;
        os << "; first: " << f.code << "@";
        append_addr(os, f.addr);
        break;
    }
    return os.str();
}

std::string Report::render() const {
    std::ostringstream os;
    os << "blocks=" << blocks << " reachable=" << reachable_insns << "/"
       << words << " words";
    if (tail_bytes != 0) os << " (+" << tail_bytes << " tail bytes)";
    os << " indirect=" << indirect_jumps << " max-stack=" << max_stack_bytes
       << (stack_bounded ? "" : " (UNBOUNDED)") << "\n";
    if (proofs != nullptr) {
        os << "proofs: " << proofs->proven_ops << "/" << proofs->mem_ops
           << " accesses proven in-bounds ("
           << static_cast<int>(proofs->coverage() * 100.0 + 0.5) << "%), "
           << proofs->certificates.size() << " stack certificate(s)\n";
    }
    for (const TaintTrace& t : taint_traces) {
        os << "taint: " << t.source << " read at ";
        append_addr(os, t.source_pc);
        os << " reaches " << t.sink << " at ";
        append_addr(os, t.sink_pc);
        os << "\n";
    }
    for (const Finding& f : findings) {
        os << "  [" << severity_name(f.severity) << "] " << pass_name(f.pass)
           << " ";
        append_addr(os, f.addr);
        os << " " << f.code << ": " << f.detail << "\n";
    }
    os << summary() << "\n";
    return os.str();
}

}  // namespace cres::analysis
