#include "analysis/absint.h"

#include <algorithm>
#include <cstddef>
#include <set>
#include <utility>

#include "analysis/verifier.h"

namespace cres::analysis {

namespace {

using isa::Instruction;
using isa::Opcode;

constexpr std::uint32_t kMax32 = 0xffffffffu;
constexpr unsigned kSp = 13;
constexpr unsigned kLr = 14;
// Depth values below this are treated as "arbitrarily far above entry".
constexpr std::int64_t kDepthFloor = -(std::int64_t{1} << 40);
// Joins tolerated at one block before widening accelerates convergence.
constexpr std::size_t kWidenAfter = 12;

std::uint32_t u32(std::uint64_t v) noexcept {
    return static_cast<std::uint32_t>(v);
}

std::uint8_t common_align(std::uint8_t a, std::uint8_t b) noexcept {
    return a < b ? a : b;
}

// Smallest 2^k-1 mask covering v (so x|y and x^y stay below it when
// both operands do).
std::uint32_t mask_cover(std::uint32_t v) noexcept {
    v |= v >> 1;
    v |= v >> 2;
    v |= v >> 4;
    v |= v >> 8;
    v |= v >> 16;
    return v;
}

std::uint32_t eval_alu(Opcode op, std::uint32_t a, std::uint32_t b) noexcept {
    switch (op) {
        case Opcode::kAdd: return a + b;
        case Opcode::kSub: return a - b;
        case Opcode::kAnd: return a & b;
        case Opcode::kOr: return a | b;
        case Opcode::kXor: return a ^ b;
        case Opcode::kShl: return a << (b & 31u);
        case Opcode::kShr: return a >> (b & 31u);
        case Opcode::kSra:
            return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                              (b & 31u));
        case Opcode::kMul: return a * b;
        case Opcode::kSlt:
            return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b)
                       ? 1u
                       : 0u;
        case Opcode::kSltu: return a < b ? 1u : 0u;
        default: return 0;
    }
}

// Addition is exact unless the sum straddles the 2^32 wrap; the
// congruence survives wrap because align divides 2^32.
Interval iv_add(const Interval& a, const Interval& b) noexcept {
    const std::uint8_t align = common_align(a.align, b.align);
    const auto phase = static_cast<std::uint8_t>(
        (static_cast<unsigned>(a.phase) + b.phase) & (align - 1u));
    const std::uint64_t lo = std::uint64_t{a.lo} + b.lo;
    const std::uint64_t hi = std::uint64_t{a.hi} + b.hi;
    if (hi <= kMax32 || lo > kMax32) return {u32(lo), u32(hi), align, phase};
    return {0, kMax32, align, phase};
}

Interval iv_sub(const Interval& a, const Interval& b) noexcept {
    const std::uint8_t align = common_align(a.align, b.align);
    const auto phase = static_cast<std::uint8_t>(
        (static_cast<unsigned>(a.phase) - b.phase) & (align - 1u));
    const std::int64_t lo = std::int64_t{a.lo} - b.hi;
    const std::int64_t hi = std::int64_t{a.hi} - b.lo;
    if (lo >= 0 || hi < 0) {
        return {u32(static_cast<std::uint64_t>(lo)),
                u32(static_cast<std::uint64_t>(hi)), align, phase};
    }
    return {0, kMax32, align, phase};
}

Interval iv_shl(const Interval& a, unsigned c) noexcept {
    if (c == 0) return a;
    const unsigned scaled = static_cast<unsigned>(a.align)
                            << (c < 2 ? c : 2u);
    const auto align = static_cast<std::uint8_t>(scaled > 4 ? 4u : scaled);
    const auto phase = static_cast<std::uint8_t>(
        (static_cast<unsigned>(a.phase) << (c < 31 ? c : 31u)) & (align - 1u));
    const std::uint64_t hi = std::uint64_t{a.hi} << c;
    if (hi <= kMax32) return {a.lo << c, u32(hi), align, phase};
    return {0, kMax32, align, phase};
}

Interval iv_shr(const Interval& a, unsigned c) noexcept {
    if (c == 0) return a;
    return Interval::range(a.lo >> c, a.hi >> c);
}

Interval iv_sra(const Interval& a, unsigned c) noexcept {
    if (c == 0) return a;
    if (a.hi < 0x80000000u) return Interval::range(a.lo >> c, a.hi >> c);
    if (a.lo >= 0x80000000u) {
        // All-negative: arithmetic shift is monotone and sign-preserving,
        // so unsigned ordering of the endpoints is preserved too.
        const auto s = [c](std::uint32_t v) {
            return static_cast<std::uint32_t>(static_cast<std::int32_t>(v) >>
                                              c);
        };
        return Interval::range(s(a.lo), s(a.hi));
    }
    return Interval::top();
}

Interval iv_mul(const Interval& a, const Interval& b) noexcept {
    const std::uint64_t hi = std::uint64_t{a.hi} * b.hi;
    if (hi <= kMax32) return Interval::range(a.lo * b.lo, u32(hi));
    return Interval::top();
}

Interval iv_alu(Opcode op, const Interval& a, const Interval& b) noexcept {
    if (a.singleton() && b.singleton())
        return Interval::constant(eval_alu(op, a.lo, b.lo));
    switch (op) {
        case Opcode::kAdd: return iv_add(a, b);
        case Opcode::kSub: return iv_sub(a, b);
        case Opcode::kAnd: return Interval::range(0, std::min(a.hi, b.hi));
        case Opcode::kOr:
            return Interval::range(std::max(a.lo, b.lo),
                                   mask_cover(std::max(a.hi, b.hi)));
        case Opcode::kXor:
            return Interval::range(0, mask_cover(std::max(a.hi, b.hi)));
        case Opcode::kShl:
            return b.singleton() ? iv_shl(a, b.lo & 31u) : Interval::top();
        case Opcode::kShr:
            return b.singleton() ? iv_shr(a, b.lo & 31u)
                                 : Interval::range(0, a.hi);
        case Opcode::kSra:
            return b.singleton() ? iv_sra(a, b.lo & 31u) : Interval::top();
        case Opcode::kMul: return iv_mul(a, b);
        case Opcode::kSlt:
        case Opcode::kSltu: return Interval::range(0, 1);
        default: return Interval::top();
    }
}

// Whole access range [a.lo, a.hi + size - 1] inside one segment.
const Segment* covering_segment(const SegmentMap& map, const Interval& a,
                                std::uint32_t size) noexcept {
    if (a.hi > kMax32 - (size - 1)) return nullptr;
    for (const Segment& seg : map.segments) {
        if (seg.size == 0) continue;
        if (a.lo >= seg.base &&
            std::uint64_t{a.hi} + size <= std::uint64_t{seg.base} + seg.size)
            return &seg;
    }
    return nullptr;
}

bool range_intersects(const Segment& seg, std::uint64_t lo,
                      std::uint64_t hi) noexcept {
    return seg.size != 0 && seg.base <= hi &&
           lo <= std::uint64_t{seg.base} + seg.size - 1;
}

// Alignment proof: every concrete address is a multiple of the width.
bool provably_aligned(const Interval& a, std::uint32_t size) noexcept {
    if (size <= 1) return true;
    if (a.singleton()) return a.lo % size == 0;
    return a.align >= size && (a.phase % size) == 0;
}

bool access_proven(const SegmentMap& map, const Interval& a,
                   std::uint32_t size, bool is_store,
                   const Segment** out_seg) noexcept {
    if (!provably_aligned(a, size)) return false;
    const Segment* seg = covering_segment(map, a, size);
    if (seg == nullptr || seg->secure) return false;
    if (is_store && !seg->writable) return false;
    if (out_seg != nullptr) *out_seg = seg;
    return true;
}

// Facts one instruction step exposes to the walker.
struct StepFacts {
    bool is_mem = false;
    bool is_store = false;
    std::uint32_t size = 0;
    Interval addr;                    // Effective address interval.
    std::uint8_t addr_taint = 0;      // Taint of the base register.
    mem::Addr addr_taint_origin = 0;
    std::uint8_t csrw_taint = 0;      // Taint of a csrw source register.
    mem::Addr csrw_taint_origin = 0;
    std::uint8_t jump_taint = 0;      // Taint of a jalr base register.
    mem::Addr jump_taint_origin = 0;
};

void clobber_regs(AbsState& st) noexcept {
    for (unsigned r = 1; r < 16; ++r) st.regs[r] = Interval::top();
    st.taint.clear();
}

void normalize_depth(AbsState& st) noexcept {
    if (!st.depth_bounded) {
        st.depth_lo = 0;
        st.depth_hi = 0;
    } else if (st.depth_lo < kDepthFloor) {
        st.depth_lo = kDepthFloor;
    }
}

// Abstract transfer for one instruction. Mirrors Cpu::exec_one for
// singleton operands; interval rules over-approximate everything else.
void step_insn(AbsState& st, const Instruction& insn, mem::Addr pc,
               const SegmentMap& segments, StepFacts& facts) {
    const Opcode op = insn.opcode;
    const unsigned rd = insn.rd & 15u;
    const unsigned rs1 = insn.rs1 & 15u;
    const unsigned rs2 = insn.rs2 & 15u;
    const std::uint32_t uimm = insn.imm;
    const auto simm = static_cast<std::uint32_t>(insn.simm());

    // Tracks the stack-depth interval across writes to sp. `fresh`
    // (a new constant frame pointer) mirrors the CFG builder's
    // stack-reset semantics.
    const auto note_sp_write = [&](const Interval& result, bool is_push) {
        if (rd != kSp) return;
        if (is_push) {
            if (!st.depth_bounded) return;
            const auto growth =
                -static_cast<std::int64_t>(static_cast<std::int32_t>(simm));
            st.depth_lo += growth;
            st.depth_hi += growth;
            normalize_depth(st);
        } else if (result.singleton()) {
            st.depth_lo = 0;
            st.depth_hi = 0;
            st.depth_bounded = true;
        } else {
            st.depth_bounded = false;
            normalize_depth(st);
        }
    };

    switch (op) {
        case Opcode::kNop:
        case Opcode::kHalt:
        case Opcode::kWfi:
        case Opcode::kMret:
        case Opcode::kSret:
            break;
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kShr:
        case Opcode::kSra:
        case Opcode::kMul:
        case Opcode::kSlt:
        case Opcode::kSltu: {
            const Interval res = iv_alu(op, st.reg(rs1), st.reg(rs2));
            note_sp_write(res, false);
            st.set_reg(rd, res);
            st.taint.combine(rd, rs1, rs2);
            break;
        }
        case Opcode::kAddi: {
            const Interval res =
                iv_alu(Opcode::kAdd, st.reg(rs1), Interval::constant(simm));
            note_sp_write(res, rs1 == kSp);
            st.set_reg(rd, res);
            st.taint.combine(rd, rs1, 0);
            break;
        }
        case Opcode::kAndi:
        case Opcode::kOri:
        case Opcode::kXori: {
            const Opcode base = op == Opcode::kAndi  ? Opcode::kAnd
                                : op == Opcode::kOri ? Opcode::kOr
                                                     : Opcode::kXor;
            const Interval res =
                iv_alu(base, st.reg(rs1), Interval::constant(uimm));
            note_sp_write(res, false);
            st.set_reg(rd, res);
            st.taint.combine(rd, rs1, 0);
            break;
        }
        case Opcode::kShli:
        case Opcode::kShri: {
            const Interval res = op == Opcode::kShli
                                     ? iv_shl(st.reg(rs1), uimm & 31u)
                                     : iv_shr(st.reg(rs1), uimm & 31u);
            note_sp_write(res, false);
            st.set_reg(rd, res);
            st.taint.combine(rd, rs1, 0);
            break;
        }
        case Opcode::kLui: {
            const Interval res = Interval::constant(uimm << 16);
            note_sp_write(res, false);
            st.set_reg(rd, res);
            st.taint.set(rd, 0, 0);
            break;
        }
        case Opcode::kLw:
        case Opcode::kLh:
        case Opcode::kLb: {
            const Interval addr =
                iv_alu(Opcode::kAdd, st.reg(rs1), Interval::constant(simm));
            facts.is_mem = true;
            facts.size = op == Opcode::kLw ? 4u : op == Opcode::kLh ? 2u : 1u;
            facts.addr = addr;
            facts.addr_taint = st.taint.mask[rs1];
            facts.addr_taint_origin = st.taint.origin[rs1];
            // Loaded values are opaque except for the zero-extension
            // bound of narrow widths.
            const Interval val = op == Opcode::kLw ? Interval::top()
                                 : op == Opcode::kLh
                                     ? Interval::range(0, 0xffffu)
                                     : Interval::range(0, 0xffu);
            note_sp_write(val, false);
            st.set_reg(rd, val);
            // Taint: sources (a provable read of an untrusted segment)
            // plus derived-pointer flow from a tainted base.
            std::uint8_t bits = st.taint.mask[rs1];
            mem::Addr origin = st.taint.origin[rs1];
            if (const Segment* seg =
                    covering_segment(segments, addr, facts.size)) {
                const std::uint8_t src = taint_source_for_segment(seg->name);
                if (src != 0) {
                    bits |= src;
                    origin = origin == 0 ? pc : std::min(origin, pc);
                }
            }
            st.taint.set(rd, bits, origin);
            break;
        }
        case Opcode::kSw:
        case Opcode::kSh:
        case Opcode::kSb: {
            facts.is_mem = true;
            facts.is_store = true;
            facts.size = op == Opcode::kSw ? 4u : op == Opcode::kSh ? 2u : 1u;
            facts.addr =
                iv_alu(Opcode::kAdd, st.reg(rs1), Interval::constant(simm));
            facts.addr_taint = st.taint.mask[rs1];
            facts.addr_taint_origin = st.taint.origin[rs1];
            break;
        }
        case Opcode::kBeq:
        case Opcode::kBne:
        case Opcode::kBlt:
        case Opcode::kBge:
        case Opcode::kBltu:
        case Opcode::kBgeu:
            break;  // Refined on the out-edges, not here.
        case Opcode::kJal:
        case Opcode::kJalr: {
            if (op == Opcode::kJalr) {
                // Read the base's taint before the link write (rd may
                // alias rs1).
                facts.jump_taint = st.taint.mask[rs1];
                facts.jump_taint_origin = st.taint.origin[rs1];
            }
            const Interval link = Interval::constant(u32(pc) + 4u);
            note_sp_write(link, false);
            st.set_reg(rd, link);
            st.taint.set(rd, 0, 0);
            break;
        }
        case Opcode::kCsrr: {
            note_sp_write(Interval::top(), false);
            st.set_reg(rd, Interval::top());
            st.taint.set(rd, 0, 0);
            break;
        }
        case Opcode::kCsrw:
            facts.csrw_taint = st.taint.mask[rs1];
            facts.csrw_taint_origin = st.taint.origin[rs1];
            break;
        case Opcode::kEcall:
        case Opcode::kSmc:
            // Service semantics are outside the image: assume every
            // register is rewritten (sound, keeps proofs honest). The
            // depth interval is kept — services preserve the frame.
            clobber_regs(st);
            break;
        default:
            break;
    }
}

// Return-site state after a call: callee may rewrite every register
// (r0 aside) but, per the PR 5 stack convention, restores sp.
AbsState return_site_state(const AbsState& at_call) {
    AbsState out;
    out.depth_lo = at_call.depth_lo;
    out.depth_hi = at_call.depth_hi;
    out.depth_bounded = at_call.depth_bounded;
    return out;
}

// Narrows comparand intervals along a branch edge. Returns false when
// the edge is statically infeasible (states then must not be merged).
bool refine_branch(AbsState& st, const Instruction& insn, bool taken) {
    const unsigned xi = insn.rs1 & 15u;
    const unsigned yi = insn.rd & 15u;
    Interval x = st.reg(xi);
    Interval y = st.reg(yi);
    Opcode op = insn.opcode;

    // Signed compares refine only when both sides are provably
    // non-negative (then signed and unsigned orders agree).
    if (op == Opcode::kBlt || op == Opcode::kBge) {
        if (x.hi >= 0x80000000u || y.hi >= 0x80000000u) return true;
        op = op == Opcode::kBlt ? Opcode::kBltu : Opcode::kBgeu;
    }

    const bool eq_edge = (op == Opcode::kBeq && taken) ||
                         (op == Opcode::kBne && !taken);
    const bool ne_edge = (op == Opcode::kBne && taken) ||
                         (op == Opcode::kBeq && !taken);
    if (eq_edge) {
        const std::uint8_t c = common_align(x.align, y.align);
        if (((x.phase ^ y.phase) & (c - 1u)) != 0) return false;
        Interval m;
        m.lo = std::max(x.lo, y.lo);
        m.hi = std::min(x.hi, y.hi);
        if (m.lo > m.hi) return false;
        if (x.align >= y.align) {
            m.align = x.align;
            m.phase = static_cast<std::uint8_t>(x.phase & (x.align - 1u));
        } else {
            m.align = y.align;
            m.phase = static_cast<std::uint8_t>(y.phase & (y.align - 1u));
        }
        st.set_reg(xi, m);
        st.set_reg(yi, m);
        return true;
    }
    if (ne_edge) {
        if (x.singleton() && y.singleton() && x.lo == y.lo) return false;
        if (y.singleton() && !x.singleton()) {
            if (x.lo == y.lo) {
                x.lo += 1;
                st.set_reg(xi, x);
            } else if (x.hi == y.lo) {
                x.hi -= 1;
                st.set_reg(xi, x);
            }
        }
        if (x.singleton() && !y.singleton()) {
            if (y.lo == x.lo) {
                y.lo += 1;
                st.set_reg(yi, y);
            } else if (y.hi == x.lo) {
                y.hi -= 1;
                st.set_reg(yi, y);
            }
        }
        return true;
    }

    const bool lt_edge = (op == Opcode::kBltu && taken) ||
                         (op == Opcode::kBgeu && !taken);
    const bool ge_edge = (op == Opcode::kBgeu && taken) ||
                         (op == Opcode::kBltu && !taken);
    if (lt_edge) {  // x < y
        if (y.hi == 0 || x.lo == kMax32) return false;
        x.hi = std::min(x.hi, y.hi - 1);
        y.lo = std::max(y.lo, x.lo + 1);
        if (x.lo > x.hi || y.lo > y.hi) return false;
        st.set_reg(xi, x);
        st.set_reg(yi, y);
        return true;
    }
    if (ge_edge) {  // x >= y
        x.lo = std::max(x.lo, y.lo);
        y.hi = std::min(y.hi, x.hi);
        if (x.lo > x.hi || y.lo > y.hi) return false;
        st.set_reg(xi, x);
        st.set_reg(yi, y);
        return true;
    }
    return true;
}

AbsState join_states(const AbsState& a, const AbsState& b) {
    AbsState out = a;
    for (unsigned r = 1; r < 16; ++r)
        out.regs[r] = interval_join(a.regs[r], b.regs[r]);
    out.taint.join(b.taint);
    out.depth_bounded = a.depth_bounded && b.depth_bounded;
    out.depth_lo = std::min(a.depth_lo, b.depth_lo);
    out.depth_hi = std::max(a.depth_hi, b.depth_hi);
    normalize_depth(out);
    return out;
}

// Jump moved bounds to their extremes so chains of joins terminate.
// Congruence and taint lattices are finite and need no widening.
void widen_state(AbsState& j, const AbsState& old, bool depth_clamped) {
    for (unsigned r = 1; r < 16; ++r) {
        Interval& v = j.regs[r];
        const Interval& o = old.regs[r];
        if (v.lo < o.lo) v.lo = 0;
        if (v.hi > o.hi) v.hi = kMax32;
    }
    if (!depth_clamped) {
        if (j.depth_lo < old.depth_lo) j.depth_lo = kDepthFloor;
        if (j.depth_hi > old.depth_hi) j.depth_bounded = false;
        normalize_depth(j);
    }
}

// A counted self-loop bound: "this block back-edges into itself at
// most `trips` times", inferred from a bne-vs-zero guard whose counter
// is a single constant-step decrement.
struct TripHint {
    std::uint64_t trips = 0;
    unsigned counter = 0;
};

struct Fixpoint {
    const Cfg& cfg;
    const SegmentMap& segments;
    std::map<mem::Addr, AbsState> entry;
    // Joins excluding self-edges: the loop-entry view used for trip
    // inference and as the base of depth clamps.
    std::map<mem::Addr, AbsState> entry_other;
    std::map<mem::Addr, std::size_t> visits;
    std::set<mem::Addr> worklist;
    std::map<mem::Addr, TripHint> hints;
    std::size_t iterations = 0;
    bool capped = false;

    Fixpoint(const Cfg& c, const SegmentMap& s) : cfg(c), segments(s) {}

    void merge(mem::Addr from, mem::Addr to, AbsState incoming) {
        if (cfg.blocks.find(to) == cfg.blocks.end()) return;
        const bool self_edge = from == to;
        normalize_depth(incoming);
        if (self_edge) apply_clamp(to, incoming);
        if (!self_edge) {
            auto [oit, inserted] = entry_other.try_emplace(to, incoming);
            if (!inserted) oit->second = join_states(oit->second, incoming);
        }
        const auto it = entry.find(to);
        if (it == entry.end()) {
            entry.emplace(to, std::move(incoming));
            worklist.insert(to);
            return;
        }
        AbsState joined = join_states(it->second, incoming);
        if (joined == it->second) return;
        const std::size_t n = ++visits[to];
        if (n > kWidenAfter)
            widen_state(joined, it->second, hints.count(to) != 0);
        if (joined == it->second) return;
        it->second = std::move(joined);
        worklist.insert(to);
    }

    // Accelerate counted loops: instead of iterating `trips` times,
    // jump the back-edge depth straight to its proven ceiling.
    void apply_clamp(mem::Addr to, AbsState& incoming) {
        const auto h = hints.find(to);
        if (h == hints.end() || !incoming.depth_bounded) return;
        const auto base = entry_other.find(to);
        if (base == entry_other.end() || !base->second.depth_bounded) {
            incoming.depth_bounded = false;
            normalize_depth(incoming);
            return;
        }
        const auto& bb = cfg.blocks.at(to);
        const std::int64_t cap =
            base->second.depth_hi +
            static_cast<std::int64_t>(h->second.trips) * bb.net_growth;
        // Pin the back-edge depth to the proven ceiling (`trips` bounds
        // the number of re-entries, so depth above it is unreachable).
        // Pinning — not max() — is what makes the self-edge a fixpoint:
        // the next visit arrives at cap + net_growth and lands back on
        // cap.
        incoming.depth_hi = cap;
        incoming.depth_lo = std::min(incoming.depth_lo, cap);
    }

    void run() {
        entry.clear();
        entry_other.clear();
        visits.clear();
        worklist.clear();
        iterations = 0;
        capped = false;
        const std::size_t cap = cfg.blocks.size() * 64 + 256;
        for (const mem::Addr root : cfg.roots) merge(0, root, AbsState{});
        while (!worklist.empty()) {
            if (++iterations > cap) {
                capped = true;
                break;
            }
            const mem::Addr start = *worklist.begin();
            worklist.erase(worklist.begin());
            const auto bit = cfg.blocks.find(start);
            if (bit == cfg.blocks.end()) continue;
            process(bit->second);
        }
    }

    void process(const BasicBlock& bb) {
        AbsState st = entry.at(bb.start);
        const bool complete = walk(bb, st, [](mem::Addr, const Instruction&,
                                              const StepFacts&,
                                              const AbsState&) {});
        if (!complete) return;  // Ends in a decode trap: no successors.
        emit_edges(bb, st, [this, &bb](mem::Addr to, AbsState s) {
            merge(bb.start, to, std::move(s));
        });
    }

    // Runs the transfer function over one block. `on_insn` observes
    // each instruction with its facts and the post-state. Returns
    // false when the block ends at an undecodable word.
    template <typename F>
    bool walk(const BasicBlock& bb, AbsState& st, F&& on_insn) const {
        for (mem::Addr pc = bb.start; pc < bb.end; pc += 4) {
            if (!cfg.in_image(pc)) break;
            const DecodedWord& w = cfg.words[cfg.index_of(pc)];
            if (!w.valid) return false;
            StepFacts facts;
            step_insn(st, w.insn, pc, segments, facts);
            on_insn(pc, w.insn, facts, st);
        }
        return true;
    }

    // Static out-edges of a completed block, mirroring build_cfg's
    // successor rules; jalr resolution uses the interval domain.
    template <typename F>
    void emit_edges(const BasicBlock& bb, const AbsState& exit,
                    F&& edge) const {
        if (bb.end <= bb.start || bb.falls_off) return;
        const mem::Addr pc = bb.end - 4;
        if (!cfg.in_image(pc)) return;
        const DecodedWord& w = cfg.words[cfg.index_of(pc)];
        if (!w.valid) return;
        const Instruction& insn = w.insn;
        const auto simm = static_cast<std::uint32_t>(insn.simm());
        switch (insn.opcode) {
            case Opcode::kBeq:
            case Opcode::kBne:
            case Opcode::kBlt:
            case Opcode::kBge:
            case Opcode::kBltu:
            case Opcode::kBgeu: {
                AbsState taken = exit;
                if (refine_branch(taken, insn, true))
                    edge(pc + simm, std::move(taken));
                AbsState fall = exit;
                if (refine_branch(fall, insn, false))
                    edge(pc + 4, std::move(fall));
                break;
            }
            case Opcode::kJal: {
                edge(pc + simm, exit);
                if ((insn.rd & 15u) == kLr)
                    edge(pc + 4, return_site_state(exit));
                break;
            }
            case Opcode::kJalr: {
                const bool is_return = insn.rd == 0 &&
                                       (insn.rs1 & 15u) == kLr && simm == 0;
                if (is_return) break;
                const bool call = (insn.rd & 15u) == kLr;
                const Interval& base = exit.reg(insn.rs1 & 15u);
                if (base.singleton()) edge((base.lo + simm) & ~3u, exit);
                if (call) edge(pc + 4, return_site_state(exit));
                break;
            }
            default:
                break;  // halt/mret/sret or image edge: no successors.
        }
    }

    // Counted-loop inference over the converged register states:
    // self-loop guarded by `bne counter, r0` whose only counter write
    // is a constant decrement, entered with a provably positive,
    // step-divisible counter.
    void infer_hints() {
        hints.clear();
        for (const auto& [start, bb] : cfg.blocks) {
            if (entry.find(start) == entry.end()) continue;
            if (bb.sp_clobbered || bb.stack_reset) continue;
            if (bb.net_growth <= 0) continue;
            if (std::find(bb.successors.begin(), bb.successors.end(), start) ==
                bb.successors.end())
                continue;
            if (bb.end <= bb.start || !cfg.in_image(bb.end - 4)) continue;
            const DecodedWord& w = cfg.words[cfg.index_of(bb.end - 4)];
            if (!w.valid || w.insn.opcode != Opcode::kBne) continue;
            const mem::Addr target =
                (bb.end - 4) + static_cast<std::uint32_t>(w.insn.simm());
            if (target != start) continue;
            unsigned counter = 0;
            if ((w.insn.rd & 15u) == 0)
                counter = w.insn.rs1 & 15u;
            else if ((w.insn.rs1 & 15u) == 0)
                counter = w.insn.rd & 15u;
            if (counter == 0) continue;
            std::uint32_t step = 0;
            bool single_update = true;
            for (mem::Addr pc = bb.start; pc < bb.end && single_update;
                 pc += 4) {
                if (!cfg.in_image(pc)) break;
                const DecodedWord& cw = cfg.words[cfg.index_of(pc)];
                if (!cw.valid) break;
                if (!writes_reg(cw.insn, counter)) continue;
                const bool is_dec = cw.insn.opcode == Opcode::kAddi &&
                                    (cw.insn.rd & 15u) == counter &&
                                    (cw.insn.rs1 & 15u) == counter &&
                                    cw.insn.simm() < 0;
                if (!is_dec || step != 0)
                    single_update = false;
                else
                    step = static_cast<std::uint32_t>(-cw.insn.simm());
            }
            if (!single_update || step == 0) continue;
            const auto other = entry_other.find(start);
            if (other == entry_other.end()) continue;
            const Interval& c0 = other->second.reg(counter);
            if (c0.hi == kMax32 || c0.lo < 1) continue;
            std::uint64_t trips = 0;
            if (step == 1) {
                trips = c0.hi;
            } else if (c0.singleton()) {
                if (c0.lo % step != 0 || c0.lo < step) continue;
                trips = c0.lo / step;
            } else if (c0.align >= step && c0.phase % step == 0 &&
                       c0.lo >= step) {
                trips = c0.hi / step;
            } else {
                continue;
            }
            hints[start] = TripHint{trips, counter};
        }
    }

    static bool writes_reg(const Instruction& insn, unsigned r) noexcept {
        switch (insn.opcode) {
            case Opcode::kAdd:
            case Opcode::kSub:
            case Opcode::kAnd:
            case Opcode::kOr:
            case Opcode::kXor:
            case Opcode::kShl:
            case Opcode::kShr:
            case Opcode::kSra:
            case Opcode::kMul:
            case Opcode::kSlt:
            case Opcode::kSltu:
            case Opcode::kAddi:
            case Opcode::kAndi:
            case Opcode::kOri:
            case Opcode::kXori:
            case Opcode::kShli:
            case Opcode::kShri:
            case Opcode::kLui:
            case Opcode::kLw:
            case Opcode::kLh:
            case Opcode::kLb:
            case Opcode::kJal:
            case Opcode::kJalr:
            case Opcode::kCsrr:
                return (insn.rd & 15u) == r;
            case Opcode::kEcall:
            case Opcode::kSmc:
                return true;  // Service may rewrite anything.
            default:
                return false;
        }
    }
};

}  // namespace

Interval interval_join(const Interval& a, const Interval& b) noexcept {
    std::uint8_t align = common_align(a.align, b.align);
    while (align > 1 && ((a.phase ^ b.phase) & (align - 1u)) != 0) align >>= 1;
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi), align,
            static_cast<std::uint8_t>(a.phase & (align - 1u))};
}

AbsIntResult analyze_image(const Cfg& cfg, const SegmentMap& segments) {
    AbsIntResult result;
    result.proofs.safe.assign(cfg.words.size(), 0);
    if (cfg.blocks.empty()) return result;

    Fixpoint fx(cfg, segments);
    fx.run();
    // Counted-loop bounds need converged register states; when any
    // hinted loop's depth widened to "unbounded", rerun with the
    // back-edge depth clamped to the inferred ceiling.
    fx.infer_hints();
    bool rerun = false;
    for (const auto& [start, hint] : fx.hints) {
        const auto it = fx.entry.find(start);
        if (it != fx.entry.end() && !it->second.depth_bounded) rerun = true;
    }
    if (rerun && !fx.capped) fx.run();

    result.iterations = fx.iterations;
    result.converged = !fx.capped;

    // Computed control flow (jalr in any form, mret, sret) can enter a
    // block with register values the static join never saw; elision
    // proofs must then hold for arbitrary entry states.
    for (const auto& [start, bb] : cfg.blocks) {
        if (fx.entry.find(start) == fx.entry.end()) continue;
        for (mem::Addr pc = bb.start; pc < bb.end; pc += 4) {
            if (!cfg.in_image(pc)) break;
            const DecodedWord& w = cfg.words[cfg.index_of(pc)];
            if (!w.valid) break;
            if (w.insn.opcode == Opcode::kJalr ||
                w.insn.opcode == Opcode::kMret ||
                w.insn.opcode == Opcode::kSret)
                result.computed_flow = true;
        }
    }

    // --- Reporting walk: interprocedural states drive the per-access
    // verdicts, the taint sinks and the stack-certificate data.
    struct BlockFacts {
        std::int64_t peak_hi = 0;
        bool depth_bounded = true;
        bool poisoned = false;  // Unresolved continuation (indirect exit).
    };
    std::map<mem::Addr, BlockFacts> block_facts;
    std::map<mem::Addr, std::vector<mem::Addr>> graph;
    std::map<std::pair<mem::Addr, int>, TaintTrace> traces;

    // mret/sret resume at an epc the domain does not track: like an
    // unresolved jalr, the continuation is arbitrary computed control
    // flow, so a certificate whose walk reaches such a block must not
    // claim a bound.
    const auto computed_return = [&cfg](const BasicBlock& bb) {
        if (bb.end <= bb.start || !cfg.in_image(bb.end - 4)) return false;
        const DecodedWord& w = cfg.words[cfg.index_of(bb.end - 4)];
        return w.valid && (w.insn.opcode == Opcode::kMret ||
                           w.insn.opcode == Opcode::kSret);
    };

    const auto sink = [&](mem::Addr source_pc, mem::Addr sink_pc,
                          std::uint8_t mask, TaintSinkKind kind) {
        if (mask == 0) return;
        const auto key = std::make_pair(sink_pc, static_cast<int>(kind));
        if (traces.find(key) != traces.end()) return;
        TaintTrace t;
        t.source_pc = source_pc;
        t.sink_pc = sink_pc;
        t.source = std::string(taint_source_name(mask));
        t.sink = std::string(taint_sink_name(kind));
        traces.emplace(key, std::move(t));
    };

    for (const auto& [start, bb] : cfg.blocks) {
        const auto eit = fx.entry.find(start);
        if (eit == fx.entry.end()) continue;
        AbsState st = eit->second;
        BlockFacts bf;
        bf.peak_hi = st.depth_bounded ? st.depth_hi : 0;
        bf.depth_bounded = st.depth_bounded;
        bf.poisoned = bb.indirect_exit || computed_return(bb);
        const bool complete = fx.walk(
            bb, st,
            [&](mem::Addr pc, const Instruction&, const StepFacts& f,
                const AbsState& after) {
                if (after.depth_bounded)
                    bf.peak_hi = std::max(bf.peak_hi, after.depth_hi);
                else
                    bf.depth_bounded = false;
                if (f.is_mem) {
                    const Segment* seg = nullptr;
                    const bool ok = access_proven(segments, f.addr, f.size,
                                                  f.is_store, &seg);
                    // Provably bad: the entire (bounded) range misses
                    // every segment the access class may touch, and for
                    // stores also misses the image (data-in-text is the
                    // memory pass's business, not an OOB).
                    bool oob = false;
                    if (!f.addr.is_top() &&
                        f.addr.hi <= kMax32 - (f.size - 1)) {
                        const std::uint64_t lo = f.addr.lo;
                        const std::uint64_t hi =
                            std::uint64_t{f.addr.hi} + f.size - 1;
                        oob = true;
                        for (const Segment& s : segments.segments) {
                            if (!range_intersects(s, lo, hi)) continue;
                            if (!f.is_store || (s.writable && !s.secure)) {
                                oob = false;
                                break;
                            }
                        }
                        if (oob && f.is_store) {
                            const std::uint64_t img_lo = cfg.base;
                            const std::uint64_t img_hi =
                                cfg.base + cfg.words.size() * 4 +
                                cfg.tail_bytes;
                            if (img_hi > img_lo && img_lo <= hi &&
                                lo <= img_hi - 1)
                                oob = false;
                        }
                    }
                    auto [cit, fresh] = result.checks.try_emplace(
                        cfg.index_of(pc), AccessCheck{});
                    AccessCheck& c = cit->second;
                    if (fresh) {
                        c.at = pc;
                        c.size = f.size;
                        c.is_store = f.is_store;
                        c.proven = ok;
                        c.provably_oob = oob;
                        c.bounded = !f.addr.is_top();
                        c.lo = f.addr.lo;
                        c.hi = f.addr.hi;
                        if (ok && seg != nullptr) c.segment = seg->name;
                    } else {
                        c.proven = c.proven && ok;
                        c.provably_oob = c.provably_oob || oob;
                        c.bounded = c.bounded && !f.addr.is_top();
                        c.lo = std::min(c.lo, f.addr.lo);
                        c.hi = std::max(c.hi, f.addr.hi);
                        if (!ok) c.segment.clear();
                    }
                    if (f.is_store)
                        sink(f.addr_taint_origin, pc, f.addr_taint,
                             TaintSinkKind::kStoreAddress);
                }
                if (f.csrw_taint != 0)
                    sink(f.csrw_taint_origin, pc, f.csrw_taint,
                         TaintSinkKind::kCsrWrite);
                if (f.jump_taint != 0)
                    sink(f.jump_taint_origin, pc, f.jump_taint,
                         TaintSinkKind::kIndirectJump);
            });
        if (complete) {
            fx.emit_edges(bb, st, [&](mem::Addr to, AbsState) {
                if (cfg.blocks.find(to) != cfg.blocks.end())
                    graph[start].push_back(to);
            });
        }
        block_facts.emplace(start, bf);
    }

    for (auto& [key, t] : traces) result.taint_traces.push_back(t);

    // --- Stack certificates: one per root and per resolved call
    // target, bounding the depth reachable from that entry.
    std::vector<mem::Addr> cert_entries = cfg.roots;
    for (const JumpSite& j : cfg.jumps)
        if (j.is_call && j.resolved) cert_entries.push_back(j.target);
    std::sort(cert_entries.begin(), cert_entries.end());
    cert_entries.erase(
        std::unique(cert_entries.begin(), cert_entries.end()),
        cert_entries.end());
    for (const mem::Addr e : cert_entries) {
        const auto eit = fx.entry.find(e);
        if (eit == fx.entry.end() ||
            block_facts.find(e) == block_facts.end())
            continue;
        ProofAnnotations::StackCertificate cert;
        cert.entry = e;
        cert.bounded = result.converged;
        std::int64_t max_peak = 0;
        const std::int64_t baseline =
            eit->second.depth_bounded ? eit->second.depth_lo : 0;
        std::set<mem::Addr> visited;
        std::vector<mem::Addr> stack{e};
        while (!stack.empty()) {
            const mem::Addr b = stack.back();
            stack.pop_back();
            if (!visited.insert(b).second) continue;
            const auto bfit = block_facts.find(b);
            if (bfit == block_facts.end()) continue;
            if (!bfit->second.depth_bounded || bfit->second.poisoned)
                cert.bounded = false;
            max_peak = std::max(max_peak, bfit->second.peak_hi);
            const auto git = graph.find(b);
            if (git == graph.end()) continue;
            for (const mem::Addr succ : git->second) stack.push_back(succ);
        }
        if (cert.bounded)
            cert.bound_bytes = static_cast<std::uint64_t>(
                std::max<std::int64_t>(0, max_peak - baseline));
        result.proofs.certificates.push_back(cert);
    }

    // --- Proof walk: elision-grade safe bits. Always block-local
    // (top-entry) states: a safe bit must hold for *any* machine state
    // at its superblock's entry word, because the CPU re-arms elision
    // at every block entry — including entries the static join never
    // saw (computed flow, traps, external pc redirection). A word
    // covered by several superblocks must be proven under every one,
    // so the walk covers every CFG block — including blocks the
    // fixpoint proved unreachable: the translator still marks their
    // entry word kBlockStart, so runtime computed flow can enter
    // there and re-arm elision with a state no analyzed prefix saw.
    std::map<std::size_t, std::pair<bool, bool>> word_proof;  // idx -> (ok, store)
    if (result.converged) {
        for (const auto& [start, bb] : cfg.blocks) {
            AbsState st;
            st.taint.clear();
            fx.walk(bb, st,
                    [&](mem::Addr pc, const Instruction&, const StepFacts& f,
                        const AbsState&) {
                        if (!f.is_mem) return;
                        const bool ok = access_proven(segments, f.addr,
                                                      f.size, f.is_store,
                                                      nullptr);
                        auto [it, fresh] = word_proof.try_emplace(
                            cfg.index_of(pc), std::make_pair(ok, f.is_store));
                        if (!fresh) it->second.first &= ok;
                    });
        }
    }
    result.proofs.mem_ops = result.checks.size();
    for (const auto& [idx, p] : word_proof) {
        if (!p.first) continue;
        result.proofs.safe[idx] = p.second ? ProofAnnotations::kStoreProven
                                           : ProofAnnotations::kLoadProven;
        ++result.proofs.proven_ops;
    }

    result.block_entry = std::move(fx.entry);
    return result;
}

}  // namespace cres::analysis
