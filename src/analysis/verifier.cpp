#include "analysis/verifier.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "analysis/absint.h"
#include "platform/memmap.h"

namespace cres::analysis {

namespace {

std::string hex(mem::Addr addr) {
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

void add(Report& report, PassId pass, Severity severity, mem::Addr addr,
         std::string code, std::string detail) {
    report.findings.push_back(
        {pass, severity, addr, std::move(code), std::move(detail)});
}

// --- decode pass -------------------------------------------------------

void decode_pass(const Cfg& cfg, Report& report) {
    if (cfg.words.empty()) {
        add(report, PassId::kDecode, Severity::kError, cfg.base, "empty-image",
            "payload holds no full instruction word");
        return;
    }
    if ((cfg.entry & 3u) != 0) {
        add(report, PassId::kDecode, Severity::kError, cfg.entry,
            "entry-misaligned", "entry point is not 4-byte aligned");
    } else if (!cfg.in_image(cfg.entry)) {
        add(report, PassId::kDecode, Severity::kError, cfg.entry,
            "entry-out-of-image",
            "entry point lies outside the loaded payload");
    }
    if (cfg.tail_bytes != 0) {
        add(report, PassId::kDecode, Severity::kInfo,
            cfg.base + static_cast<mem::Addr>(cfg.words.size() * 4),
            "tail-bytes",
            std::to_string(cfg.tail_bytes) +
                " trailing byte(s) shorter than one instruction word");
    }
    for (const auto& [start, bb] : cfg.blocks) {
        if (bb.falls_off) {
            add(report, PassId::kDecode, Severity::kError, bb.end,
                "code-runs-off-image",
                "reachable path at " + hex(start) +
                    " runs past the end of the code section");
        }
    }
}

// --- opcode pass -------------------------------------------------------

void opcode_pass(const Cfg& cfg, Report& report) {
    for (std::size_t i = 0; i < cfg.words.size(); ++i) {
        const DecodedWord& w = cfg.words[i];
        if (!w.reachable || w.valid) continue;
        std::ostringstream os;
        os << "opcode byte 0x" << std::hex
           << static_cast<unsigned>((w.raw >> 24) & 0xff)
           << " is undefined (word 0x" << w.raw << ")";
        add(report, PassId::kOpcode, Severity::kError,
            cfg.base + static_cast<mem::Addr>(i * 4), "illegal-opcode",
            os.str());
    }
}

// --- control-flow pass -------------------------------------------------

void control_flow_pass(const Cfg& cfg, const Policy& policy, Report& report) {
    for (const JumpSite& j : cfg.jumps) {
        if (!j.resolved) {
            ++report.indirect_jumps;
            continue;
        }
        if ((j.target & 3u) != 0) {
            add(report, PassId::kControlFlow, Severity::kError, j.at,
                "jump-misaligned",
                "transfer to unaligned address " + hex(j.target));
            continue;
        }
        if (cfg.in_image(j.target)) continue;
        const Segment* seg = policy.segments.find(j.target);
        if (seg != nullptr && seg->executable) {
            add(report, PassId::kControlFlow, Severity::kWarning, j.at,
                "jump-outside-image",
                "transfer to " + hex(j.target) + " in executable segment '" +
                    seg->name + "' but outside this image");
        } else {
            add(report, PassId::kControlFlow, Severity::kError, j.at,
                "exec-from-data",
                "transfer to " + hex(j.target) +
                    (seg != nullptr ? " in non-executable segment '" +
                                          seg->name + "'"
                                    : " in unmapped address space"));
        }
    }
    if (report.indirect_jumps != 0) {
        add(report, PassId::kControlFlow, Severity::kInfo, cfg.base,
            "indirect-transfers",
            std::to_string(report.indirect_jumps) +
                " register-indirect transfer(s) not statically resolvable "
                "(runtime CFI monitor enforces)");
    }
}

// --- memory pass -------------------------------------------------------

/// True when [addr, addr+size) overlaps a word marked reachable.
bool touches_reachable_code(const Cfg& cfg, mem::Addr addr,
                            std::uint8_t size) {
    const mem::Addr lo = std::max(addr, cfg.base);
    const mem::Addr hi =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(addr) + size,
                                cfg.base + cfg.words.size() * 4);
    for (mem::Addr a = lo & ~3u; a < hi; a += 4) {
        if (cfg.in_image(a) && cfg.words[cfg.index_of(a)].reachable) {
            return true;
        }
    }
    return false;
}

void memory_pass(const Cfg& cfg, const Policy& policy, Report& report) {
    for (const MemSite& m : cfg.accesses) {
        const Segment* seg = policy.segments.find(m.target);
        if (m.is_store) {
            if (touches_reachable_code(cfg, m.target, m.size)) {
                add(report, PassId::kMemory, Severity::kError, m.at,
                    "wx-violation",
                    "store to " + hex(m.target) +
                        " overwrites reachable code");
            } else if (cfg.in_image(m.target)) {
                add(report, PassId::kMemory, Severity::kInfo, m.at,
                    "data-in-text-store",
                    "store to " + hex(m.target) +
                        " targets image-embedded data inside the text "
                        "section");
            } else if (seg != nullptr && seg->executable) {
                add(report, PassId::kMemory, Severity::kError, m.at,
                    "wx-violation",
                    "store to " + hex(m.target) + " in executable segment '" +
                        seg->name + "'");
            } else if (seg == nullptr) {
                add(report, PassId::kMemory, Severity::kWarning, m.at,
                    "unmapped-store",
                    "store to unmapped address " + hex(m.target));
            } else if (seg->secure) {
                add(report, PassId::kMemory, Severity::kWarning, m.at,
                    "secure-region-store",
                    "store to secure segment '" + seg->name + "' at " +
                        hex(m.target));
            } else if (!seg->writable) {
                add(report, PassId::kMemory, Severity::kError, m.at,
                    "readonly-store",
                    "store to read-only segment '" + seg->name + "' at " +
                        hex(m.target));
            }
        } else {
            if (seg == nullptr && !cfg.in_image(m.target)) {
                add(report, PassId::kMemory, Severity::kWarning, m.at,
                    "unmapped-load",
                    "load from unmapped address " + hex(m.target));
            } else if (seg != nullptr && seg->secure) {
                add(report, PassId::kMemory, Severity::kWarning, m.at,
                    "secure-region-load",
                    "load from secure segment '" + seg->name + "' at " +
                        hex(m.target));
            }
        }
    }
}

// --- stack pass --------------------------------------------------------

struct StackWalk {
    const Cfg& cfg;
    const Policy& policy;
    Report& report;
    std::map<mem::Addr, std::int64_t> best_entry;  ///< Max depth seen.
    std::map<mem::Addr, int> visits;
    std::vector<mem::Addr> path;
    std::int64_t max_depth = 0;
    bool unbounded = false;
    mem::Addr unbounded_at = 0;

    static constexpr int kMaxVisits = 64;

    [[nodiscard]] std::int64_t block_peak(const BasicBlock& bb,
                                          std::int64_t entry) const {
        if (bb.stack_reset) {
            return std::max(entry + bb.peak_growth, bb.post_reset_peak);
        }
        return entry + bb.peak_growth;
    }
    [[nodiscard]] static std::int64_t block_exit(const BasicBlock& bb,
                                                 std::int64_t entry) {
        const std::int64_t exit = bb.stack_reset
                                      ? bb.post_reset_net
                                      : entry + bb.net_growth;
        return exit < 0 ? 0 : exit;
    }

    void walk(mem::Addr start, std::int64_t entry) {
        const auto it = cfg.blocks.find(start);
        if (it == cfg.blocks.end()) return;
        const BasicBlock& bb = it->second;

        const bool on_path =
            std::find(path.begin(), path.end(), start) != path.end();
        const auto best = best_entry.find(start);
        if (best != best_entry.end() && entry <= best->second) {
            return;  // Already explored at least this deep.
        }
        if (on_path && best != best_entry.end() && entry > best->second) {
            // Back edge reached with a deeper stack: a growing cycle.
            if (!unbounded) {
                unbounded = true;
                unbounded_at = start;
            }
            return;
        }
        if (++visits[start] > kMaxVisits) {
            // Defensive bound; treat as potentially unbounded.
            if (!unbounded) {
                unbounded = true;
                unbounded_at = start;
            }
            return;
        }
        best_entry[start] = entry;

        const std::int64_t peak = block_peak(bb, entry);
        if (peak > max_depth) max_depth = peak;

        const std::int64_t exit = block_exit(bb, entry);
        path.push_back(start);
        for (const mem::Addr succ : bb.successors) {
            walk(succ, exit);
        }
        path.pop_back();
    }
};

void stack_pass(const Cfg& cfg, const Policy& policy, Report& report,
                const AbsIntResult& absint) {
    StackWalk walk{cfg, policy, report, {}, {}, {}, 0, false, 0};
    for (const mem::Addr root : cfg.roots) {
        walk.walk(root, 0);
    }
    report.max_stack_bytes = static_cast<std::uint32_t>(
        std::min<std::int64_t>(walk.max_depth, 0xffffffffll));
    report.stack_bounded = !walk.unbounded;

    if (walk.unbounded) {
        // Loop-bound inference may still certify the depth: when every
        // root carries a bounded stack certificate, the syntactic
        // "growing cycle" is a counted loop with a proven trip bound.
        // Computed control flow (jalr/mret/sret anywhere reachable)
        // voids that: runtime can enter a loop header with a counter
        // the statically-seen entries never saw, so a trip bound
        // inferred from those entries understates the real depth.
        std::uint64_t tightened = 0;
        bool all_roots_certified = absint.converged &&
                                   !absint.computed_flow &&
                                   !cfg.roots.empty();
        for (const mem::Addr root : cfg.roots) {
            const ProofAnnotations::StackCertificate* cert = nullptr;
            for (const auto& c : absint.proofs.certificates) {
                if (c.entry == root) {
                    cert = &c;
                    break;
                }
            }
            if (cert == nullptr || !cert->bounded) {
                all_roots_certified = false;
                break;
            }
            tightened = std::max(tightened, cert->bound_bytes);
        }
        if (all_roots_certified) {
            report.max_stack_bytes = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(tightened, 0xffffffffull));
            report.stack_bounded = true;
            add(report, PassId::kBounds, Severity::kInfo, walk.unbounded_at,
                "stack-bound-tightened",
                "counted loop through " + hex(walk.unbounded_at) +
                    " certified: worst-case depth " +
                    std::to_string(tightened) + " bytes");
            if (tightened > policy.max_stack_bytes) {
                add(report, PassId::kStack, Severity::kError, cfg.entry,
                    "stack-depth-exceeded",
                    "certified stack depth " + std::to_string(tightened) +
                        " bytes exceeds the policy budget of " +
                        std::to_string(policy.max_stack_bytes));
            }
        } else {
            add(report, PassId::kStack, Severity::kWarning, walk.unbounded_at,
                "stack-unbounded",
                "cycle through " + hex(walk.unbounded_at) +
                    " grows the stack on every iteration");
        }
    }
    if (!walk.unbounded &&
        walk.max_depth > static_cast<std::int64_t>(policy.max_stack_bytes)) {
        add(report, PassId::kStack, Severity::kError, cfg.entry,
            "stack-depth-exceeded",
            "worst-case stack depth " + std::to_string(walk.max_depth) +
                " bytes exceeds the policy budget of " +
                std::to_string(policy.max_stack_bytes));
    }
    for (const auto& [start, bb] : cfg.blocks) {
        if (bb.sp_clobbered) {
            add(report, PassId::kStack, Severity::kInfo, start,
                "stack-indeterminate",
                "sp written from a statically unknown value in block " +
                    hex(start));
        }
    }
}

// --- bounds pass (pass 8) ----------------------------------------------

void bounds_pass(const Cfg& cfg, Report& report, const AbsIntResult& absint) {
    if (!absint.converged) {
        add(report, PassId::kBounds, Severity::kWarning, cfg.entry,
            "analysis-incomplete",
            "abstract interpretation hit its iteration cap; "
            "in-bounds proofs were dropped");
        return;
    }
    for (const auto& [idx, c] : absint.checks) {
        (void)idx;
        if (!c.provably_oob) continue;
        const std::string range =
            c.lo == c.hi ? hex(c.lo) : hex(c.lo) + "-" + hex(c.hi);
        if (c.is_store) {
            add(report, PassId::kBounds, Severity::kError, c.at, "oob-store",
                "store range " + range + " (+" + std::to_string(c.size) +
                    ") provably misses every writable segment");
        } else {
            add(report, PassId::kBounds, Severity::kWarning, c.at, "oob-load",
                "load range " + range + " (+" + std::to_string(c.size) +
                    ") provably misses every mapped segment");
        }
    }
    if (absint.proofs.mem_ops != 0) {
        add(report, PassId::kBounds, Severity::kInfo, cfg.entry,
            "bounds-proven",
            std::to_string(absint.proofs.proven_ops) + "/" +
                std::to_string(absint.proofs.mem_ops) +
                " reachable memory accesses proven in-bounds and aligned");
    }
}

// --- taint pass (pass 9) ------------------------------------------------

void taint_pass(Report& report, const AbsIntResult& absint) {
    for (const TaintTrace& t : absint.taint_traces) {
        add(report, PassId::kTaint, Severity::kError, t.sink_pc,
            "taint-" + t.sink,
            t.source + " data read at " + hex(t.source_pc) +
                " reaches " + t.sink + " sink");
    }
}

// --- privilege pass ----------------------------------------------------

void privilege_pass(const Cfg& cfg, const Policy& policy, Report& report) {
    if (policy.banned_opcodes.empty()) return;
    for (std::size_t i = 0; i < cfg.words.size(); ++i) {
        const DecodedWord& w = cfg.words[i];
        if (!w.reachable || !w.valid) continue;
        if (std::find(policy.banned_opcodes.begin(),
                      policy.banned_opcodes.end(),
                      w.insn.opcode) == policy.banned_opcodes.end()) {
            continue;
        }
        add(report, PassId::kPrivilege, Severity::kError,
            cfg.base + static_cast<mem::Addr>(i * 4), "banned-opcode",
            "opcode '" + isa::opcode_name(w.insn.opcode) +
                "' is banned by policy");
    }
}

// --- reachability pass -------------------------------------------------

void reachability_pass(const Cfg& cfg, const Policy& policy, Report& report) {
    if (!policy.report_unreachable) return;
    constexpr std::size_t kMaxRunFindings = 4;
    std::size_t unreachable = 0;
    std::size_t runs_reported = 0;
    std::size_t i = 0;
    while (i < cfg.words.size()) {
        if (cfg.words[i].reachable) {
            ++i;
            continue;
        }
        std::size_t j = i;
        while (j < cfg.words.size() && !cfg.words[j].reachable) ++j;
        unreachable += j - i;
        if (runs_reported < kMaxRunFindings) {
            add(report, PassId::kReachability, Severity::kInfo,
                cfg.base + static_cast<mem::Addr>(i * 4), "unreachable-code",
                std::to_string(j - i) +
                    " word(s) never reached from the entry point (code or "
                    "embedded data)");
            ++runs_reported;
        }
        i = j;
    }
    if (runs_reported == kMaxRunFindings && unreachable != 0) {
        add(report, PassId::kReachability, Severity::kInfo, cfg.base,
            "unreachable-code",
            "total " + std::to_string(unreachable) +
                " unreachable word(s) across all runs");
    }
}

}  // namespace

SegmentMap SegmentMap::soc_default() {
    using namespace cres::platform;
    SegmentMap map;
    map.segments = {
        {"code", kCodeBase, kCodeSize, false, true, false},
        {"data", kDataBase, kAppRamSize - kCodeSize, true, false, false},
        {"uart", kUartBase, kPeriphSize, true, false, false},
        {"timer", kTimerBase, kPeriphSize, true, false, false},
        {"wdog", kWdogBase, kPeriphSize, true, false, false},
        {"dma", kDmaBase, kPeriphSize, true, false, false},
        {"sensor", kSensorBase, kPeriphSize, true, false, false},
        {"actuator", kActuatorBase, kPeriphSize, true, false, false},
        {"nic", kNicBase, kPeriphSize, true, false, false},
        {"trng", kTrngBase, kPeriphSize, true, false, true},
        {"power", kPowerBase, kPeriphSize, true, false, false},
        {"tee_ram", kTeeRamBase, kTeeRamSize, false, false, true},
    };
    return map;
}

const Segment* SegmentMap::find(mem::Addr addr) const noexcept {
    for (const Segment& seg : segments) {
        if (addr >= seg.base && addr - seg.base < seg.size) return &seg;
    }
    return nullptr;
}

Policy Policy::unprivileged() {
    Policy policy;
    policy.banned_opcodes = {isa::Opcode::kMret, isa::Opcode::kSret,
                             isa::Opcode::kSmc, isa::Opcode::kCsrw,
                             isa::Opcode::kWfi};
    return policy;
}

Report FirmwareVerifier::analyze(BytesView code, mem::Addr load_addr,
                                 mem::Addr entry) const {
    const Cfg cfg = build_cfg(code, load_addr, entry);
    AbsIntResult absint = analyze_image(cfg, policy_.segments);

    Report report;
    report.words = cfg.words.size();
    report.tail_bytes = cfg.tail_bytes;
    report.blocks = cfg.blocks.size();
    report.reachable_insns = cfg.reachable_count();

    decode_pass(cfg, report);
    opcode_pass(cfg, report);
    control_flow_pass(cfg, policy_, report);
    memory_pass(cfg, policy_, report);
    stack_pass(cfg, policy_, report, absint);
    privilege_pass(cfg, policy_, report);
    bounds_pass(cfg, report, absint);
    taint_pass(report, absint);
    reachability_pass(cfg, policy_, report);

    report.taint_traces = absint.taint_traces;
    report.proofs =
        std::make_shared<const ProofAnnotations>(std::move(absint.proofs));

    // Severity order first, then address: the gate's "reason" and the
    // lint listing both lead with what matters.
    std::stable_sort(report.findings.begin(), report.findings.end(),
                     [](const Finding& a, const Finding& b) {
                         return static_cast<int>(a.severity) >
                                static_cast<int>(b.severity);
                     });
    return report;
}

Report FirmwareVerifier::analyze(const boot::FirmwareImage& image) const {
    return analyze(image.payload, image.load_addr, image.entry_point);
}

boot::AdmissionVerdict AnalysisGate::admit(const boot::FirmwareImage& image) {
    // A fleet-shared analysis cache may hand us a precomputed report
    // for this exact (code, base, entry); fall back to local analysis.
    std::shared_ptr<const Report> cached;
    if (report_provider_) cached = report_provider_(image);
    Report computed;
    if (cached == nullptr) computed = verifier_.analyze(image);
    const Report& report = cached != nullptr ? *cached : computed;

    boot::AdmissionVerdict verdict;
    verdict.errors = report.errors();
    verdict.warnings = report.warnings();
    if (!report.admissible(verifier_.policy().warnings_as_errors)) {
        verdict.reason = report.summary();
        verdict.allow = mode_ != boot::AdmissionMode::kDeny;
    }
    if (observer_) observer_(image, report, !verdict.allow);
    return verdict;
}

}  // namespace cres::analysis
