// Superblock translation: turns a raw CRV32 code section into the
// immutable predecoded TranslationImage the CPU's two-tier execution
// engine runs from (see isa/uop.h and docs/EXECUTION.md).
//
// The translator reuses the CFG builder: only words the exploration
// proved reachable as instructions — from the entry point and any
// statically resolved trap vectors — are marked fast-path eligible.
// Data words, padding, undefined opcodes and anything reachable only
// through an unresolved indirect jump stay untranslated and execute
// through the interpreter, so translation can never *add* behaviour:
// it is a pure function of the image bytes, which is what lets nodes
// measuring the same firmware share one read-only translation.
#pragma once

#include <memory>

#include "analysis/cfg.h"
#include "isa/uop.h"

namespace cres::analysis {

struct ProofAnnotations;  // report.h

/// Builds the translation of `code` loaded at `base` with entry point
/// `entry`. Never throws on malformed code: unreachable or invalid
/// words simply come back untranslated (coverage reflects this).
///
/// `proofs` optionally supplies the abstract-interpretation artifact
/// (typically from the fleet analysis-report cache); when null the
/// translator derives it locally against the canonical SoC segment
/// map. Either way the result is a pure function of (code, base,
/// entry), so cached translations stay shareable. Proven accesses get
/// their Uop::safe bits set so execution can elide MPU/bounds checks.
[[nodiscard]] isa::TranslationImage translate_image(
    BytesView code, mem::Addr base, mem::Addr entry,
    const ProofAnnotations* proofs = nullptr);

/// Convenience wrapper returning the shared immutable form the
/// translation cache and Cpu::install_translation consume.
[[nodiscard]] std::shared_ptr<const isa::TranslationImage>
translate_image_shared(BytesView code, mem::Addr base, mem::Addr entry,
                       const ProofAnnotations* proofs = nullptr);

}  // namespace cres::analysis
