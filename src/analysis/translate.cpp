#include "analysis/translate.h"

#include "analysis/absint.h"
#include "analysis/verifier.h"

namespace cres::analysis {

isa::TranslationImage translate_image(BytesView code, mem::Addr base,
                                      mem::Addr entry,
                                      const ProofAnnotations* proofs) {
    const Cfg cfg = build_cfg(code, base, entry);
    const std::size_t words = cfg.words.size();

    // Derive the proof artifact locally when the caller (cache miss,
    // standalone use) did not supply one. Always proven against the
    // canonical SoC map so the translation stays a pure function of
    // (code, base, entry) regardless of the admitting node's policy.
    AbsIntResult local;
    if (proofs == nullptr) {
        local = analyze_image(cfg, SegmentMap::soc_default());
        proofs = &local.proofs;
    }

    isa::TranslationImage image;
    image.base = base;
    image.size_bytes = static_cast<std::uint32_t>(words * 4);
    image.entry = entry;
    image.uops.reserve(words);
    image.translated.assign(words, 0);

    for (std::size_t i = 0; i < words; ++i) {
        isa::Uop u = isa::predecode(cfg.words[i].raw,
                                    base + static_cast<mem::Addr>(i * 4));
        if (i < proofs->safe.size()) u.safe = proofs->safe[i];
        image.uops.push_back(u);
    }

    const mem::Addr edge = base + image.size_bytes;
    for (const auto& [start, block] : cfg.blocks) {
        const mem::Addr end = block.end < edge ? block.end : edge;
        for (mem::Addr addr = start; addr < end; addr += 4) {
            const std::size_t idx = cfg.index_of(addr);
            // The executor relies on this invariant: a word marked
            // translated is never UopKind::kInvalid, so the threaded
            // dispatch table needs no illegal-instruction edge.
            if (cfg.words[idx].valid)
                image.translated[idx] |= isa::TranslationImage::kTranslated;
        }
        // Mark the superblock entry word: check elision re-arms only
        // at these boundaries after computed control flow (cpu.cpp).
        if (start < end) {
            const std::size_t idx = cfg.index_of(start);
            if ((image.translated[idx] &
                 isa::TranslationImage::kTranslated) != 0)
                image.translated[idx] |= isa::TranslationImage::kBlockStart;
        }
        image.blocks.push_back(isa::Superblock{
            start, end, block.terminal, block.indirect_exit});
    }

    for (const std::uint8_t flag : image.translated) {
        image.translated_words += flag & isa::TranslationImage::kTranslated;
    }
    return image;
}

std::shared_ptr<const isa::TranslationImage> translate_image_shared(
    BytesView code, mem::Addr base, mem::Addr entry,
    const ProofAnnotations* proofs) {
    return std::make_shared<const isa::TranslationImage>(
        translate_image(code, base, entry, proofs));
}

}  // namespace cres::analysis
