#include "analysis/translate.h"

namespace cres::analysis {

isa::TranslationImage translate_image(BytesView code, mem::Addr base,
                                      mem::Addr entry) {
    const Cfg cfg = build_cfg(code, base, entry);
    const std::size_t words = cfg.words.size();

    isa::TranslationImage image;
    image.base = base;
    image.size_bytes = static_cast<std::uint32_t>(words * 4);
    image.entry = entry;
    image.uops.reserve(words);
    image.translated.assign(words, 0);

    for (std::size_t i = 0; i < words; ++i) {
        image.uops.push_back(isa::predecode(
            cfg.words[i].raw, base + static_cast<mem::Addr>(i * 4)));
    }

    const mem::Addr edge = base + image.size_bytes;
    for (const auto& [start, block] : cfg.blocks) {
        const mem::Addr end = block.end < edge ? block.end : edge;
        for (mem::Addr addr = start; addr < end; addr += 4) {
            const std::size_t idx = cfg.index_of(addr);
            // The executor relies on this invariant: a word marked
            // translated is never UopKind::kInvalid, so the threaded
            // dispatch table needs no illegal-instruction edge.
            if (cfg.words[idx].valid) image.translated[idx] = 1;
        }
        image.blocks.push_back(isa::Superblock{
            start, end, block.terminal, block.indirect_exit});
    }

    for (const std::uint8_t flag : image.translated) {
        image.translated_words += flag;
    }
    return image;
}

std::shared_ptr<const isa::TranslationImage> translate_image_shared(
    BytesView code, mem::Addr base, mem::Addr entry) {
    return std::make_shared<const isa::TranslationImage>(
        translate_image(code, base, entry));
}

}  // namespace cres::analysis
