// Taint domain for the abstract interpreter (absint.h).
//
// Registers carry a may-taint bitmask seeded at untrusted input
// sources — net RX buffers (NIC), DMA descriptors and sensor MMIO
// reads — plus the pc of a representative tainting load so findings
// can name the whole flow. The lattice is register-only: taint follows
// provable register dataflow (ALU ops, derived pointers) and is
// dropped at statically opaque boundaries (memory round-trips, call
// returns, ecall services). Absence of taint therefore never *proves*
// cleanliness; presence proves a concrete untrusted flow, which is
// exactly what the admission gate rejects on.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "mem/bus.h"

namespace cres::analysis {

/// Taint source bits (one per untrusted-input class).
enum TaintBit : std::uint8_t {
    kTaintNic = 1,     ///< Network RX rings / NIC MMIO.
    kTaintDma = 2,     ///< DMA descriptor / data registers.
    kTaintSensor = 4,  ///< Sensor MMIO samples.
};

/// Name of the lowest set source bit ("nic-rx", "dma-desc",
/// "sensor-mmio"), or "untrusted" for an empty mask.
std::string_view taint_source_name(std::uint8_t mask) noexcept;

/// Source bits for a load that provably reads the named SoC segment
/// (the canonical map names its peripherals "nic", "dma", "sensor").
std::uint8_t taint_source_for_segment(std::string_view segment) noexcept;

/// The sinks the taint pass flags (all admission errors).
enum class TaintSinkKind : std::uint8_t {
    kIndirectJump,  ///< Tainted jalr target (gadget dispatch).
    kStoreAddress,  ///< Tainted store address (write-what-where).
    kCsrWrite,      ///< Taint reaching a privileged CSR write.
};

std::string_view taint_sink_name(TaintSinkKind kind) noexcept;

/// Per-register taint state. Joins are pointwise mask-union; the
/// representative origin is the smallest tainting pc so fixpoint
/// results are deterministic regardless of visit order.
struct TaintLattice {
    std::array<std::uint8_t, 16> mask{};
    std::array<mem::Addr, 16> origin{};

    void clear() noexcept {
        mask.fill(0);
        origin.fill(0);
    }

    void set(unsigned r, std::uint8_t bits, mem::Addr origin_pc) noexcept {
        if (r == 0 || r >= 16) return;  // r0 is hardwired zero.
        mask[r] = bits;
        origin[r] = bits != 0 ? origin_pc : 0;
    }

    /// Union of two registers' taint (for binary ALU results).
    void combine(unsigned rd, unsigned ra, unsigned rb) noexcept {
        if (rd == 0 || rd >= 16) return;
        const std::uint8_t bits =
            static_cast<std::uint8_t>(mask[ra & 15] | mask[rb & 15]);
        mask[rd] = bits;
        origin[rd] = bits == 0 ? 0
                               : merged_origin(origin[ra & 15], origin[rb & 15]);
    }

    void join(const TaintLattice& other) noexcept {
        for (unsigned r = 1; r < 16; ++r) {
            const std::uint8_t bits =
                static_cast<std::uint8_t>(mask[r] | other.mask[r]);
            if (bits == 0) continue;
            mask[r] = bits;
            origin[r] = merged_origin(origin[r], other.origin[r]);
        }
    }

    bool operator==(const TaintLattice&) const = default;

private:
    static mem::Addr merged_origin(mem::Addr a, mem::Addr b) noexcept {
        if (a == 0) return b;
        if (b == 0) return a;
        return a < b ? a : b;
    }
};

}  // namespace cres::analysis
