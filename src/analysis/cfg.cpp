#include "analysis/cfg.h"

#include <array>
#include <deque>
#include <set>

namespace cres::analysis {

namespace {

using isa::Opcode;

/// Constant propagation: which registers hold statically known
/// values. r0 is architecturally zero. States flow along resolved
/// control-flow edges (branches, direct jumps/calls, resolved jalr),
/// so a `lui+ori` materialization straddling a block boundary still
/// resolves; asynchronous entries (trap vectors) and call return
/// sites conservatively start fresh.
struct ConstState {
    std::array<std::optional<std::uint32_t>, 16> regs;

    ConstState() { regs[0] = 0; }

    [[nodiscard]] std::optional<std::uint32_t> get(std::uint8_t r) const {
        return regs[r & 0x0f];
    }
    void set(std::uint8_t r, std::optional<std::uint32_t> v) {
        if ((r & 0x0f) != 0) regs[r & 0x0f] = v;
    }

    bool operator==(const ConstState&) const = default;
};

/// Pointwise meet: keep only constants both predecessor states agree
/// on. Monotone (constants are only ever dropped), so re-walking
/// blocks whose entry state shrank terminates.
ConstState meet(const ConstState& a, const ConstState& b) {
    ConstState out;
    for (unsigned r = 1; r < 16; ++r) {
        if (a.regs[r] && b.regs[r] && *a.regs[r] == *b.regs[r])
            out.regs[r] = a.regs[r];
    }
    return out;
}

std::optional<std::uint32_t> eval_alu(Opcode op, std::uint32_t a,
                                      std::uint32_t b) {
    const auto s = [](std::uint32_t v) { return static_cast<std::int32_t>(v); };
    switch (op) {
        case Opcode::kAdd: return a + b;
        case Opcode::kSub: return a - b;
        case Opcode::kAnd: return a & b;
        case Opcode::kOr: return a | b;
        case Opcode::kXor: return a ^ b;
        case Opcode::kShl: return a << (b & 31);
        case Opcode::kShr: return a >> (b & 31);
        case Opcode::kSra:
            return static_cast<std::uint32_t>(s(a) >> (b & 31));
        case Opcode::kMul: return a * b;
        case Opcode::kSlt: return s(a) < s(b) ? 1u : 0u;
        case Opcode::kSltu: return a < b ? 1u : 0u;
        default: return std::nullopt;
    }
}

/// Applies one instruction's register effect to the constant state.
void propagate(const isa::Instruction& insn, mem::Addr pc, ConstState& st) {
    const std::uint32_t uimm = insn.imm;
    const std::uint32_t simm = static_cast<std::uint32_t>(insn.simm());
    const auto rs1 = st.get(insn.rs1);
    switch (insn.opcode) {
        case Opcode::kLui:
            st.set(insn.rd, uimm << 16);
            return;
        case Opcode::kAddi:
            st.set(insn.rd, rs1 ? std::optional(*rs1 + simm) : std::nullopt);
            return;
        case Opcode::kAndi:
            st.set(insn.rd, rs1 ? std::optional(*rs1 & uimm) : std::nullopt);
            return;
        case Opcode::kOri:
            st.set(insn.rd, rs1 ? std::optional(*rs1 | uimm) : std::nullopt);
            return;
        case Opcode::kXori:
            st.set(insn.rd, rs1 ? std::optional(*rs1 ^ uimm) : std::nullopt);
            return;
        case Opcode::kShli:
            st.set(insn.rd,
                   rs1 ? std::optional(*rs1 << (uimm & 31)) : std::nullopt);
            return;
        case Opcode::kShri:
            st.set(insn.rd,
                   rs1 ? std::optional(*rs1 >> (uimm & 31)) : std::nullopt);
            return;
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kShr:
        case Opcode::kSra:
        case Opcode::kMul:
        case Opcode::kSlt:
        case Opcode::kSltu: {
            const auto rs2 = st.get(insn.rs2);
            st.set(insn.rd, (rs1 && rs2) ? eval_alu(insn.opcode, *rs1, *rs2)
                                         : std::nullopt);
            return;
        }
        case Opcode::kJal:
        case Opcode::kJalr:
            st.set(insn.rd, pc + 4);  // Link value is statically known.
            return;
        case Opcode::kLw:
        case Opcode::kLh:
        case Opcode::kLb:
        case Opcode::kCsrr:
            st.set(insn.rd, std::nullopt);
            return;
        default:
            return;  // Stores, branches, system ops: no register write.
    }
}

constexpr std::uint8_t kSp = 13;
constexpr std::uint8_t kLr = 14;

}  // namespace

std::size_t Cfg::reachable_count() const noexcept {
    std::size_t n = 0;
    for (const DecodedWord& w : words) {
        if (w.reachable) ++n;
    }
    return n;
}

Cfg build_cfg(BytesView code, mem::Addr base, mem::Addr entry) {
    Cfg cfg;
    cfg.base = base;
    cfg.entry = entry;
    cfg.tail_bytes = code.size() % 4;

    cfg.words.reserve(code.size() / 4);
    for (std::size_t i = 0; i + 4 <= code.size(); i += 4) {
        DecodedWord w;
        w.raw = static_cast<std::uint32_t>(code[i]) |
                (static_cast<std::uint32_t>(code[i + 1]) << 8) |
                (static_cast<std::uint32_t>(code[i + 2]) << 16) |
                (static_cast<std::uint32_t>(code[i + 3]) << 24);
        w.insn = isa::decode(w.raw);
        w.valid = isa::is_valid_opcode(w.raw);
        cfg.words.push_back(w);
    }

    std::deque<mem::Addr> worklist;
    std::set<mem::Addr> root_set;
    // Constant state at each block entry, met over all incoming edges.
    // Jump/access facts are buffered per block so re-walking a block
    // whose entry state shrank replaces (not duplicates) its facts.
    std::map<mem::Addr, ConstState> entry_state;
    std::map<mem::Addr, std::vector<JumpSite>> block_jumps;
    std::map<mem::Addr, std::vector<MemSite>> block_accesses;

    auto flow_state = [&](mem::Addr target, const ConstState& incoming) {
        if ((target & 3u) != 0 || !cfg.in_image(target)) return;
        auto [it, inserted] = entry_state.try_emplace(target, incoming);
        if (inserted) return;
        const ConstState met = meet(it->second, incoming);
        if (met == it->second) return;
        it->second = met;
        if (cfg.blocks.erase(target) != 0) {
            block_jumps.erase(target);
            block_accesses.erase(target);
            worklist.push_back(target);
        }
    };

    auto add_root = [&](mem::Addr addr) {
        if ((addr & 3u) != 0 || !cfg.in_image(addr)) return;
        // Roots are entered asynchronously (reset, traps): no registers
        // are known there, so their entry state meets with fresh.
        flow_state(addr, ConstState{});
        if (!root_set.insert(addr).second) return;
        cfg.roots.push_back(addr);
        worklist.push_back(addr);
    };
    add_root(entry);

    while (!worklist.empty()) {
        const mem::Addr start = worklist.front();
        worklist.pop_front();
        if (cfg.blocks.count(start) != 0) continue;

        BasicBlock bb;
        bb.start = start;
        ConstState st;
        if (const auto se = entry_state.find(start); se != entry_state.end())
            st = se->second;
        const ConstState entry_snapshot = st;
        std::vector<JumpSite>& bjumps = block_jumps[start];
        std::vector<MemSite>& baccesses = block_accesses[start];
        bjumps.clear();
        baccesses.clear();

        // Stack-growth accounting, split around sp re-materialization.
        std::int64_t grow = 0, peak = 0, grow2 = 0, peak2 = 0;
        bool seen_reset = false;
        auto on_growth = [&](std::int64_t d) {
            if (seen_reset) {
                grow2 += d;
                if (grow2 > peak2) peak2 = grow2;
            } else {
                grow += d;
                if (grow > peak) peak = grow;
            }
        };

        // Links a CFG edge and flows the given constant state into the
        // successor. Call return sites pass fresh (callee may clobber
        // anything); resolved edges pass the post-transfer state.
        auto add_successor = [&](mem::Addr target, const ConstState& out) {
            if ((target & 3u) != 0 || !cfg.in_image(target)) return;
            bb.successors.push_back(target);
            worklist.push_back(target);
            flow_state(target, out);
        };

        mem::Addr pc = start;
        bool open = true;
        while (open) {
            if (!cfg.in_image(pc)) {
                bb.falls_off = true;
                break;
            }
            DecodedWord& w = cfg.words[cfg.index_of(pc)];
            w.reachable = true;
            if (!w.valid) {
                // The opcode pass reports it; execution would trap here.
                pc += 4;
                break;
            }
            const isa::Instruction& insn = w.insn;
            const std::int32_t simm = insn.simm();

            switch (insn.opcode) {
                case Opcode::kBeq:
                case Opcode::kBne:
                case Opcode::kBlt:
                case Opcode::kBge:
                case Opcode::kBltu:
                case Opcode::kBgeu: {
                    const mem::Addr target =
                        pc + static_cast<std::uint32_t>(simm);
                    bjumps.push_back(
                        {pc, target, JumpKind::kBranch, true, false});
                    // Branches write no register: the current state
                    // flows unchanged down both edges.
                    add_successor(target, st);
                    add_successor(pc + 4, st);
                    open = false;
                    break;
                }
                case Opcode::kJal: {
                    const mem::Addr target =
                        pc + static_cast<std::uint32_t>(simm);
                    const bool call = insn.rd == kLr;
                    bjumps.push_back(
                        {pc, target, JumpKind::kDirect, true, call});
                    ConstState out = st;
                    propagate(insn, pc, out);  // Link register write.
                    add_successor(target, out);
                    if (call) add_successor(pc + 4, ConstState{});
                    open = false;
                    break;
                }
                case Opcode::kJalr: {
                    const bool is_return =
                        insn.rd == 0 && insn.rs1 == kLr && simm == 0;
                    if (is_return) {
                        bb.terminal = true;
                    } else if (const auto v = st.get(insn.rs1)) {
                        const mem::Addr target =
                            (*v + static_cast<std::uint32_t>(simm)) & ~3u;
                        const bool call = insn.rd == kLr;
                        bjumps.push_back(
                            {pc, target, JumpKind::kResolved, true, call});
                        ConstState out = st;
                        propagate(insn, pc, out);
                        add_successor(target, out);
                        if (call) add_successor(pc + 4, ConstState{});
                    } else {
                        const bool call = insn.rd == kLr;
                        bjumps.push_back(
                            {pc, 0, JumpKind::kIndirect, false, call});
                        bb.indirect_exit = true;
                        if (call) add_successor(pc + 4, ConstState{});
                    }
                    open = false;
                    break;
                }
                case Opcode::kCsrw: {
                    if ((insn.imm == isa::kCsrMtvec ||
                         insn.imm == isa::kCsrStvec ||
                         insn.imm == isa::kCsrMepc ||
                         insn.imm == isa::kCsrSepc)) {
                        if (const auto v = st.get(insn.rs1)) {
                            bjumps.push_back(
                                {pc, *v, JumpKind::kVector, true, false});
                            add_root(*v);
                        }
                    }
                    break;
                }
                case Opcode::kLw:
                case Opcode::kLh:
                case Opcode::kLb:
                case Opcode::kSw:
                case Opcode::kSh:
                case Opcode::kSb: {
                    if (const auto v = st.get(insn.rs1)) {
                        const bool store = insn.opcode == Opcode::kSw ||
                                           insn.opcode == Opcode::kSh ||
                                           insn.opcode == Opcode::kSb;
                        const std::uint8_t size =
                            (insn.opcode == Opcode::kLw ||
                             insn.opcode == Opcode::kSw)
                                ? 4
                                : (insn.opcode == Opcode::kLh ||
                                   insn.opcode == Opcode::kSh)
                                      ? 2
                                      : 1;
                        baccesses.push_back(
                            {pc, *v + static_cast<std::uint32_t>(simm), size,
                             store});
                    }
                    break;
                }
                case Opcode::kHalt:
                case Opcode::kMret:
                case Opcode::kSret:
                    bb.terminal = true;
                    open = false;
                    break;
                default:
                    break;  // Straight-line instruction.
            }

            if (!open) {
                pc += 4;
                break;
            }

            // Stack effect before the general register update.
            if (insn.opcode == Opcode::kAddi && insn.rd == kSp &&
                insn.rs1 == kSp) {
                on_growth(-static_cast<std::int64_t>(simm));
            } else if (insn.rd == kSp && insn.opcode != Opcode::kSw &&
                       insn.opcode != Opcode::kSh &&
                       insn.opcode != Opcode::kSb) {
                // sp re-materialized (li sp, ...) or clobbered.
                ConstState probe = st;
                propagate(insn, pc, probe);
                if (probe.get(kSp)) {
                    seen_reset = true;
                    grow2 = 0;
                } else {
                    bb.sp_clobbered = true;
                }
            }
            propagate(insn, pc, st);
            pc += 4;
        }

        bb.end = pc;
        bb.net_growth = grow;
        bb.peak_growth = peak;
        bb.stack_reset = seen_reset;
        bb.post_reset_net = grow2;
        bb.post_reset_peak = peak2;
        cfg.blocks.emplace(start, std::move(bb));

        // A self-edge (or a successor that loops back before we
        // finished) may have shrunk this block's own entry state while
        // we walked it; if so the facts above were computed from stale
        // constants — drop the block and re-walk it.
        if (const auto se = entry_state.find(start);
            se != entry_state.end() && !(se->second == entry_snapshot)) {
            cfg.blocks.erase(start);
            block_jumps.erase(start);
            block_accesses.erase(start);
            worklist.push_back(start);
        }
    }

    // Flatten the per-block fact buffers in block-start order so the
    // output is deterministic regardless of worklist scheduling.
    for (const auto& kv : block_jumps)
        cfg.jumps.insert(cfg.jumps.end(), kv.second.begin(), kv.second.end());
    for (const auto& kv : block_accesses)
        cfg.accesses.insert(cfg.accesses.end(), kv.second.begin(),
                            kv.second.end());

    return cfg;
}

}  // namespace cres::analysis
