// Worklist-driven abstract interpreter over the CFG (cfg.h).
//
// Two abstract domains run in one interprocedural fixpoint:
//
//  * a value-range domain — one unsigned interval with a mod-4
//    congruence per register — that proves loads/stores in-bounds of
//    their SegmentMap segment and correctly aligned, and tightens the
//    syntactic worst-case stack bound via loop-bound inference on
//    counted self-loops;
//  * the taint domain (taint.h), seeded at loads that provably read
//    the NIC / DMA / sensor segments and flagged at indirect-jump,
//    store-address and privileged-CSR-write sinks.
//
// The result feeds verifier passes 8–9 and is distilled into the
// ProofAnnotations artifact (report.h) that check-elided execution
// consumes. Proven-safe bits are sound for elision because they are
// derived from block-local states (top at every block entry) whenever
// the image contains computed control flow (jalr/mret/sret), and the
// CPU additionally drops elision between a computed transfer and the
// next superblock boundary (see docs/ANALYSIS.md).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/report.h"
#include "analysis/taint.h"

namespace cres::analysis {

struct SegmentMap;  // verifier.h

/// Unsigned value range [lo, hi] with a power-of-two congruence: every
/// concrete value v satisfies lo <= v <= hi and v ≡ phase (mod align),
/// align in {1, 2, 4}. The congruence survives mod-2^32 wraparound, so
/// alignment proofs outlive bound widening.
struct Interval {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0xffffffffu;
    std::uint8_t align = 1;
    std::uint8_t phase = 0;

    static Interval top() noexcept { return {}; }
    static Interval constant(std::uint32_t v) noexcept {
        return {v, v, 4, static_cast<std::uint8_t>(v & 3u)};
    }
    static Interval range(std::uint32_t lo, std::uint32_t hi) noexcept {
        return {lo, hi, 1, 0};
    }

    [[nodiscard]] bool singleton() const noexcept { return lo == hi; }
    [[nodiscard]] bool is_top() const noexcept {
        return lo == 0 && hi == 0xffffffffu && align == 1;
    }
    /// True when `v` is contained in the concretization.
    [[nodiscard]] bool contains(std::uint32_t v) const noexcept {
        return lo <= v && v <= hi && (v % align) == (phase % align);
    }

    bool operator==(const Interval&) const = default;
};

/// Least upper bound of two intervals.
Interval interval_join(const Interval& a, const Interval& b) noexcept;

/// Abstract machine state at a block boundary: one interval and the
/// taint lattice over the 16 registers, plus the stack-depth interval
/// (bytes grown downward from the entry sp; negative = above entry).
struct AbsState {
    std::array<Interval, 16> regs;
    TaintLattice taint;
    std::int64_t depth_lo = 0;
    std::int64_t depth_hi = 0;
    bool depth_bounded = true;

    AbsState() { regs[0] = Interval::constant(0); }

    void set_reg(unsigned r, const Interval& v) noexcept {
        if (r != 0 && r < 16) regs[r & 15] = v;
    }
    [[nodiscard]] const Interval& reg(unsigned r) const noexcept {
        return regs[r & 15];
    }

    bool operator==(const AbsState&) const = default;
};

/// Verdict for one reachable load/store word, merged over every block
/// context that covers it (overlapping superblocks must all agree for
/// the access to count as proven).
struct AccessCheck {
    mem::Addr at = 0;          ///< Instruction address.
    std::uint32_t size = 0;    ///< Access width in bytes.
    bool is_store = false;
    bool proven = false;       ///< In-bounds + aligned in every context.
    bool provably_oob = false; ///< Whole range violates the map in some context.
    bool bounded = false;      ///< lo/hi below are meaningful.
    std::uint32_t lo = 0;      ///< Merged effective-address bounds.
    std::uint32_t hi = 0;
    std::string segment;       ///< Proving segment name ("" when unproven).
};

/// Full fixpoint result, consumed by verifier passes 8–9 and distilled
/// into ProofAnnotations for the translator.
struct AbsIntResult {
    /// Interprocedural entry state per basic block (keyed by start pc).
    std::map<mem::Addr, AbsState> block_entry;
    /// Per-access verdicts keyed by word index (Cfg::index_of).
    std::map<std::size_t, AccessCheck> checks;
    /// Deduplicated untrusted-input flows, ordered by sink address.
    std::vector<TaintTrace> taint_traces;
    /// Elision-grade proof artifact (safe bits + stack certificates).
    ProofAnnotations proofs;
    /// False when the iteration cap fired; all proofs are then dropped.
    bool converged = true;
    /// True when a reachable jalr/mret/sret makes runtime entry states
    /// unpredictable; proofs then use block-local (top-entry) states.
    bool computed_flow = false;
    std::size_t iterations = 0;  ///< Block visits spent in the fixpoint.
};

/// Run the abstract interpreter over a built CFG. `segments` supplies
/// the memory map the bounds proofs are checked against — admission
/// uses the active policy's map, while the translator always proves
/// against the canonical SoC map so artifacts stay content-addressed.
AbsIntResult analyze_image(const Cfg& cfg, const SegmentMap& segments);

}  // namespace cres::analysis
