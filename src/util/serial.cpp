#include "util/serial.h"

#include "util/error.h"

namespace cres {

void BinaryWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void BinaryWriter::u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v & 0xff));
    u8(static_cast<std::uint8_t>(v >> 8));
}

void BinaryWriter::u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xffff));
    u16(static_cast<std::uint16_t>(v >> 16));
}

void BinaryWriter::u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v & 0xffffffffull));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void BinaryWriter::raw(BytesView data) { append(buf_, data); }

void BinaryWriter::blob(BytesView data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
}

void BinaryWriter::str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryReader::require(std::size_t n) const {
    if (remaining() < n) {
        throw Error("BinaryReader: truncated input");
    }
}

std::uint8_t BinaryReader::u8() {
    require(1);
    return data_[pos_++];
}

// Multi-byte reads check bounds up front so a truncated input throws
// without consuming a partial value: a reader that survives the throw
// (parser resynchronization, speculative decode) stays at the field
// boundary instead of mid-field.
std::uint16_t BinaryReader::u16() {
    require(2);
    const std::uint16_t lo = data_[pos_];
    const std::uint16_t hi = data_[pos_ + 1];
    pos_ += 2;
    return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t BinaryReader::u32() {
    require(4);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
}

std::uint64_t BinaryReader::u64() {
    require(8);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
}

Bytes BinaryReader::raw(std::size_t n) {
    require(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
}

Bytes BinaryReader::blob() {
    const std::uint32_t n = u32();
    return raw(n);
}

std::string BinaryReader::str() {
    const Bytes b = blob();
    return std::string(b.begin(), b.end());
}

}  // namespace cres
