// Minimal leveled logger. The default sink is stderr; tests install a
// capturing sink. Logging is routed through one encapsulated global so
// deeply nested simulation components do not need a logger parameter.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace cres {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Returns a short label such as "INFO".
std::string_view log_level_name(LogLevel level) noexcept;

class Logger {
public:
    using Sink = std::function<void(LogLevel, std::string_view)>;

    /// Global logger instance (encapsulated singleton; see I.30).
    static Logger& instance();

    void set_level(LogLevel level) noexcept {
        level_.store(level, std::memory_order_relaxed);
    }
    [[nodiscard]] LogLevel level() const noexcept {
        return level_.load(std::memory_order_relaxed);
    }

    /// Replaces the output sink; pass nullptr to restore stderr. Safe
    /// to call while other threads are logging: the swap happens under
    /// the same mutex that serialises write(), so no sink is ever torn
    /// down mid-call.
    void set_sink(Sink sink);

    [[nodiscard]] bool enabled(LogLevel level) const noexcept {
        const LogLevel current = this->level();
        return level >= current && current != LogLevel::kOff;
    }

    void write(LogLevel level, std::string_view message);

private:
    Logger();

    std::atomic<LogLevel> level_{LogLevel::kWarn};
    Sink sink_;
    std::mutex write_mutex_;  ///< Guards sink_ (calls and swaps).
};

namespace detail {

template <typename... Args>
void log_at(LogLevel level, Args&&... args) {
    Logger& logger = Logger::instance();
    if (!logger.enabled(level)) return;
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    logger.write(level, os.str());
}

}  // namespace detail

template <typename... Args>
void log_trace(Args&&... args) {
    detail::log_at(LogLevel::kTrace, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(Args&&... args) {
    detail::log_at(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
    detail::log_at(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
    detail::log_at(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
    detail::log_at(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace cres
