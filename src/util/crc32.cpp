#include "util/crc32.h"

#include <array>

namespace cres {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
        }
        table[i] = c;
    }
    return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(BytesView data) noexcept {
    std::uint32_t c = state_;
    for (std::uint8_t b : data) {
        c = kTable[(c ^ b) & 0xff] ^ (c >> 8);
    }
    state_ = c;
}

std::uint32_t crc32(BytesView data) noexcept {
    Crc32 c;
    c.update(data);
    return c.value();
}

}  // namespace cres
