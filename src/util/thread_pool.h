// A small reusable worker pool for deterministic data-parallel sweeps.
//
// The pool exposes exactly one primitive, parallel_for(count, body):
// body(i) is invoked exactly once for every index in [0, count), with
// each index claimed by exactly one thread. Callers that need
// determinism keep per-index state disjoint (the fleet gives every
// device-node to one worker per phase) and reduce results in index
// order afterwards — the pool itself imposes no ordering on execution,
// only exclusive ownership of each index.
//
// A pool of size 1 spawns no threads at all: parallel_for runs inline
// on the caller, byte-identical to a plain serial loop. This is the
// anchor of the fleet's determinism contract (threads=1 reproduces the
// historical serial behaviour exactly, and any thread count must match
// it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cres {

class ThreadPool {
public:
    /// Spawns resolve_thread_count(threads) - 1 workers; the caller of
    /// parallel_for always participates as the remaining thread.
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total concurrency of a parallel_for (workers + calling thread).
    [[nodiscard]] std::size_t thread_count() const noexcept {
        return workers_.size() + 1;
    }

    /// Maps the user-facing knob onto a concrete thread count:
    /// 0 = hardware concurrency (never less than 1).
    [[nodiscard]] static std::size_t resolve_thread_count(
        std::size_t requested) noexcept;

    /// Runs body(i) exactly once for every i in [0, count). Blocks
    /// until all indices are done. If any invocation throws, the first
    /// exception (in completion order) is rethrown on the caller after
    /// the sweep drains; remaining unclaimed indices are skipped.
    /// Not reentrant: one parallel_for at a time per pool.
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t)>& body);

private:
    void worker_loop();
    /// Claims indices from next_index_ until exhausted (or poisoned by
    /// an exception) and runs body on each.
    void run_slice(const std::function<void(std::size_t)>& body,
                   std::size_t count);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    // All fields below are guarded by mutex_ except next_index_.
    std::uint64_t generation_ = 0;  ///< Bumped per parallel_for.
    bool shutdown_ = false;
    std::size_t job_count_ = 0;
    const std::function<void(std::size_t)>* job_body_ = nullptr;
    std::size_t workers_active_ = 0;
    std::exception_ptr first_error_;

    std::atomic<std::size_t> next_index_{0};
};

}  // namespace cres
