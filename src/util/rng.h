// Deterministic pseudo-random number generation for simulation and
// test reproducibility. NOT a cryptographic generator — the crypto
// library provides a ChaCha20-based DRBG for key material.
#pragma once

#include <cstdint>
#include <limits>

#include "util/bytes.h"

namespace cres {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
public:
    explicit Rng(std::uint64_t seed) noexcept;

    /// Next raw 64-bit value.
    std::uint64_t next() noexcept;

    /// Uniform in [0, bound). bound == 0 returns 0.
    std::uint64_t uniform(std::uint64_t bound) noexcept;

    /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

    /// Uniform double in [0, 1).
    double real() noexcept;

    /// True with probability p (clamped to [0,1]).
    bool chance(double p) noexcept;

    /// Fills the span with pseudo-random bytes.
    void fill(std::span<std::uint8_t> out) noexcept;

    /// Returns n pseudo-random bytes.
    Bytes bytes(std::size_t n);

    /// Derives an independent child generator (for per-component streams).
    Rng fork() noexcept;

private:
    std::uint64_t state_[4];
};

}  // namespace cres
