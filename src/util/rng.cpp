#include "util/rng.h"

namespace cres {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return v % bound;
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + uniform(hi - lo + 1);
}

double Rng::real() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return real() < p;
}

void Rng::fill(std::span<std::uint8_t> out) noexcept {
    std::size_t i = 0;
    while (i < out.size()) {
        std::uint64_t v = next();
        for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
            out[i] = static_cast<std::uint8_t>(v & 0xff);
            v >>= 8;
        }
    }
}

Bytes Rng::bytes(std::size_t n) {
    Bytes out(n);
    fill(out);
    return out;
}

Rng Rng::fork() noexcept {
    return Rng(next());
}

}  // namespace cres
