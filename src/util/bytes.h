// Byte-buffer utilities shared by every library in the platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cres {

/// Owning byte buffer used across module boundaries.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view of bytes.
using BytesView = std::span<const std::uint8_t>;

/// Encodes bytes as lowercase hex ("deadbeef").
std::string to_hex(BytesView data);

/// Decodes a hex string (case-insensitive, no separators).
/// Throws cres::Error on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copies a string's characters into a byte buffer (no terminator).
Bytes to_bytes(std::string_view text);

/// Interprets bytes as text (lossy for non-printable content).
std::string to_string(BytesView data);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenates buffers left to right.
Bytes concat(std::initializer_list<BytesView> parts);

/// Overwrites the buffer with zeros. Used for key zeroisation; the write
/// is performed through a volatile pointer so it is not elided.
void secure_wipe(Bytes& data) noexcept;

/// Overwrites a raw span with zeros (volatile, not elided).
void secure_wipe(std::span<std::uint8_t> data) noexcept;

/// Constant-time equality: runtime independent of where buffers differ.
/// Returns false for size mismatch (size itself is not secret).
bool ct_equal(BytesView a, BytesView b) noexcept;

}  // namespace cres
