// Exception hierarchy used across the platform. Each library throws its
// own subclass so callers can distinguish failure domains at API
// boundaries while still catching cres::Error generically.
#pragma once

#include <stdexcept>
#include <string>

namespace cres {

/// Base class of every error thrown by the platform.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Cryptographic failures: bad key sizes, verification failure, etc.
class CryptoError : public Error {
public:
    using Error::Error;
};

/// Simulation-kernel failures: scheduling in the past, missing agents.
class SimError : public Error {
public:
    using Error::Error;
};

/// ISA failures: assembler syntax errors, invalid encodings.
class IsaError : public Error {
public:
    using Error::Error;
};

/// Memory-system failures: overlapping mappings, bad configuration.
class MemError : public Error {
public:
    using Error::Error;
};

/// Secure-boot / update failures: bad images, verification failure.
class BootError : public Error {
public:
    using Error::Error;
};

/// Policy compilation / evaluation failures.
class PolicyError : public Error {
public:
    using Error::Error;
};

/// Network / messaging failures.
class NetError : public Error {
public:
    using Error::Error;
};

/// Platform assembly / scenario configuration failures.
class PlatformError : public Error {
public:
    using Error::Error;
};

}  // namespace cres
