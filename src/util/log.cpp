#include "util/log.h"

#include <iostream>

namespace cres {

std::string_view log_level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

Logger::Logger()
    : sink_([](LogLevel level, std::string_view msg) {
          std::cerr << "[" << log_level_name(level) << "] " << msg << "\n";
      }) {}

Logger& Logger::instance() {
    static Logger logger;
    return logger;
}

void Logger::set_sink(Sink sink) {
    if (!sink) {
        sink = [](LogLevel level, std::string_view msg) {
            std::cerr << "[" << log_level_name(level) << "] " << msg << "\n";
        };
    }
    // Swap under the write mutex: a concurrent write() either finishes
    // with the old sink or starts with the new one, never a torn mix.
    std::lock_guard<std::mutex> lock(write_mutex_);
    sink_ = std::move(sink);
}

void Logger::write(LogLevel level, std::string_view message) {
    // Fleet phases log from worker threads; keep lines whole.
    std::lock_guard<std::mutex> lock(write_mutex_);
    sink_(level, message);
}

}  // namespace cres
