#include "util/thread_pool.h"

namespace cres {

std::size_t ThreadPool::resolve_thread_count(std::size_t requested) noexcept {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
    const std::size_t total = resolve_thread_count(threads);
    workers_.reserve(total - 1);
    for (std::size_t i = 0; i + 1 < total; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_slice(const std::function<void(std::size_t)>& body,
                           std::size_t count) {
    for (;;) {
        const std::size_t i =
            next_index_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
            body(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) first_error_ = std::current_exception();
            // Poison the counter so everyone drains quickly.
            next_index_.store(count, std::memory_order_relaxed);
            return;
        }
    }
}

void ThreadPool::worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)>* body = nullptr;
        std::size_t count = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_) return;
            seen = generation_;
            body = job_body_;
            count = job_count_;
        }
        run_slice(*body, count);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--workers_active_ == 0) done_cv_.notify_all();
        }
    }
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    if (workers_.empty()) {
        // Pool of one: plain serial loop on the caller, no atomics, no
        // signalling — bit-identical to the historical serial path.
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_count_ = count;
        job_body_ = &body;
        first_error_ = nullptr;
        next_index_.store(0, std::memory_order_relaxed);
        workers_active_ = workers_.size();
        ++generation_;
    }
    start_cv_.notify_all();

    run_slice(body, count);

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
    job_body_ = nullptr;
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

}  // namespace cres
