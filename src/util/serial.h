// Little-endian binary serialization used by the firmware image format,
// attestation reports, evidence records and network frames.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace cres {

/// Appends little-endian primitives and length-prefixed blobs to a buffer.
class BinaryWriter {
public:
    BinaryWriter() = default;

    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /// Raw bytes, no length prefix.
    void raw(BytesView data);
    /// u32 length prefix followed by the bytes.
    void blob(BytesView data);
    /// u32 length prefix followed by the characters.
    void str(std::string_view s);

    [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
    [[nodiscard]] Bytes take() noexcept { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

    /// Drops the contents but keeps the capacity, so a writer can be
    /// reused allocation-free on hot paths.
    void clear() noexcept { buf_.clear(); }
    /// Pre-allocates capacity for upcoming writes.
    void reserve(std::size_t n) { buf_.reserve(n); }

private:
    Bytes buf_;
};

/// Reads back what BinaryWriter wrote. Throws cres::Error on underflow
/// or oversized length prefixes, so malformed inputs cannot crash.
class BinaryReader {
public:
    explicit BinaryReader(BytesView data) noexcept : data_(data) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    /// Reads exactly n raw bytes.
    Bytes raw(std::size_t n);
    /// Reads a u32-length-prefixed blob.
    Bytes blob();
    /// Reads a u32-length-prefixed string.
    std::string str();

    [[nodiscard]] std::size_t remaining() const noexcept {
        return data_.size() - pos_;
    }
    [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

private:
    void require(std::size_t n) const;

    BytesView data_;
    std::size_t pos_ = 0;
};

}  // namespace cres
