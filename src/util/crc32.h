// CRC-32 (IEEE 802.3 polynomial) used for non-security integrity checks
// such as UART framing and simulation trace checkpoints. Security-grade
// integrity uses SHA-256 from the crypto library.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace cres {

/// Computes the CRC-32 of `data` (init 0xFFFFFFFF, reflected, final xor).
std::uint32_t crc32(BytesView data) noexcept;

/// Incremental CRC-32 for streamed data.
class Crc32 {
public:
    void update(BytesView data) noexcept;
    [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

private:
    std::uint32_t state_ = 0xffffffffu;
};

}  // namespace cres
