#include "mem/mpu.h"

#include "util/error.h"

namespace cres::mem {

std::string access_type_name(AccessType t) {
    switch (t) {
        case AccessType::kRead: return "read";
        case AccessType::kWrite: return "write";
        case AccessType::kExecute: return "execute";
    }
    return "?";
}

void Mpu::add_region(const MpuRegion& region) {
    if (locked_) throw MemError("Mpu: locked");
    if (region.size == 0) throw MemError("Mpu: zero-sized region");
    if (region.write && region.execute) {
        throw MemError("Mpu: region " + region.name +
                       " violates W^X (writable and executable)");
    }
    regions_.push_back(region);
    ++generation_;
}

void Mpu::clear() {
    if (locked_) throw MemError("Mpu: locked");
    regions_.clear();
    ++generation_;
}

void Mpu::reset() noexcept {
    locked_ = false;
    enabled_ = false;
    regions_.clear();
    ++generation_;
}

MpuDecision Mpu::check(Addr addr, std::uint32_t size, AccessType type,
                       bool privileged) const noexcept {
    if (!enabled_) return MpuDecision{true, ""};
    for (const auto& r : regions_) {
        const Addr end = r.base + r.size;
        if (addr < r.base || addr + size > end) continue;
        if (!privileged && !r.user) continue;
        const bool permitted = (type == AccessType::kRead && r.read) ||
                               (type == AccessType::kWrite && r.write) ||
                               (type == AccessType::kExecute && r.execute);
        if (permitted) return MpuDecision{true, r.name};
        ++faults_;
        return MpuDecision{false, r.name};
    }
    ++faults_;
    return MpuDecision{false, ""};
}

bool Mpu::allows(Addr addr, std::uint32_t size, AccessType type,
                 bool privileged) const noexcept {
    if (!enabled_) return true;
    for (const auto& r : regions_) {
        const Addr end = r.base + r.size;
        if (addr < r.base || addr + size > end) continue;
        if (!privileged && !r.user) continue;
        return (type == AccessType::kRead && r.read) ||
               (type == AccessType::kWrite && r.write) ||
               (type == AccessType::kExecute && r.execute);
    }
    return false;
}

}  // namespace cres::mem
