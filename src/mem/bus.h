// System bus / interconnect with address decoding, transaction security
// attributes (TrustZone-style secure/non-secure), per-region access
// control, observers (where bus monitors attach) and dynamic isolation
// (the Active Response Manager's "physically isolate a compromised
// resource" countermeasure fences regions off here).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace cres::mem {

using Addr = std::uint32_t;

/// Bus masters, carried on every transaction for attribution.
enum class Master : std::uint8_t {
    kCpu,
    kDma,
    kNic,
    kDebug,
    kSsm,      ///< The security manager's private port.
    kAttacker  ///< Used by physical-tamper attack models.
};

std::string master_name(Master m);

enum class BusOp : std::uint8_t { kRead, kWrite, kFetch };

/// Transaction attributes (the AxPROT-like sideband signals).
struct BusAttr {
    Master master = Master::kCpu;
    bool secure = false;      ///< Secure-world transaction.
    bool privileged = false;  ///< Machine-mode transaction.
};

enum class BusResponse : std::uint8_t {
    kOk,
    kDecodeError,        ///< No target at this address.
    kSecurityViolation,  ///< Non-secure access to a secure region.
    kIsolated,           ///< Region fenced off by the response manager.
    kReadOnly,           ///< Write to a read-only region.
    kDeviceError,        ///< Target-specific failure.
};

std::string response_name(BusResponse r);

/// A completed transaction as seen by bus observers.
struct BusTransaction {
    BusOp op = BusOp::kRead;
    Addr addr = 0;
    std::uint32_t size = 4;  ///< 1, 2 or 4 bytes.
    std::uint32_t data = 0;  ///< Written value, or value read on kOk.
    BusAttr attr;
    BusResponse response = BusResponse::kOk;
    std::string region;  ///< Name of the decoded region ("" on decode error).
};

/// A slave device mapped onto the bus. Offsets are region-relative.
class BusTarget {
public:
    virtual ~BusTarget() = default;
    virtual std::string_view name() const = 0;
    /// Reads `size` bytes at `offset` into `out` (little-endian packed).
    virtual BusResponse read(Addr offset, std::uint32_t size,
                             std::uint32_t& out, const BusAttr& attr) = 0;
    virtual BusResponse write(Addr offset, std::uint32_t size,
                              std::uint32_t value, const BusAttr& attr) = 0;
    /// Latency (cycles) of the most recent access. Timing-variable
    /// targets (caches) override this; it is what makes timing side
    /// channels architecturally real in this model.
    [[nodiscard]] virtual std::uint32_t last_latency() const { return 1; }
};

/// Observer notified of every transaction (after completion). Bus
/// monitors and DIFT trackers attach here.
class BusObserver {
public:
    virtual ~BusObserver() = default;
    virtual void on_transaction(const BusTransaction& txn) = 0;
};

/// Static properties of a mapped region.
struct RegionConfig {
    std::string name;
    Addr base = 0;
    Addr size = 0;
    bool secure_only = false;  ///< Reject non-secure transactions.
    bool read_only = false;    ///< Reject all writes.
};

/// The interconnect.
class Bus {
public:
    /// Maps a target. Throws MemError on overlap or zero size.
    void map(const RegionConfig& config, BusTarget& target);

    /// Issues a transaction; returns the response. Reads deliver the
    /// value through `io` (in: write data, out: read data).
    BusResponse access(BusOp op, Addr addr, std::uint32_t size,
                       std::uint32_t& io, const BusAttr& attr);

    /// Convenience wrappers (return nullopt on any non-OK response).
    std::optional<std::uint32_t> read(Addr addr, std::uint32_t size,
                                      const BusAttr& attr);
    BusResponse write(Addr addr, std::uint32_t size, std::uint32_t value,
                      const BusAttr& attr);

    /// Bulk helpers used by loaders and attestation (bypass observers
    /// when `quiet`, used only by test fixtures and the boot loader).
    bool read_block(Addr addr, std::span<std::uint8_t> out,
                    const BusAttr& attr, bool quiet = false);
    bool write_block(Addr addr, BytesView data, const BusAttr& attr,
                     bool quiet = false);

    void add_observer(BusObserver* observer);
    void remove_observer(BusObserver* observer) noexcept;

    /// Write-invalidation watch: `watch` fires after any successful bus
    /// write overlapping [base, base+size) — by any master, including
    /// DMA and physical-tamper models. The CPU's translation engine
    /// registers its code window here so self-modifying code demotes it
    /// to the interpreter. One watch slot (the executing core owns it);
    /// the callback may clear or replace the watch from within itself.
    using WriteWatch = std::function<void(Addr addr, std::uint32_t size)>;
    void set_write_watch(Addr base, Addr size, WriteWatch watch);
    void clear_write_watch() noexcept;

    /// Silent fetch probe: true when a fetch of the whole range
    /// [addr, addr+size) with `attr` would currently succeed (single
    /// region, not isolated, security attributes satisfied). No
    /// transaction is issued: observers see nothing and no counters
    /// move. The CPU's translation fast path uses this (together with
    /// config_generation()) to elide per-instruction fetch checks.
    [[nodiscard]] bool fetch_allowed(Addr addr, std::uint32_t size,
                                     const BusAttr& attr) const noexcept;

    /// Bumped on every interconnect configuration change (map,
    /// isolate_region, set_secure_only). Consumers caching decode or
    /// permission results revalidate when this moves.
    [[nodiscard]] std::uint64_t config_generation() const noexcept {
        return config_generation_;
    }

    /// Fences a region off: every subsequent access returns kIsolated.
    /// Returns false when the region name is unknown.
    bool isolate_region(const std::string& name, bool isolated = true);

    /// True when the named region is currently isolated.
    [[nodiscard]] bool is_isolated(const std::string& name) const;

    /// Changes a region's secure_only attribute at runtime. This models
    /// the reconfigurable-logic attack surface of [34]: a compromised
    /// configuration port can clear security attributes. Returns false
    /// for unknown regions.
    bool set_secure_only(const std::string& name, bool secure_only);

    /// Region metadata (for the identify/risk-assessment function).
    [[nodiscard]] std::vector<RegionConfig> regions() const;

    [[nodiscard]] std::uint64_t transaction_count() const noexcept {
        return transactions_;
    }

    /// Latency of the most recent completed access (error responses
    /// report 1). The CPU's stall model consumes this.
    [[nodiscard]] std::uint32_t last_latency() const noexcept {
        return last_latency_;
    }

private:
    struct Mapping {
        RegionConfig config;
        BusTarget* target = nullptr;
        bool isolated = false;
    };

    Mapping* decode(Addr addr, std::uint32_t size);
    [[nodiscard]] const Mapping* decode_const(Addr addr,
                                              std::uint32_t size) const;
    void notify(const BusTransaction& txn);
    void fire_write_watch(Addr addr, std::uint32_t size);

    std::vector<Mapping> mappings_;
    std::vector<BusObserver*> observers_;
    std::uint64_t transactions_ = 0;
    std::uint32_t last_latency_ = 1;
    std::uint64_t config_generation_ = 0;

    Addr watch_base_ = 0;
    Addr watch_size_ = 0;
    WriteWatch watch_;
};

}  // namespace cres::mem
