// Memory Protection Unit. The CPU consults it on every access before
// the transaction reaches the bus. Supports region permissions (R/W/X,
// user-accessible), an enable switch, and locking (after the secure
// boot stage locks the MPU, reconfiguration requires reset).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/bus.h"

namespace cres::mem {

enum class AccessType : std::uint8_t { kRead, kWrite, kExecute };

std::string access_type_name(AccessType t);

struct MpuRegion {
    std::string name;
    Addr base = 0;
    Addr size = 0;
    bool read = false;
    bool write = false;
    bool execute = false;
    bool user = false;  ///< Accessible from unprivileged mode.
};

struct MpuDecision {
    bool allowed = false;
    std::string region;  ///< Matching region name, "" when unmapped.
};

class Mpu {
public:
    /// Adds a region. Throws MemError when locked, on zero size, or
    /// when the region is both writable and executable (W^X is a
    /// platform invariant the monitors assume).
    void add_region(const MpuRegion& region);

    /// Removes all regions. Throws MemError when locked.
    void clear();

    /// When disabled every access is allowed (pre-boot state).
    void set_enabled(bool enabled) noexcept {
        enabled_ = enabled;
        ++generation_;
    }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    /// Prevents further configuration changes until reset().
    void lock() noexcept { locked_ = true; }
    [[nodiscard]] bool locked() const noexcept { return locked_; }

    /// Clears regions and unlocks (power-on reset).
    void reset() noexcept;

    /// Checks an access. Privileged mode may use non-user regions.
    [[nodiscard]] MpuDecision check(Addr addr, std::uint32_t size,
                                    AccessType type,
                                    bool privileged) const noexcept;

    /// Silent permission probe: same verdict as check() but never
    /// counted as a fault. Used by the translation engine to validate
    /// its execute-permission cache without polluting the memory
    /// monitor's telemetry with speculative denials.
    [[nodiscard]] bool allows(Addr addr, std::uint32_t size, AccessType type,
                              bool privileged) const noexcept;

    /// Bumped on every configuration change (region add/clear, enable
    /// toggle, reset). Consumers caching MPU-derived permissions (the
    /// CPU's translation fast path) revalidate when this moves.
    [[nodiscard]] std::uint64_t generation() const noexcept {
        return generation_;
    }

    [[nodiscard]] const std::vector<MpuRegion>& regions() const noexcept {
        return regions_;
    }

    /// Count of denied accesses (telemetry for the memory monitor).
    [[nodiscard]] std::uint64_t fault_count() const noexcept {
        return faults_;
    }

private:
    std::vector<MpuRegion> regions_;
    bool enabled_ = false;
    bool locked_ = false;
    std::uint64_t generation_ = 0;
    mutable std::uint64_t faults_ = 0;
};

}  // namespace cres::mem
