// RAM and ROM bus targets backed by lazily materialized 4 KiB pages.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/bus.h"
#include "util/bytes.h"

namespace cres::mem {

/// Little-endian byte-addressable memory. With `writable == false` the
/// device rejects bus writes (ROM) but can still be programmed through
/// the load() back door (the factory provisioning path).
///
/// Storage is paged and copy-on-write: pages start unmaterialized
/// (reading as the fill byte, default 0) and are allocated on first
/// write. A shared read-only backing image (set_backing) may supply the
/// initial contents of a byte range — fleet nodes running the same
/// firmware share one image; the first guest write to a backed page
/// promotes exactly that page to a private copy. An untouched node
/// therefore costs page-table overhead only, not a full RAM copy.
class Ram : public BusTarget {
public:
    static constexpr std::size_t kPageSize = 4096;

    Ram(std::string name, std::size_t size, bool writable = true);

    std::string_view name() const override { return name_; }

    BusResponse read(Addr offset, std::uint32_t size, std::uint32_t& out,
                     const BusAttr& attr) override;
    BusResponse write(Addr offset, std::uint32_t size, std::uint32_t value,
                      const BusAttr& attr) override;

    /// Direct (off-bus) image load at `offset`. Throws MemError on
    /// overflow. Models factory programming / debugger load.
    void load(Addr offset, BytesView image);

    /// Direct (off-bus) readback, e.g. for test assertions.
    [[nodiscard]] Bytes dump(Addr offset, std::size_t length) const;

    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    /// Fills the memory with a byte (models power-on or scrubbing).
    /// Drops all private pages and any shared backing.
    void fill(std::uint8_t value) noexcept;

    /// Installs `image` as the shared read-only backing for
    /// [offset, offset + image size): unwritten bytes in that range
    /// read from the shared image; a bus write promotes the touched
    /// page to a private copy. Replaces any previous backing and makes
    /// the range read exactly as `image` (reload semantics, like
    /// load()). Pass nullptr/empty to detach.
    void set_backing(std::shared_ptr<const Bytes> image, Addr offset = 0);

    /// True when [offset, offset + expected size) reads exactly as
    /// `expected`, without materializing anything. False when the
    /// range is out of bounds.
    [[nodiscard]] bool matches(Addr offset, BytesView expected) const noexcept;

    /// Privately materialized pages (memory-diet telemetry).
    [[nodiscard]] std::size_t resident_pages() const noexcept;
    [[nodiscard]] std::size_t resident_bytes() const noexcept {
        return resident_pages() * kPageSize;
    }
    [[nodiscard]] bool has_backing() const noexcept {
        return backing_ != nullptr;
    }

private:
    /// Initial value of an unwritten byte (shared image or fill byte).
    [[nodiscard]] std::uint8_t background_byte(std::size_t addr) const noexcept;
    [[nodiscard]] std::uint8_t read_byte(std::size_t addr) const noexcept;
    std::uint8_t* materialize(std::size_t page);

    std::string name_;
    std::size_t size_;
    bool writable_;
    std::uint8_t fill_ = 0;
    std::size_t backing_offset_ = 0;
    std::shared_ptr<const Bytes> backing_;
    std::vector<std::unique_ptr<std::uint8_t[]>> pages_;
};

}  // namespace cres::mem
