// RAM and ROM bus targets backed by an in-process byte array.
#pragma once

#include <string>

#include "mem/bus.h"
#include "util/bytes.h"

namespace cres::mem {

/// Little-endian byte-addressable memory. With `writable == false` the
/// device rejects bus writes (ROM) but can still be programmed through
/// the load() back door (the factory provisioning path).
class Ram : public BusTarget {
public:
    Ram(std::string name, std::size_t size, bool writable = true);

    std::string_view name() const override { return name_; }

    BusResponse read(Addr offset, std::uint32_t size, std::uint32_t& out,
                     const BusAttr& attr) override;
    BusResponse write(Addr offset, std::uint32_t size, std::uint32_t value,
                      const BusAttr& attr) override;

    /// Direct (off-bus) image load at `offset`. Throws MemError on
    /// overflow. Models factory programming / debugger load.
    void load(Addr offset, BytesView image);

    /// Direct (off-bus) readback, e.g. for test assertions.
    [[nodiscard]] Bytes dump(Addr offset, std::size_t length) const;

    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] const Bytes& data() const noexcept { return data_; }

    /// Fills the memory with a byte (models power-on or scrubbing).
    void fill(std::uint8_t value) noexcept;

private:
    std::string name_;
    Bytes data_;
    bool writable_;
};

}  // namespace cres::mem
