#include "mem/ram.h"

#include <algorithm>

#include "util/error.h"

namespace cres::mem {

Ram::Ram(std::string name, std::size_t size, bool writable)
    : name_(std::move(name)), data_(size, 0), writable_(writable) {
    if (size == 0) throw MemError("Ram: zero size");
}

BusResponse Ram::read(Addr offset, std::uint32_t size, std::uint32_t& out,
                      const BusAttr& /*attr*/) {
    if (offset + size > data_.size()) return BusResponse::kDeviceError;
    std::uint32_t value = 0;
    for (std::uint32_t i = 0; i < size; ++i) {
        value |= static_cast<std::uint32_t>(data_[offset + i]) << (8 * i);
    }
    out = value;
    return BusResponse::kOk;
}

BusResponse Ram::write(Addr offset, std::uint32_t size, std::uint32_t value,
                       const BusAttr& /*attr*/) {
    if (!writable_) return BusResponse::kReadOnly;
    if (offset + size > data_.size()) return BusResponse::kDeviceError;
    for (std::uint32_t i = 0; i < size; ++i) {
        data_[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
    return BusResponse::kOk;
}

void Ram::load(Addr offset, BytesView image) {
    if (offset + image.size() > data_.size()) {
        throw MemError("Ram::load: image exceeds memory bounds in " + name_);
    }
    std::copy(image.begin(), image.end(),
              data_.begin() + static_cast<std::ptrdiff_t>(offset));
}

Bytes Ram::dump(Addr offset, std::size_t length) const {
    if (offset + length > data_.size()) {
        throw MemError("Ram::dump: range exceeds memory bounds in " + name_);
    }
    return Bytes(data_.begin() + static_cast<std::ptrdiff_t>(offset),
                 data_.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

void Ram::fill(std::uint8_t value) noexcept {
    std::fill(data_.begin(), data_.end(), value);
}

}  // namespace cres::mem
