#include "mem/ram.h"

#include <algorithm>

#include "util/error.h"

namespace cres::mem {

Ram::Ram(std::string name, std::size_t size, bool writable)
    : name_(std::move(name)),
      size_(size),
      writable_(writable),
      pages_((size + kPageSize - 1) / kPageSize) {
    if (size == 0) throw MemError("Ram: zero size");
}

std::uint8_t Ram::background_byte(std::size_t addr) const noexcept {
    if (backing_ != nullptr && addr >= backing_offset_ &&
        addr - backing_offset_ < backing_->size()) {
        return (*backing_)[addr - backing_offset_];
    }
    return fill_;
}

std::uint8_t Ram::read_byte(std::size_t addr) const noexcept {
    const std::uint8_t* page = pages_[addr / kPageSize].get();
    if (page != nullptr) return page[addr % kPageSize];
    return background_byte(addr);
}

std::uint8_t* Ram::materialize(std::size_t page) {
    std::unique_ptr<std::uint8_t[]>& slot = pages_[page];
    if (slot == nullptr) {
        slot = std::make_unique<std::uint8_t[]>(kPageSize);
        const std::size_t base = page * kPageSize;
        const std::size_t used = std::min(kPageSize, size_ - base);
        for (std::size_t i = 0; i < used; ++i) {
            slot[i] = background_byte(base + i);
        }
        std::fill(slot.get() + used, slot.get() + kPageSize,
                  std::uint8_t{0});
    }
    return slot.get();
}

BusResponse Ram::read(Addr offset, std::uint32_t size, std::uint32_t& out,
                      const BusAttr& /*attr*/) {
    if (offset + size > size_) return BusResponse::kDeviceError;
    const std::size_t in_page = offset % kPageSize;
    std::uint32_t value = 0;
    const std::uint8_t* page = pages_[offset / kPageSize].get();
    if (page != nullptr && in_page + size <= kPageSize) {
        for (std::uint32_t i = 0; i < size; ++i) {
            value |= static_cast<std::uint32_t>(page[in_page + i]) << (8 * i);
        }
    } else {
        for (std::uint32_t i = 0; i < size; ++i) {
            value |= static_cast<std::uint32_t>(read_byte(offset + i))
                     << (8 * i);
        }
    }
    out = value;
    return BusResponse::kOk;
}

BusResponse Ram::write(Addr offset, std::uint32_t size, std::uint32_t value,
                       const BusAttr& /*attr*/) {
    if (!writable_) return BusResponse::kReadOnly;
    if (offset + size > size_) return BusResponse::kDeviceError;
    const std::size_t in_page = offset % kPageSize;
    if (in_page + size <= kPageSize) {
        std::uint8_t* page = materialize(offset / kPageSize);
        for (std::uint32_t i = 0; i < size; ++i) {
            page[in_page + i] = static_cast<std::uint8_t>(value >> (8 * i));
        }
    } else {
        for (std::uint32_t i = 0; i < size; ++i) {
            const std::size_t addr = offset + i;
            materialize(addr / kPageSize)[addr % kPageSize] =
                static_cast<std::uint8_t>(value >> (8 * i));
        }
    }
    return BusResponse::kOk;
}

void Ram::load(Addr offset, BytesView image) {
    if (offset + image.size() > size_) {
        throw MemError("Ram::load: image exceeds memory bounds in " + name_);
    }
    for (std::size_t i = 0; i < image.size();) {
        const std::size_t addr = offset + i;
        std::uint8_t* page = materialize(addr / kPageSize);
        const std::size_t in_page = addr % kPageSize;
        const std::size_t chunk =
            std::min(kPageSize - in_page, image.size() - i);
        std::copy(image.begin() + static_cast<std::ptrdiff_t>(i),
                  image.begin() + static_cast<std::ptrdiff_t>(i + chunk),
                  page + in_page);
        i += chunk;
    }
}

Bytes Ram::dump(Addr offset, std::size_t length) const {
    if (offset + length > size_) {
        throw MemError("Ram::dump: range exceeds memory bounds in " + name_);
    }
    Bytes out(length);
    for (std::size_t i = 0; i < length;) {
        const std::size_t addr = offset + i;
        const std::size_t in_page = addr % kPageSize;
        const std::size_t chunk = std::min(kPageSize - in_page, length - i);
        const std::uint8_t* page = pages_[addr / kPageSize].get();
        if (page != nullptr) {
            std::copy(page + in_page, page + in_page + chunk,
                      out.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
            for (std::size_t j = 0; j < chunk; ++j) {
                out[i + j] = background_byte(addr + j);
            }
        }
        i += chunk;
    }
    return out;
}

void Ram::fill(std::uint8_t value) noexcept {
    for (std::unique_ptr<std::uint8_t[]>& page : pages_) page.reset();
    backing_.reset();
    backing_offset_ = 0;
    fill_ = value;
}

void Ram::set_backing(std::shared_ptr<const Bytes> image, Addr offset) {
    if (image == nullptr || image->empty()) {
        backing_.reset();
        backing_offset_ = 0;
        return;
    }
    if (offset + image->size() > size_) {
        throw MemError("Ram::set_backing: image exceeds memory bounds in " +
                       name_);
    }
    backing_ = std::move(image);
    backing_offset_ = offset;
    // Reload semantics: the backed range must read exactly as the
    // image. Fully covered private pages are dropped back to the
    // shared copy; partially covered ones are patched in place.
    const std::size_t begin = offset;
    const std::size_t end = offset + backing_->size();
    for (std::size_t p = begin / kPageSize; p <= (end - 1) / kPageSize;
         ++p) {
        if (pages_[p] == nullptr) continue;
        const std::size_t page_begin = p * kPageSize;
        const std::size_t page_end = page_begin + kPageSize;
        if (begin <= page_begin && end >= page_end) {
            pages_[p].reset();
            continue;
        }
        const std::size_t lo = std::max(begin, page_begin);
        const std::size_t hi = std::min(end, page_end);
        std::copy(
            backing_->begin() + static_cast<std::ptrdiff_t>(lo - begin),
            backing_->begin() + static_cast<std::ptrdiff_t>(hi - begin),
            pages_[p].get() + (lo - page_begin));
    }
}

bool Ram::matches(Addr offset, BytesView expected) const noexcept {
    if (offset + expected.size() > size_) return false;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (read_byte(offset + i) != expected[i]) return false;
    }
    return true;
}

std::size_t Ram::resident_pages() const noexcept {
    std::size_t count = 0;
    for (const std::unique_ptr<std::uint8_t[]>& page : pages_) {
        if (page != nullptr) ++count;
    }
    return count;
}

}  // namespace cres::mem
