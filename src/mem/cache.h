// Direct-mapped cache in front of a RAM, with architectural timing:
// hits and misses have different latencies, observable by software via
// the cycle counter. This is the substrate for the microarchitectural
// side-channel attacks the paper's Section IV discusses ([17],[18] and
// the cache-timing leaks against TEEs): secret-dependent access
// patterns leave secret-dependent timing, which crosses every
// trust/isolation boundary on the chip.
//
// The cache also exports the telemetry a resilience monitor needs:
// per-master hit/miss counters and an eviction-set heuristic feed
// (prime+probe attacks show up as periodic conflict-eviction storms).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mem/bus.h"
#include "mem/ram.h"

namespace cres::mem {

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    [[nodiscard]] double miss_rate() const noexcept {
        const auto total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(misses) /
                                static_cast<double>(total);
    }
};

/// A direct-mapped cache wrapping a backing Ram. Mapped on the bus in
/// the Ram's place; accesses hit or miss and report latency.
class CachedRam : public BusTarget {
public:
    /// `line_size` and `line_count` must be powers of two.
    CachedRam(std::string name, std::size_t backing_size,
              std::uint32_t line_size = 16, std::uint32_t line_count = 64);

    std::string_view name() const override { return name_; }

    BusResponse read(Addr offset, std::uint32_t size, std::uint32_t& out,
                     const BusAttr& attr) override;
    BusResponse write(Addr offset, std::uint32_t size, std::uint32_t value,
                      const BusAttr& attr) override;

    /// Latency (cycles) of the most recent access: kHitLatency or
    /// kMissLatency. The Bus forwards this to the CPU's stall model —
    /// that is the whole side channel.
    [[nodiscard]] std::uint32_t last_latency() const noexcept {
        return last_latency_;
    }

    static constexpr std::uint32_t kHitLatency = 1;
    static constexpr std::uint32_t kMissLatency = 8;

    /// Flush everything (response: close the channel by wiping state).
    void flush() noexcept;

    /// Partitioned mode: lines are split by security attribute, so a
    /// non-secure observer can no longer evict or probe secure lines —
    /// the classic side-channel countermeasure.
    void set_partitioned(bool partitioned) noexcept;
    [[nodiscard]] bool partitioned() const noexcept { return partitioned_; }

    /// Direct backing-store access (loader / checkpoint path).
    [[nodiscard]] Ram& backing() noexcept { return backing_; }

    [[nodiscard]] const CacheStats& stats(Master master) const;
    [[nodiscard]] CacheStats total_stats() const;

    /// Evictions where the incoming access and the evicted line belong
    /// to different security domains — the prime+probe signature
    /// (benign single-domain workloads never produce these).
    [[nodiscard]] std::uint64_t cross_domain_evictions() const noexcept {
        return cross_domain_evictions_;
    }

    /// True when the line holding `offset` is currently resident.
    [[nodiscard]] bool line_present(Addr offset) const noexcept;

private:
    struct Line {
        bool valid = false;
        bool secure = false;
        Addr tag = 0;
    };

    std::uint32_t line_index(Addr offset, bool secure) const noexcept;
    void touch(Addr offset, const BusAttr& attr);

    std::string name_;
    Ram backing_;
    std::uint32_t line_size_;
    std::uint32_t line_count_;
    bool partitioned_ = false;
    std::vector<Line> lines_;
    std::uint32_t last_latency_ = kHitLatency;
    std::uint64_t cross_domain_evictions_ = 0;
    mutable std::map<Master, CacheStats> stats_;
};

}  // namespace cres::mem
