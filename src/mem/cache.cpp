#include "mem/cache.h"

#include "util/error.h"

namespace cres::mem {

namespace {

bool is_power_of_two(std::uint32_t v) noexcept {
    return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace

CachedRam::CachedRam(std::string name, std::size_t backing_size,
                     std::uint32_t line_size, std::uint32_t line_count)
    : name_(std::move(name)),
      backing_(name_ + ".backing", backing_size),
      line_size_(line_size),
      line_count_(line_count),
      lines_(line_count) {
    if (!is_power_of_two(line_size_) || !is_power_of_two(line_count_)) {
        throw MemError("CachedRam: line size/count must be powers of two");
    }
}

std::uint32_t CachedRam::line_index(Addr offset, bool secure) const noexcept {
    std::uint32_t index = (offset / line_size_) & (line_count_ - 1);
    if (partitioned_) {
        // Half the sets for each world: top bit selects the partition.
        index = (index & (line_count_ / 2 - 1)) |
                (secure ? line_count_ / 2 : 0);
    }
    return index;
}

void CachedRam::touch(Addr offset, const BusAttr& attr) {
    const Addr tag = offset / line_size_;
    Line& line = lines_[line_index(offset, attr.secure)];
    CacheStats& stats = stats_[attr.master];

    if (line.valid && line.tag == tag) {
        ++stats.hits;
        last_latency_ = kHitLatency;
        return;
    }
    if (line.valid) {
        ++stats.evictions;
        if (line.secure != attr.secure) ++cross_domain_evictions_;
    }
    line.valid = true;
    line.tag = tag;
    line.secure = attr.secure;
    ++stats.misses;
    last_latency_ = kMissLatency;
}

BusResponse CachedRam::read(Addr offset, std::uint32_t size,
                            std::uint32_t& out, const BusAttr& attr) {
    touch(offset, attr);
    return backing_.read(offset, size, out, attr);
}

BusResponse CachedRam::write(Addr offset, std::uint32_t size,
                             std::uint32_t value, const BusAttr& attr) {
    touch(offset, attr);
    return backing_.write(offset, size, value, attr);
}

void CachedRam::flush() noexcept {
    for (auto& line : lines_) line.valid = false;
}

void CachedRam::set_partitioned(bool partitioned) noexcept {
    partitioned_ = partitioned;
    flush();
}

const CacheStats& CachedRam::stats(Master master) const {
    return stats_[master];
}

CacheStats CachedRam::total_stats() const {
    CacheStats total;
    for (const auto& [master, s] : stats_) {
        total.hits += s.hits;
        total.misses += s.misses;
        total.evictions += s.evictions;
    }
    return total;
}

bool CachedRam::line_present(Addr offset) const noexcept {
    // Presence check is world-agnostic in unpartitioned mode (that is
    // the leak); in partitioned mode the observer can only see its own
    // partition, which is handled by line_index at access time. For
    // this query we report the non-secure view.
    const Line& line = lines_[line_index(offset, false)];
    return line.valid && line.tag == offset / line_size_;
}

}  // namespace cres::mem
