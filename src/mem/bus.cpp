#include "mem/bus.h"

#include <algorithm>

#include "util/error.h"

namespace cres::mem {

std::string master_name(Master m) {
    switch (m) {
        case Master::kCpu: return "cpu";
        case Master::kDma: return "dma";
        case Master::kNic: return "nic";
        case Master::kDebug: return "debug";
        case Master::kSsm: return "ssm";
        case Master::kAttacker: return "attacker";
    }
    return "?";
}

std::string response_name(BusResponse r) {
    switch (r) {
        case BusResponse::kOk: return "ok";
        case BusResponse::kDecodeError: return "decode-error";
        case BusResponse::kSecurityViolation: return "security-violation";
        case BusResponse::kIsolated: return "isolated";
        case BusResponse::kReadOnly: return "read-only";
        case BusResponse::kDeviceError: return "device-error";
    }
    return "?";
}

void Bus::map(const RegionConfig& config, BusTarget& target) {
    if (config.size == 0) {
        throw MemError("Bus::map: zero-sized region " + config.name);
    }
    const Addr end = config.base + config.size - 1;
    if (end < config.base) {
        throw MemError("Bus::map: region wraps address space: " + config.name);
    }
    for (const auto& m : mappings_) {
        const Addr m_end = m.config.base + m.config.size - 1;
        const bool overlaps = config.base <= m_end && m.config.base <= end;
        if (overlaps) {
            throw MemError("Bus::map: region " + config.name +
                           " overlaps " + m.config.name);
        }
        if (m.config.name == config.name) {
            throw MemError("Bus::map: duplicate region name " + config.name);
        }
    }
    mappings_.push_back(Mapping{config, &target, false});
    ++config_generation_;
}

Bus::Mapping* Bus::decode(Addr addr, std::uint32_t size) {
    if (addr + size < addr) return nullptr;  // Address-space wrap.
    for (auto& m : mappings_) {
        const Addr end = m.config.base + m.config.size;
        if (addr >= m.config.base && addr + size <= end) return &m;
    }
    return nullptr;
}

const Bus::Mapping* Bus::decode_const(Addr addr, std::uint32_t size) const {
    if (addr + size < addr) return nullptr;  // Address-space wrap.
    for (const auto& m : mappings_) {
        const Addr end = m.config.base + m.config.size;
        if (addr >= m.config.base && addr + size <= end) return &m;
    }
    return nullptr;
}

bool Bus::fetch_allowed(Addr addr, std::uint32_t size,
                        const BusAttr& attr) const noexcept {
    if (size == 0) return false;
    const Mapping* mapping = decode_const(addr, size);
    if (mapping == nullptr || mapping->isolated) return false;
    return !mapping->config.secure_only || attr.secure;
}

void Bus::set_write_watch(Addr base, Addr size, WriteWatch watch) {
    watch_base_ = base;
    watch_size_ = size;
    watch_ = std::move(watch);
}

void Bus::clear_write_watch() noexcept {
    watch_base_ = 0;
    watch_size_ = 0;
    watch_ = nullptr;
}

void Bus::fire_write_watch(Addr addr, std::uint32_t size) {
    if (!watch_ || watch_size_ == 0) return;
    // Overlap test in 64-bit space: the watched window never wraps
    // (it mirrors a mapped region), the access was already decoded.
    const std::uint64_t a0 = addr;
    const std::uint64_t a1 = a0 + size;
    const std::uint64_t w0 = watch_base_;
    const std::uint64_t w1 = w0 + watch_size_;
    if (a1 <= w0 || a0 >= w1) return;
    // Copy first: the callback may clear or replace the watch (the
    // translation engine drops itself on invalidation).
    const WriteWatch fire = watch_;
    fire(addr, size);
}

void Bus::notify(const BusTransaction& txn) {
    // Snapshot so observers may detach themselves in the callback.
    const std::vector<BusObserver*> snapshot = observers_;
    for (BusObserver* o : snapshot) o->on_transaction(txn);
}

BusResponse Bus::access(BusOp op, Addr addr, std::uint32_t size,
                        std::uint32_t& io, const BusAttr& attr) {
    ++transactions_;
    BusTransaction txn;
    txn.op = op;
    txn.addr = addr;
    txn.size = size;
    txn.data = io;
    txn.attr = attr;

    Mapping* mapping = decode(addr, size);
    if (mapping == nullptr) {
        txn.response = BusResponse::kDecodeError;
        notify(txn);
        return txn.response;
    }
    txn.region = mapping->config.name;

    if (mapping->isolated) {
        txn.response = BusResponse::kIsolated;
        notify(txn);
        return txn.response;
    }
    if (mapping->config.secure_only && !attr.secure) {
        txn.response = BusResponse::kSecurityViolation;
        notify(txn);
        return txn.response;
    }
    if (mapping->config.read_only && op == BusOp::kWrite) {
        txn.response = BusResponse::kReadOnly;
        notify(txn);
        return txn.response;
    }

    const Addr offset = addr - mapping->config.base;
    if (op == BusOp::kWrite) {
        txn.response = mapping->target->write(offset, size, io, attr);
    } else {
        txn.response = mapping->target->read(offset, size, io, attr);
        txn.data = io;
    }
    last_latency_ = mapping->target->last_latency();
    notify(txn);
    if (op == BusOp::kWrite && txn.response == BusResponse::kOk) {
        fire_write_watch(addr, size);
    }
    return txn.response;
}

std::optional<std::uint32_t> Bus::read(Addr addr, std::uint32_t size,
                                       const BusAttr& attr) {
    std::uint32_t value = 0;
    if (access(BusOp::kRead, addr, size, value, attr) != BusResponse::kOk) {
        return std::nullopt;
    }
    return value;
}

BusResponse Bus::write(Addr addr, std::uint32_t size, std::uint32_t value,
                       const BusAttr& attr) {
    std::uint32_t io = value;
    return access(BusOp::kWrite, addr, size, io, attr);
}

bool Bus::read_block(Addr addr, std::span<std::uint8_t> out,
                     const BusAttr& attr, bool quiet) {
    for (std::size_t i = 0; i < out.size(); ++i) {
        std::uint32_t value = 0;
        if (quiet) {
            Mapping* mapping = decode(addr + static_cast<Addr>(i), 1);
            if (mapping == nullptr || mapping->isolated) return false;
            if (mapping->config.secure_only && !attr.secure) return false;
            const Addr offset = addr + static_cast<Addr>(i) - mapping->config.base;
            if (mapping->target->read(offset, 1, value, attr) !=
                BusResponse::kOk) {
                return false;
            }
        } else {
            if (access(BusOp::kRead, addr + static_cast<Addr>(i), 1, value,
                       attr) != BusResponse::kOk) {
                return false;
            }
        }
        out[i] = static_cast<std::uint8_t>(value);
    }
    return true;
}

bool Bus::write_block(Addr addr, BytesView data, const BusAttr& attr,
                      bool quiet) {
    for (std::size_t i = 0; i < data.size(); ++i) {
        std::uint32_t value = data[i];
        if (quiet) {
            Mapping* mapping = decode(addr + static_cast<Addr>(i), 1);
            if (mapping == nullptr || mapping->isolated) return false;
            if (mapping->config.secure_only && !attr.secure) return false;
            if (mapping->config.read_only) return false;
            const Addr offset = addr + static_cast<Addr>(i) - mapping->config.base;
            if (mapping->target->write(offset, 1, value, attr) !=
                BusResponse::kOk) {
                return false;
            }
            fire_write_watch(addr + static_cast<Addr>(i), 1);
        } else {
            if (access(BusOp::kWrite, addr + static_cast<Addr>(i), 1, value,
                       attr) != BusResponse::kOk) {
                return false;
            }
        }
    }
    return true;
}

void Bus::add_observer(BusObserver* observer) {
    if (observer == nullptr) {
        throw MemError("Bus::add_observer: null observer");
    }
    observers_.push_back(observer);
}

void Bus::remove_observer(BusObserver* observer) noexcept {
    std::erase(observers_, observer);
}

bool Bus::isolate_region(const std::string& name, bool isolated) {
    for (auto& m : mappings_) {
        if (m.config.name == name) {
            m.isolated = isolated;
            ++config_generation_;
            return true;
        }
    }
    return false;
}

bool Bus::is_isolated(const std::string& name) const {
    for (const auto& m : mappings_) {
        if (m.config.name == name) return m.isolated;
    }
    return false;
}

bool Bus::set_secure_only(const std::string& name, bool secure_only) {
    for (auto& m : mappings_) {
        if (m.config.name == name) {
            m.config.secure_only = secure_only;
            ++config_generation_;
            return true;
        }
    }
    return false;
}

std::vector<RegionConfig> Bus::regions() const {
    std::vector<RegionConfig> out;
    out.reserve(mappings_.size());
    for (const auto& m : mappings_) out.push_back(m.config);
    return out;
}

}  // namespace cres::mem
