#include "tee/tee.h"

#include "util/error.h"

namespace cres::tee {

namespace {

const mem::BusAttr kTeeAttr{mem::Master::kCpu, /*secure=*/true,
                            /*privileged=*/true};

}  // namespace

Tee::Tee(mem::Bus& bus, mem::Addr secure_base, mem::Addr secure_size)
    : bus_(bus), base_(secure_base), size_(secure_size), next_free_(0) {}

void Tee::write_object(const std::string& name, BytesView data) {
    auto it = directory_.find(name);
    if (it != directory_.end() && it->second.size >= data.size()) {
        // Overwrite in place.
        if (!bus_.write_block(it->second.addr, data, kTeeAttr, true)) {
            throw PlatformError("Tee: secure memory write failed");
        }
        it->second.size = static_cast<std::uint32_t>(data.size());
        return;
    }
    if (next_free_ + data.size() > size_) {
        throw PlatformError("Tee: secure memory exhausted");
    }
    const mem::Addr addr = base_ + next_free_;
    if (!bus_.write_block(addr, data, kTeeAttr, true)) {
        throw PlatformError("Tee: secure memory write failed");
    }
    directory_[name] =
        Placement{addr, static_cast<std::uint32_t>(data.size())};
    next_free_ += static_cast<mem::Addr>(data.size());
}

std::optional<Bytes> Tee::read_object(const std::string& name,
                                      const mem::BusAttr& requester) {
    const auto it = directory_.find(name);
    if (it == directory_.end()) return std::nullopt;
    Bytes out(it->second.size);
    // The requester's own attributes go on the bus: a non-secure caller
    // is stopped by the region attribute — unless it has been tampered.
    if (!bus_.read_block(it->second.addr, out, requester)) {
        return std::nullopt;
    }
    return out;
}

void Tee::provision_key(const std::string& name, BytesView key) {
    write_object("key:" + name, key);
}

std::optional<Bytes> Tee::get_key(const std::string& name,
                                  const mem::BusAttr& requester) {
    ++service_calls_;
    return read_object("key:" + name, requester);
}

void Tee::store(const std::string& name, BytesView data) {
    ++service_calls_;
    write_object("obj:" + name, data);
}

std::optional<Bytes> Tee::load(const std::string& name,
                               const mem::BusAttr& requester) {
    ++service_calls_;
    return read_object("obj:" + name, requester);
}

std::optional<Quote> Tee::quote(const boot::PcrBank& pcrs, BytesView nonce,
                                const std::string& key_name) {
    ++service_calls_;
    const auto key = read_object("key:" + key_name, kTeeAttr);
    if (!key) return std::nullopt;

    Quote q;
    q.composite = pcrs.composite();
    q.nonce.assign(nonce.begin(), nonce.end());
    Bytes message(q.composite.begin(), q.composite.end());
    append(message, nonce);
    q.tag = crypto::hmac_sha256(*key, message);
    return q;
}

std::optional<Tee::Placement> Tee::placement(const std::string& name) const {
    auto it = directory_.find("key:" + name);
    if (it == directory_.end()) it = directory_.find("obj:" + name);
    if (it == directory_.end()) it = directory_.find(name);
    if (it == directory_.end()) return std::nullopt;
    return it->second;
}

bool verify_quote(const Quote& quote, BytesView key,
                  const crypto::Hash256& expected_composite) {
    if (!ct_equal(quote.composite, expected_composite)) return false;
    Bytes message(quote.composite.begin(), quote.composite.end());
    append(message, quote.nonce);
    return crypto::hmac_verify(key, message, quote.tag);
}

}  // namespace cres::tee
