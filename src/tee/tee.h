// Trusted Execution Environment baseline (GlobalPlatform/TrustZone
// style). This is the *passive* trust-based architecture of the paper's
// Section IV: trusted services run on the SAME processor and store
// their secrets in the SAME physical memory as the normal world,
// protected only by the bus's secure attribute. That shared-resource
// coupling is exactly what the attacks of [17],[18],[32],[34] exploit,
// and what experiment E9 ablates against the physically isolated SSM.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "boot/measured.h"
#include "crypto/hmac.h"
#include "mem/bus.h"
#include "util/bytes.h"

namespace cres::tee {

/// TEE service identifiers (SMC function numbers).
enum class TeeService : std::uint16_t {
    kGetKey = 1,
    kStore = 2,
    kLoad = 3,
    kQuote = 4,
    kHmacSign = 5,
};

/// A signed attestation quote over the PCR composite.
struct Quote {
    crypto::Hash256 composite{};
    Bytes nonce;
    crypto::Hash256 tag{};  ///< HMAC(attestation key, composite || nonce).
};

class Tee {
public:
    /// `secure_base`/`secure_size` name the bus region (mapped
    /// secure-only) where the TEE keeps key material and storage. The
    /// TEE accesses it with secure transactions; the protection is the
    /// bus attribute — nothing more, which is the point.
    Tee(mem::Bus& bus, mem::Addr secure_base, mem::Addr secure_size);

    /// Provisions a named key into secure memory (factory step).
    /// Throws PlatformError when secure memory is exhausted.
    void provision_key(const std::string& name, BytesView key);

    /// Reads a key *as the requesting context*: the bus enforces (or
    /// fails to enforce) the secure attribute. Returns nullopt on
    /// denial or unknown key.
    [[nodiscard]] std::optional<Bytes> get_key(const std::string& name,
                                               const mem::BusAttr& requester);

    /// Secure storage (sealed blobs).
    void store(const std::string& name, BytesView data);
    [[nodiscard]] std::optional<Bytes> load(const std::string& name,
                                            const mem::BusAttr& requester);

    /// Attestation: HMAC quote over the PCR composite with the named
    /// provisioned key. Returns nullopt when the key is missing.
    [[nodiscard]] std::optional<Quote> quote(const boot::PcrBank& pcrs,
                                             BytesView nonce,
                                             const std::string& key_name);

    /// Where a named object physically lives — the attacker's shopping
    /// list once the bus attribute falls (used by the E9/E10 attacks).
    struct Placement {
        mem::Addr addr = 0;
        std::uint32_t size = 0;
    };
    [[nodiscard]] std::optional<Placement> placement(
        const std::string& name) const;

    [[nodiscard]] std::uint64_t service_calls() const noexcept {
        return service_calls_;
    }

private:
    [[nodiscard]] std::optional<Bytes> read_object(
        const std::string& name, const mem::BusAttr& requester);
    void write_object(const std::string& name, BytesView data);

    mem::Bus& bus_;
    mem::Addr base_;
    mem::Addr size_;
    mem::Addr next_free_;
    std::map<std::string, Placement> directory_;
    std::uint64_t service_calls_ = 0;
};

/// Verifier-side check of a quote.
[[nodiscard]] bool verify_quote(const Quote& quote, BytesView key,
                                const crypto::Hash256& expected_composite);

}  // namespace cres::tee
