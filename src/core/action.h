// Response-action vocabulary shared by the policy engine (which selects
// actions) and the Active Response Manager (which executes them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace cres::core {

enum class ResponseAction : std::uint8_t {
    kLogOnly,           ///< Record evidence, take no countermeasure.
    kAlertOperator,     ///< Push an out-of-band operator notification.
    kIsolateResource,   ///< Fence the resource off the interconnect.
    kKillTask,          ///< Halt the offending compute context.
    kRestartTask,       ///< Restart the context from its entry point.
    kZeroiseKeys,       ///< Wipe key material before it can leak.
    kRollbackFirmware,  ///< Revert to the last-known-good image.
    kRestoreCheckpoint, ///< Roll state back to a known-good snapshot.
    kDegrade,           ///< Shed non-critical services, keep critical.
    kRateLimitPeripheral, ///< Clamp actuation to a safe envelope.
    kPartitionCache,    ///< Close cache timing channels by partitioning.
    kResetSystem,       ///< Full reboot (the passive baseline's only move).
};

/// Number of ResponseAction values (for per-action metric tables).
inline constexpr std::size_t kResponseActionCount = 12;

std::string action_name(ResponseAction action);

/// Parses "isolate-resource" etc.; nullopt for unknown names.
std::optional<ResponseAction> action_from_name(const std::string& name);

}  // namespace cres::core
