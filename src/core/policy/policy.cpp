#include "core/policy/policy.h"

#include <sstream>

#include "util/error.h"

namespace cres::core {

std::optional<EventSeverity> severity_from_name(const std::string& name) {
    if (name == "info") return EventSeverity::kInfo;
    if (name == "advisory") return EventSeverity::kAdvisory;
    if (name == "alert") return EventSeverity::kAlert;
    if (name == "critical") return EventSeverity::kCritical;
    return std::nullopt;
}

std::optional<EventCategory> category_from_name(const std::string& name) {
    static const std::pair<const char*, EventCategory> table[] = {
        {"bus-violation", EventCategory::kBusViolation},
        {"control-flow", EventCategory::kControlFlow},
        {"memory", EventCategory::kMemory},
        {"data-flow", EventCategory::kDataFlow},
        {"peripheral", EventCategory::kPeripheral},
        {"timing", EventCategory::kTiming},
        {"network", EventCategory::kNetwork},
        {"environment", EventCategory::kEnvironment},
        {"boot", EventCategory::kBoot},
        {"system", EventCategory::kSystem},
    };
    for (const auto& [n, c] : table) {
        if (name == n) return c;
    }
    return std::nullopt;
}

bool PolicyRule::matches(const MonitorEvent& event) const {
    if (category.has_value() && event.category != *category) return false;
    if (event.severity < min_severity) return false;
    if (!resource_prefix.empty()) {
        if (resource_prefix.back() == '*') {
            const std::string prefix =
                resource_prefix.substr(0, resource_prefix.size() - 1);
            if (event.resource.compare(0, prefix.size(), prefix) != 0) {
                return false;
            }
        } else if (event.resource != resource_prefix) {
            return false;
        }
    }
    return true;
}

void PolicyEngine::add_rule(PolicyRule rule) {
    if (rule.actions.empty()) {
        throw PolicyError("policy rule '" + rule.name + "' has no actions");
    }
    if (rule.threshold == 0) {
        throw PolicyError("policy rule '" + rule.name + "' has threshold 0");
    }
    rules_.push_back(std::move(rule));
    history_.emplace_back();
    last_fired_.emplace_back();
}

std::vector<const PolicyRule*> PolicyEngine::evaluate(
    const MonitorEvent& event) {
    std::vector<const PolicyRule*> fired;
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const PolicyRule& rule = rules_[i];
        if (!rule.matches(event)) continue;

        const bool cooling =
            rule.cooldown > 0 && last_fired_[i].has_value() &&
            event.at < *last_fired_[i] + rule.cooldown;

        if (rule.threshold <= 1) {
            if (!cooling) {
                fired.push_back(&rule);
                last_fired_[i] = event.at;
            }
            continue;
        }
        auto& times = history_[i];
        times.push_back(event.at);
        if (rule.window > 0) {
            while (!times.empty() && times.front() + rule.window < event.at) {
                times.pop_front();
            }
        }
        if (times.size() >= rule.threshold && !cooling) {
            fired.push_back(&rule);
            last_fired_[i] = event.at;
            times.clear();
        }
    }
    return fired;
}

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
    throw PolicyError("policy line " + std::to_string(line_no) + ": " +
                      message);
}

std::vector<std::string> split_ws(const std::string& text) {
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string token;
    while (in >> token) out.push_back(token);
    return out;
}

}  // namespace

PolicyEngine PolicyEngine::parse(const std::string& text) {
    PolicyEngine engine;
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;

    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t comment = line.find_first_of(";#");
        if (comment != std::string::npos) line.resize(comment);
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

        const std::size_t arrow = line.find("->");
        if (arrow == std::string::npos) {
            fail(line_no, "missing '->'");
        }
        const std::string head = line.substr(0, arrow);
        const std::string tail = line.substr(arrow + 2);

        PolicyRule rule;

        // Head: "rule <name>: cond cond cond".
        std::vector<std::string> tokens = split_ws(head);
        if (tokens.size() < 2 || tokens[0] != "rule") {
            fail(line_no, "expected 'rule <name>: ...'");
        }
        rule.name = tokens[1];
        if (!rule.name.empty() && rule.name.back() == ':') {
            rule.name.pop_back();
        } else if (tokens.size() > 2 && tokens[2] == ":") {
            // Allow a detached colon.
        } else {
            fail(line_no, "expected ':' after rule name");
        }

        for (std::size_t i = 2; i < tokens.size(); ++i) {
            const std::string& t = tokens[i];
            if (t == ":") continue;
            if (t.rfind("category=", 0) == 0) {
                const auto c = category_from_name(t.substr(9));
                if (!c) fail(line_no, "unknown category in '" + t + "'");
                rule.category = c;
            } else if (t.rfind("severity>=", 0) == 0) {
                const auto s = severity_from_name(t.substr(10));
                if (!s) fail(line_no, "unknown severity in '" + t + "'");
                rule.min_severity = *s;
            } else if (t.rfind("resource=", 0) == 0) {
                rule.resource_prefix = t.substr(9);
            } else if (t.rfind("count=", 0) == 0) {
                try {
                    rule.threshold =
                        static_cast<std::uint32_t>(std::stoul(t.substr(6)));
                } catch (const std::exception&) {
                    fail(line_no, "bad number in '" + t + "'");
                }
            } else if (t.rfind("window=", 0) == 0) {
                try {
                    rule.window = std::stoull(t.substr(7));
                } catch (const std::exception&) {
                    fail(line_no, "bad number in '" + t + "'");
                }
            } else if (t.rfind("cooldown=", 0) == 0) {
                try {
                    rule.cooldown = std::stoull(t.substr(9));
                } catch (const std::exception&) {
                    fail(line_no, "bad number in '" + t + "'");
                }
            } else {
                fail(line_no, "unknown condition '" + t + "'");
            }
        }

        // Tail: comma-separated actions.
        std::string actions_text = tail;
        for (char& c : actions_text) {
            if (c == ',') c = ' ';
        }
        for (const std::string& a : split_ws(actions_text)) {
            const auto action = action_from_name(a);
            if (!action) fail(line_no, "unknown action '" + a + "'");
            rule.actions.push_back(*action);
        }
        if (rule.actions.empty()) fail(line_no, "no actions");

        engine.add_rule(std::move(rule));
    }
    return engine;
}

}  // namespace cres::core
