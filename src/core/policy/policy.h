// Policy-based security modelling (after the authors' companion papers
// [25],[28],[35]): declarative rules mapping monitor-event patterns to
// response strategies, compiled from a small text DSL.
//
// DSL, one rule per line (';'/'#' comments, blank lines ignored):
//
//   rule <name>: [category=<cat>] [severity>=<sev>] [resource=<prefix*>]
//                [count=<n>] [window=<cycles>] [cooldown=<cycles>]
//                -> <action>[, <action>...]
//
// Example:
//   rule cfi-hijack: category=control-flow severity>=critical
//                    -> kill-task, restart-task, alert-operator
//   rule exfil: category=data-flow count=2 window=5000
//                    -> isolate-resource, zeroise-keys
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/action.h"
#include "core/event.h"

namespace cres::core {

struct PolicyRule {
    std::string name;
    std::optional<EventCategory> category;  ///< nullopt = any category.
    EventSeverity min_severity = EventSeverity::kAlert;
    std::string resource_prefix;  ///< "" = any; trailing '*' = prefix.
    std::uint32_t threshold = 1;  ///< Events needed within the window.
    sim::Cycle window = 0;        ///< 0 = no windowing (every event).
    sim::Cycle cooldown = 0;      ///< Min cycles between firings (0 = none).
    std::vector<ResponseAction> actions;

    /// Does this event satisfy the static conditions (not the count)?
    [[nodiscard]] bool matches(const MonitorEvent& event) const;
};

class PolicyEngine {
public:
    /// Adds a rule. Throws PolicyError for rules without actions.
    void add_rule(PolicyRule rule);

    /// Compiles DSL text. Throws PolicyError with line context.
    static PolicyEngine parse(const std::string& text);

    /// Feeds one event through the rule set; returns the rules whose
    /// threshold fired on this event (stateful windowed counting).
    std::vector<const PolicyRule*> evaluate(const MonitorEvent& event);

    [[nodiscard]] const std::vector<PolicyRule>& rules() const noexcept {
        return rules_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }

private:
    std::vector<PolicyRule> rules_;
    // Per-rule timestamps of matching events (for windowed thresholds).
    std::vector<std::deque<sim::Cycle>> history_;
    // Per-rule time of last firing (for cooldowns).
    std::vector<std::optional<sim::Cycle>> last_fired_;
};

/// Parses severity names ("info", "advisory", "alert", "critical").
std::optional<EventSeverity> severity_from_name(const std::string& name);
/// Parses category names ("control-flow", "bus-violation", ...).
std::optional<EventCategory> category_from_name(const std::string& name);

}  // namespace cres::core
