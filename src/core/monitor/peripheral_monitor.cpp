#include "core/monitor/peripheral_monitor.h"

#include <cmath>

namespace cres::core {

PeripheralMonitor::PeripheralMonitor(EventSink& sink,
                                     const sim::Simulator& sim,
                                     mem::Bus& bus)
    : Monitor("peripheral-monitor", sink), sim_(sim), bus_(bus) {
    bus_.add_observer(this);
}

PeripheralMonitor::~PeripheralMonitor() {
    bus_.remove_observer(this);
}

void PeripheralMonitor::watch_actuator(const std::string& region,
                                       mem::Addr command_addr,
                                       const ActuatorEnvelope& envelope) {
    actuators_.push_back(
        ActuatorWatch{region, command_addr, envelope, std::nullopt, {}});
}

void PeripheralMonitor::watch_sensor(dev::Sensor& sensor,
                                     const SensorEnvelope& envelope,
                                     std::uint32_t period) {
    sensors_.push_back(
        SensorWatch{&sensor, envelope, period, period, std::nullopt});
}

void PeripheralMonitor::on_transaction(const mem::BusTransaction& txn) {
    if (!enabled()) return;
    if (txn.response != mem::BusResponse::kOk ||
        txn.op != mem::BusOp::kWrite) {
        return;
    }
    const sim::Cycle now = sim_.now();
    note_poll(now);

    for (auto& watch : actuators_) {
        if (txn.addr != watch.command_addr) continue;
        const double command =
            dev::from_fixed(static_cast<std::int32_t>(txn.data));

        if (command < watch.envelope.min_command ||
            command > watch.envelope.max_command) {
            emit(now, EventCategory::kPeripheral, EventSeverity::kCritical,
                 watch.region, "actuator command outside safe range",
                 txn.addr, txn.data);
        } else if (watch.last_command.has_value() &&
                   std::abs(command - *watch.last_command) >
                       watch.envelope.max_slew) {
            emit(now, EventCategory::kPeripheral, EventSeverity::kAlert,
                 watch.region, "actuator slew-rate exceeded", txn.addr,
                 txn.data);
        }
        watch.last_command = command;

        watch.recent_commands.push_back(now);
        while (!watch.recent_commands.empty() &&
               watch.recent_commands.front() + watch.envelope.rate_window <
                   now) {
            watch.recent_commands.pop_front();
        }
        if (watch.envelope.max_rate > 0 &&
            watch.recent_commands.size() > watch.envelope.max_rate) {
            emit(now, EventCategory::kPeripheral, EventSeverity::kAlert,
                 watch.region,
                 "actuator command rate exceeded (" +
                     std::to_string(watch.recent_commands.size()) +
                     " in window)",
                 txn.addr, watch.recent_commands.size());
            watch.recent_commands.clear();
        }
    }
}

void PeripheralMonitor::tick(sim::Cycle now) {
    if (!enabled()) return;
    for (auto& watch : sensors_) {
        if (--watch.countdown > 0) continue;
        watch.countdown = watch.period;
        note_poll(now);
        const double value = watch.sensor->value();

        if (value < watch.envelope.min_value ||
            value > watch.envelope.max_value) {
            emit(now, EventCategory::kPeripheral, EventSeverity::kAlert,
                 std::string(watch.sensor->name()),
                 "sensor value outside physical envelope",
                 static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(dev::to_fixed(value))),
                 0);
        } else if (watch.last_value.has_value() &&
                   std::abs(value - *watch.last_value) >
                       watch.envelope.max_step) {
            emit(now, EventCategory::kPeripheral, EventSeverity::kAlert,
                 std::string(watch.sensor->name()),
                 "sensor value step implausible", 0, 0);
        }
        watch.last_value = value;
    }
}

sim::Cycle PeripheralMonitor::next_activity(sim::Cycle now) {
    if (!enabled()) return kIdleForever;
    sim::Cycle wake = kIdleForever;
    for (const auto& watch : sensors_) {
        const sim::Cycle due = now + watch.countdown - 1;
        if (due < wake) wake = due;
    }
    return wake;
}

void PeripheralMonitor::skip(sim::Cycle /*now*/, sim::Cycle cycles) {
    if (!enabled()) return;  // Disabled ticks leave countdowns frozen.
    for (auto& watch : sensors_) {
        watch.countdown -= static_cast<std::uint32_t>(cycles);
    }
}

}  // namespace cres::core
