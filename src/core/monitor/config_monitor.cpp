#include "core/monitor/config_monitor.h"

namespace cres::core {

ConfigMonitor::ConfigMonitor(EventSink& sink, const sim::Simulator& sim,
                             mem::Bus& bus, sim::Cycle period)
    : Monitor("config-monitor", sink),
      sim_(sim),
      bus_(bus),
      period_(period == 0 ? 1 : period),
      next_audit_(period_) {}

void ConfigMonitor::snapshot_golden() {
    golden_ = bus_.regions();
}

void ConfigMonitor::tick(sim::Cycle now) {
    if (now < next_audit_) return;
    next_audit_ = now + period_;
    if (golden_.empty()) return;
    note_poll(now);

    const auto current = bus_.regions();
    for (const auto& gold : golden_) {
        const mem::RegionConfig* live = nullptr;
        for (const auto& r : current) {
            if (r.name == gold.name) {
                live = &r;
                break;
            }
        }
        const bool drifted =
            live == nullptr || live->secure_only != gold.secure_only ||
            live->read_only != gold.read_only || live->base != gold.base ||
            live->size != gold.size;

        if (drifted && drifted_.insert(gold.name).second) {
            ++drifts_;
            emit(now, EventCategory::kBusViolation, EventSeverity::kCritical,
                 gold.name,
                 live == nullptr
                     ? "mapped region vanished from interconnect"
                     : "interconnect security attributes drifted from "
                       "golden configuration",
                 live == nullptr ? 0 : live->base, gold.base);
        } else if (!drifted && drifted_.erase(gold.name) > 0) {
            emit(now, EventCategory::kBusViolation, EventSeverity::kInfo,
                 gold.name, "region configuration restored to golden", 0, 0);
        }
    }
}

}  // namespace cres::core
