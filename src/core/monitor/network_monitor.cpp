#include "core/monitor/network_monitor.h"

namespace cres::core {

NetworkMonitor::NetworkMonitor(EventSink& sink, const sim::Simulator& sim)
    : Monitor("network-monitor", sink), sim_(sim) {}

void NetworkMonitor::set_flood_threshold(std::uint32_t frames,
                                         sim::Cycle window) {
    flood_frames_ = frames;
    flood_window_ = window;
}

void NetworkMonitor::set_replay_burst_threshold(std::uint32_t replays,
                                                sim::Cycle window) {
    replay_burst_ = replays;
    replay_window_ = window;
}

void NetworkMonitor::note_rx(net::RecvStatus status, std::size_t frame_bytes,
                             std::uint64_t sequence,
                             const std::optional<net::TraceContext>& trace) {
    const sim::Cycle now = sim_.now();
    note_poll(now);

    arrivals_.push_back(now);
    while (!arrivals_.empty() && arrivals_.front() + flood_window_ < now) {
        arrivals_.pop_front();
    }
    if (arrivals_.size() >= flood_frames_) {
        emit(now, EventCategory::kNetwork, EventSeverity::kAlert, "link",
             "frame flood: " + std::to_string(arrivals_.size()) +
                 " frames in window",
             arrivals_.size(), frame_bytes);
        arrivals_.clear();
    }

    switch (status) {
        case net::RecvStatus::kOk:
            streak_ = 0;
            break;
        case net::RecvStatus::kReplay: {
            ++auth_failures_;
            // One stale frame is advisory-grade (retransmission, path
            // hiccup); a burst of distinct replays inside the window is
            // an active replay attack. `a` carries the replayed
            // sequence number — the fleet tier fingerprints coordinated
            // replay across devices with it.
            replays_.push_back(now);
            while (!replays_.empty() &&
                   replays_.front() + replay_window_ < now) {
                replays_.pop_front();
            }
            if (replays_.size() >= replay_burst_) {
                emit(now, EventCategory::kNetwork, EventSeverity::kAlert,
                     "link",
                     "replay burst: " + std::to_string(replays_.size()) +
                         " replayed frames in window",
                     sequence, frame_bytes);
                replays_.clear();
            } else {
                emit(now, EventCategory::kNetwork, EventSeverity::kAdvisory,
                     "link", "replayed frame detected", sequence, frame_bytes,
                     trace);
            }
            break;
        }
        case net::RecvStatus::kBadTag:
        case net::RecvStatus::kMalformed: {
            ++auth_failures_;
            ++streak_;
            if (streak_ >= streak_threshold_) {
                emit(now, EventCategory::kNetwork, EventSeverity::kCritical,
                     "link",
                     "authentication-failure streak (" +
                         std::to_string(streak_) + ") — active MITM suspected",
                     streak_, frame_bytes, trace);
                streak_ = 0;
            } else {
                // `a` carries the forged frame's claimed sequence — the
                // fleet tier reads it as channel-peer metadata when
                // reconstructing a worm's infection graph. The claimed
                // trace context (if any) rides along for the exact-DAG
                // reconstruction path.
                emit(now, EventCategory::kNetwork, EventSeverity::kAdvisory,
                     "link", "frame failed authentication", sequence,
                     frame_bytes, trace);
            }
            break;
        }
    }
}

}  // namespace cres::core
