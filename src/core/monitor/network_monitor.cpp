#include "core/monitor/network_monitor.h"

namespace cres::core {

NetworkMonitor::NetworkMonitor(EventSink& sink, const sim::Simulator& sim)
    : Monitor("network-monitor", sink), sim_(sim) {}

void NetworkMonitor::set_flood_threshold(std::uint32_t frames,
                                         sim::Cycle window) {
    flood_frames_ = frames;
    flood_window_ = window;
}

void NetworkMonitor::note_rx(net::RecvStatus status,
                             std::size_t frame_bytes) {
    const sim::Cycle now = sim_.now();
    note_poll(now);

    arrivals_.push_back(now);
    while (!arrivals_.empty() && arrivals_.front() + flood_window_ < now) {
        arrivals_.pop_front();
    }
    if (arrivals_.size() >= flood_frames_) {
        emit(now, EventCategory::kNetwork, EventSeverity::kAlert, "link",
             "frame flood: " + std::to_string(arrivals_.size()) +
                 " frames in window",
             arrivals_.size(), frame_bytes);
        arrivals_.clear();
    }

    switch (status) {
        case net::RecvStatus::kOk:
            streak_ = 0;
            break;
        case net::RecvStatus::kReplay:
            ++auth_failures_;
            emit(now, EventCategory::kNetwork, EventSeverity::kAlert, "link",
                 "replayed frame detected", 0, frame_bytes);
            break;
        case net::RecvStatus::kBadTag:
        case net::RecvStatus::kMalformed: {
            ++auth_failures_;
            ++streak_;
            if (streak_ >= streak_threshold_) {
                emit(now, EventCategory::kNetwork, EventSeverity::kCritical,
                     "link",
                     "authentication-failure streak (" +
                         std::to_string(streak_) + ") — active MITM suspected",
                     streak_, frame_bytes);
                streak_ = 0;
            } else {
                emit(now, EventCategory::kNetwork, EventSeverity::kAdvisory,
                     "link", "frame failed authentication", streak_,
                     frame_bytes);
            }
            break;
        }
    }
}

}  // namespace cres::core
