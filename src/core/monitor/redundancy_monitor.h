// Process-pair redundancy monitor: a shadow core executes the same
// program; the monitor compares architectural state every interval and
// flags divergence (fault, single-event upset, or an attack that only
// landed on one replica) — Table I "Static and Dynamic Redundancy".
#pragma once

#include "core/monitor/monitor.h"
#include "isa/cpu.h"

namespace cres::core {

class RedundancyMonitor : public Monitor, public sim::Tickable {
public:
    RedundancyMonitor(EventSink& sink, const sim::Simulator& sim,
                      isa::Cpu& primary, isa::Cpu& shadow,
                      sim::Cycle compare_interval = 64);

    std::string description() const override {
        return "lockstep process-pair state comparison (divergence = "
               "fault or asymmetric attack)";
    }

    void tick(sim::Cycle now) override;

    /// Quiescence: compares fire at an absolute deadline; ticks before
    /// it are pure no-ops, so there is nothing to replay on skip.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override {
        return next_compare_ > now ? next_compare_ : now;
    }

    [[nodiscard]] std::uint64_t comparisons() const noexcept {
        return comparisons_;
    }
    [[nodiscard]] std::uint64_t divergences() const noexcept {
        return divergences_;
    }

private:
    [[nodiscard]] static std::uint64_t state_fingerprint(const isa::Cpu& cpu);

    const sim::Simulator& sim_;
    isa::Cpu& primary_;
    isa::Cpu& shadow_;
    sim::Cycle interval_;
    sim::Cycle next_compare_;
    bool diverged_ = false;
    std::uint64_t comparisons_ = 0;
    std::uint64_t divergences_ = 0;
};

}  // namespace cres::core
