#include "core/monitor/redundancy_monitor.h"

namespace cres::core {

RedundancyMonitor::RedundancyMonitor(EventSink& sink,
                                     const sim::Simulator& sim,
                                     isa::Cpu& primary, isa::Cpu& shadow,
                                     sim::Cycle compare_interval)
    : Monitor("redundancy-monitor", sink),
      sim_(sim),
      primary_(primary),
      shadow_(shadow),
      interval_(compare_interval == 0 ? 1 : compare_interval),
      next_compare_(interval_) {}

std::uint64_t RedundancyMonitor::state_fingerprint(const isa::Cpu& cpu) {
    // FNV-1a over pc + registers; cheap and order-sensitive.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint32_t v) {
        for (int b = 0; b < 4; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(cpu.pc());
    for (unsigned i = 0; i < 16; ++i) mix(cpu.reg(i));
    return h;
}

void RedundancyMonitor::tick(sim::Cycle now) {
    if (now < next_compare_) return;
    next_compare_ = now + interval_;
    ++comparisons_;
    note_poll(now);

    const std::uint64_t a = state_fingerprint(primary_);
    const std::uint64_t b = state_fingerprint(shadow_);
    if (a != b && !diverged_) {
        diverged_ = true;
        ++divergences_;
        emit(now, EventCategory::kMemory, EventSeverity::kCritical,
             std::string(primary_.name()),
             "process-pair divergence: primary/shadow state mismatch", a, b);
    } else if (a == b && diverged_) {
        diverged_ = false;
        emit(now, EventCategory::kMemory, EventSeverity::kInfo,
             std::string(primary_.name()), "process pair re-converged", 0, 0);
    }
}

}  // namespace cres::core
