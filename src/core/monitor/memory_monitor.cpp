#include "core/monitor/memory_monitor.h"

namespace cres::core {

MemoryMonitor::MemoryMonitor(EventSink& sink, const sim::Simulator& sim,
                             mem::Bus& bus)
    : Monitor("memory-monitor", sink), sim_(sim), bus_(bus) {
    bus_.add_observer(this);
}

MemoryMonitor::~MemoryMonitor() {
    bus_.remove_observer(this);
}

void MemoryMonitor::protect_code_region(const std::string& region) {
    code_regions_.insert(region);
}

void MemoryMonitor::protect_code_range(mem::Addr base, mem::Addr size) {
    code_ranges_.push_back(CodeRange{base, size});
}

void MemoryMonitor::watch_canary(mem::Addr addr, std::uint32_t expected) {
    canaries_[addr] = expected;
}

void MemoryMonitor::watch_sensitive(const std::string& name, mem::Addr base,
                                    std::uint32_t size,
                                    std::uint32_t threshold,
                                    sim::Cycle window) {
    sensitive_.push_back(
        SensitiveRange{name, base, size, threshold, window, {}, 0});
}

void MemoryMonitor::on_transaction(const mem::BusTransaction& txn) {
    if (!enabled()) return;
    if (txn.response != mem::BusResponse::kOk) return;
    const sim::Cycle now = sim_.now();
    note_poll(now);

    if (txn.op == mem::BusOp::kWrite) {
        bool in_code = code_regions_.count(txn.region) != 0;
        for (const auto& range : code_ranges_) {
            if (txn.addr >= range.base && txn.addr < range.base + range.size) {
                in_code = true;
                break;
            }
        }
        if (in_code) {
            emit(now, EventCategory::kMemory, EventSeverity::kCritical,
                 txn.region, "write into code region (tampering)", txn.addr,
                 txn.data);
        }
        // Canary check: any write overlapping a canary word that does
        // not preserve its value.
        for (const auto& [addr, expected] : canaries_) {
            if (txn.addr <= addr + 3 && addr <= txn.addr + txn.size - 1) {
                if (txn.data != expected || txn.size != 4 ||
                    txn.addr != addr) {
                    emit(now, EventCategory::kMemory, EventSeverity::kCritical,
                         txn.region, "stack canary overwritten", addr,
                         txn.data);
                }
            }
        }
    } else {  // Read or fetch.
        for (auto& range : sensitive_) {
            if (txn.addr >= range.base &&
                txn.addr < range.base + range.size) {
                range.bytes_total += txn.size;
                range.reads.emplace_back(now, txn.size);
                while (!range.reads.empty() &&
                       range.reads.front().first + range.window < now) {
                    range.reads.pop_front();
                }
                std::uint64_t in_window = 0;
                for (const auto& [at, n] : range.reads) in_window += n;
                if (in_window >= range.threshold) {
                    emit(now, EventCategory::kMemory, EventSeverity::kAlert,
                         range.name,
                         "bulk read of sensitive range (" +
                             std::to_string(in_window) + " bytes in window)",
                         txn.addr, in_window);
                    range.reads.clear();
                }
            }
        }
    }
}

}  // namespace cres::core
