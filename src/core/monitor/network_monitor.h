// Network monitor: watches a SecureChannel's authentication outcomes
// and traffic volume. Detects forgery/tamper streaks (MITM), replay
// bursts and frame floods.
#pragma once

#include <deque>

#include "core/monitor/monitor.h"
#include "net/channel.h"

namespace cres::core {

class NetworkMonitor : public Monitor {
public:
    NetworkMonitor(EventSink& sink, const sim::Simulator& sim);

    std::string description() const override {
        return "M2M channel screening: authentication-failure streaks, "
               "replay detection, flood detection";
    }

    /// Feed: the platform reports every received-frame outcome here.
    /// `sequence` is the frame's claimed sequence number (channel-layer
    /// metadata); it rides on the emitted event's `a` scalar so the
    /// fleet correlation tier can fingerprint replays and trace forged-
    /// frame origins. 0 when the caller has no sequence to report.
    /// `trace` is the frame's claimed causal context, when it carried
    /// one — attached to the emitted events so the fleet tier can
    /// reconstruct exact infection provenance (patient zero, hop depth)
    /// rather than an anonymous component.
    void note_rx(net::RecvStatus status, std::size_t frame_bytes,
                 std::uint64_t sequence = 0,
                 const std::optional<net::TraceContext>& trace = std::nullopt);

    /// Consecutive failures before an alert (default 3).
    void set_failure_streak_threshold(std::uint32_t threshold) noexcept {
        streak_threshold_ = threshold;
    }
    /// Frames within `window` cycles before a flood alert.
    void set_flood_threshold(std::uint32_t frames, sim::Cycle window);
    /// Replays within `window` cycles before the advisory-per-replay
    /// escalates to an alert (default 3 in 20000).
    void set_replay_burst_threshold(std::uint32_t replays, sim::Cycle window);

    [[nodiscard]] std::uint64_t auth_failures() const noexcept {
        return auth_failures_;
    }

private:
    const sim::Simulator& sim_;
    std::uint32_t streak_ = 0;
    std::uint32_t streak_threshold_ = 3;
    std::uint64_t auth_failures_ = 0;
    std::deque<sim::Cycle> arrivals_;
    std::uint32_t flood_frames_ = 100;
    sim::Cycle flood_window_ = 10000;
    std::deque<sim::Cycle> replays_;
    std::uint32_t replay_burst_ = 3;
    sim::Cycle replay_window_ = 20000;
};

}  // namespace cres::core
