// Memory monitor: bus-level watch on memory behaviour. Detects
//  - writes into code regions (code tampering / injection),
//  - corruption of stack canary words,
//  - bulk-read patterns over sensitive regions (exfiltration staging).
#pragma once

#include <deque>
#include <map>
#include <set>

#include "core/monitor/monitor.h"
#include "mem/bus.h"

namespace cres::core {

class MemoryMonitor : public Monitor, public mem::BusObserver {
public:
    MemoryMonitor(EventSink& sink, const sim::Simulator& sim, mem::Bus& bus);
    ~MemoryMonitor() override;

    std::string description() const override {
        return "code-region write detection, stack-canary watch, "
               "bulk-read exfiltration heuristic";
    }

    /// Marks a bus region as code: any write is a critical event.
    void protect_code_region(const std::string& region);

    /// Marks an address range as code (for regions that mix text and
    /// data, e.g. a unified application RAM).
    void protect_code_range(mem::Addr base, mem::Addr size);

    /// Registers a canary word; a write changing it is critical.
    void watch_canary(mem::Addr addr, std::uint32_t expected);

    /// Flags reads of [base, base+size) — more than `threshold` bytes
    /// read within `window` cycles raises an alert.
    void watch_sensitive(const std::string& name, mem::Addr base,
                         std::uint32_t size, std::uint32_t threshold,
                         sim::Cycle window);

    void on_transaction(const mem::BusTransaction& txn) override;

private:
    struct SensitiveRange {
        std::string name;
        mem::Addr base;
        std::uint32_t size;
        std::uint32_t threshold;
        sim::Cycle window;
        std::deque<std::pair<sim::Cycle, std::uint32_t>> reads;
        std::uint64_t bytes_total = 0;
    };

    struct CodeRange {
        mem::Addr base;
        mem::Addr size;
    };

    const sim::Simulator& sim_;
    mem::Bus& bus_;
    std::set<std::string> code_regions_;
    std::vector<CodeRange> code_ranges_;
    std::map<mem::Addr, std::uint32_t> canaries_;
    std::vector<SensitiveRange> sensitive_;
};

}  // namespace cres::core
