#include "core/monitor/cfi_monitor.h"

namespace cres::core {

CfiMonitor::CfiMonitor(EventSink& sink, const sim::Simulator& sim,
                       isa::Cpu& cpu)
    : Monitor("cfi-monitor", sink), sim_(sim), cpu_(cpu) {
    cpu_.add_observer(this);
}

CfiMonitor::~CfiMonitor() {
    cpu_.remove_observer(this);
}

void CfiMonitor::set_valid_targets(std::set<mem::Addr> targets) {
    valid_targets_ = std::move(targets);
}

void CfiMonitor::reset() noexcept {
    shadow_stack_.clear();
    resyncing_ = true;
}

void CfiMonitor::on_call(mem::Addr from, mem::Addr target) {
    if (!enabled()) return;
    note_poll(sim_.now());
    resyncing_ = false;
    shadow_stack_.push_back(from + 4);
    if (!valid_targets_.empty() && valid_targets_.count(target) == 0) {
        emit(sim_.now(), EventCategory::kControlFlow, EventSeverity::kAlert,
             cpu_.name().data(),
             "call to non-function target", target, from);
    }
}

void CfiMonitor::on_return(mem::Addr from, mem::Addr target) {
    if (!enabled()) return;
    note_poll(sim_.now());
    if (shadow_stack_.empty()) {
        if (resyncing_) {
            emit(sim_.now(), EventCategory::kControlFlow,
                 EventSeverity::kInfo, cpu_.name().data(),
                 "shadow-stack resync after restore", target, from);
            return;
        }
        emit(sim_.now(), EventCategory::kControlFlow, EventSeverity::kAlert,
             cpu_.name().data(), "return with empty shadow stack", target,
             from);
        return;
    }
    const mem::Addr expected = shadow_stack_.back();
    shadow_stack_.pop_back();
    if (target != expected) {
        emit(sim_.now(), EventCategory::kControlFlow,
             EventSeverity::kCritical, cpu_.name().data(),
             "return-address mismatch (shadow stack)", target, expected);
    }
}

void CfiMonitor::on_trap(std::uint32_t cause, mem::Addr pc) {
    // Traps transfer control out of the nested call context; the
    // handler will rebuild its own frames. Record the discontinuity.
    emit(sim_.now(), EventCategory::kControlFlow, EventSeverity::kInfo,
         cpu_.name().data(), "trap: " + isa::trap_cause_name(cause), pc,
         cause);
}

}  // namespace cres::core
