// Bus monitor: watches every interconnect transaction. Detects
//  - security-violation / isolated / read-only responses (attack or
//    misbehaving master),
//  - address-space probing (bursts of decode errors),
//  - masters touching regions outside their provisioned allowlist
//    (e.g. the DMA engine reading key storage),
// and keeps a forensic ring buffer of recent transactions.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "core/monitor/monitor.h"
#include "mem/bus.h"
#include "sim/simulator.h"

namespace cres::core {

class BusMonitor : public Monitor, public mem::BusObserver {
public:
    BusMonitor(EventSink& sink, const sim::Simulator& sim, mem::Bus& bus);
    ~BusMonitor() override;

    std::string description() const override {
        return "interconnect transaction screening, master/region access "
               "policy, probe detection, forensic transaction ring";
    }

    /// Restricts a master to the named regions. Unlisted masters are
    /// unrestricted.
    void allow_master(mem::Master master, std::set<std::string> regions);

    /// Probe detection: `threshold` decode errors within `window`
    /// cycles escalate to an alert.
    void set_probe_threshold(std::uint32_t threshold, sim::Cycle window);

    void on_transaction(const mem::BusTransaction& txn) override;

    /// Forensic ring buffer (most recent last).
    [[nodiscard]] const std::deque<mem::BusTransaction>& recent()
        const noexcept {
        return ring_;
    }

private:
    const sim::Simulator& sim_;
    mem::Bus& bus_;
    std::map<mem::Master, std::set<std::string>> allowlist_;
    std::deque<mem::BusTransaction> ring_;
    std::deque<sim::Cycle> decode_errors_;
    std::uint32_t probe_threshold_ = 8;
    sim::Cycle probe_window_ = 1000;
    static constexpr std::size_t kRingSize = 64;
};

}  // namespace cres::core
