#include "core/monitor/timing_monitor.h"

namespace cres::core {

TimingMonitor::TimingMonitor(EventSink& sink, const sim::Simulator& sim)
    : Monitor("timing-monitor", sink), sim_(sim) {}

void TimingMonitor::register_task(const std::string& task,
                                  sim::Cycle deadline) {
    tasks_[task] = Watch{deadline, sim_.now(), 0, false};
}

void TimingMonitor::heartbeat(const std::string& task) {
    const auto it = tasks_.find(task);
    if (it == tasks_.end()) return;
    it->second.last_heartbeat = sim_.now();
    if (it->second.overdue) {
        it->second.overdue = false;
        emit(sim_.now(), EventCategory::kTiming, EventSeverity::kInfo, task,
             "task resumed heartbeating", 0, 0);
    }
}

void TimingMonitor::unregister_task(const std::string& task) {
    tasks_.erase(task);
}

void TimingMonitor::tick(sim::Cycle now) {
    if (!tasks_.empty()) note_poll(now);
    for (auto& [task, watch] : tasks_) {
        if (watch.overdue) continue;
        if (now > watch.last_heartbeat + watch.deadline) {
            watch.overdue = true;
            ++watch.missed;
            const sim::Cycle overdue_by = now - watch.last_heartbeat;
            // Repeated misses of the same task escalate.
            const EventSeverity severity = watch.missed >= 3
                                               ? EventSeverity::kCritical
                                               : EventSeverity::kAlert;
            emit(now, EventCategory::kTiming, severity, task,
                 "heartbeat deadline missed (overdue " +
                     std::to_string(overdue_by) + " cycles)",
                 overdue_by, watch.missed);
        }
    }
}

sim::Cycle TimingMonitor::next_activity(sim::Cycle now) {
    sim::Cycle wake = kIdleForever;
    for (const auto& [task, watch] : tasks_) {
        if (watch.overdue) continue;
        // First cycle at which now > last_heartbeat + deadline holds.
        const sim::Cycle due = watch.last_heartbeat + watch.deadline + 1;
        if (due <= now) return now;
        if (due < wake) wake = due;
    }
    return wake;
}

void TimingMonitor::skip(sim::Cycle now, sim::Cycle cycles) {
    if (!tasks_.empty()) note_polls(now, cycles);
}

std::uint64_t TimingMonitor::missed_deadlines(const std::string& task) const {
    const auto it = tasks_.find(task);
    return it == tasks_.end() ? 0 : it->second.missed;
}

}  // namespace cres::core
