// Dynamic information-flow tracking (DIFT) monitor, in the spirit of
// ARMHEx [21]: byte-granular taint propagation observed at the bus.
//
// Sources (sensitive regions) taint the data read from them; taint
// follows the data through memory copies (a tainted read by a master
// taints that master; a tainted master's writes taint the written
// addresses). When tainted data is written to a declared public sink
// (NIC, UART), the monitor raises a critical data-flow event — leaked
// secrets on their way out.
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_set>

#include "core/monitor/monitor.h"
#include "mem/bus.h"

namespace cres::core {

class DiftMonitor : public Monitor, public mem::BusObserver {
public:
    DiftMonitor(EventSink& sink, const sim::Simulator& sim, mem::Bus& bus);
    ~DiftMonitor() override;

    std::string description() const override {
        return "byte-granular dynamic information-flow tracking from "
               "secret sources to public sinks (ARMHEx-style DIFT)";
    }

    /// Declares [base, base+size) a taint source (secret).
    void add_source(mem::Addr base, std::uint32_t size);

    /// Declares a bus region a public sink (by region name).
    void add_sink_region(const std::string& region);

    void on_transaction(const mem::BusTransaction& txn) override;

    /// True when the address currently carries taint.
    [[nodiscard]] bool is_tainted(mem::Addr addr) const noexcept;

    /// Number of tainted bytes that reached sinks (leak volume).
    [[nodiscard]] std::uint64_t leaked_bytes() const noexcept {
        return leaked_bytes_;
    }

private:
    struct Range {
        mem::Addr base;
        std::uint32_t size;
    };

    [[nodiscard]] bool in_source(mem::Addr addr) const noexcept;

    const sim::Simulator& sim_;
    mem::Bus& bus_;
    std::vector<Range> sources_;
    std::set<std::string> sinks_;
    std::unordered_set<mem::Addr> tainted_addrs_;
    std::map<mem::Master, bool> master_taint_;
    std::uint64_t leaked_bytes_ = 0;
};

}  // namespace cres::core
