// Control-flow-integrity monitor: a hardware shadow stack plus a valid
// call-target set (static CFG knowledge from the firmware symbol
// table). Detects return-address corruption (stack smashing / ROP) and
// calls into non-function addresses (code-injection pivots).
#pragma once

#include <set>
#include <vector>

#include "core/monitor/monitor.h"
#include "isa/cpu.h"

namespace cres::core {

class CfiMonitor : public Monitor, public isa::CpuObserver {
public:
    CfiMonitor(EventSink& sink, const sim::Simulator& sim, isa::Cpu& cpu);
    ~CfiMonitor() override;

    std::string description() const override {
        return "shadow call stack and static call-target set enforcing "
               "control-flow integrity";
    }

    /// Declares the valid function entry points (from the firmware
    /// symbol table). An empty set disables target checking.
    void set_valid_targets(std::set<mem::Addr> targets);

    /// Clears the shadow stack (task restart / checkpoint restore).
    /// Until the next call instruction, returns that underflow the
    /// empty shadow stack are treated as resynchronisation, not
    /// attacks: the restored task may legitimately pop frames the
    /// monitor never saw pushed.
    void reset() noexcept;

    void on_call(mem::Addr from, mem::Addr target) override;
    void on_return(mem::Addr from, mem::Addr target) override;
    void on_trap(std::uint32_t cause, mem::Addr pc) override;

    [[nodiscard]] std::size_t shadow_depth() const noexcept {
        return shadow_stack_.size();
    }

private:
    const sim::Simulator& sim_;
    isa::Cpu& cpu_;
    std::vector<mem::Addr> shadow_stack_;
    std::set<mem::Addr> valid_targets_;
    bool resyncing_ = false;
};

}  // namespace cres::core
