// Timing / liveness monitor: tasks declare heartbeat deadlines; the
// monitor raises escalating events when a task goes quiet (hang, kill,
// watchdog starvation, control-loop stall). Unlike a plain watchdog,
// the event carries *which* task missed *by how much* — the
// fine-grained visibility the paper requires.
#pragma once

#include <map>
#include <string>

#include "core/monitor/monitor.h"

namespace cres::core {

class TimingMonitor : public Monitor, public sim::Tickable {
public:
    TimingMonitor(EventSink& sink, const sim::Simulator& sim);

    std::string description() const override {
        return "per-task heartbeat deadlines with escalating "
               "missed-deadline events";
    }

    /// Registers a task that must heartbeat at least every `deadline`
    /// cycles.
    void register_task(const std::string& task, sim::Cycle deadline);

    /// Called by the task (via OS service hook) on each iteration.
    void heartbeat(const std::string& task);

    /// Stops watching (task killed deliberately).
    void unregister_task(const std::string& task);

    void tick(sim::Cycle now) override;

    /// Quiescence: wakes when the earliest non-overdue deadline can
    /// first be missed; the per-cycle liveness poll itself carries no
    /// decision and is replayed in bulk by skip(), so an all-overdue
    /// or freshly heartbeating task set does not force per-cycle
    /// stepping.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override;
    void skip(sim::Cycle now, sim::Cycle cycles) override;

    [[nodiscard]] std::uint64_t missed_deadlines(const std::string& task) const;

private:
    struct Watch {
        sim::Cycle deadline;
        sim::Cycle last_heartbeat;
        std::uint64_t missed = 0;
        bool overdue = false;
    };

    const sim::Simulator& sim_;
    std::map<std::string, Watch> tasks_;
};

}  // namespace cres::core
