// Cache-behaviour monitor: polls a shared cache's per-master counters
// and flags the signature of prime+probe side-channel activity —
// sustained conflict-eviction storms by a low-privilege master
// interleaved with secure-world execution. Trust-based isolation
// cannot see this traffic at all (every access is "legal"); only a
// behavioural monitor can, which is the paper's §IV point about
// microarchitectural side channels [17],[18].
#pragma once

#include "core/monitor/monitor.h"
#include "mem/cache.h"

namespace cres::core {

class CacheMonitor : public Monitor, public sim::Tickable {
public:
    /// Alerts when more than `threshold` cross-domain conflict
    /// evictions occur within one `period`-cycle window.
    CacheMonitor(EventSink& sink, const sim::Simulator& sim,
                 mem::CachedRam& cache, std::uint64_t threshold = 8,
                 sim::Cycle period = 500);

    std::string description() const override {
        return "cross-domain cache-conflict storm detection (prime+probe "
               "side-channel signature)";
    }

    void tick(sim::Cycle now) override;

    /// Quiescence: polls fire at an absolute deadline (frozen while
    /// disabled); ticks before it are pure no-ops.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override {
        if (!enabled()) return kIdleForever;
        return next_poll_ > now ? next_poll_ : now;
    }

    [[nodiscard]] std::uint64_t storms_detected() const noexcept {
        return storms_;
    }

private:
    const sim::Simulator& sim_;
    mem::CachedRam& cache_;
    std::uint64_t threshold_;
    sim::Cycle period_;
    sim::Cycle next_poll_;
    std::uint64_t last_count_ = 0;
    std::uint64_t storms_ = 0;
};

}  // namespace cres::core
