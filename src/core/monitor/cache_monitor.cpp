#include "core/monitor/cache_monitor.h"

namespace cres::core {

CacheMonitor::CacheMonitor(EventSink& sink, const sim::Simulator& sim,
                           mem::CachedRam& cache, std::uint64_t threshold,
                           sim::Cycle period)
    : Monitor("cache-monitor", sink),
      sim_(sim),
      cache_(cache),
      threshold_(threshold),
      period_(period == 0 ? 1 : period),
      next_poll_(period_) {}

void CacheMonitor::tick(sim::Cycle now) {
    if (!enabled()) return;
    if (now < next_poll_) return;
    next_poll_ = now + period_;
    note_poll(now);

    const std::uint64_t count = cache_.cross_domain_evictions();
    const std::uint64_t delta = count - last_count_;
    last_count_ = count;

    if (delta >= threshold_) {
        ++storms_;
        emit(now, EventCategory::kDataFlow, EventSeverity::kAlert,
             std::string(cache_.name()),
             "cross-domain cache-conflict storm (" + std::to_string(delta) +
                 " evictions/window) — prime+probe suspected",
             delta, count);
    }
}

}  // namespace cres::core
