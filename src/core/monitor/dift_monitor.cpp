#include "core/monitor/dift_monitor.h"

namespace cres::core {

DiftMonitor::DiftMonitor(EventSink& sink, const sim::Simulator& sim,
                         mem::Bus& bus)
    : Monitor("dift-monitor", sink), sim_(sim), bus_(bus) {
    bus_.add_observer(this);
}

DiftMonitor::~DiftMonitor() {
    bus_.remove_observer(this);
}

void DiftMonitor::add_source(mem::Addr base, std::uint32_t size) {
    sources_.push_back(Range{base, size});
}

void DiftMonitor::add_sink_region(const std::string& region) {
    sinks_.insert(region);
}

bool DiftMonitor::in_source(mem::Addr addr) const noexcept {
    for (const auto& r : sources_) {
        if (addr >= r.base && addr < r.base + r.size) return true;
    }
    return false;
}

bool DiftMonitor::is_tainted(mem::Addr addr) const noexcept {
    return in_source(addr) || tainted_addrs_.count(addr) != 0;
}

void DiftMonitor::on_transaction(const mem::BusTransaction& txn) {
    if (!enabled()) return;
    if (txn.response != mem::BusResponse::kOk) return;
    const sim::Cycle now = sim_.now();
    note_poll(now);

    if (txn.op != mem::BusOp::kWrite) {
        // A read of tainted bytes taints the reading master. This is a
        // coarse (master-granular) over-approximation of register-level
        // DIFT: it never misses a leak but can over-taint.
        for (std::uint32_t i = 0; i < txn.size; ++i) {
            if (is_tainted(txn.addr + i)) {
                if (!master_taint_[txn.attr.master]) {
                    master_taint_[txn.attr.master] = true;
                    emit(now, EventCategory::kDataFlow,
                         EventSeverity::kAdvisory,
                         mem::master_name(txn.attr.master),
                         "master tainted by secret read", txn.addr, 0);
                }
                break;
            }
        }
        return;
    }

    // Write path.
    const bool tainted_master = master_taint_[txn.attr.master];
    if (sinks_.count(txn.region) != 0) {
        if (tainted_master) {
            leaked_bytes_ += txn.size;
            emit(now, EventCategory::kDataFlow, EventSeverity::kCritical,
                 txn.region, "tainted data written to public sink", txn.addr,
                 txn.data);
        }
        return;
    }
    for (std::uint32_t i = 0; i < txn.size; ++i) {
        if (tainted_master) {
            tainted_addrs_.insert(txn.addr + i);
        } else {
            tainted_addrs_.erase(txn.addr + i);
        }
    }
}

}  // namespace cres::core
