#include "core/monitor/environment_monitor.h"

#include "util/error.h"

namespace cres::core {

EnvironmentMonitor::EnvironmentMonitor(EventSink& sink,
                                       const sim::Simulator& sim,
                                       dev::PowerSensor& sensor,
                                       const EnvironmentEnvelope& envelope,
                                       std::uint32_t period)
    : Monitor("environment-monitor", sink),
      sim_(sim),
      sensor_(sensor),
      envelope_(envelope),
      period_(period),
      countdown_(period) {
    if (period_ == 0) throw Error("EnvironmentMonitor: zero period");
}

void EnvironmentMonitor::tick(sim::Cycle now) {
    if (--countdown_ > 0) return;
    countdown_ = period_;
    note_poll(now);

    const double v = sensor_.voltage();
    const double t = sensor_.temperature();
    const bool bad_v = v < envelope_.min_voltage || v > envelope_.max_voltage;
    const bool bad_t = t < envelope_.min_temp || t > envelope_.max_temp;

    if ((bad_v || bad_t) && !in_excursion_) {
        in_excursion_ = true;
        ++excursions_;
        emit(now, EventCategory::kEnvironment, EventSeverity::kAlert,
             std::string(sensor_.name()),
             bad_v ? "voltage excursion (glitch suspected)"
                   : "temperature excursion",
             static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(dev::to_fixed(v))),
             static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(dev::to_fixed(t))));
    } else if (!bad_v && !bad_t && in_excursion_) {
        in_excursion_ = false;
        emit(now, EventCategory::kEnvironment, EventSeverity::kInfo,
             std::string(sensor_.name()), "environment back in envelope", 0,
             0);
    }
}

}  // namespace cres::core
