// Environment monitor: polls the power/thermal sensor against the
// provisioned operating envelope. Voltage excursions (glitch attacks)
// and thermal runaway raise events.
#pragma once

#include "core/monitor/monitor.h"
#include "dev/power.h"

namespace cres::core {

struct EnvironmentEnvelope {
    double min_voltage = 3.0;
    double max_voltage = 3.6;
    double min_temp = -20.0;
    double max_temp = 85.0;
};

class EnvironmentMonitor : public Monitor, public sim::Tickable {
public:
    EnvironmentMonitor(EventSink& sink, const sim::Simulator& sim,
                       dev::PowerSensor& sensor,
                       const EnvironmentEnvelope& envelope,
                       std::uint32_t period = 50);

    std::string description() const override {
        return "voltage/temperature envelope watch (glitch and thermal "
               "attack detection)";
    }

    void tick(sim::Cycle now) override;

    /// Quiescence: acts only when the poll countdown drains; skipped
    /// ticks just run the countdown down, replayed in one subtraction.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override {
        return now + countdown_ - 1;
    }
    void skip(sim::Cycle /*now*/, sim::Cycle cycles) override {
        countdown_ -= static_cast<std::uint32_t>(cycles);
    }

    [[nodiscard]] std::uint64_t excursions() const noexcept {
        return excursions_;
    }

private:
    const sim::Simulator& sim_;
    dev::PowerSensor& sensor_;
    EnvironmentEnvelope envelope_;
    std::uint32_t period_;
    std::uint32_t countdown_;
    bool in_excursion_ = false;
    std::uint64_t excursions_ = 0;
};

}  // namespace cres::core
