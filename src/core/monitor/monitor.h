// Base class for Active Runtime Resource Monitors (paper §V, second
// characteristic). A monitor watches one resource, generates
// fine-grained events, and delivers them to the System Security
// Manager's event sink. Monitors can be disabled (for overhead
// ablations) and count their own emissions.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>

#include "core/event.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace cres::core {

class Monitor {
public:
    Monitor(std::string name, EventSink& sink)
        : name_(std::move(name)), sink_(sink) {}
    virtual ~Monitor() = default;

    Monitor(const Monitor&) = delete;
    Monitor& operator=(const Monitor&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    [[nodiscard]] std::uint64_t events_emitted() const noexcept {
        return emitted_;
    }

    /// Registers this monitor's per-instance series (poll count, event
    /// and alert counts, inter-poll gap histogram) under a
    /// `monitor="<name>"` label. Unbound monitors skip all metric work
    /// (the compiled-in-but-unqueried zero-cost mode).
    void bind_metrics(obs::MetricsRegistry& registry) {
        const std::string label = "{monitor=\"" + name_ + "\"}";
        polls_ = &registry.counter("cres_monitor_polls_total" + label);
        events_ = &registry.counter("cres_monitor_events_total" + label);
        alerts_ = &registry.counter("cres_monitor_alerts_total" + label);
        poll_gap_ =
            &registry.histogram("cres_monitor_poll_gap_cycles" + label);
    }

    /// Binds the device flight recorder: every emitted event also lands
    /// in the bounded black-box ring, stamped with this monitor's
    /// interned source id and its category as the record kind. The
    /// interning here is the cold path; emit() stays allocation-free.
    /// Unbound monitors (the default) pay one null check per emit.
    void bind_recorder(obs::FlightRecorder& recorder) {
        recorder_ = &recorder;
        recorder_source_ = recorder.intern(name_);
        for (std::size_t i = 0; i < kEventCategoryCount; ++i) {
            recorder_kinds_[i] =
                recorder.intern(category_name(static_cast<EventCategory>(i)));
        }
    }

    /// One-line description of what this monitor watches (used by the
    /// capability registry that regenerates Table I).
    [[nodiscard]] virtual std::string description() const = 0;

protected:
    /// Records one observation pass over the watched resource — a
    /// periodic scan for Tickable monitors, one watched transaction /
    /// frame / edge for observer-style monitors. Cycle-accurate: the
    /// gap histogram is fed from simulated time only.
    ///
    /// The first poll never contributes a gap sample: last_poll_at_
    /// starts at the kNoPoll sentinel, not at cycle 0, so a monitor
    /// whose first pass happens late cannot smear a bogus 0..first-poll
    /// "gap" into cres_monitor_poll_gap_cycles. Pinned bucket-by-bucket
    /// by Monitor.FirstPollContributesNoGapSample in tests/obs_test.cpp.
    void note_poll(sim::Cycle now) noexcept {
        if (polls_ == nullptr || !enabled_) return;
        polls_->inc();
        if (last_poll_at_ != kNoPoll) {
            poll_gap_->record(now - last_poll_at_);
        }
        last_poll_at_ = now;
    }

    /// Bulk form of note_poll for quiescence skip() (docs/SCHEDULER.md):
    /// replays `count` consecutive per-cycle polls at cycles
    /// first .. first+count-1 with bit-identical metric effects — one
    /// entry gap against the previous poll, then count-1 unit gaps.
    void note_polls(sim::Cycle first, sim::Cycle count) noexcept {
        if (count == 0 || polls_ == nullptr || !enabled_) return;
        polls_->inc(count);
        if (last_poll_at_ != kNoPoll) {
            poll_gap_->record(first - last_poll_at_);
            if (count > 1) poll_gap_->record_many(1, count - 1);
        } else if (count > 1) {
            poll_gap_->record_many(1, count - 1);
        }
        last_poll_at_ = first + count - 1;
    }

    /// Delivers an event to the SSM (no-op while disabled). `trace`
    /// attaches the causal context of the frame that triggered the
    /// observation, when there is one; it rides the event into the SSM
    /// and out over the SIEM export so FleetMonitor can reconstruct
    /// cross-device provenance.
    void emit(sim::Cycle at, EventCategory category, EventSeverity severity,
              std::string resource, std::string detail, std::uint64_t a = 0,
              std::uint64_t b = 0,
              std::optional<net::TraceContext> trace = std::nullopt) {
        if (!enabled_) return;
        ++emitted_;
        if (events_ != nullptr) {
            events_->inc();
            if (severity >= EventSeverity::kAlert) alerts_->inc();
        }
        if (recorder_ != nullptr) {
            recorder_->record(at, recorder_source_,
                              recorder_kinds_[static_cast<std::size_t>(
                                  category)],
                              static_cast<std::uint8_t>(severity),
                              obs::FlightRecordType::kInstant, a, b, detail);
        }
        sink_.submit(MonitorEvent{at, name_, category, severity,
                                  std::move(resource), std::move(detail), a,
                                  b, trace});
    }

private:
    static constexpr sim::Cycle kNoPoll = ~sim::Cycle{0};

    std::string name_;
    EventSink& sink_;
    bool enabled_ = true;
    std::uint64_t emitted_ = 0;
    obs::Counter* polls_ = nullptr;
    obs::Counter* events_ = nullptr;
    obs::Counter* alerts_ = nullptr;
    obs::Histogram* poll_gap_ = nullptr;
    sim::Cycle last_poll_at_ = kNoPoll;
    obs::FlightRecorder* recorder_ = nullptr;
    std::uint16_t recorder_source_ = 0;
    std::array<std::uint16_t, kEventCategoryCount> recorder_kinds_{};
};

}  // namespace cres::core
