// Base class for Active Runtime Resource Monitors (paper §V, second
// characteristic). A monitor watches one resource, generates
// fine-grained events, and delivers them to the System Security
// Manager's event sink. Monitors can be disabled (for overhead
// ablations) and count their own emissions.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "core/event.h"

namespace cres::core {

class Monitor {
public:
    Monitor(std::string name, EventSink& sink)
        : name_(std::move(name)), sink_(sink) {}
    virtual ~Monitor() = default;

    Monitor(const Monitor&) = delete;
    Monitor& operator=(const Monitor&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    [[nodiscard]] std::uint64_t events_emitted() const noexcept {
        return emitted_;
    }

    /// One-line description of what this monitor watches (used by the
    /// capability registry that regenerates Table I).
    [[nodiscard]] virtual std::string description() const = 0;

protected:
    /// Delivers an event to the SSM (no-op while disabled).
    void emit(sim::Cycle at, EventCategory category, EventSeverity severity,
              std::string resource, std::string detail, std::uint64_t a = 0,
              std::uint64_t b = 0) {
        if (!enabled_) return;
        ++emitted_;
        sink_.submit(MonitorEvent{at, name_, category, severity,
                                  std::move(resource), std::move(detail), a,
                                  b});
    }

private:
    std::string name_;
    EventSink& sink_;
    bool enabled_ = true;
    std::uint64_t emitted_ = 0;
};

}  // namespace cres::core
