#include "core/monitor/bus_monitor.h"

namespace cres::core {

BusMonitor::BusMonitor(EventSink& sink, const sim::Simulator& sim,
                       mem::Bus& bus)
    : Monitor("bus-monitor", sink), sim_(sim), bus_(bus) {
    bus_.add_observer(this);
}

BusMonitor::~BusMonitor() {
    bus_.remove_observer(this);
}

void BusMonitor::allow_master(mem::Master master,
                              std::set<std::string> regions) {
    allowlist_[master] = std::move(regions);
}

void BusMonitor::set_probe_threshold(std::uint32_t threshold,
                                     sim::Cycle window) {
    probe_threshold_ = threshold;
    probe_window_ = window;
}

void BusMonitor::on_transaction(const mem::BusTransaction& txn) {
    if (!enabled()) return;
    const sim::Cycle now = sim_.now();
    note_poll(now);

    ring_.push_back(txn);
    if (ring_.size() > kRingSize) ring_.pop_front();

    switch (txn.response) {
        case mem::BusResponse::kSecurityViolation:
            emit(now, EventCategory::kBusViolation, EventSeverity::kAlert,
                 txn.region,
                 "non-secure " + mem::master_name(txn.attr.master) +
                     " access to secure region",
                 txn.addr, txn.data);
            break;
        case mem::BusResponse::kReadOnly:
            emit(now, EventCategory::kBusViolation, EventSeverity::kAdvisory,
                 txn.region, "write to read-only region", txn.addr, txn.data);
            break;
        case mem::BusResponse::kIsolated:
            emit(now, EventCategory::kBusViolation, EventSeverity::kAdvisory,
                 txn.region, "access to isolated region", txn.addr, 0);
            break;
        case mem::BusResponse::kDecodeError: {
            decode_errors_.push_back(now);
            while (!decode_errors_.empty() &&
                   decode_errors_.front() + probe_window_ < now) {
                decode_errors_.pop_front();
            }
            if (decode_errors_.size() >= probe_threshold_) {
                emit(now, EventCategory::kBusViolation, EventSeverity::kAlert,
                     "address-space",
                     "address-space probing: " +
                         std::to_string(decode_errors_.size()) +
                         " decode errors in window",
                     txn.addr, decode_errors_.size());
                decode_errors_.clear();
            } else {
                emit(now, EventCategory::kBusViolation,
                     EventSeverity::kAdvisory, "address-space",
                     "decode error", txn.addr, 0);
            }
            break;
        }
        case mem::BusResponse::kDeviceError:
            emit(now, EventCategory::kBusViolation, EventSeverity::kAdvisory,
                 txn.region, "device error response", txn.addr, 0);
            break;
        case mem::BusResponse::kOk: {
            const auto it = allowlist_.find(txn.attr.master);
            if (it != allowlist_.end() &&
                it->second.count(txn.region) == 0) {
                emit(now, EventCategory::kBusViolation, EventSeverity::kAlert,
                     txn.region,
                     mem::master_name(txn.attr.master) +
                         " outside allowed regions",
                     txn.addr, txn.data);
            }
            break;
        }
    }
}

}  // namespace cres::core
