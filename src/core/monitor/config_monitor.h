// Configuration-audit monitor: snapshots the interconnect's security
// configuration (region attributes) as a golden reference at arm time,
// then periodically re-audits it. Detects the bus-attribute tampering
// attack of [34], which no transaction-level monitor can see (the
// tampered accesses are "legal" once the attribute has been cleared).
#pragma once

#include <set>
#include <vector>

#include "core/monitor/monitor.h"
#include "mem/bus.h"

namespace cres::core {

class ConfigMonitor : public Monitor, public sim::Tickable {
public:
    ConfigMonitor(EventSink& sink, const sim::Simulator& sim, mem::Bus& bus,
                  sim::Cycle period = 200);

    std::string description() const override {
        return "periodic audit of interconnect security attributes "
               "against the boot-time golden configuration";
    }

    /// Captures the current bus configuration as the golden reference.
    void snapshot_golden();

    void tick(sim::Cycle now) override;

    /// Quiescence: audits fire at an absolute deadline; ticks before it
    /// are pure no-ops, so there is nothing to replay on skip.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override {
        return next_audit_ > now ? next_audit_ : now;
    }

    [[nodiscard]] std::uint64_t drifts_detected() const noexcept {
        return drifts_;
    }

private:
    const sim::Simulator& sim_;
    mem::Bus& bus_;
    sim::Cycle period_;
    sim::Cycle next_audit_;
    std::vector<mem::RegionConfig> golden_;
    std::set<std::string> drifted_;  ///< Latched per-region (one event each).
    std::uint64_t drifts_ = 0;
};

}  // namespace cres::core
