// Peripheral behaviour monitor: physical-plausibility envelope for
// actuators and sensors.
//  - Actuator: command range, slew-rate and command-rate limits.
//  - Sensor: value range and maximum rate-of-change; a spoofed feed
//    that jumps outside the physical envelope is flagged.
#pragma once

#include <deque>
#include <optional>

#include "core/monitor/monitor.h"
#include "dev/actuator.h"
#include "dev/sensor.h"
#include "mem/bus.h"

namespace cres::core {

/// Plausibility envelope for one actuator.
struct ActuatorEnvelope {
    double min_command = 0.0;
    double max_command = 0.0;
    double max_slew = 0.0;         ///< Max |delta| between commands.
    std::uint32_t max_rate = 0;    ///< Max commands per window.
    sim::Cycle rate_window = 1000;
};

/// Plausibility envelope for one sensor.
struct SensorEnvelope {
    double min_value = 0.0;
    double max_value = 0.0;
    double max_step = 0.0;  ///< Max |delta| between consecutive samples.
};

class PeripheralMonitor : public Monitor, public mem::BusObserver,
                          public sim::Tickable {
public:
    PeripheralMonitor(EventSink& sink, const sim::Simulator& sim,
                      mem::Bus& bus);
    ~PeripheralMonitor() override;

    std::string description() const override {
        return "actuator command range/slew/rate envelope and sensor "
               "value plausibility checks";
    }

    /// Watches the actuator mapped at bus region `region` with command
    /// register at absolute address `command_addr`.
    void watch_actuator(const std::string& region, mem::Addr command_addr,
                        const ActuatorEnvelope& envelope);

    /// Polls `sensor` every `period` cycles against the envelope.
    void watch_sensor(dev::Sensor& sensor, const SensorEnvelope& envelope,
                      std::uint32_t period = 100);

    void on_transaction(const mem::BusTransaction& txn) override;
    void tick(sim::Cycle now) override;

    /// Quiescence: actuator envelopes are transaction-driven (stepped
    /// cycles only); sensor polls wake at the earliest countdown.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override;
    void skip(sim::Cycle now, sim::Cycle cycles) override;

private:
    struct ActuatorWatch {
        std::string region;
        mem::Addr command_addr;
        ActuatorEnvelope envelope;
        std::optional<double> last_command;
        std::deque<sim::Cycle> recent_commands;
    };
    struct SensorWatch {
        dev::Sensor* sensor;
        SensorEnvelope envelope;
        std::uint32_t period;
        std::uint32_t countdown;
        std::optional<double> last_value;
    };

    const sim::Simulator& sim_;
    mem::Bus& bus_;
    std::vector<ActuatorWatch> actuators_;
    std::vector<SensorWatch> sensors_;
};

}  // namespace cres::core
