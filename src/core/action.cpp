#include "core/action.h"

#include <array>
#include <utility>

namespace cres::core {

namespace {

constexpr std::array<std::pair<ResponseAction, const char*>, 12> kNames = {{
    {ResponseAction::kLogOnly, "log-only"},
    {ResponseAction::kAlertOperator, "alert-operator"},
    {ResponseAction::kIsolateResource, "isolate-resource"},
    {ResponseAction::kKillTask, "kill-task"},
    {ResponseAction::kRestartTask, "restart-task"},
    {ResponseAction::kZeroiseKeys, "zeroise-keys"},
    {ResponseAction::kRollbackFirmware, "rollback-firmware"},
    {ResponseAction::kRestoreCheckpoint, "restore-checkpoint"},
    {ResponseAction::kDegrade, "degrade"},
    {ResponseAction::kRateLimitPeripheral, "rate-limit"},
    {ResponseAction::kPartitionCache, "partition-cache"},
    {ResponseAction::kResetSystem, "reset-system"},
}};

}  // namespace

std::string action_name(ResponseAction action) {
    for (const auto& [a, name] : kNames) {
        if (a == action) return name;
    }
    return "?";
}

std::optional<ResponseAction> action_from_name(const std::string& name) {
    for (const auto& [a, n] : kNames) {
        if (name == n) return a;
    }
    return std::nullopt;
}

}  // namespace cres::core
