#include "core/event.h"

namespace cres::core {

std::string_view severity_name(EventSeverity severity) noexcept {
    switch (severity) {
        case EventSeverity::kInfo: return "info";
        case EventSeverity::kAdvisory: return "advisory";
        case EventSeverity::kAlert: return "alert";
        case EventSeverity::kCritical: return "critical";
    }
    return "?";
}

std::string_view category_name(EventCategory category) noexcept {
    switch (category) {
        case EventCategory::kBusViolation: return "bus-violation";
        case EventCategory::kControlFlow: return "control-flow";
        case EventCategory::kMemory: return "memory";
        case EventCategory::kDataFlow: return "data-flow";
        case EventCategory::kPeripheral: return "peripheral";
        case EventCategory::kTiming: return "timing";
        case EventCategory::kNetwork: return "network";
        case EventCategory::kEnvironment: return "environment";
        case EventCategory::kBoot: return "boot";
        case EventCategory::kSystem: return "system";
    }
    return "?";
}

}  // namespace cres::core
