#include "core/event.h"

#include "obs/syslog.h"

namespace cres::core {

std::string_view severity_name(EventSeverity severity) noexcept {
    switch (severity) {
        case EventSeverity::kInfo: return "info";
        case EventSeverity::kAdvisory: return "advisory";
        case EventSeverity::kAlert: return "alert";
        case EventSeverity::kCritical: return "critical";
    }
    return "?";
}

std::uint8_t syslog_severity(EventSeverity severity) noexcept {
    switch (severity) {
        case EventSeverity::kInfo: return obs::rfc5424::kInformational;
        case EventSeverity::kAdvisory: return obs::rfc5424::kNotice;
        case EventSeverity::kAlert: return obs::rfc5424::kWarning;
        case EventSeverity::kCritical: return obs::rfc5424::kCritical;
    }
    return obs::rfc5424::kInformational;
}

std::uint8_t syslog_facility(EventCategory category) noexcept {
    switch (category) {
        case EventCategory::kBusViolation: return obs::rfc5424::kFacLocal0;
        case EventCategory::kControlFlow: return obs::rfc5424::kFacLocal1;
        case EventCategory::kMemory: return obs::rfc5424::kFacLocal2;
        case EventCategory::kDataFlow: return obs::rfc5424::kFacLocal3;
        case EventCategory::kPeripheral: return obs::rfc5424::kFacLocal4;
        case EventCategory::kTiming: return obs::rfc5424::kFacLocal5;
        case EventCategory::kNetwork: return obs::rfc5424::kFacLocal6;
        case EventCategory::kEnvironment: return obs::rfc5424::kFacLocal7;
        case EventCategory::kBoot: return obs::rfc5424::kFacKern;
        case EventCategory::kSystem: return obs::rfc5424::kFacAudit;
    }
    return obs::rfc5424::kFacAudit;
}

std::uint8_t syslog_pri(EventCategory category,
                        EventSeverity severity) noexcept {
    return obs::rfc5424::pri(syslog_facility(category),
                             syslog_severity(severity));
}

std::string_view category_name(EventCategory category) noexcept {
    switch (category) {
        case EventCategory::kBusViolation: return "bus-violation";
        case EventCategory::kControlFlow: return "control-flow";
        case EventCategory::kMemory: return "memory";
        case EventCategory::kDataFlow: return "data-flow";
        case EventCategory::kPeripheral: return "peripheral";
        case EventCategory::kTiming: return "timing";
        case EventCategory::kNetwork: return "network";
        case EventCategory::kEnvironment: return "environment";
        case EventCategory::kBoot: return "boot";
        case EventCategory::kSystem: return "system";
    }
    return "?";
}

}  // namespace cres::core
