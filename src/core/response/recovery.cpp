#include "core/response/recovery.h"

namespace cres::core {

RecoveryManager::RecoveryManager(isa::Cpu& cpu, mem::Ram& ram)
    : cpu_(cpu), ram_(ram) {}

void RecoveryManager::bind_metrics(obs::MetricsRegistry& registry) {
    m_checkpoints_ = &registry.counter("cres_recovery_checkpoints_total");
    m_restores_ = &registry.counter("cres_recovery_restores_total");
    m_checkpoint_age_ =
        &registry.histogram("cres_recovery_checkpoint_age_cycles");
}

const Checkpoint& RecoveryManager::take_checkpoint(sim::Cycle now) {
    Checkpoint cp;
    cp.taken_at = now;
    cp.pc = cpu_.pc();
    for (unsigned i = 0; i < 16; ++i) cp.regs[i] = cpu_.reg(i);
    for (std::uint16_t i = 0; i < isa::kCsrCount; ++i) {
        cp.csrs[i] = cpu_.csr(i);
    }
    cp.ram_image = ram_.dump(0, ram_.size());

    crypto::Sha256 h;
    h.update(cp.ram_image);
    Bytes reg_bytes;
    for (const auto r : cp.regs) {
        for (int b = 0; b < 4; ++b) {
            reg_bytes.push_back(static_cast<std::uint8_t>(r >> (8 * b)));
        }
    }
    h.update(reg_bytes);
    cp.digest = h.finish();

    checkpoint_ = std::move(cp);
    ++taken_;
    if (m_checkpoints_ != nullptr) m_checkpoints_->inc();
    return *checkpoint_;
}

bool RecoveryManager::restore(sim::Cycle now) {
    if (!checkpoint_.has_value()) return false;
    const Checkpoint& cp = *checkpoint_;
    if (m_restores_ != nullptr) {
        m_restores_->inc();
        m_checkpoint_age_->record(now - cp.taken_at);
    }

    ram_.load(0, cp.ram_image);
    cpu_.reset(cp.pc);  // Machine mode, unhalted.
    for (unsigned i = 1; i < 16; ++i) cpu_.set_reg(i, cp.regs[i]);
    for (std::uint16_t i = 0; i < isa::kCsrCount; ++i) {
        if (i == isa::kCsrMcycle || i == isa::kCsrMinstret) continue;
        cpu_.set_csr(i, cp.csrs[i]);
    }
    ++restores_;
    if (post_restore_) post_restore_();
    return true;
}

}  // namespace cres::core
