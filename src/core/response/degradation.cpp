#include "core/response/degradation.h"

#include "util/error.h"

namespace cres::core {

void DegradationManager::register_service(
    const std::string& name, bool critical,
    std::function<void(bool)> set_enabled) {
    if (!set_enabled) {
        throw Error("DegradationManager: null service control for " + name);
    }
    services_.push_back(Service{name, critical, true, std::move(set_enabled)});
}

void DegradationManager::bind_metrics(obs::MetricsRegistry& registry) {
    m_sheds_ = &registry.counter("cres_degradation_services_shed_total");
    m_degraded_ = &registry.gauge("cres_degradation_degraded");
}

std::size_t DegradationManager::degrade() {
    std::size_t shed = 0;
    for (auto& s : services_) {
        if (!s.critical && s.enabled) {
            s.enabled = false;
            s.set_enabled(false);
            ++shed;
        }
    }
    degraded_ = true;
    if (m_sheds_ != nullptr) {
        m_sheds_->inc(shed);
        m_degraded_->set(1);
    }
    return shed;
}

void DegradationManager::restore() {
    for (auto& s : services_) {
        if (!s.enabled) {
            s.enabled = true;
            s.set_enabled(true);
        }
    }
    degraded_ = false;
    if (m_degraded_ != nullptr) m_degraded_->set(0);
}

bool DegradationManager::service_enabled(const std::string& name) const {
    for (const auto& s : services_) {
        if (s.name == name) return s.enabled;
    }
    return false;
}

std::size_t DegradationManager::critical_count() const {
    std::size_t n = 0;
    for (const auto& s : services_) {
        if (s.critical) ++n;
    }
    return n;
}

}  // namespace cres::core
