// Checkpoint/restore recovery: periodically snapshot the application
// CPU and RAM into SSM-private storage; on compromise, roll the whole
// compute context back to the last known-good state (Table I "Recovery
// Method: roll-back"). The checkpoint digest lets a verifier confirm
// which state was restored.
#pragma once

#include <array>
#include <optional>

#include "crypto/sha256.h"
#include "isa/cpu.h"
#include "mem/ram.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace cres::core {

struct Checkpoint {
    sim::Cycle taken_at = 0;
    mem::Addr pc = 0;
    std::array<std::uint32_t, 16> regs{};
    std::array<std::uint32_t, isa::kCsrCount> csrs{};
    Bytes ram_image;
    crypto::Hash256 digest{};
};

class RecoveryManager {
public:
    /// Snapshots cover `ram` (the application memory) and `cpu`.
    RecoveryManager(isa::Cpu& cpu, mem::Ram& ram);

    /// Takes a new known-good checkpoint (replacing the previous one).
    const Checkpoint& take_checkpoint(sim::Cycle now);

    /// Registers checkpoint/restore counters and the checkpoint-age-at-
    /// restore histogram (how stale the restored state was, in cycles).
    void bind_metrics(obs::MetricsRegistry& registry);

    [[nodiscard]] bool has_checkpoint() const noexcept {
        return checkpoint_.has_value();
    }
    [[nodiscard]] const std::optional<Checkpoint>& checkpoint() const noexcept {
        return checkpoint_;
    }

    /// Restores CPU + RAM to the checkpoint; the CPU resumes (unhalted,
    /// machine mode) at the checkpointed pc. Returns false when no
    /// checkpoint exists.
    bool restore(sim::Cycle now);

    [[nodiscard]] std::uint32_t checkpoints_taken() const noexcept {
        return taken_;
    }
    [[nodiscard]] std::uint32_t restores() const noexcept { return restores_; }

    /// Invoked after every successful restore (e.g. to clear the CFI
    /// shadow stack, whose frames no longer match the restored state).
    void set_post_restore(std::function<void()> hook) {
        post_restore_ = std::move(hook);
    }

private:
    isa::Cpu& cpu_;
    mem::Ram& ram_;
    std::function<void()> post_restore_;
    std::optional<Checkpoint> checkpoint_;
    std::uint32_t taken_ = 0;
    std::uint32_t restores_ = 0;

    // --- Observability (null until bind_metrics) -------------------------
    obs::Counter* m_checkpoints_ = nullptr;
    obs::Counter* m_restores_ = nullptr;
    obs::Histogram* m_checkpoint_age_ = nullptr;
};

}  // namespace cres::core
