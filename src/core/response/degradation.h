// Graceful-degradation manager (paper §V-3): when a resource is
// isolated or a task killed, shed non-critical services so the
// critical function keeps running — "maintain critical services in
// next-generation critical infrastructure".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cres::core {

class DegradationManager {
public:
    /// `set_enabled(bool)` turns the service on/off (e.g. gates its
    /// task scheduling or fences its peripheral).
    void register_service(const std::string& name, bool critical,
                          std::function<void(bool)> set_enabled);

    /// Sheds all non-critical services; returns how many were shed.
    std::size_t degrade();

    /// Registers the shed counter and the degraded-state gauge.
    void bind_metrics(obs::MetricsRegistry& registry);

    /// Restores every service.
    void restore();

    [[nodiscard]] bool degraded() const noexcept { return degraded_; }
    [[nodiscard]] bool service_enabled(const std::string& name) const;
    [[nodiscard]] std::size_t service_count() const noexcept {
        return services_.size();
    }
    [[nodiscard]] std::size_t critical_count() const;

private:
    struct Service {
        std::string name;
        bool critical = false;
        bool enabled = true;
        std::function<void(bool)> set_enabled;
    };
    std::vector<Service> services_;
    bool degraded_ = false;

    // --- Observability (null until bind_metrics) -------------------------
    obs::Counter* m_sheds_ = nullptr;
    obs::Gauge* m_degraded_ = nullptr;
};

}  // namespace cres::core
