#include "core/response/response.h"

namespace cres::core {

namespace {

/// Actions that neutralise the threat in place (vs. recover/notify) —
/// these mark the CSF contain phase of the open incident.
constexpr bool is_containment(ResponseAction action) noexcept {
    switch (action) {
        case ResponseAction::kIsolateResource:
        case ResponseAction::kKillTask:
        case ResponseAction::kZeroiseKeys:
        case ResponseAction::kRateLimitPeripheral:
        case ResponseAction::kPartitionCache:
            return true;
        default:
            return false;
    }
}

}  // namespace

ActiveResponseManager::ActiveResponseManager(ResponseContext context)
    : ctx_(std::move(context)) {}

void ActiveResponseManager::bind_metrics(obs::MetricsRegistry& registry) {
    m_actions_total_ = &registry.counter("cres_response_actions_total");
    for (std::size_t i = 0; i < kResponseActionCount; ++i) {
        m_by_action_[i] = &registry.counter(
            "cres_response_action_total{action=\"" +
            action_name(static_cast<ResponseAction>(i)) + "\"}");
    }
    m_containment_latency_ =
        &registry.histogram("cres_response_containment_latency_cycles");
}

std::uint64_t ActiveResponseManager::count(ResponseAction action) const {
    std::uint64_t n = 0;
    for (const auto& r : records_) {
        if (r.action == action) ++n;
    }
    return n;
}

std::string ActiveResponseManager::execute(ResponseAction action,
                                           const MonitorEvent& trigger) {
    const std::string outcome = run(action, trigger);
    const sim::Cycle now = ctx_.sim != nullptr ? ctx_.sim->now() : trigger.at;
    records_.push_back(
        ResponseRecord{now, action, trigger.resource, outcome});
    if (m_actions_total_ != nullptr) {
        m_actions_total_->inc();
        const auto idx = static_cast<std::size_t>(action);
        if (idx < kResponseActionCount) m_by_action_[idx]->inc();
    }
    if (is_containment(action)) {
        if (m_containment_latency_ != nullptr) {
            m_containment_latency_->record(now - trigger.at);
        }
        if (ctx_.ssm != nullptr) ctx_.ssm->notify_contained(now);
    }
    return outcome;
}

std::string ActiveResponseManager::run(ResponseAction action,
                                       const MonitorEvent& trigger) {
    const sim::Cycle now = ctx_.sim != nullptr ? ctx_.sim->now() : trigger.at;
    switch (action) {
        case ResponseAction::kLogOnly:
            return "recorded";

        case ResponseAction::kAlertOperator:
            if (!ctx_.operator_alert) return "unavailable: no alert channel";
            ctx_.operator_alert(trigger.monitor + ": " + trigger.detail);
            return "operator notified";

        case ResponseAction::kIsolateResource: {
            if (ctx_.bus == nullptr) return "unavailable: no bus handle";
            if (ctx_.bus->isolate_region(trigger.resource)) {
                return "region '" + trigger.resource + "' fenced off";
            }
            return "no such region '" + trigger.resource + "'";
        }

        case ResponseAction::kKillTask:
            if (ctx_.cpu == nullptr) return "unavailable: no cpu handle";
            ctx_.cpu->halt();
            return "cpu halted";

        case ResponseAction::kRestartTask: {
            if (ctx_.recovery != nullptr && ctx_.recovery->has_checkpoint()) {
                if (ctx_.ssm != nullptr) ctx_.ssm->notify_recovery_started(now);
                ctx_.recovery->restore(now);
                if (ctx_.ssm != nullptr) {
                    ctx_.ssm->notify_recovery_complete(now, false);
                }
                return "restored checkpoint and restarted";
            }
            return "unavailable: no checkpoint";
        }

        case ResponseAction::kZeroiseKeys: {
            if (ctx_.keystore == nullptr) return "unavailable: no key store";
            const std::size_t wiped = ctx_.keystore->zeroise_all();
            return "zeroised " + std::to_string(wiped) + " keys";
        }

        case ResponseAction::kRollbackFirmware: {
            if (ctx_.update_agent == nullptr) {
                return "unavailable: no update agent";
            }
            if (!ctx_.update_agent->inactive_image().has_value()) {
                return "no fallback image";
            }
            (void)ctx_.update_agent->activate();
            if (ctx_.system_reset) ctx_.system_reset();
            return "rolled back to fallback image";
        }

        case ResponseAction::kRestoreCheckpoint: {
            if (ctx_.recovery == nullptr || !ctx_.recovery->has_checkpoint()) {
                return "unavailable: no checkpoint";
            }
            if (ctx_.ssm != nullptr) ctx_.ssm->notify_recovery_started(now);
            ctx_.recovery->restore(now);
            if (ctx_.ssm != nullptr) {
                ctx_.ssm->notify_recovery_complete(now, false);
            }
            return "checkpoint restored";
        }

        case ResponseAction::kDegrade: {
            if (ctx_.degradation == nullptr) {
                return "unavailable: no degradation manager";
            }
            const std::size_t shed = ctx_.degradation->degrade();
            if (ctx_.ssm != nullptr) {
                ctx_.ssm->notify_recovery_complete(now, true);
            }
            return "shed " + std::to_string(shed) + " non-critical services";
        }

        case ResponseAction::kRateLimitPeripheral:
            if (!ctx_.rate_limiter) return "unavailable: no rate limiter";
            return ctx_.rate_limiter(trigger.resource);

        case ResponseAction::kPartitionCache:
            if (!ctx_.cache_partitioner) {
                return "unavailable: no partitionable cache";
            }
            return ctx_.cache_partitioner(trigger.resource);

        case ResponseAction::kResetSystem:
            if (!ctx_.system_reset) return "unavailable: no reset line";
            ctx_.system_reset();
            return "system reset";
    }
    return "unknown action";
}

}  // namespace cres::core
