// The Active Response Manager — the paper's third microarchitectural
// characteristic (§V-3). Executes the response and recovery strategies
// the SSM's policy engine selects: resource isolation on the bus fabric,
// task kill/restart, key zeroisation, firmware rollback, checkpoint
// restore, graceful degradation and (last resort) system reset.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "boot/update.h"
#include "core/response/degradation.h"
#include "core/response/recovery.h"
#include "core/ssm/ssm.h"
#include "crypto/keystore.h"
#include "isa/cpu.h"
#include "mem/bus.h"

namespace cres::core {

/// Handles to the platform facilities the response manager drives.
/// Null members simply make the corresponding action report
/// "unavailable" (a platform without an update agent cannot roll back).
struct ResponseContext {
    mem::Bus* bus = nullptr;
    isa::Cpu* cpu = nullptr;
    crypto::KeyStore* keystore = nullptr;
    boot::UpdateAgent* update_agent = nullptr;
    RecoveryManager* recovery = nullptr;
    DegradationManager* degradation = nullptr;
    SystemSecurityManager* ssm = nullptr;
    const sim::Simulator* sim = nullptr;
    std::function<void(const std::string&)> operator_alert;
    std::function<void()> system_reset;
    /// Clamps the named peripheral to a safe envelope; returns outcome.
    std::function<std::string(const std::string& resource)> rate_limiter;
    /// Partitions/flushes the named cache to close timing channels.
    std::function<std::string(const std::string& resource)> cache_partitioner;
};

/// One executed countermeasure, for metrics and forensics.
struct ResponseRecord {
    sim::Cycle at = 0;
    ResponseAction action = ResponseAction::kLogOnly;
    std::string resource;
    std::string outcome;
};

class ActiveResponseManager : public ResponseExecutor {
public:
    explicit ActiveResponseManager(ResponseContext context);

    std::string execute(ResponseAction action,
                        const MonitorEvent& trigger) override;

    /// Registers per-action execution counters and the containment
    /// latency histogram (trigger emit -> containment action done).
    void bind_metrics(obs::MetricsRegistry& registry);

    [[nodiscard]] const std::vector<ResponseRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] std::uint64_t count(ResponseAction action) const;
    [[nodiscard]] std::uint64_t total() const noexcept {
        return records_.size();
    }

private:
    std::string run(ResponseAction action, const MonitorEvent& trigger);

    ResponseContext ctx_;
    std::vector<ResponseRecord> records_;

    // --- Observability (null until bind_metrics) -------------------------
    obs::Counter* m_actions_total_ = nullptr;
    std::array<obs::Counter*, kResponseActionCount> m_by_action_{};
    obs::Histogram* m_containment_latency_ = nullptr;
};

}  // namespace cres::core
