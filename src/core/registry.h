// Capability registry: maps the NIST CSF core security functions and
// the paper's derived embedded security requirements (Table I) onto the
// modules of this implementation. bench_table1 prints this table; tests
// assert every CSF function is covered.
#pragma once

#include <string>
#include <vector>

namespace cres::core {

struct Capability {
    std::string csf_function;  ///< identify/protect/detect/respond/recover.
    std::string requirement;   ///< Derived embedded security requirement.
    std::string mechanism;     ///< What this codebase implements.
    std::string module;        ///< Library/class implementing it.
};

/// The full Table-I mapping for this implementation.
const std::vector<Capability>& capability_registry();

/// Distinct CSF functions present in the registry (should be all five).
std::vector<std::string> covered_functions();

}  // namespace cres::core
