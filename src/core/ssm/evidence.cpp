#include "core/ssm/evidence.h"

#include "util/error.h"

namespace cres::core {

namespace {

/// First allocation sizes the record vector and scratch writer for a
/// burst of typical monitor events without further growth.
constexpr std::size_t kInitialRecordCapacity = 64;
constexpr std::size_t kScratchCapacity = 512;

}  // namespace

EvidenceLog::EvidenceLog(Bytes seal_key)
    : seal_key_(std::move(seal_key)), sealer_(seal_key_) {
    if (seal_key_.empty()) {
        throw Error("EvidenceLog: empty seal key");
    }
    scratch_.reserve(kScratchCapacity);
}

crypto::Hash256 EvidenceLog::record_hash(const EvidenceRecord& record) const {
    scratch_.clear();
    scratch_.u64(record.index);
    scratch_.u64(record.at);
    scratch_.str(record.kind);
    scratch_.str(record.detail);
    scratch_.blob(record.payload);
    return crypto::sha256_pair(record.prev_hash, scratch_.data());
}

void EvidenceLog::reserve(std::size_t n) {
    records_.reserve(n);
}

const EvidenceRecord& EvidenceLog::append(sim::Cycle at, std::string kind,
                                          std::string detail, Bytes payload) {
    // Geometric growth ahead of push_back keeps the steady state free
    // of reallocation without changing amortized cost.
    if (records_.size() == records_.capacity()) {
        records_.reserve(
            std::max(kInitialRecordCapacity, records_.capacity() * 2));
    }
    EvidenceRecord record;
    record.index = records_.size();
    record.at = at;
    record.kind = std::move(kind);
    record.detail = std::move(detail);
    record.payload = std::move(payload);
    record.prev_hash =
        records_.empty() ? crypto::Hash256{} : records_.back().hash;
    record.hash = record_hash(record);
    records_.push_back(std::move(record));
    return records_.back();
}

crypto::Hash256 EvidenceLog::head() const noexcept {
    return records_.empty() ? crypto::Hash256{} : records_.back().hash;
}

bool EvidenceLog::verify_range(std::size_t first, std::size_t count) const {
    crypto::Hash256 prev =
        first == 0 ? crypto::Hash256{} : records_[first - 1].hash;
    for (std::size_t i = first; i < count; ++i) {
        const EvidenceRecord& r = records_[i];
        if (r.index != i) return false;
        if (!ct_equal(r.prev_hash, prev)) return false;
        if (!ct_equal(r.hash, record_hash(r))) return false;
        prev = r.hash;
    }
    return true;
}

bool EvidenceLog::verify_chain() const {
    if (verified_ > records_.size()) return false;  // Truncated since check.
    if (!verify_range(verified_, records_.size())) return false;
    verified_ = records_.size();
    return true;
}

bool EvidenceLog::verify_chain_full() const {
    if (!verify_range(0, records_.size())) return false;
    verified_ = records_.size();
    return true;
}

bool EvidenceLog::verify_prefix(std::size_t count) const {
    if (count > records_.size()) return false;
    return verify_range(0, count);
}

EvidenceSeal EvidenceLog::seal() const {
    EvidenceSeal s;
    s.count = records_.size();
    s.head = head();
    scratch_.clear();
    scratch_.u64(s.count);
    scratch_.raw(s.head);
    s.tag = sealer_.tag(scratch_.data());
    return s;
}

bool EvidenceLog::verify_seal(const EvidenceLog& log, const EvidenceSeal& seal,
                              BytesView seal_key) {
    BinaryWriter w;
    w.u64(seal.count);
    w.raw(seal.head);
    if (!crypto::hmac_verify(seal_key, w.data(), seal.tag)) return false;
    if (log.size() < seal.count) return false;  // Truncated.
    if (seal.count == 0) return true;
    // The sealed head must appear at the sealed position.
    if (!ct_equal(log.records()[seal.count - 1].hash, seal.head)) {
        return false;
    }
    // Only the sealed prefix matters: records appended after the seal
    // was taken (including garbage) must not change the verdict.
    return log.verify_prefix(seal.count);
}

Bytes EvidenceLog::serialize() const {
    BinaryWriter w;
    w.u32(0x43455644);  // "CEVD"
    w.u64(records_.size());
    for (const EvidenceRecord& r : records_) {
        w.u64(r.index);
        w.u64(r.at);
        w.str(r.kind);
        w.str(r.detail);
        w.blob(r.payload);
        w.raw(r.prev_hash);
        w.raw(r.hash);
    }
    return w.take();
}

EvidenceLog EvidenceLog::deserialize(BytesView data, Bytes seal_key) {
    BinaryReader r(data);
    if (r.u32() != 0x43455644) {
        throw Error("EvidenceLog::deserialize: bad magic");
    }
    EvidenceLog log(std::move(seal_key));
    const std::uint64_t count = r.u64();
    // Reserve up front, clamped so a forged count cannot force a huge
    // allocation before the reader hits the underflow check.
    log.records_.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, 1u << 16)));
    for (std::uint64_t i = 0; i < count; ++i) {
        EvidenceRecord record;
        record.index = r.u64();
        record.at = r.u64();
        record.kind = r.str();
        record.detail = r.str();
        record.payload = r.blob();
        record.prev_hash = crypto::hash_from_bytes(r.raw(32));
        record.hash = crypto::hash_from_bytes(r.raw(32));
        log.records_.push_back(std::move(record));
    }
    return log;
}

void EvidenceLog::tamper_detail(std::size_t index, std::string new_detail) {
    if (index >= records_.size()) {
        throw Error("EvidenceLog::tamper_detail: bad index");
    }
    records_[index].detail = std::move(new_detail);
    // The mutated record is no longer trusted by the incremental path.
    verified_ = std::min(verified_, index);
}

void EvidenceLog::wipe() noexcept {
    records_.clear();
    verified_ = 0;
}

}  // namespace cres::core
