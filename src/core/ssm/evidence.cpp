#include "core/ssm/evidence.h"

#include "util/error.h"
#include "util/serial.h"

namespace cres::core {

EvidenceLog::EvidenceLog(Bytes seal_key) : seal_key_(std::move(seal_key)) {
    if (seal_key_.empty()) {
        throw Error("EvidenceLog: empty seal key");
    }
}

crypto::Hash256 EvidenceLog::record_hash(const EvidenceRecord& record) {
    BinaryWriter w;
    w.u64(record.index);
    w.u64(record.at);
    w.str(record.kind);
    w.str(record.detail);
    w.blob(record.payload);
    return crypto::sha256_pair(record.prev_hash, w.data());
}

const EvidenceRecord& EvidenceLog::append(sim::Cycle at, std::string kind,
                                          std::string detail, Bytes payload) {
    EvidenceRecord record;
    record.index = records_.size();
    record.at = at;
    record.kind = std::move(kind);
    record.detail = std::move(detail);
    record.payload = std::move(payload);
    record.prev_hash =
        records_.empty() ? crypto::Hash256{} : records_.back().hash;
    record.hash = record_hash(record);
    records_.push_back(std::move(record));
    return records_.back();
}

crypto::Hash256 EvidenceLog::head() const noexcept {
    return records_.empty() ? crypto::Hash256{} : records_.back().hash;
}

bool EvidenceLog::verify_chain() const {
    crypto::Hash256 prev{};
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const EvidenceRecord& r = records_[i];
        if (r.index != i) return false;
        if (!ct_equal(r.prev_hash, prev)) return false;
        if (!ct_equal(r.hash, record_hash(r))) return false;
        prev = r.hash;
    }
    return true;
}

EvidenceSeal EvidenceLog::seal() const {
    EvidenceSeal s;
    s.count = records_.size();
    s.head = head();
    BinaryWriter w;
    w.u64(s.count);
    w.raw(s.head);
    s.tag = crypto::hmac_sha256(seal_key_, w.data());
    return s;
}

bool EvidenceLog::verify_seal(const EvidenceLog& log, const EvidenceSeal& seal,
                              BytesView seal_key) {
    BinaryWriter w;
    w.u64(seal.count);
    w.raw(seal.head);
    if (!crypto::hmac_verify(seal_key, w.data(), seal.tag)) return false;
    if (log.size() < seal.count) return false;  // Truncated.
    if (seal.count == 0) return true;
    // The sealed head must appear at the sealed position.
    if (!ct_equal(log.records()[seal.count - 1].hash, seal.head)) {
        return false;
    }
    return log.verify_chain();
}

Bytes EvidenceLog::serialize() const {
    BinaryWriter w;
    w.u32(0x43455644);  // "CEVD"
    w.u64(records_.size());
    for (const EvidenceRecord& r : records_) {
        w.u64(r.index);
        w.u64(r.at);
        w.str(r.kind);
        w.str(r.detail);
        w.blob(r.payload);
        w.raw(r.prev_hash);
        w.raw(r.hash);
    }
    return w.take();
}

EvidenceLog EvidenceLog::deserialize(BytesView data, Bytes seal_key) {
    BinaryReader r(data);
    if (r.u32() != 0x43455644) {
        throw Error("EvidenceLog::deserialize: bad magic");
    }
    EvidenceLog log(std::move(seal_key));
    const std::uint64_t count = r.u64();
    log.records_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        EvidenceRecord record;
        record.index = r.u64();
        record.at = r.u64();
        record.kind = r.str();
        record.detail = r.str();
        record.payload = r.blob();
        record.prev_hash = crypto::hash_from_bytes(r.raw(32));
        record.hash = crypto::hash_from_bytes(r.raw(32));
        log.records_.push_back(std::move(record));
    }
    return log;
}

void EvidenceLog::tamper_detail(std::size_t index, std::string new_detail) {
    if (index >= records_.size()) {
        throw Error("EvidenceLog::tamper_detail: bad index");
    }
    records_[index].detail = std::move(new_detail);
}

void EvidenceLog::wipe() noexcept {
    records_.clear();
}

}  // namespace cres::core
