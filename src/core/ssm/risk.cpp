#include "core/ssm/risk.h"

#include <algorithm>
#include <cmath>

namespace cres::core {

std::string asset_kind_name(AssetKind kind) {
    switch (kind) {
        case AssetKind::kMemoryRegion: return "memory-region";
        case AssetKind::kPeripheral: return "peripheral";
        case AssetKind::kTask: return "task";
        case AssetKind::kKey: return "key";
        case AssetKind::kChannel: return "channel";
    }
    return "?";
}

namespace {
std::uint32_t clamp_score(std::uint32_t v) {
    return std::clamp<std::uint32_t>(v, 1, 5);
}
}  // namespace

void RiskRegister::add_asset(const std::string& name, AssetKind kind,
                             std::uint32_t criticality,
                             std::uint32_t exposure) {
    auto& asset = assets_[name];
    asset.name = name;
    asset.kind = kind;
    asset.criticality = clamp_score(criticality);
    asset.exposure = clamp_score(exposure);
}

void RiskRegister::record_incident(const std::string& resource) {
    auto it = assets_.find(resource);
    if (it == assets_.end()) {
        add_asset(resource, AssetKind::kMemoryRegion, 3, 3);
        it = assets_.find(resource);
    }
    ++it->second.incidents;
}

double RiskRegister::risk_score(const std::string& name) const {
    const auto it = assets_.find(name);
    if (it == assets_.end()) return 0.0;
    const Asset& a = it->second;
    return static_cast<double>(a.criticality) *
           static_cast<double>(a.exposure) *
           (1.0 + std::log2(1.0 + static_cast<double>(a.incidents)));
}

std::vector<Asset> RiskRegister::ranked() const {
    std::vector<Asset> out;
    out.reserve(assets_.size());
    for (const auto& [name, asset] : assets_) out.push_back(asset);
    std::sort(out.begin(), out.end(), [this](const Asset& a, const Asset& b) {
        return risk_score(a.name) > risk_score(b.name);
    });
    return out;
}

std::uint32_t RiskRegister::criticality(const std::string& name) const {
    const auto it = assets_.find(name);
    return it == assets_.end() ? 0 : it->second.criticality;
}

}  // namespace cres::core
