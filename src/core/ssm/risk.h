// Risk register — the Identify function (NIST CSF) of the SSM: an
// asset inventory with static criticality/exposure scoring plus a
// dynamic component driven by observed incidents. The response policy
// uses it to prioritise (critical assets respond harder, faster).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cres::core {

enum class AssetKind : std::uint8_t {
    kMemoryRegion,
    kPeripheral,
    kTask,
    kKey,
    kChannel,
};

std::string asset_kind_name(AssetKind kind);

struct Asset {
    std::string name;
    AssetKind kind = AssetKind::kMemoryRegion;
    std::uint32_t criticality = 1;  ///< 1 (low) .. 5 (safety-critical).
    std::uint32_t exposure = 1;     ///< 1 (internal) .. 5 (network-facing).
    std::uint64_t incidents = 0;    ///< Observed events against it.
};

class RiskRegister {
public:
    /// Registers (or updates) an asset. Scores are clamped to [1, 5].
    void add_asset(const std::string& name, AssetKind kind,
                   std::uint32_t criticality, std::uint32_t exposure);

    /// Notes an incident against a resource (unknown resources are
    /// auto-registered with middling scores — unknown means unassessed,
    /// not safe).
    void record_incident(const std::string& resource);

    /// risk = criticality × exposure × (1 + log2(1 + incidents)).
    [[nodiscard]] double risk_score(const std::string& name) const;

    /// Highest-risk assets first.
    [[nodiscard]] std::vector<Asset> ranked() const;

    [[nodiscard]] const std::map<std::string, Asset>& assets() const noexcept {
        return assets_;
    }
    [[nodiscard]] bool contains(const std::string& name) const noexcept {
        return assets_.count(name) != 0;
    }

    /// Criticality lookup used by response prioritisation (0 = unknown).
    [[nodiscard]] std::uint32_t criticality(const std::string& name) const;

private:
    std::map<std::string, Asset> assets_;
};

}  // namespace cres::core
