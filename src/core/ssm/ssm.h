// The Independent Active Runtime System Security Manager — the paper's
// first microarchitectural characteristic (§V-1).
//
// It is modelled as an independent agent with private state: its event
// queue, policy engine, risk register and evidence log are NOT mapped
// on the application bus. `physically_isolated` controls the ablation
// of §V-1: when false, the SSM shares the main CPU's resources
// (TEE-style) and a kernel-level compromise can disable it and destroy
// its evidence; when true (the paper's design), attempt_compromise()
// from the application side always fails.
//
// Event flow: monitors submit() events synchronously; the SSM drains
// its queue every poll_interval cycles (modelling the independent
// processor's scan rate), appends evidence, updates health state,
// evaluates policy and dispatches response actions to the executor.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/event.h"
#include "core/policy/policy.h"
#include "core/ssm/evidence.h"
#include "core/ssm/risk.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/siem.h"
#include "obs/span.h"
#include "sim/simulator.h"

namespace cres::core {

/// Health states map onto the CSF functions: Detect moves Healthy ->
/// Suspicious/Compromised, Respond moves into Responding, Recover
/// moves through Recovering back to Healthy or Degraded.
enum class HealthState : std::uint8_t {
    kHealthy,
    kSuspicious,
    kCompromised,
    kResponding,
    kRecovering,
    kDegraded,
};

std::string health_state_name(HealthState state);

/// Implemented by the Active Response Manager.
class ResponseExecutor {
public:
    virtual ~ResponseExecutor() = default;
    /// Executes one action for the triggering event; returns a
    /// human-readable outcome for the evidence log.
    virtual std::string execute(ResponseAction action,
                                const MonitorEvent& trigger) = 0;
};

struct SsmConfig {
    bool physically_isolated = true;
    sim::Cycle poll_interval = 10;
    Bytes seal_key;  ///< Evidence-sealing key (required).
    std::string device_name = "node";  ///< Identity stamped into bundles.
    /// Pre-incident flight-recorder cycles captured into a postmortem
    /// bundle (the window before the triggering event's emit cycle).
    sim::Cycle postmortem_pre_window = 5000;
};

/// A dispatched (event -> rule -> actions) decision, kept for metrics.
struct Dispatch {
    MonitorEvent event;
    sim::Cycle dispatched_at = 0;
    std::string rule;
    std::vector<ResponseAction> actions;

    [[nodiscard]] sim::Cycle latency() const noexcept {
        return dispatched_at - event.at;
    }
};

class SystemSecurityManager : public EventSink, public sim::Tickable {
public:
    SystemSecurityManager(const sim::Simulator& sim, SsmConfig config);

    // --- Wiring ---------------------------------------------------------
    void set_policy(PolicyEngine policy) { policy_ = std::move(policy); }
    void set_response_executor(ResponseExecutor* executor) {
        executor_ = executor;
    }

    /// Attaches the node's metrics registry: per-poll queue depth,
    /// per-event detection latency and the CSF incident span tracer
    /// (detect/respond/contain/recover latency histograms). Unbound
    /// SSMs skip all metric work.
    void bind_metrics(obs::MetricsRegistry& registry);

    /// Attaches the device flight recorder: health transitions, policy
    /// decisions and response actions land in the black-box ring, and
    /// queue depth is recorded as a counter track whenever it changes.
    /// Also enables postmortem capture — on incident span open the SSM
    /// snapshots the pre-incident ring window, and on close it seals
    /// the full bundle (requires bind_metrics for the span tracer).
    void bind_recorder(obs::FlightRecorder& recorder);

    /// Attaches the device SIEM staging buffer: every processed event,
    /// health transition and incident open/close is framed as one
    /// severity-classified record for the fleet export stream. The
    /// buffer is bounded — overflow is counted, never blocking.
    void bind_siem(obs::SiemBuffer& buffer) { siem_ = &buffer; }

    // --- EventSink (called synchronously by monitors) --------------------
    void submit(const MonitorEvent& event) override;

    // --- Tickable ---------------------------------------------------------
    void tick(sim::Cycle now) override;

    /// Quiescence: a disabled SSM never acts; with events queued it
    /// wakes at the next poll deadline; with an empty queue the poll
    /// carries no decision, so skip() replays every elided poll
    /// (queue-depth histogram samples, the change-guarded recorder
    /// track, the depth gauge) bit-exactly instead of waking.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override;
    void skip(sim::Cycle now, sim::Cycle cycles) override;

    // --- Recovery signalling (called by the response manager) -----------
    void notify_recovery_started(sim::Cycle at);
    void notify_recovery_complete(sim::Cycle at, bool degraded);
    /// Degraded services restored (operator action / roll-forward).
    void notify_full_service(sim::Cycle at);
    /// Containment action finished (isolate/kill/zeroise/rate-limit/
    /// partition) — marks the contain span of the open incident.
    void notify_contained(sim::Cycle at);

    // --- State ------------------------------------------------------------
    [[nodiscard]] HealthState health() const noexcept { return health_; }
    [[nodiscard]] bool disabled() const noexcept { return disabled_; }
    [[nodiscard]] EvidenceLog& evidence() noexcept { return evidence_; }
    [[nodiscard]] const EvidenceLog& evidence() const noexcept {
        return evidence_;
    }
    [[nodiscard]] RiskRegister& risks() noexcept { return risks_; }
    [[nodiscard]] const std::vector<Dispatch>& dispatches() const noexcept {
        return dispatches_;
    }
    [[nodiscard]] std::uint64_t events_processed() const noexcept {
        return events_processed_;
    }
    [[nodiscard]] std::size_t queue_depth() const noexcept {
        return queue_.size();
    }
    /// CSF span tracer (nullptr until bind_metrics).
    [[nodiscard]] const obs::SpanTracer* spans() const noexcept {
        return spans_.get();
    }

    /// Completed incident postmortem bundles, oldest first (empty until
    /// an incident closes; requires bind_metrics).
    [[nodiscard]] const std::vector<obs::PostmortemBundle>& postmortems()
        const noexcept {
        return postmortems_;
    }

    /// Renders bundle `index` as the sealed, offline-verifiable JSON
    /// artefact (sealed under the evidence seal key). Throws Error on
    /// out-of-range indices.
    [[nodiscard]] std::string sealed_postmortem(std::size_t index) const;

    /// First dispatch at-or-after `since` whose event matches the
    /// category — detection-latency metric helper.
    [[nodiscard]] std::optional<Dispatch> first_dispatch_of(
        EventCategory category, sim::Cycle since = 0) const;

    // --- Attack surface ----------------------------------------------------
    /// An attacker with kernel privilege on the main CPU attempts to
    /// kill the security manager and destroy its evidence. Succeeds
    /// only when the SSM is NOT physically isolated (the §V-1 ablation).
    bool attempt_compromise(const std::string& method);

    /// A health report a verifier can check (signed with the seal key).
    struct HealthReport {
        HealthState state = HealthState::kHealthy;
        std::uint64_t events_processed = 0;
        EvidenceSeal evidence_seal;
        crypto::Hash256 tag{};
    };
    [[nodiscard]] HealthReport health_report() const;
    [[nodiscard]] static bool verify_health_report(const HealthReport& report,
                                                   BytesView seal_key);

private:
    void transition(HealthState next, sim::Cycle at, const std::string& why);
    void process_event(const MonitorEvent& event, sim::Cycle now);

    const sim::Simulator& sim_;
    SsmConfig config_;
    PolicyEngine policy_;
    ResponseExecutor* executor_ = nullptr;

    std::deque<MonitorEvent> queue_;
    EvidenceLog evidence_;
    /// Keyed once on the seal key: health-report tags reuse the cached
    /// ipad/opad midstates instead of re-deriving them per report.
    crypto::HmacSha256 report_hmac_;
    RiskRegister risks_;
    HealthState health_ = HealthState::kHealthy;
    bool disabled_ = false;
    std::uint64_t events_processed_ = 0;
    std::vector<Dispatch> dispatches_;
    sim::Cycle next_poll_ = 0;

    void open_postmortem(std::uint64_t incident_id, sim::Cycle opened_at);
    void close_postmortem(sim::Cycle at);

    // --- Observability (null/empty until bind_metrics) -------------------
    std::unique_ptr<obs::SpanTracer> spans_;
    std::optional<std::uint64_t> incident_;  ///< Open incident span id.
    obs::MetricsRegistry* registry_ = nullptr;
    obs::FlightRecorder* recorder_ = nullptr;
    obs::SiemBuffer* siem_ = nullptr;
    std::uint16_t rec_source_ = 0;   ///< Interned "ssm".
    std::uint16_t rec_state_ = 0;    ///< Interned kinds.
    std::uint16_t rec_decision_ = 0;
    std::uint16_t rec_action_ = 0;
    std::uint16_t rec_queue_ = 0;
    std::size_t last_queue_recorded_ = 0;
    /// Bundle under construction for the open incident (pre-window
    /// snapshot taken at open, completed and sealed at close).
    std::optional<obs::PostmortemBundle> pending_postmortem_;
    std::uint64_t pending_seq_ = 0;  ///< Recorder watermark at open.
    std::vector<obs::PostmortemBundle> postmortems_;
    obs::Counter* m_events_ = nullptr;
    obs::Counter* m_dispatches_ = nullptr;
    obs::Counter* m_transitions_ = nullptr;
    obs::Gauge* m_queue_depth_ = nullptr;
    obs::Histogram* m_queue_depth_per_poll_ = nullptr;
    obs::Histogram* m_detection_latency_ = nullptr;
};

}  // namespace cres::core
