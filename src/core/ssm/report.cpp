#include "core/ssm/report.h"

#include <sstream>

namespace cres::core {

IncidentReport generate_incident_report(const EvidenceLog& log,
                                        const std::string& device_name) {
    IncidentReport report;
    report.device = device_name;
    // Forensic path: never trust the incremental watermark here.
    report.integrity_ok = log.verify_chain_full();
    report.total_records = log.size();

    for (const EvidenceRecord& record : log.records()) {
        report.last_activity = std::max(report.last_activity, record.at);
        if (record.kind == "event") {
            ++report.detection_events;
            // Severity is embedded in the formatted detail
            // ("monitor/category/severity resource: ...").
            const bool severe =
                record.detail.find("/critical ") != std::string::npos ||
                record.detail.find("/alert ") != std::string::npos;
            if (severe) {
                if (report.first_alert == 0) report.first_alert = record.at;
                report.indicators.push_back(
                    "[" + std::to_string(record.at) + "] " + record.detail);
            }
        } else if (record.kind == "decision") {
            ++report.decisions;
        } else if (record.kind == "action") {
            ++report.actions;
            report.responses.push_back(
                "[" + std::to_string(record.at) + "] " + record.detail);
        } else if (record.kind == "state") {
            ++report.state_changes;
        }
    }
    return report;
}

std::string IncidentReport::render() const {
    std::ostringstream os;
    os << "==== INCIDENT REPORT: " << device << " ====\n";
    os << "evidence integrity : "
       << (integrity_ok ? "VERIFIED (hash chain intact)"
                        : "FAILED — records are NOT trustworthy")
       << "\n";
    os << "records            : " << total_records << " ("
       << detection_events << " events, " << decisions << " decisions, "
       << actions << " actions, " << state_changes << " state changes)\n";
    if (first_alert > 0) {
        os << "first alert        : cycle " << first_alert << "\n";
    } else {
        os << "first alert        : none (no incident indicators)\n";
    }
    os << "last activity      : cycle " << last_activity << "\n";

    if (!indicators.empty()) {
        os << "\n-- attack indicators (" << indicators.size() << ") --\n";
        const std::size_t shown = std::min<std::size_t>(indicators.size(), 10);
        for (std::size_t i = 0; i < shown; ++i) {
            os << "  " << indicators[i] << "\n";
        }
        if (indicators.size() > shown) {
            os << "  ... and " << indicators.size() - shown << " more\n";
        }
    }
    if (!responses.empty()) {
        os << "\n-- countermeasures executed (" << responses.size()
           << ") --\n";
        const std::size_t shown = std::min<std::size_t>(responses.size(), 10);
        for (std::size_t i = 0; i < shown; ++i) {
            os << "  " << responses[i] << "\n";
        }
        if (responses.size() > shown) {
            os << "  ... and " << responses.size() - shown << " more\n";
        }
    }
    return os.str();
}

}  // namespace cres::core
