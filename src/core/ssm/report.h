// Incident-report generation: turns an evidence log into the artefact
// the paper says the evidence exists for — a communicable account of
// what happened, for operators, regulators and forensics ("communicate
// evidence collection", Table I recover row).
#pragma once

#include <string>
#include <vector>

#include "core/ssm/evidence.h"

namespace cres::core {

struct IncidentReport {
    std::string device;
    bool integrity_ok = false;        ///< Hash chain verified.
    std::size_t total_records = 0;
    std::size_t detection_events = 0;
    std::size_t decisions = 0;
    std::size_t actions = 0;
    std::size_t state_changes = 0;
    sim::Cycle first_alert = 0;       ///< 0 when no incident found.
    sim::Cycle last_activity = 0;
    std::vector<std::string> indicators;   ///< Critical/alert details.
    std::vector<std::string> responses;    ///< Executed countermeasures.

    /// Full rendered report (plain text).
    [[nodiscard]] std::string render() const;
};

/// Builds a report from a device's evidence log.
IncidentReport generate_incident_report(const EvidenceLog& log,
                                        const std::string& device_name);

}  // namespace cres::core
