// Tamper-evident evidence log — the paper's "continuity of data stream
// ... to gain and establish evidence of the security breach for Cyber
// Forensics".
//
// Records are hash-chained (each record's hash covers the previous
// record's hash), and the head can be sealed with an HMAC under the
// SSM's private key, so any post-hoc modification, deletion or
// truncation by a compromised main CPU is detectable by a verifier.
// The log lives in the SSM's private memory: on the resilient platform
// it survives main-CPU compromise and reboot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "sim/simulator.h"
#include "util/bytes.h"

namespace cres::core {

struct EvidenceRecord {
    std::uint64_t index = 0;
    sim::Cycle at = 0;
    std::string kind;    ///< "event", "action", "state", "boot", ...
    std::string detail;
    Bytes payload;
    crypto::Hash256 prev_hash{};
    crypto::Hash256 hash{};
};

/// A signed checkpoint of the chain head.
struct EvidenceSeal {
    std::uint64_t count = 0;
    crypto::Hash256 head{};
    crypto::Hash256 tag{};
};

class EvidenceLog {
public:
    /// `seal_key` is the SSM's evidence-sealing key (HKDF-derived from
    /// the device root in the platform).
    explicit EvidenceLog(Bytes seal_key);

    /// Appends a record and returns it.
    const EvidenceRecord& append(sim::Cycle at, std::string kind,
                                 std::string detail, Bytes payload = {});

    [[nodiscard]] const std::vector<EvidenceRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
    [[nodiscard]] crypto::Hash256 head() const noexcept;

    /// Recomputes every hash; false when any record was modified,
    /// reordered or removed from the middle.
    [[nodiscard]] bool verify_chain() const;

    /// Signs the current head.
    [[nodiscard]] EvidenceSeal seal() const;

    /// Verifier-side: does this log match the seal?
    [[nodiscard]] static bool verify_seal(const EvidenceLog& log,
                                          const EvidenceSeal& seal,
                                          BytesView seal_key);

    /// Exports the full log in a wire format for off-device forensic
    /// exchange (regulator / incident-response handover).
    [[nodiscard]] Bytes serialize() const;

    /// Imports an exported log for verification. The importing side
    /// supplies its own copy of the seal key (or a dummy if it only
    /// intends to check the hash chain). Throws Error on malformed
    /// input; chain validity is checked via verify_chain().
    static EvidenceLog deserialize(BytesView data, Bytes seal_key);

    // --- Attack surface (used by experiments; real attackers reach
    // --- these only when the log is NOT in isolated SSM memory).
    /// Mutates a record in place, as malware scrubbing logs would.
    void tamper_detail(std::size_t index, std::string new_detail);
    /// Deletes everything (reboot of a passive system / log wipe).
    void wipe() noexcept;

private:
    [[nodiscard]] static crypto::Hash256 record_hash(
        const EvidenceRecord& record);

    Bytes seal_key_;
    std::vector<EvidenceRecord> records_;
};

}  // namespace cres::core
