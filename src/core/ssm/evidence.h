// Tamper-evident evidence log — the paper's "continuity of data stream
// ... to gain and establish evidence of the security breach for Cyber
// Forensics".
//
// Records are hash-chained (each record's hash covers the previous
// record's hash), and the head can be sealed with an HMAC under the
// SSM's private key, so any post-hoc modification, deletion or
// truncation by a compromised main CPU is detectable by a verifier.
// The log lives in the SSM's private memory: on the resilient platform
// it survives main-CPU compromise and reboot.
//
// Hot-path design: append() is allocation-free in steady state (the
// record serialization reuses one scratch writer and record storage
// grows geometrically ahead of demand), the seal HMAC runs from cached
// ipad/opad midstates, and verify_chain() keeps an incrementally
// verified watermark so routine integrity checks only re-hash records
// appended since the previous check. Forensic and verifier paths use
// verify_chain_full() / verify_prefix(), which never trust the
// watermark.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "sim/simulator.h"
#include "util/bytes.h"
#include "util/serial.h"

namespace cres::core {

struct EvidenceRecord {
    std::uint64_t index = 0;
    sim::Cycle at = 0;
    std::string kind;    ///< "event", "action", "state", "boot", ...
    std::string detail;
    Bytes payload;
    crypto::Hash256 prev_hash{};
    crypto::Hash256 hash{};
};

/// A signed checkpoint of the chain head.
struct EvidenceSeal {
    std::uint64_t count = 0;
    crypto::Hash256 head{};
    crypto::Hash256 tag{};
};

class EvidenceLog {
public:
    /// `seal_key` is the SSM's evidence-sealing key (HKDF-derived from
    /// the device root in the platform).
    explicit EvidenceLog(Bytes seal_key);

    /// Appends a record and returns it. Allocation-free in steady
    /// state: pass `kind`/`detail`/`payload` as rvalues to move them in.
    const EvidenceRecord& append(sim::Cycle at, std::string kind,
                                 std::string detail, Bytes payload = {});

    /// Pre-allocates storage for `n` records (devices that know their
    /// event budget avoid all growth reallocations).
    void reserve(std::size_t n);

    [[nodiscard]] const std::vector<EvidenceRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
    [[nodiscard]] crypto::Hash256 head() const noexcept;

    /// Verifies the chain, re-hashing only records appended since the
    /// last successful check (incremental watermark). In-API mutations
    /// (tamper_detail, wipe) rewind the watermark, so tampering through
    /// this class is always caught. False when any record was modified,
    /// reordered or removed from the middle.
    [[nodiscard]] bool verify_chain() const;

    /// Forensic path: recomputes every hash from the genesis record,
    /// ignoring the watermark. Use on imported or untrusted logs.
    [[nodiscard]] bool verify_chain_full() const;

    /// Verifier path: full re-hash of the first `count` records only.
    /// Records past the prefix are ignored. False when count > size().
    [[nodiscard]] bool verify_prefix(std::size_t count) const;

    /// Number of records covered by the incremental watermark.
    [[nodiscard]] std::size_t verified_watermark() const noexcept {
        return verified_;
    }

    /// Signs the current head.
    [[nodiscard]] EvidenceSeal seal() const;

    /// Verifier-side: does this log match the seal? Only the sealed
    /// prefix is checked — records appended after the seal was taken
    /// do not affect the result.
    [[nodiscard]] static bool verify_seal(const EvidenceLog& log,
                                          const EvidenceSeal& seal,
                                          BytesView seal_key);

    /// Exports the full log in a wire format for off-device forensic
    /// exchange (regulator / incident-response handover).
    [[nodiscard]] Bytes serialize() const;

    /// Imports an exported log for verification. The importing side
    /// supplies its own copy of the seal key (or a dummy if it only
    /// intends to check the hash chain). Throws Error on malformed
    /// input; chain validity is checked via verify_chain_full().
    static EvidenceLog deserialize(BytesView data, Bytes seal_key);

    // --- Attack surface (used by experiments; real attackers reach
    // --- these only when the log is NOT in isolated SSM memory).
    /// Mutates a record in place, as malware scrubbing logs would.
    void tamper_detail(std::size_t index, std::string new_detail);
    /// Deletes everything (reboot of a passive system / log wipe).
    void wipe() noexcept;

private:
    [[nodiscard]] crypto::Hash256 record_hash(
        const EvidenceRecord& record) const;
    [[nodiscard]] bool verify_range(std::size_t first,
                                    std::size_t count) const;

    Bytes seal_key_;
    crypto::HmacSha256 sealer_;
    std::vector<EvidenceRecord> records_;
    /// Reused serialization buffer for record hashing (keeps append()
    /// and verification allocation-free in steady state).
    mutable BinaryWriter scratch_;
    /// Records [0, verified_) passed the last incremental check.
    mutable std::size_t verified_ = 0;
};

}  // namespace cres::core
