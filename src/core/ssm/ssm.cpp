#include "core/ssm/ssm.h"

#include "obs/syslog.h"
#include "util/error.h"
#include "util/serial.h"

namespace cres::core {

namespace {

/// SSM-lifecycle SIEM record skeleton (state transitions, incident
/// open/close): kSystem vocabulary, source "ssm".
obs::SiemEvent siem_lifecycle(sim::Cycle at, obs::SiemKind kind,
                              std::uint8_t severity) {
    obs::SiemEvent record;
    record.at = at;
    record.kind = kind;
    record.severity = severity;
    record.facility = syslog_facility(EventCategory::kSystem);
    record.category = std::string(category_name(EventCategory::kSystem));
    record.source = "ssm";
    return record;
}

}  // namespace

std::string health_state_name(HealthState state) {
    switch (state) {
        case HealthState::kHealthy: return "healthy";
        case HealthState::kSuspicious: return "suspicious";
        case HealthState::kCompromised: return "compromised";
        case HealthState::kResponding: return "responding";
        case HealthState::kRecovering: return "recovering";
        case HealthState::kDegraded: return "degraded";
    }
    return "?";
}

SystemSecurityManager::SystemSecurityManager(const sim::Simulator& sim,
                                             SsmConfig config)
    : sim_(sim),
      config_(std::move(config)),
      evidence_(config_.seal_key),
      report_hmac_(config_.seal_key) {
    if (config_.poll_interval == 0) {
        throw Error("SystemSecurityManager: zero poll interval");
    }
    evidence_.append(sim_.now(), "state",
                     "ssm online, isolation=" +
                         std::string(config_.physically_isolated ? "physical"
                                                                 : "shared"));
}

void SystemSecurityManager::submit(const MonitorEvent& event) {
    if (disabled_) return;  // A dead SSM hears nothing.
    queue_.push_back(event);
    if (m_queue_depth_ != nullptr) {
        m_queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
}

void SystemSecurityManager::bind_metrics(obs::MetricsRegistry& registry) {
    registry_ = &registry;
    m_events_ = &registry.counter("cres_ssm_events_processed_total");
    m_dispatches_ = &registry.counter("cres_ssm_dispatches_total");
    m_transitions_ = &registry.counter("cres_ssm_health_transitions_total");
    m_queue_depth_ = &registry.gauge("cres_ssm_queue_depth");
    m_queue_depth_per_poll_ =
        &registry.histogram("cres_ssm_queue_depth_per_poll");
    m_detection_latency_ =
        &registry.histogram("cres_ssm_detection_latency_cycles");
    spans_ = std::make_unique<obs::SpanTracer>(registry);
}

void SystemSecurityManager::bind_recorder(obs::FlightRecorder& recorder) {
    recorder_ = &recorder;
    rec_source_ = recorder.intern("ssm");
    rec_state_ = recorder.intern("state");
    rec_decision_ = recorder.intern("decision");
    rec_action_ = recorder.intern("action");
    rec_queue_ = recorder.intern("queue_depth");
}

void SystemSecurityManager::transition(HealthState next, sim::Cycle at,
                                       const std::string& why) {
    if (health_ == next) return;
    evidence_.append(at, "state",
                     health_state_name(health_) + " -> " +
                         health_state_name(next) + ": " + why);
    if (recorder_ != nullptr) {
        recorder_->record(at, rec_source_, rec_state_, 0,
                          obs::FlightRecordType::kInstant,
                          static_cast<std::uint64_t>(health_),
                          static_cast<std::uint64_t>(next),
                          health_state_name(next));
    }
    if (siem_ != nullptr && siem_->enabled()) {
        obs::SiemEvent record = siem_lifecycle(at, obs::SiemKind::kState,
                                               obs::rfc5424::kNotice);
        record.resource = "health";
        record.detail = health_state_name(health_) + " -> " +
                        health_state_name(next) + ": " + why;
        record.a = static_cast<std::uint64_t>(health_);
        record.b = static_cast<std::uint64_t>(next);
        siem_->push(std::move(record));
    }
    health_ = next;
    if (m_transitions_ != nullptr) m_transitions_->inc();
}

void SystemSecurityManager::process_event(const MonitorEvent& event,
                                          sim::Cycle now) {
    ++events_processed_;
    if (m_events_ != nullptr) {
        m_events_->inc();
        // Detection latency: emit cycle -> the poll that processed it.
        m_detection_latency_->record(now - event.at);
    }

    // Evidence first — even events we take no action on form the
    // continuous data stream.
    BinaryWriter payload;
    payload.u64(event.a);
    payload.u64(event.b);
    const std::string_view category = category_name(event.category);
    const std::string_view severity = severity_name(event.severity);
    std::string detail;
    detail.reserve(event.monitor.size() + category.size() + severity.size() +
                   event.resource.size() + event.detail.size() + 5);
    detail.append(event.monitor)
        .append("/")
        .append(category)
        .append("/")
        .append(severity)
        .append(" ")
        .append(event.resource)
        .append(": ")
        .append(event.detail);
    evidence_.append(event.at, "event", std::move(detail), payload.take());

    if (siem_ != nullptr && siem_->enabled()) {
        obs::SiemEvent record;
        record.at = event.at;
        record.kind = event.severity >= EventSeverity::kAlert
                          ? obs::SiemKind::kAlert
                          : obs::SiemKind::kEvent;
        record.severity = syslog_severity(event.severity);
        record.facility = syslog_facility(event.category);
        record.category = std::string(category);
        record.source = event.monitor;
        record.resource = event.resource;
        record.detail = event.detail;
        record.a = event.a;
        record.b = event.b;
        if (event.trace) {
            record.traced = true;
            record.trace_origin = event.trace->origin_device;
            record.trace_hop = event.trace->hop;
            record.trace_span = event.trace->span_id;
            record.trace_parent = event.trace->parent_span_id;
        }
        siem_->push(std::move(record));
    }

    if (event.severity >= EventSeverity::kAdvisory) {
        risks_.record_incident(event.resource);
    }

    // Detection: health degrades with severity. Leaving kHealthy opens
    // one CSF incident span, anchored at the triggering event's emit
    // cycle and marked detected at processing time.
    const auto open_incident = [this, &event, now] {
        if (spans_ == nullptr || incident_.has_value()) return;
        incident_ = spans_->open(event.at);
        spans_->mark(*incident_, obs::CsfPhase::kDetect, now);
        open_postmortem(*incident_, event.at);
        if (siem_ != nullptr && siem_->enabled()) {
            obs::SiemEvent record = siem_lifecycle(
                event.at, obs::SiemKind::kIncidentOpen,
                obs::rfc5424::kCritical);
            record.resource = event.resource;
            record.detail = event.detail;
            record.a = *incident_;
            siem_->push(std::move(record));
        }
    };
    if (event.severity == EventSeverity::kAlert &&
        health_ == HealthState::kHealthy) {
        open_incident();
        transition(HealthState::kSuspicious, now, event.detail);
    } else if (event.severity == EventSeverity::kCritical &&
               health_ != HealthState::kResponding &&
               health_ != HealthState::kRecovering) {
        open_incident();
        transition(HealthState::kCompromised, now, event.detail);
    }

    // Policy evaluation and response dispatch.
    const auto fired = policy_.evaluate(event);
    for (const PolicyRule* rule : fired) {
        Dispatch dispatch;
        dispatch.event = event;
        dispatch.dispatched_at = now;
        dispatch.rule = rule->name;
        dispatch.actions = rule->actions;
        dispatches_.push_back(dispatch);
        if (m_dispatches_ != nullptr) m_dispatches_->inc();

        evidence_.append(now, "decision",
                         "rule '" + rule->name + "' fired for " +
                             event.resource);
        if (recorder_ != nullptr) {
            recorder_->record(now, rec_source_, rec_decision_,
                              static_cast<std::uint8_t>(event.severity),
                              obs::FlightRecordType::kInstant, event.a,
                              event.b, rule->name);
        }

        if (executor_ != nullptr && !rule->actions.empty()) {
            transition(HealthState::kResponding, now, "rule " + rule->name);
            if (spans_ != nullptr && incident_.has_value()) {
                spans_->mark(*incident_, obs::CsfPhase::kRespond, now);
            }
            for (ResponseAction action : rule->actions) {
                const std::string outcome = executor_->execute(action, event);
                evidence_.append(now, "action",
                                 action_name(action) + ": " + outcome);
                if (recorder_ != nullptr) {
                    recorder_->record(now, rec_source_, rec_action_,
                                      static_cast<std::uint8_t>(
                                          event.severity),
                                      obs::FlightRecordType::kInstant,
                                      static_cast<std::uint64_t>(action), 0,
                                      action_name(action));
                }
            }
        }
    }
}

void SystemSecurityManager::tick(sim::Cycle now) {
    if (disabled_) return;
    if (now < next_poll_) return;
    next_poll_ = now + config_.poll_interval;

    if (m_queue_depth_per_poll_ != nullptr) {
        m_queue_depth_per_poll_->record(queue_.size());
    }
    // Queue-depth counter track, change-guarded so an idle SSM does not
    // flood the black box with identical samples every poll.
    if (recorder_ != nullptr && queue_.size() != last_queue_recorded_) {
        last_queue_recorded_ = queue_.size();
        recorder_->record(now, rec_source_, rec_queue_, 0,
                          obs::FlightRecordType::kCounter,
                          static_cast<std::uint64_t>(queue_.size()), 0, {});
    }

    // Drain everything that arrived up to now.
    while (!queue_.empty()) {
        const MonitorEvent event = queue_.front();
        queue_.pop_front();
        process_event(event, now);
    }
    if (m_queue_depth_ != nullptr) m_queue_depth_->set(0);
    if (recorder_ != nullptr && last_queue_recorded_ != 0) {
        last_queue_recorded_ = 0;
        recorder_->record(now, rec_source_, rec_queue_, 0,
                          obs::FlightRecordType::kCounter, 0, 0, {});
    }
}

sim::Cycle SystemSecurityManager::next_activity(sim::Cycle now) {
    if (disabled_) return kIdleForever;
    if (config_.poll_interval == 0) return now;
    // Empty-queue polls are decision-free and replayed by skip();
    // queued events must be drained at the next poll deadline.
    if (queue_.empty()) return kIdleForever;
    return next_poll_ > now ? next_poll_ : now;
}

void SystemSecurityManager::skip(sim::Cycle now, sim::Cycle cycles) {
    if (disabled_ || config_.poll_interval == 0) return;
    const sim::Cycle end = now + cycles;
    // First poll a per-cycle run would have made inside the window.
    // A non-empty queue reports next_poll_ as its wake, so any poll
    // landing here drains an empty queue.
    const sim::Cycle first = next_poll_ > now ? next_poll_ : now;
    if (first >= end) return;
    const std::uint64_t polls = 1 + (end - 1 - first) / config_.poll_interval;
    if (m_queue_depth_per_poll_ != nullptr) {
        m_queue_depth_per_poll_->record_many(0, polls);
    }
    if (recorder_ != nullptr && last_queue_recorded_ != 0) {
        last_queue_recorded_ = 0;
        recorder_->record(first, rec_source_, rec_queue_, 0,
                          obs::FlightRecordType::kCounter, 0, 0, {});
    }
    if (m_queue_depth_ != nullptr) m_queue_depth_->set(0);
    next_poll_ = first + polls * config_.poll_interval;
}

void SystemSecurityManager::notify_recovery_started(sim::Cycle at) {
    transition(HealthState::kRecovering, at, "recovery initiated");
}

void SystemSecurityManager::notify_contained(sim::Cycle at) {
    if (spans_ != nullptr && incident_.has_value()) {
        spans_->mark(*incident_, obs::CsfPhase::kContain, at);
    }
}

void SystemSecurityManager::notify_recovery_complete(sim::Cycle at,
                                                     bool degraded) {
    transition(degraded ? HealthState::kDegraded : HealthState::kHealthy, at,
               degraded ? "recovered with degraded service"
                        : "recovered to full service");
    if (spans_ != nullptr && incident_.has_value()) {
        close_postmortem(at);  // Marks are read before close() drops them.
        spans_->close(*incident_, at);
        if (siem_ != nullptr && siem_->enabled()) {
            obs::SiemEvent record = siem_lifecycle(
                at, obs::SiemKind::kIncidentClose, obs::rfc5424::kNotice);
            record.resource = "incident";
            record.detail = degraded ? "recovered with degraded service"
                                     : "recovered to full service";
            record.a = *incident_;
            siem_->push(std::move(record));
        }
        incident_.reset();
    }
}

void SystemSecurityManager::open_postmortem(std::uint64_t incident_id,
                                            sim::Cycle opened_at) {
    if (recorder_ == nullptr) return;
    obs::PostmortemBundle bundle;
    bundle.device = config_.device_name;
    bundle.incident_id = incident_id;
    bundle.opened_at = opened_at;
    bundle.window_begin = opened_at > config_.postmortem_pre_window
                              ? opened_at - config_.postmortem_pre_window
                              : 0;
    // Pre-incident window, captured now before the ring rolls past it.
    bundle.telemetry = recorder_->snapshot_since(bundle.window_begin);
    pending_seq_ = recorder_->total_emitted();
    pending_postmortem_ = std::move(bundle);
}

void SystemSecurityManager::close_postmortem(sim::Cycle at) {
    if (!pending_postmortem_.has_value() || recorder_ == nullptr) return;
    obs::PostmortemBundle bundle = std::move(*pending_postmortem_);
    pending_postmortem_.reset();
    bundle.closed_at = at;

    if (spans_ != nullptr && incident_.has_value()) {
        if (const auto marks = spans_->marks(*incident_)) {
            bundle.marked = marks->marked;
            bundle.phase_at = marks->at;
        }
    }
    // close() is about to mark recover at `at`; reflect that here.
    constexpr std::uint8_t kRecoverBit =
        1U << static_cast<std::size_t>(obs::CsfPhase::kRecover);
    if ((bundle.marked & kRecoverBit) == 0U) {
        bundle.marked |= kRecoverBit;
        bundle.phase_at[static_cast<std::size_t>(obs::CsfPhase::kRecover)] =
            at;
    }

    // Everything emitted after open, deduplicated against the pre-window
    // snapshot by the recorder's global sequence watermark.
    auto tail = recorder_->snapshot_emitted_since(pending_seq_);
    bundle.telemetry.insert(bundle.telemetry.end(), tail.begin(), tail.end());
    bundle.names = recorder_->names();

    bundle.metrics_json = registry_ != nullptr ? registry_->json() : "";
    const auto seal = evidence_.seal();
    bundle.evidence_count = seal.count;
    bundle.evidence_head_hex = to_hex(BytesView{seal.head.data(),
                                                seal.head.size()});
    postmortems_.push_back(std::move(bundle));
}

std::string SystemSecurityManager::sealed_postmortem(std::size_t index) const {
    if (index >= postmortems_.size()) {
        throw Error("SystemSecurityManager: postmortem index out of range");
    }
    return obs::seal_postmortem(postmortems_[index], report_hmac_);
}

void SystemSecurityManager::notify_full_service(sim::Cycle at) {
    transition(HealthState::kHealthy, at, "full service restored");
}

std::optional<Dispatch> SystemSecurityManager::first_dispatch_of(
    EventCategory category, sim::Cycle since) const {
    for (const Dispatch& d : dispatches_) {
        if (d.event.category == category && d.event.at >= since) return d;
    }
    return std::nullopt;
}

bool SystemSecurityManager::attempt_compromise(const std::string& method) {
    if (config_.physically_isolated) {
        // The attempt itself is observable: the SSM's private port saw a
        // touch that no legitimate master can generate.
        evidence_.append(sim_.now(), "event",
                         "blocked compromise attempt against ssm: " + method);
        return false;
    }
    // Shared-resource SSM (TEE-style ablation): the attacker wins —
    // security function dead, evidence gone.
    disabled_ = true;
    evidence_.wipe();
    return true;
}

SystemSecurityManager::HealthReport SystemSecurityManager::health_report()
    const {
    HealthReport report;
    report.state = health_;
    report.events_processed = events_processed_;
    report.evidence_seal = evidence_.seal();

    BinaryWriter w;
    w.u8(static_cast<std::uint8_t>(report.state));
    w.u64(report.events_processed);
    w.u64(report.evidence_seal.count);
    w.raw(report.evidence_seal.head);
    report.tag = report_hmac_.tag(w.data());
    return report;
}

bool SystemSecurityManager::verify_health_report(const HealthReport& report,
                                                 BytesView seal_key) {
    BinaryWriter w;
    w.u8(static_cast<std::uint8_t>(report.state));
    w.u64(report.events_processed);
    w.u64(report.evidence_seal.count);
    w.raw(report.evidence_seal.head);
    return crypto::hmac_verify(seal_key, w.data(), report.tag);
}

}  // namespace cres::core
