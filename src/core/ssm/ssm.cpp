#include "core/ssm/ssm.h"

#include "util/error.h"
#include "util/serial.h"

namespace cres::core {

std::string health_state_name(HealthState state) {
    switch (state) {
        case HealthState::kHealthy: return "healthy";
        case HealthState::kSuspicious: return "suspicious";
        case HealthState::kCompromised: return "compromised";
        case HealthState::kResponding: return "responding";
        case HealthState::kRecovering: return "recovering";
        case HealthState::kDegraded: return "degraded";
    }
    return "?";
}

SystemSecurityManager::SystemSecurityManager(const sim::Simulator& sim,
                                             SsmConfig config)
    : sim_(sim),
      config_(std::move(config)),
      evidence_(config_.seal_key),
      report_hmac_(config_.seal_key) {
    if (config_.poll_interval == 0) {
        throw Error("SystemSecurityManager: zero poll interval");
    }
    evidence_.append(sim_.now(), "state",
                     "ssm online, isolation=" +
                         std::string(config_.physically_isolated ? "physical"
                                                                 : "shared"));
}

void SystemSecurityManager::submit(const MonitorEvent& event) {
    if (disabled_) return;  // A dead SSM hears nothing.
    queue_.push_back(event);
    if (m_queue_depth_ != nullptr) {
        m_queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
}

void SystemSecurityManager::bind_metrics(obs::MetricsRegistry& registry) {
    m_events_ = &registry.counter("cres_ssm_events_processed_total");
    m_dispatches_ = &registry.counter("cres_ssm_dispatches_total");
    m_transitions_ = &registry.counter("cres_ssm_health_transitions_total");
    m_queue_depth_ = &registry.gauge("cres_ssm_queue_depth");
    m_queue_depth_per_poll_ =
        &registry.histogram("cres_ssm_queue_depth_per_poll");
    m_detection_latency_ =
        &registry.histogram("cres_ssm_detection_latency_cycles");
    spans_ = std::make_unique<obs::SpanTracer>(registry);
}

void SystemSecurityManager::transition(HealthState next, sim::Cycle at,
                                       const std::string& why) {
    if (health_ == next) return;
    evidence_.append(at, "state",
                     health_state_name(health_) + " -> " +
                         health_state_name(next) + ": " + why);
    health_ = next;
    if (m_transitions_ != nullptr) m_transitions_->inc();
}

void SystemSecurityManager::process_event(const MonitorEvent& event,
                                          sim::Cycle now) {
    ++events_processed_;
    if (m_events_ != nullptr) {
        m_events_->inc();
        // Detection latency: emit cycle -> the poll that processed it.
        m_detection_latency_->record(now - event.at);
    }

    // Evidence first — even events we take no action on form the
    // continuous data stream.
    BinaryWriter payload;
    payload.u64(event.a);
    payload.u64(event.b);
    const std::string_view category = category_name(event.category);
    const std::string_view severity = severity_name(event.severity);
    std::string detail;
    detail.reserve(event.monitor.size() + category.size() + severity.size() +
                   event.resource.size() + event.detail.size() + 5);
    detail.append(event.monitor)
        .append("/")
        .append(category)
        .append("/")
        .append(severity)
        .append(" ")
        .append(event.resource)
        .append(": ")
        .append(event.detail);
    evidence_.append(event.at, "event", std::move(detail), payload.take());

    if (event.severity >= EventSeverity::kAdvisory) {
        risks_.record_incident(event.resource);
    }

    // Detection: health degrades with severity. Leaving kHealthy opens
    // one CSF incident span, anchored at the triggering event's emit
    // cycle and marked detected at processing time.
    const auto open_incident = [this, &event, now] {
        if (spans_ == nullptr || incident_.has_value()) return;
        incident_ = spans_->open(event.at);
        spans_->mark(*incident_, obs::CsfPhase::kDetect, now);
    };
    if (event.severity == EventSeverity::kAlert &&
        health_ == HealthState::kHealthy) {
        open_incident();
        transition(HealthState::kSuspicious, now, event.detail);
    } else if (event.severity == EventSeverity::kCritical &&
               health_ != HealthState::kResponding &&
               health_ != HealthState::kRecovering) {
        open_incident();
        transition(HealthState::kCompromised, now, event.detail);
    }

    // Policy evaluation and response dispatch.
    const auto fired = policy_.evaluate(event);
    for (const PolicyRule* rule : fired) {
        Dispatch dispatch;
        dispatch.event = event;
        dispatch.dispatched_at = now;
        dispatch.rule = rule->name;
        dispatch.actions = rule->actions;
        dispatches_.push_back(dispatch);
        if (m_dispatches_ != nullptr) m_dispatches_->inc();

        evidence_.append(now, "decision",
                         "rule '" + rule->name + "' fired for " +
                             event.resource);

        if (executor_ != nullptr && !rule->actions.empty()) {
            transition(HealthState::kResponding, now, "rule " + rule->name);
            if (spans_ != nullptr && incident_.has_value()) {
                spans_->mark(*incident_, obs::CsfPhase::kRespond, now);
            }
            for (ResponseAction action : rule->actions) {
                const std::string outcome = executor_->execute(action, event);
                evidence_.append(now, "action",
                                 action_name(action) + ": " + outcome);
            }
        }
    }
}

void SystemSecurityManager::tick(sim::Cycle now) {
    if (disabled_) return;
    if (now < next_poll_) return;
    next_poll_ = now + config_.poll_interval;

    if (m_queue_depth_per_poll_ != nullptr) {
        m_queue_depth_per_poll_->record(queue_.size());
    }

    // Drain everything that arrived up to now.
    while (!queue_.empty()) {
        const MonitorEvent event = queue_.front();
        queue_.pop_front();
        process_event(event, now);
    }
    if (m_queue_depth_ != nullptr) m_queue_depth_->set(0);
}

void SystemSecurityManager::notify_recovery_started(sim::Cycle at) {
    transition(HealthState::kRecovering, at, "recovery initiated");
}

void SystemSecurityManager::notify_contained(sim::Cycle at) {
    if (spans_ != nullptr && incident_.has_value()) {
        spans_->mark(*incident_, obs::CsfPhase::kContain, at);
    }
}

void SystemSecurityManager::notify_recovery_complete(sim::Cycle at,
                                                     bool degraded) {
    transition(degraded ? HealthState::kDegraded : HealthState::kHealthy, at,
               degraded ? "recovered with degraded service"
                        : "recovered to full service");
    if (spans_ != nullptr && incident_.has_value()) {
        spans_->close(*incident_, at);
        incident_.reset();
    }
}

void SystemSecurityManager::notify_full_service(sim::Cycle at) {
    transition(HealthState::kHealthy, at, "full service restored");
}

std::optional<Dispatch> SystemSecurityManager::first_dispatch_of(
    EventCategory category, sim::Cycle since) const {
    for (const Dispatch& d : dispatches_) {
        if (d.event.category == category && d.event.at >= since) return d;
    }
    return std::nullopt;
}

bool SystemSecurityManager::attempt_compromise(const std::string& method) {
    if (config_.physically_isolated) {
        // The attempt itself is observable: the SSM's private port saw a
        // touch that no legitimate master can generate.
        evidence_.append(sim_.now(), "event",
                         "blocked compromise attempt against ssm: " + method);
        return false;
    }
    // Shared-resource SSM (TEE-style ablation): the attacker wins —
    // security function dead, evidence gone.
    disabled_ = true;
    evidence_.wipe();
    return true;
}

SystemSecurityManager::HealthReport SystemSecurityManager::health_report()
    const {
    HealthReport report;
    report.state = health_;
    report.events_processed = events_processed_;
    report.evidence_seal = evidence_.seal();

    BinaryWriter w;
    w.u8(static_cast<std::uint8_t>(report.state));
    w.u64(report.events_processed);
    w.u64(report.evidence_seal.count);
    w.raw(report.evidence_seal.head);
    report.tag = report_hmac_.tag(w.data());
    return report;
}

bool SystemSecurityManager::verify_health_report(const HealthReport& report,
                                                 BytesView seal_key) {
    BinaryWriter w;
    w.u8(static_cast<std::uint8_t>(report.state));
    w.u64(report.events_processed);
    w.u64(report.evidence_seal.count);
    w.raw(report.evidence_seal.head);
    return crypto::hmac_verify(seal_key, w.data(), report.tag);
}

}  // namespace cres::core
