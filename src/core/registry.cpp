#include "core/registry.h"

#include <set>

namespace cres::core {

const std::vector<Capability>& capability_registry() {
    static const std::vector<Capability> registry = {
        // IDENTIFY — managing security risks.
        {"identify", "risk assessment / asset management",
         "asset inventory with criticality x exposure x incident scoring",
         "core/ssm/risk (RiskRegister)"},
        {"identify", "threat & security modelling",
         "declarative policy rules compiled from a threat-model DSL",
         "core/policy (PolicyEngine)"},
        {"identify", "attack-surface identification",
         "bus region metadata + per-master access allowlists",
         "mem/bus (Bus::regions), core/monitor (BusMonitor)"},

        // PROTECT — protection methods / trust anchor.
        {"protect", "root of trust / secure boot",
         "ROM-verified signed images, measured boot, anti-rollback",
         "boot (BootRom, PcrBank, MonotonicCounterBank)"},
        {"protect", "cryptographic protection",
         "SHA-256, HMAC, HKDF, AES-128, ChaCha20, WOTS+/Merkle signatures",
         "crypto"},
        {"protect", "resource isolation & segregation",
         "secure/non-secure bus attributes, MPU with W^X, TEE services",
         "mem (Mpu, Bus), tee (Tee)"},
        {"protect", "authenticated M2M communication",
         "HMAC-sealed frames with replay windows",
         "net (SecureChannel)"},

        // DETECT — continuous monitoring (paper characteristic 2).
        {"detect", "interconnect monitoring",
         "transaction screening, probe detection, forensic ring",
         "core/monitor (BusMonitor)"},
        {"detect", "static & dynamic flow integrity",
         "shadow call stack + valid-target CFI; byte-granular DIFT",
         "core/monitor (CfiMonitor, DiftMonitor)"},
        {"detect", "memory behaviour monitoring",
         "code-write detection, canary watch, bulk-read heuristic",
         "core/monitor (MemoryMonitor)"},
        {"detect", "physical plausibility monitoring",
         "actuator range/slew/rate and sensor envelope checks",
         "core/monitor (PeripheralMonitor)"},
        {"detect", "liveness / timing monitoring",
         "per-task heartbeat deadlines with escalation",
         "core/monitor (TimingMonitor)"},
        {"detect", "network anomaly detection",
         "auth-failure streaks, replay and flood detection",
         "core/monitor (NetworkMonitor)"},
        {"detect", "environmental monitoring",
         "voltage/temperature envelope (glitch detection)",
         "core/monitor (EnvironmentMonitor)"},
        {"detect", "redundancy-based fault detection",
         "lockstep process-pair state comparison",
         "core/monitor (RedundancyMonitor)"},
        {"detect", "microarchitectural side-channel detection",
         "cross-domain cache-conflict storm detection (prime+probe)",
         "core/monitor (CacheMonitor), mem (CachedRam)"},

        // RESPOND — active countermeasures (paper characteristic 3).
        {"respond", "independent security manager",
         "physically isolated event correlation, health state machine,"
         " policy-driven dispatch",
         "core/ssm (SystemSecurityManager)"},
        {"respond", "active countermeasures",
         "bus-level resource isolation, task kill, key zeroisation,"
         " rate limiting, operator alerting",
         "core/response (ActiveResponseManager)"},
        {"respond", "graceful degradation",
         "shed non-critical services, keep critical function alive",
         "core/response (DegradationManager)"},
        {"respond", "side-channel countermeasure",
         "security-domain cache partitioning on demand",
         "core/response (kPartitionCache), mem (CachedRam)"},

        // RECOVER — restore and learn.
        {"recover", "roll-back and roll-forward",
         "A/B update slots, provisional activation, commit/rollback",
         "boot (UpdateAgent)"},
        {"recover", "state recovery",
         "CPU+RAM checkpoint/restore from SSM-private storage",
         "core/response (RecoveryManager)"},
        {"recover", "evidence collection / cyber forensics",
         "hash-chained, sealed evidence log surviving compromise",
         "core/ssm (EvidenceLog)"},
        {"recover", "communicable incident reporting",
         "rendered incident reports generated from the evidence chain",
         "core/ssm (IncidentReport)"},
        {"recover", "attestable health reporting",
         "signed health reports and PCR quotes for remote verifiers",
         "core/ssm (HealthReport), net (AttestationVerifier)"},
    };
    return registry;
}

std::vector<std::string> covered_functions() {
    std::set<std::string> seen;
    std::vector<std::string> out;
    for (const auto& cap : capability_registry()) {
        if (seen.insert(cap.csf_function).second) {
            out.push_back(cap.csf_function);
        }
    }
    return out;
}

}  // namespace cres::core
