// Security-event vocabulary shared by the Active Runtime Resource
// Monitors (producers) and the System Security Manager (consumer).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/simulator.h"

namespace cres::core {

enum class EventSeverity : std::uint8_t {
    kInfo = 0,      ///< Telemetry, no action implied.
    kAdvisory = 1,  ///< Unusual but possibly benign.
    kAlert = 2,     ///< Malicious activity suspected.
    kCritical = 3,  ///< Confirmed compromise / safety impact.
};

/// Static-storage name for a severity; no per-call allocation.
std::string_view severity_name(EventSeverity severity) noexcept;

enum class EventCategory : std::uint8_t {
    kBusViolation,  ///< Illegal/secure-violating interconnect traffic.
    kControlFlow,   ///< CFI break: bad return or call target.
    kMemory,        ///< W^X, canary, MPU faults, code tampering.
    kDataFlow,      ///< Tainted data reaching a public sink (DIFT).
    kPeripheral,    ///< Actuator/sensor behaviour out of envelope.
    kTiming,        ///< Missed heartbeats/deadlines, starvation.
    kNetwork,       ///< Authentication failures, replay, floods.
    kEnvironment,   ///< Voltage/temperature excursions (glitching).
    kBoot,          ///< Boot/update anomalies (rollback attempts...).
    kSystem,        ///< SSM-internal findings (correlation results).
};
constexpr std::size_t kEventCategoryCount = 10;

/// Static-storage name for a category; no per-call allocation.
std::string_view category_name(EventCategory category) noexcept;

/// One observation from a resource monitor.
struct MonitorEvent {
    sim::Cycle at = 0;
    std::string monitor;    ///< Emitting monitor name.
    EventCategory category = EventCategory::kSystem;
    EventSeverity severity = EventSeverity::kInfo;
    std::string resource;   ///< Affected resource (region/device/task).
    std::string detail;     ///< Human-readable context.
    std::uint64_t a = 0;    ///< Category-specific scalar (e.g. address).
    std::uint64_t b = 0;    ///< Category-specific scalar (e.g. value).
};

/// Where monitors deliver events (implemented by the SSM).
class EventSink {
public:
    virtual ~EventSink() = default;
    virtual void submit(const MonitorEvent& event) = 0;
};

}  // namespace cres::core
