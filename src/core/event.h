// Security-event vocabulary shared by the Active Runtime Resource
// Monitors (producers) and the System Security Manager (consumer).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/trace.h"
#include "sim/simulator.h"

namespace cres::core {

enum class EventSeverity : std::uint8_t {
    kInfo = 0,      ///< Telemetry, no action implied.
    kAdvisory = 1,  ///< Unusual but possibly benign.
    kAlert = 2,     ///< Malicious activity suspected.
    kCritical = 3,  ///< Confirmed compromise / safety impact.
};

/// Static-storage name for a severity; no per-call allocation.
std::string_view severity_name(EventSeverity severity) noexcept;

enum class EventCategory : std::uint8_t {
    kBusViolation,  ///< Illegal/secure-violating interconnect traffic.
    kControlFlow,   ///< CFI break: bad return or call target.
    kMemory,        ///< W^X, canary, MPU faults, code tampering.
    kDataFlow,      ///< Tainted data reaching a public sink (DIFT).
    kPeripheral,    ///< Actuator/sensor behaviour out of envelope.
    kTiming,        ///< Missed heartbeats/deadlines, starvation.
    kNetwork,       ///< Authentication failures, replay, floods.
    kEnvironment,   ///< Voltage/temperature excursions (glitching).
    kBoot,          ///< Boot/update anomalies (rollback attempts...).
    kSystem,        ///< SSM-internal findings (correlation results).
};
constexpr std::size_t kEventCategoryCount = 10;

/// Static-storage name for a category; no per-call allocation.
std::string_view category_name(EventCategory category) noexcept;

// --- RFC 5424 mapping table (shared by obs::JsonLogSink and the SIEM
// --- export stream, so every exporter classifies identically; the
// --- numeric vocabulary itself lives in obs/syslog.h).

/// Syslog severity code for an event severity: kInfo -> informational
/// (6), kAdvisory -> notice (5), kAlert -> warning (4), kCritical ->
/// critical (2).
[[nodiscard]] std::uint8_t syslog_severity(EventSeverity severity) noexcept;

/// Syslog facility code for an event category: monitor categories map
/// onto local0..7 (16..23), kBoot onto kern (0), kSystem onto the
/// audit facility (13).
[[nodiscard]] std::uint8_t syslog_facility(EventCategory category) noexcept;

/// PRI = facility * 8 + severity (RFC 5424 §6.2.1).
[[nodiscard]] std::uint8_t syslog_pri(EventCategory category,
                                      EventSeverity severity) noexcept;

/// One observation from a resource monitor.
struct MonitorEvent {
    sim::Cycle at = 0;
    std::string monitor;    ///< Emitting monitor name.
    EventCategory category = EventCategory::kSystem;
    EventSeverity severity = EventSeverity::kInfo;
    std::string resource;   ///< Affected resource (region/device/task).
    std::string detail;     ///< Human-readable context.
    std::uint64_t a = 0;    ///< Category-specific scalar (e.g. address).
    std::uint64_t b = 0;    ///< Category-specific scalar (e.g. value).
    /// Causal trace context the triggering frame carried, when the
    /// observation is frame-borne and the estate traces (net/trace.h).
    /// For rejected frames this is claimed, unauthenticated metadata.
    std::optional<net::TraceContext> trace;
};

/// Where monitors deliver events (implemented by the SSM).
class EventSink {
public:
    virtual ~EventSink() = default;
    virtual void submit(const MonitorEvent& event) = 0;
};

}  // namespace cres::core
