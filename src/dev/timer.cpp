#include "dev/timer.h"

namespace cres::dev {

void Timer::configure(std::uint32_t compare, bool auto_reload) {
    compare_ = compare;
    ctrl_ = kCtrlEnable | (auto_reload ? kCtrlAutoReload : 0u);
    count_ = 0;
}

void Timer::tick(sim::Cycle /*now*/) {
    if ((ctrl_ & kCtrlEnable) == 0) return;
    ++count_;
    if (count_ == compare_) {
        ++matches_;
        raise_irq();
        if (ctrl_ & kCtrlAutoReload) count_ = 0;
    }
}

sim::Cycle Timer::next_activity(sim::Cycle now) {
    if ((ctrl_ & kCtrlEnable) == 0) return kIdleForever;
    // The tick at cycle c increments COUNT before comparing, so the
    // match lands k - 1 cycles out, where k is the increment count to
    // reach COMPARE (a full 2^32 wrap when COUNT == COMPARE already).
    const std::uint32_t delta = compare_ - count_;
    const std::uint64_t k =
        delta == 0 ? (std::uint64_t{1} << 32) : std::uint64_t{delta};
    return now + k - 1;
}

void Timer::skip(sim::Cycle /*now*/, sim::Cycle cycles) {
    if ((ctrl_ & kCtrlEnable) == 0) return;
    count_ += static_cast<std::uint32_t>(cycles);
}

mem::BusResponse Timer::read_reg(mem::Addr offset, std::uint32_t& out,
                                 const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegCount: out = count_; return mem::BusResponse::kOk;
        case kRegCompare: out = compare_; return mem::BusResponse::kOk;
        case kRegCtrl: out = ctrl_; return mem::BusResponse::kOk;
        case kRegMatches: out = matches_; return mem::BusResponse::kOk;
        default: return mem::BusResponse::kDeviceError;
    }
}

mem::BusResponse Timer::write_reg(mem::Addr offset, std::uint32_t value,
                                  const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegCount: count_ = value; return mem::BusResponse::kOk;
        case kRegCompare: compare_ = value; return mem::BusResponse::kOk;
        case kRegCtrl: ctrl_ = value; return mem::BusResponse::kOk;
        default: return mem::BusResponse::kDeviceError;
    }
}

}  // namespace cres::dev
