// UART console. Register map (word offsets):
//   0x00 TX_DATA  (W)  transmit one byte
//   0x04 STATUS   (R)  bit0 tx_ready (always 1), bit1 rx_avail
//   0x08 RX_DATA  (R)  pop one received byte (0 when empty)
#pragma once

#include <deque>
#include <string>

#include "dev/device.h"

namespace cres::dev {

class Uart : public Device {
public:
    explicit Uart(std::string name) : Device(std::move(name)) {}

    static constexpr mem::Addr kRegTxData = 0x00;
    static constexpr mem::Addr kRegStatus = 0x04;
    static constexpr mem::Addr kRegRxData = 0x08;

    /// Everything the guest transmitted so far.
    [[nodiscard]] const std::string& output() const noexcept { return tx_; }
    void clear_output() noexcept { tx_.clear(); }

    /// Host-side input injection (appears on RX_DATA).
    void inject_input(std::string_view text);

protected:
    mem::BusResponse read_reg(mem::Addr offset, std::uint32_t& out,
                              const mem::BusAttr& attr) override;
    mem::BusResponse write_reg(mem::Addr offset, std::uint32_t value,
                               const mem::BusAttr& attr) override;

private:
    std::string tx_;
    std::deque<std::uint8_t> rx_;
};

}  // namespace cres::dev
