// Common peripheral plumbing: IRQ wiring and a base class for
// memory-mapped devices that also need per-cycle behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "mem/bus.h"
#include "sim/simulator.h"

namespace cres::dev {

/// Callback a device uses to assert an interrupt line.
using IrqRaiser = std::function<void(unsigned line)>;

/// Base for memory-mapped peripherals. Subclasses implement the
/// register file via read_reg/write_reg on word-aligned offsets.
class Device : public mem::BusTarget, public sim::Tickable {
public:
    explicit Device(std::string name) : name_(std::move(name)) {}

    std::string_view name() const override { return name_; }

    /// Connects the interrupt output. `line` is the CPU IRQ number.
    void connect_irq(IrqRaiser raiser, unsigned line) {
        irq_ = std::move(raiser);
        irq_line_ = line;
    }

    /// Devices without per-cycle behaviour inherit this no-op.
    void tick(sim::Cycle) override {}

    // Registers are word-granular; sub-word accesses are accepted when
    // they target the register's base (DMA engines stream bytes) and
    // carry the value in the low bits.
    mem::BusResponse read(mem::Addr offset, std::uint32_t size,
                          std::uint32_t& out, const mem::BusAttr& attr) final {
        if (offset % 4 != 0) return mem::BusResponse::kDeviceError;
        std::uint32_t value = 0;
        const mem::BusResponse response = read_reg(offset, value, attr);
        if (response == mem::BusResponse::kOk) {
            out = size >= 4 ? value
                            : value & ((1u << (8 * size)) - 1u);
        }
        return response;
    }

    mem::BusResponse write(mem::Addr offset, std::uint32_t size,
                           std::uint32_t value,
                           const mem::BusAttr& attr) final {
        if (offset % 4 != 0) return mem::BusResponse::kDeviceError;
        (void)size;
        return write_reg(offset, value, attr);
    }

protected:
    virtual mem::BusResponse read_reg(mem::Addr offset, std::uint32_t& out,
                                      const mem::BusAttr& attr) = 0;
    virtual mem::BusResponse write_reg(mem::Addr offset, std::uint32_t value,
                                       const mem::BusAttr& attr) = 0;

    /// Raises the connected IRQ (no-op when unconnected).
    void raise_irq() {
        if (irq_) irq_(irq_line_);
    }

private:
    std::string name_;
    IrqRaiser irq_;
    unsigned irq_line_ = 0;
};

}  // namespace cres::dev
