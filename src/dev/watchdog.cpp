#include "dev/watchdog.h"

namespace cres::dev {

void Watchdog::arm(std::uint32_t timeout_cycles) {
    timeout_ = timeout_cycles;
    remaining_ = timeout_cycles;
    ctrl_ = 1;
}

void Watchdog::tick(sim::Cycle /*now*/) {
    if (!enabled()) return;
    if (remaining_ == 0) return;
    if (--remaining_ == 0) {
        ++expiries_;
        raise_irq();
        if (on_expiry_) on_expiry_();
        remaining_ = timeout_;  // Re-arm for the next period.
    }
}

sim::Cycle Watchdog::next_activity(sim::Cycle now) {
    if (!enabled() || remaining_ == 0) return kIdleForever;
    // Expiry fires on the tick that drains remaining_ to zero.
    return now + remaining_ - 1;
}

void Watchdog::skip(sim::Cycle /*now*/, sim::Cycle cycles) {
    if (!enabled() || remaining_ == 0) return;
    remaining_ -= static_cast<std::uint32_t>(
        cycles < remaining_ ? cycles : remaining_ - 1);
}

mem::BusResponse Watchdog::read_reg(mem::Addr offset, std::uint32_t& out,
                                    const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegTimeout: out = timeout_; return mem::BusResponse::kOk;
        case kRegCtrl: out = ctrl_; return mem::BusResponse::kOk;
        case kRegExpiries: out = expiries_; return mem::BusResponse::kOk;
        case kRegKick: out = remaining_; return mem::BusResponse::kOk;
        default: return mem::BusResponse::kDeviceError;
    }
}

mem::BusResponse Watchdog::write_reg(mem::Addr offset, std::uint32_t value,
                                     const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegKick:
            remaining_ = timeout_;
            return mem::BusResponse::kOk;
        case kRegTimeout:
            timeout_ = value;
            remaining_ = value;
            return mem::BusResponse::kOk;
        case kRegCtrl:
            ctrl_ = value;
            return mem::BusResponse::kOk;
        default:
            return mem::BusResponse::kDeviceError;
    }
}

}  // namespace cres::dev
