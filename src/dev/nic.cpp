#include "dev/nic.h"

#include "util/error.h"

namespace cres::dev {

void Link::attach(Nic& a, Nic& b) {
    if (a_ != nullptr || b_ != nullptr) {
        throw NetError("Link::attach: already bound");
    }
    a_ = &a;
    b_ = &b;
    a.bind(*this);
    b.bind(*this);
}

void Link::transmit(const Nic& sender, const Bytes& frame) {
    if (a_ == nullptr || b_ == nullptr) {
        throw NetError("Link::transmit: unbound link");
    }
    const bool from_a = (&sender == a_);
    Bytes to_deliver = frame;
    if (tap_) {
        const auto tapped = tap_(frame, from_a);
        if (!tapped) {
            ++dropped_;
            return;
        }
        to_deliver = *tapped;
    }
    ++carried_;
    (from_a ? b_ : a_)->deliver(std::move(to_deliver));
}

void Link::inject(const Bytes& frame, bool to_a) {
    if (a_ == nullptr || b_ == nullptr) {
        throw NetError("Link::inject: unbound link");
    }
    ++carried_;
    (to_a ? a_ : b_)->deliver(frame);
}

void Nic::send_frame(const Bytes& frame) {
    if (link_ == nullptr) throw NetError("Nic::send_frame: no link");
    ++sent_;
    link_->transmit(*this, frame);
}

std::optional<Bytes> Nic::receive_frame() {
    if (rx_queue_.empty()) return std::nullopt;
    Bytes frame = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    rx_offset_ = 0;
    return frame;
}

void Nic::deliver(Bytes frame) {
    ++received_;
    rx_queue_.push_back(std::move(frame));
    raise_irq();
}

mem::BusResponse Nic::read_reg(mem::Addr offset, std::uint32_t& out,
                               const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegRxByte:
            if (rx_queue_.empty() || rx_offset_ >= rx_queue_.front().size()) {
                out = 0;
            } else {
                out = rx_queue_.front()[rx_offset_++];
            }
            return mem::BusResponse::kOk;
        case kRegRxAvail:
            out = rx_queue_.empty()
                      ? 0
                      : static_cast<std::uint32_t>(rx_queue_.front().size() -
                                                   rx_offset_);
            return mem::BusResponse::kOk;
        case kRegRxPending:
            out = static_cast<std::uint32_t>(rx_queue_.size());
            return mem::BusResponse::kOk;
        default:
            return mem::BusResponse::kDeviceError;
    }
}

mem::BusResponse Nic::write_reg(mem::Addr offset, std::uint32_t value,
                                const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegTxByte:
            tx_buffer_.push_back(static_cast<std::uint8_t>(value & 0xff));
            return mem::BusResponse::kOk;
        case kRegTxSend: {
            if (link_ == nullptr) return mem::BusResponse::kDeviceError;
            Bytes frame = std::move(tx_buffer_);
            tx_buffer_.clear();
            ++sent_;
            link_->transmit(*this, frame);
            return mem::BusResponse::kOk;
        }
        case kRegRxNext:
            if (!rx_queue_.empty()) {
                rx_queue_.pop_front();
                rx_offset_ = 0;
            }
            return mem::BusResponse::kOk;
        default:
            return mem::BusResponse::kDeviceError;
    }
}

}  // namespace cres::dev
