// Physical-world sensor (e.g. grid voltage, temperature, flow rate).
// Samples a host-provided signal function every `period` cycles into a
// fixed-point register. Spoofing attacks override the signal. Register
// map:
//   0x00 DATA    (R) latest sample, signed 16.16 fixed point
//   0x04 SAMPLES (R) sample count
//   0x08 PERIOD  (RW) sampling period in cycles
#pragma once

#include <functional>

#include "dev/device.h"

namespace cres::dev {

/// Converts between double and the sensor's signed 16.16 fixed point.
std::int32_t to_fixed(double value) noexcept;
double from_fixed(std::int32_t raw) noexcept;

class Sensor : public Device {
public:
    /// `signal(cycle)` gives the physical truth at a cycle.
    Sensor(std::string name, std::function<double(sim::Cycle)> signal,
           std::uint32_t period = 100);

    static constexpr mem::Addr kRegData = 0x00;
    static constexpr mem::Addr kRegSamples = 0x04;
    static constexpr mem::Addr kRegPeriod = 0x08;

    void tick(sim::Cycle now) override;

    /// Quiescence: sampling has no external side effects (readers poll
    /// on stepped cycles), so the sensor is never a wake source; skip()
    /// replays each elided sample at its exact cycle instead — the
    /// signal is a function of the cycle, so replay is bit-exact.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle /*now*/) override {
        return kIdleForever;
    }
    void skip(sim::Cycle now, sim::Cycle cycles) override;

    /// Spoof hook: when set, readings come from the spoof function
    /// instead of the physical signal (models sensor-injection attacks).
    void set_spoof(std::function<double(sim::Cycle)> spoof) {
        spoof_ = std::move(spoof);
    }
    void clear_spoof() noexcept { spoof_ = nullptr; }
    [[nodiscard]] bool spoofed() const noexcept {
        return static_cast<bool>(spoof_);
    }

    /// Latest sampled value (host-side view).
    [[nodiscard]] double value() const noexcept { return from_fixed(data_); }
    /// The un-spoofed physical truth at a cycle.
    [[nodiscard]] double truth(sim::Cycle at) const { return signal_(at); }
    [[nodiscard]] std::uint32_t samples() const noexcept { return samples_; }

protected:
    mem::BusResponse read_reg(mem::Addr offset, std::uint32_t& out,
                              const mem::BusAttr& attr) override;
    mem::BusResponse write_reg(mem::Addr offset, std::uint32_t value,
                               const mem::BusAttr& attr) override;

private:
    std::function<double(sim::Cycle)> signal_;
    std::function<double(sim::Cycle)> spoof_;
    std::uint32_t period_;
    std::uint32_t countdown_;
    std::int32_t data_ = 0;
    std::uint32_t samples_ = 0;
};

}  // namespace cres::dev
