// Voltage / temperature environment sensor — the substrate for the
// paper's "voltage, clock and temperature monitors" (Table I, recover
// row). Glitch attacks perturb the readings; the environment monitor
// flags excursions outside the provisioned envelope.
//   0x00 VOLTAGE (R) signed 16.16 fixed point, volts
//   0x04 TEMP    (R) signed 16.16 fixed point, degrees C
#pragma once

#include "dev/device.h"
#include "dev/sensor.h"  // fixed-point helpers

namespace cres::dev {

class PowerSensor : public Device {
public:
    PowerSensor(std::string name, double nominal_voltage,
                double nominal_temp)
        : Device(std::move(name)),
          voltage_(nominal_voltage),
          temp_(nominal_temp) {}

    static constexpr mem::Addr kRegVoltage = 0x00;
    static constexpr mem::Addr kRegTemp = 0x04;

    void tick(sim::Cycle now) override;

    /// Quiescence: readings are polled on stepped cycles only, so the
    /// glitch countdown never wakes the kernel; skip() replays the
    /// elided decrements exactly.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle /*now*/) override {
        return kIdleForever;
    }
    void skip(sim::Cycle /*now*/, sim::Cycle cycles) override {
        glitch_remaining_ -=
            cycles < glitch_remaining_ ? cycles : glitch_remaining_;
    }

    [[nodiscard]] double voltage() const noexcept;
    [[nodiscard]] double temperature() const noexcept { return temp_; }

    /// Injects a voltage glitch lasting `duration` cycles.
    void inject_glitch(double glitch_voltage, sim::Cycle duration);

    /// Slowly drifts the temperature (thermal attack / fault).
    void set_temperature(double celsius) noexcept { temp_ = celsius; }

    [[nodiscard]] bool glitch_active() const noexcept {
        return glitch_remaining_ > 0;
    }

protected:
    mem::BusResponse read_reg(mem::Addr offset, std::uint32_t& out,
                              const mem::BusAttr& attr) override;
    mem::BusResponse write_reg(mem::Addr offset, std::uint32_t value,
                               const mem::BusAttr& attr) override;

private:
    double voltage_;
    double temp_;
    double glitch_voltage_ = 0.0;
    sim::Cycle glitch_remaining_ = 0;
};

}  // namespace cres::dev
