#include "dev/power.h"

namespace cres::dev {

void PowerSensor::tick(sim::Cycle /*now*/) {
    if (glitch_remaining_ > 0) --glitch_remaining_;
}

double PowerSensor::voltage() const noexcept {
    return glitch_remaining_ > 0 ? glitch_voltage_ : voltage_;
}

void PowerSensor::inject_glitch(double glitch_voltage, sim::Cycle duration) {
    glitch_voltage_ = glitch_voltage;
    glitch_remaining_ = duration;
}

mem::BusResponse PowerSensor::read_reg(mem::Addr offset, std::uint32_t& out,
                                       const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegVoltage:
            out = static_cast<std::uint32_t>(to_fixed(voltage()));
            return mem::BusResponse::kOk;
        case kRegTemp:
            out = static_cast<std::uint32_t>(to_fixed(temp_));
            return mem::BusResponse::kOk;
        default:
            return mem::BusResponse::kDeviceError;
    }
}

mem::BusResponse PowerSensor::write_reg(mem::Addr /*offset*/,
                                        std::uint32_t /*value*/,
                                        const mem::BusAttr& /*attr*/) {
    return mem::BusResponse::kReadOnly;
}

}  // namespace cres::dev
