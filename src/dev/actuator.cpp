#include "dev/actuator.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cres::dev {

Actuator::Actuator(std::string name, double min_value, double max_value)
    : Device(std::move(name)), min_(min_value), max_(max_value) {
    if (min_ > max_) throw Error("Actuator: min > max");
}

std::size_t Actuator::clamped_count() const noexcept {
    std::size_t n = 0;
    for (const auto& c : history_) {
        if (c.clamped) ++n;
    }
    return n;
}

double Actuator::total_travel() const noexcept {
    double travel = 0.0;
    double previous = 0.0;
    for (const auto& c : history_) {
        travel += std::abs(c.applied - previous);
        previous = c.applied;
    }
    return travel;
}

mem::BusResponse Actuator::read_reg(mem::Addr offset, std::uint32_t& out,
                                    const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegCurrent:
            out = static_cast<std::uint32_t>(to_fixed(current_));
            return mem::BusResponse::kOk;
        case kRegCount:
            out = static_cast<std::uint32_t>(history_.size());
            return mem::BusResponse::kOk;
        default:
            return mem::BusResponse::kDeviceError;
    }
}

mem::BusResponse Actuator::write_reg(mem::Addr offset, std::uint32_t value,
                                     const mem::BusAttr& /*attr*/) {
    if (offset != kRegCommand) return mem::BusResponse::kDeviceError;
    const double requested = from_fixed(static_cast<std::int32_t>(value));
    const double applied = std::clamp(requested, min_, max_);
    current_ = applied;
    history_.push_back(Command{now_, requested, applied, requested != applied});
    return mem::BusResponse::kOk;
}

}  // namespace cres::dev
