#include "dev/uart.h"

namespace cres::dev {

void Uart::inject_input(std::string_view text) {
    for (char c : text) rx_.push_back(static_cast<std::uint8_t>(c));
    if (!rx_.empty()) raise_irq();
}

mem::BusResponse Uart::read_reg(mem::Addr offset, std::uint32_t& out,
                                const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegStatus:
            out = 1u | (rx_.empty() ? 0u : 2u);
            return mem::BusResponse::kOk;
        case kRegRxData:
            if (rx_.empty()) {
                out = 0;
            } else {
                out = rx_.front();
                rx_.pop_front();
            }
            return mem::BusResponse::kOk;
        case kRegTxData:
            out = 0;
            return mem::BusResponse::kOk;
        default:
            return mem::BusResponse::kDeviceError;
    }
}

mem::BusResponse Uart::write_reg(mem::Addr offset, std::uint32_t value,
                                 const mem::BusAttr& /*attr*/) {
    if (offset == kRegTxData) {
        tx_.push_back(static_cast<char>(value & 0xff));
        return mem::BusResponse::kOk;
    }
    return mem::BusResponse::kDeviceError;
}

}  // namespace cres::dev
