#include "dev/dma.h"

namespace cres::dev {

void DmaEngine::start_transfer(mem::Addr src, mem::Addr dst, std::uint32_t len,
                               bool secure, bool dst_fixed) {
    src_ = src;
    dst_ = dst;
    len_ = len;
    secure_ = secure;
    dst_fixed_ = dst_fixed;
    progress_ = 0;
    busy_ = len > 0;
    done_ = len == 0;
    error_ = false;
}

std::uint32_t DmaEngine::status() const noexcept {
    return (busy_ ? kStatusBusy : 0u) | (done_ ? kStatusDone : 0u) |
           (error_ ? kStatusError : 0u);
}

void DmaEngine::tick(sim::Cycle /*now*/) {
    if (!busy_) return;
    const mem::BusAttr attr{mem::Master::kDma, secure_, false};
    for (std::uint32_t i = 0; i < kBytesPerCycle && progress_ < len_; ++i) {
        std::uint32_t byte = 0;
        if (bus_.access(mem::BusOp::kRead, src_ + progress_, 1, byte, attr) !=
            mem::BusResponse::kOk) {
            busy_ = false;
            error_ = true;
            raise_irq();
            return;
        }
        const mem::Addr dst = dst_fixed_ ? dst_ : dst_ + progress_;
        if (bus_.access(mem::BusOp::kWrite, dst, 1, byte, attr) !=
            mem::BusResponse::kOk) {
            busy_ = false;
            error_ = true;
            raise_irq();
            return;
        }
        ++progress_;
        ++bytes_transferred_;
    }
    if (progress_ >= len_) {
        busy_ = false;
        done_ = true;
        ++completed_;
        raise_irq();
    }
}

mem::BusResponse DmaEngine::read_reg(mem::Addr offset, std::uint32_t& out,
                                     const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegSrc: out = src_; return mem::BusResponse::kOk;
        case kRegDst: out = dst_; return mem::BusResponse::kOk;
        case kRegLen: out = len_; return mem::BusResponse::kOk;
        case kRegStatus: out = status(); return mem::BusResponse::kOk;
        default: return mem::BusResponse::kDeviceError;
    }
}

mem::BusResponse DmaEngine::write_reg(mem::Addr offset, std::uint32_t value,
                                      const mem::BusAttr& attr) {
    switch (offset) {
        case kRegSrc: src_ = value; return mem::BusResponse::kOk;
        case kRegDst: dst_ = value; return mem::BusResponse::kOk;
        case kRegLen: len_ = value; return mem::BusResponse::kOk;
        case kRegCtrl:
            if (value & kCtrlStart) {
                // Claiming secure requires a privileged programmer.
                const bool secure =
                    (value & kCtrlClaimSecure) != 0 && attr.privileged;
                start_transfer(src_, dst_, len_, secure);
            }
            return mem::BusResponse::kOk;
        default:
            return mem::BusResponse::kDeviceError;
    }
}

}  // namespace cres::dev
