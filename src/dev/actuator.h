// Physical actuator (e.g. breaker, valve, motor drive). Records every
// command with its cycle stamp so experiments can quantify physical
// impact ("damage") of an attack and monitors can check plausibility
// (range and slew-rate limits). Register map:
//   0x00 COMMAND (W) signed 16.16 fixed-point setpoint
//   0x04 CURRENT (R) last accepted setpoint
//   0x08 COUNT   (R) number of commands
#pragma once

#include <vector>

#include "dev/device.h"
#include "dev/sensor.h"  // to_fixed/from_fixed

namespace cres::dev {

class Actuator : public Device {
public:
    /// Commands outside [min_value, max_value] are *physically* clamped
    /// but still recorded (the plant protects itself; the monitor's job
    /// is to notice the attempt).
    Actuator(std::string name, double min_value, double max_value);

    static constexpr mem::Addr kRegCommand = 0x00;
    static constexpr mem::Addr kRegCurrent = 0x04;
    static constexpr mem::Addr kRegCount = 0x08;

    struct Command {
        sim::Cycle at = 0;
        double requested = 0.0;
        double applied = 0.0;
        bool clamped = false;
    };

    void tick(sim::Cycle now) override { now_ = now; }

    /// Quiescence: the actuator only timestamps bus commands, which
    /// land exclusively on stepped cycles; skip() replays the clock
    /// latch of the elided ticks.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle /*now*/) override {
        return kIdleForever;
    }
    void skip(sim::Cycle now, sim::Cycle cycles) override {
        now_ = now + cycles - 1;
    }

    [[nodiscard]] double current() const noexcept { return current_; }
    [[nodiscard]] const std::vector<Command>& history() const noexcept {
        return history_;
    }
    [[nodiscard]] std::size_t command_count() const noexcept {
        return history_.size();
    }
    [[nodiscard]] std::size_t clamped_count() const noexcept;

    /// Total |applied| movement — a crude physical-wear/damage metric.
    [[nodiscard]] double total_travel() const noexcept;

protected:
    mem::BusResponse read_reg(mem::Addr offset, std::uint32_t& out,
                              const mem::BusAttr& attr) override;
    mem::BusResponse write_reg(mem::Addr offset, std::uint32_t value,
                               const mem::BusAttr& attr) override;

private:
    double min_;
    double max_;
    double current_ = 0.0;
    sim::Cycle now_ = 0;
    std::vector<Command> history_;
};

}  // namespace cres::dev
