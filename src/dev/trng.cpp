#include "dev/trng.h"

namespace cres::dev {

mem::BusResponse Trng::read_reg(mem::Addr offset, std::uint32_t& out,
                                const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegData:
            out = static_cast<std::uint32_t>(rng_.next());
            ++reads_;
            return mem::BusResponse::kOk;
        case kRegReads:
            out = reads_;
            return mem::BusResponse::kOk;
        default:
            return mem::BusResponse::kDeviceError;
    }
}

mem::BusResponse Trng::write_reg(mem::Addr /*offset*/, std::uint32_t /*value*/,
                                 const mem::BusAttr& /*attr*/) {
    return mem::BusResponse::kReadOnly;
}

}  // namespace cres::dev
