// Watchdog timer — the classic passive countermeasure the paper cites.
// Register map:
//   0x00 KICK     (W)  any write restarts the countdown
//   0x04 TIMEOUT  (RW) cycles until expiry
//   0x08 CTRL     (RW) bit0 enable
//   0x0c EXPIRIES (R)  expiry count
// On expiry the watchdog raises its IRQ and invokes the expiry callback
// (the platform typically wires this to a system reset).
#pragma once

#include "dev/device.h"

namespace cres::dev {

class Watchdog : public Device {
public:
    explicit Watchdog(std::string name) : Device(std::move(name)) {}

    static constexpr mem::Addr kRegKick = 0x00;
    static constexpr mem::Addr kRegTimeout = 0x04;
    static constexpr mem::Addr kRegCtrl = 0x08;
    static constexpr mem::Addr kRegExpiries = 0x0c;

    void tick(sim::Cycle now) override;

    /// Quiescence: disabled or drained (remaining == 0) watchdogs never
    /// act; an armed one expires when the countdown hits zero. Skipped
    /// ticks only drain the countdown, replayed in one subtraction.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override;
    void skip(sim::Cycle now, sim::Cycle cycles) override;

    /// Host-side arm.
    void arm(std::uint32_t timeout_cycles);
    void kick() noexcept { remaining_ = timeout_; }

    /// Invoked (once per expiry) in addition to the IRQ.
    void set_expiry_callback(std::function<void()> callback) {
        on_expiry_ = std::move(callback);
    }

    [[nodiscard]] std::uint32_t expiries() const noexcept { return expiries_; }
    [[nodiscard]] bool enabled() const noexcept { return (ctrl_ & 1u) != 0; }

protected:
    mem::BusResponse read_reg(mem::Addr offset, std::uint32_t& out,
                              const mem::BusAttr& attr) override;
    mem::BusResponse write_reg(mem::Addr offset, std::uint32_t value,
                               const mem::BusAttr& attr) override;

private:
    std::uint32_t timeout_ = 0;
    std::uint32_t remaining_ = 0;
    std::uint32_t ctrl_ = 0;
    std::uint32_t expiries_ = 0;
    std::function<void()> on_expiry_;
};

}  // namespace cres::dev
