// DMA engine — a second bus master, and therefore a classic attack
// surface: a compromised driver can program it to copy secrets out of
// memory the CPU's MPU would never let the task touch. Register map:
//   0x00 SRC    (RW)
//   0x04 DST    (RW)
//   0x08 LEN    (RW) bytes
//   0x0c CTRL   (W)  bit0 start, bit1 claim-secure (honoured only for
//                    privileged writes — the [34]-style escalation knob)
//   0x10 STATUS (R)  bit0 busy, bit1 done, bit2 error
// Copies kBytesPerCycle per cycle; raises IRQ on completion.
#pragma once

#include "dev/device.h"

namespace cres::dev {

class DmaEngine : public Device {
public:
    DmaEngine(std::string name, mem::Bus& bus)
        : Device(std::move(name)), bus_(bus) {}

    static constexpr mem::Addr kRegSrc = 0x00;
    static constexpr mem::Addr kRegDst = 0x04;
    static constexpr mem::Addr kRegLen = 0x08;
    static constexpr mem::Addr kRegCtrl = 0x0c;
    static constexpr mem::Addr kRegStatus = 0x10;

    static constexpr std::uint32_t kCtrlStart = 1u << 0;
    static constexpr std::uint32_t kCtrlClaimSecure = 1u << 1;

    static constexpr std::uint32_t kStatusBusy = 1u << 0;
    static constexpr std::uint32_t kStatusDone = 1u << 1;
    static constexpr std::uint32_t kStatusError = 1u << 2;

    static constexpr std::uint32_t kBytesPerCycle = 4;

    void tick(sim::Cycle now) override;

    /// Quiescence: an idle engine does nothing until a transfer is
    /// programmed — a bus write, which only lands on a stepped cycle.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override {
        return busy_ ? now : kIdleForever;
    }

    /// Host-side transfer kick-off (models a driver call). With
    /// `dst_fixed` every byte goes to the same destination address
    /// (FIFO-register targets such as a NIC TX port).
    void start_transfer(mem::Addr src, mem::Addr dst, std::uint32_t len,
                        bool secure = false, bool dst_fixed = false);

    [[nodiscard]] bool busy() const noexcept { return busy_; }
    [[nodiscard]] std::uint32_t status() const noexcept;
    [[nodiscard]] std::uint64_t bytes_transferred() const noexcept {
        return bytes_transferred_;
    }
    [[nodiscard]] std::uint32_t transfers_completed() const noexcept {
        return completed_;
    }

protected:
    mem::BusResponse read_reg(mem::Addr offset, std::uint32_t& out,
                              const mem::BusAttr& attr) override;
    mem::BusResponse write_reg(mem::Addr offset, std::uint32_t value,
                               const mem::BusAttr& attr) override;

private:
    mem::Bus& bus_;
    std::uint32_t src_ = 0;
    std::uint32_t dst_ = 0;
    std::uint32_t len_ = 0;
    std::uint32_t progress_ = 0;
    bool busy_ = false;
    bool done_ = false;
    bool error_ = false;
    bool secure_ = false;
    bool dst_fixed_ = false;
    std::uint64_t bytes_transferred_ = 0;
    std::uint32_t completed_ = 0;
};

}  // namespace cres::dev
