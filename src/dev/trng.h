// True-random-number-generator peripheral (simulated entropy source).
// Mapped secure-only on real platforms; reading DATA pops 32 fresh bits.
//   0x00 DATA  (R) next random word
//   0x04 READS (R) total words served
#pragma once

#include "dev/device.h"
#include "util/rng.h"

namespace cres::dev {

class Trng : public Device {
public:
    Trng(std::string name, std::uint64_t seed)
        : Device(std::move(name)), rng_(seed) {}

    static constexpr mem::Addr kRegData = 0x00;
    static constexpr mem::Addr kRegReads = 0x04;

    /// Host-side entropy draw (used by the boot ROM to seed the DRBG).
    Bytes random_bytes(std::size_t n) { return rng_.bytes(n); }

protected:
    mem::BusResponse read_reg(mem::Addr offset, std::uint32_t& out,
                              const mem::BusAttr& attr) override;
    mem::BusResponse write_reg(mem::Addr offset, std::uint32_t value,
                               const mem::BusAttr& attr) override;

private:
    Rng rng_;
    std::uint32_t reads_ = 0;
};

}  // namespace cres::dev
