// Periodic timer. Register map:
//   0x00 COUNT    (R)  free-running counter (cycles while enabled)
//   0x04 COMPARE  (RW) match value
//   0x08 CTRL     (RW) bit0 enable, bit1 auto-reload (count := 0 on match)
//   0x0c MATCHES  (R)  number of matches so far
// Raises its IRQ on every match.
#pragma once

#include "dev/device.h"

namespace cres::dev {

class Timer : public Device {
public:
    explicit Timer(std::string name) : Device(std::move(name)) {}

    static constexpr mem::Addr kRegCount = 0x00;
    static constexpr mem::Addr kRegCompare = 0x04;
    static constexpr mem::Addr kRegCtrl = 0x08;
    static constexpr mem::Addr kRegMatches = 0x0c;

    static constexpr std::uint32_t kCtrlEnable = 1u << 0;
    static constexpr std::uint32_t kCtrlAutoReload = 1u << 1;

    void tick(sim::Cycle now) override;

    /// Quiescence: a disabled timer never acts; an enabled one acts at
    /// its next COUNT == COMPARE match. Skipped ticks only advance
    /// COUNT, replayed in one addition.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override;
    void skip(sim::Cycle now, sim::Cycle cycles) override;

    /// Host-side configuration shortcut.
    void configure(std::uint32_t compare, bool auto_reload);

    [[nodiscard]] std::uint32_t matches() const noexcept { return matches_; }

protected:
    mem::BusResponse read_reg(mem::Addr offset, std::uint32_t& out,
                              const mem::BusAttr& attr) override;
    mem::BusResponse write_reg(mem::Addr offset, std::uint32_t value,
                               const mem::BusAttr& attr) override;

private:
    std::uint32_t count_ = 0;
    std::uint32_t compare_ = 0;
    std::uint32_t ctrl_ = 0;
    std::uint32_t matches_ = 0;
};

}  // namespace cres::dev
