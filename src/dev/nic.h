// Network interface + point-to-point link for M2M communication.
//
// The Link is the physical medium: it connects exactly two NICs and
// supports an attacker tap (man-in-the-middle hook) that can observe,
// modify, drop or forge frames — the M2M threat the paper highlights.
//
// NIC register map:
//   0x00 TX_BYTE   (W) append byte to the outgoing frame
//   0x04 TX_SEND   (W) transmit the assembled frame
//   0x08 RX_BYTE   (R) pop next byte of the current inbound frame
//   0x0c RX_AVAIL  (R) bytes left in the current inbound frame
//   0x10 RX_NEXT   (W) advance to the next queued frame
//   0x14 RX_PENDING(R) queued frame count (including current)
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "dev/device.h"
#include "util/bytes.h"

namespace cres::dev {

class Nic;

/// Point-to-point medium with an optional man-in-the-middle tap.
class Link {
public:
    /// The tap sees every frame: return the (possibly modified) frame
    /// to deliver, or nullopt to drop it. `from_a` tells direction.
    using Tap = std::function<std::optional<Bytes>(const Bytes& frame,
                                                   bool from_a)>;

    /// Connects the two endpoints. Throws NetError when already bound.
    void attach(Nic& a, Nic& b);

    /// Transmits from one endpoint to the other (called by the NIC).
    void transmit(const Nic& sender, const Bytes& frame);

    /// Attacker injection: deliver a forged frame to one endpoint
    /// (`to_a` selects the victim).
    void inject(const Bytes& frame, bool to_a);

    void set_tap(Tap tap) { tap_ = std::move(tap); }
    void clear_tap() noexcept { tap_ = nullptr; }

    [[nodiscard]] std::uint64_t frames_carried() const noexcept {
        return carried_;
    }
    [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
        return dropped_;
    }

private:
    Nic* a_ = nullptr;
    Nic* b_ = nullptr;
    Tap tap_;
    std::uint64_t carried_ = 0;
    std::uint64_t dropped_ = 0;
};

class Nic : public Device {
public:
    explicit Nic(std::string name) : Device(std::move(name)) {}

    static constexpr mem::Addr kRegTxByte = 0x00;
    static constexpr mem::Addr kRegTxSend = 0x04;
    static constexpr mem::Addr kRegRxByte = 0x08;
    static constexpr mem::Addr kRegRxAvail = 0x0c;
    static constexpr mem::Addr kRegRxNext = 0x10;
    static constexpr mem::Addr kRegRxPending = 0x14;

    /// Host-side frame API (used by C++-modelled protocol stacks).
    void send_frame(const Bytes& frame);
    [[nodiscard]] std::optional<Bytes> receive_frame();
    [[nodiscard]] std::size_t pending_frames() const noexcept {
        return rx_queue_.size();
    }

    /// Called by the Link on delivery.
    void deliver(Bytes frame);

    void bind(Link& link) { link_ = &link; }
    [[nodiscard]] bool linked() const noexcept { return link_ != nullptr; }

    [[nodiscard]] std::uint64_t frames_sent() const noexcept { return sent_; }
    [[nodiscard]] std::uint64_t frames_received() const noexcept {
        return received_;
    }

protected:
    mem::BusResponse read_reg(mem::Addr offset, std::uint32_t& out,
                              const mem::BusAttr& attr) override;
    mem::BusResponse write_reg(mem::Addr offset, std::uint32_t value,
                               const mem::BusAttr& attr) override;

private:
    Link* link_ = nullptr;
    Bytes tx_buffer_;
    std::deque<Bytes> rx_queue_;
    std::size_t rx_offset_ = 0;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
};

}  // namespace cres::dev
