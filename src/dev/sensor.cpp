#include "dev/sensor.h"

#include "util/error.h"

namespace cres::dev {

std::int32_t to_fixed(double value) noexcept {
    return static_cast<std::int32_t>(value * 65536.0);
}

double from_fixed(std::int32_t raw) noexcept {
    return static_cast<double>(raw) / 65536.0;
}

Sensor::Sensor(std::string name, std::function<double(sim::Cycle)> signal,
               std::uint32_t period)
    : Device(std::move(name)),
      signal_(std::move(signal)),
      period_(period),
      countdown_(period) {
    if (!signal_) throw Error("Sensor: null signal function");
    if (period_ == 0) throw Error("Sensor: zero period");
}

void Sensor::tick(sim::Cycle now) {
    if (--countdown_ > 0) return;
    countdown_ = period_;
    const double value = spoof_ ? spoof_(now) : signal_(now);
    data_ = to_fixed(value);
    ++samples_;
}

void Sensor::skip(sim::Cycle now, sim::Cycle cycles) {
    if (countdown_ > cycles) {
        countdown_ -= static_cast<std::uint32_t>(cycles);
        return;
    }
    const sim::Cycle end = now + cycles;
    sim::Cycle at = now + countdown_ - 1;
    while (at < end) {
        const double value = spoof_ ? spoof_(at) : signal_(at);
        data_ = to_fixed(value);
        ++samples_;
        at += period_;
    }
    countdown_ = static_cast<std::uint32_t>(at - end + 1);
}

mem::BusResponse Sensor::read_reg(mem::Addr offset, std::uint32_t& out,
                                  const mem::BusAttr& /*attr*/) {
    switch (offset) {
        case kRegData:
            out = static_cast<std::uint32_t>(data_);
            return mem::BusResponse::kOk;
        case kRegSamples: out = samples_; return mem::BusResponse::kOk;
        case kRegPeriod: out = period_; return mem::BusResponse::kOk;
        default: return mem::BusResponse::kDeviceError;
    }
}

mem::BusResponse Sensor::write_reg(mem::Addr offset, std::uint32_t value,
                                   const mem::BusAttr& /*attr*/) {
    if (offset == kRegPeriod && value > 0) {
        period_ = value;
        if (countdown_ > period_) countdown_ = period_;
        return mem::BusResponse::kOk;
    }
    return mem::BusResponse::kDeviceError;
}

}  // namespace cres::dev
