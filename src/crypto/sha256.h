// SHA-256 (FIPS 180-4), implemented from scratch. This is the platform's
// security-grade hash: firmware measurement, evidence-log chaining,
// HMAC/HKDF, and the hash-based signature schemes all build on it.
//
// The compression core has two interchangeable backends selected once at
// startup: a portable unrolled scalar implementation and, on x86-64 parts
// that advertise the SHA extensions, a SHA-NI implementation. Both are
// bit-identical (guarded by the FIPS 180-4 known-answer tests) and both
// consume whole runs of blocks straight from the caller's buffer, so bulk
// update() never stages input through the internal 64-byte buffer.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace cres::crypto {

/// A 256-bit digest.
using Hash256 = std::array<std::uint8_t, 32>;

/// Converts a digest to an owning byte buffer.
Bytes hash_to_bytes(const Hash256& h);

/// Parses a 32-byte buffer into a digest. Throws CryptoError on size.
Hash256 hash_from_bytes(BytesView data);

/// Incremental SHA-256.
class Sha256 {
public:
    /// A snapshot of the full digest state, including any buffered
    /// partial block. Lets callers capture a midstate once and replay it
    /// many times (HMAC ipad/opad caching, prefix-keyed hashing).
    struct State {
        std::array<std::uint32_t, 8> h{};
        std::array<std::uint8_t, 64> buffer{};
        std::uint64_t total_len = 0;
        std::size_t buffer_len = 0;
    };

    Sha256() noexcept;

    /// Absorbs more input.
    Sha256& update(BytesView data) noexcept;

    /// Finalizes and returns the digest. The object must not be reused
    /// afterwards except via reset() / restore_state().
    [[nodiscard]] Hash256 finish() noexcept;

    /// Restores the initial state.
    void reset() noexcept;

    /// Exports the current digest state (midstate export).
    [[nodiscard]] State save_state() const noexcept;

    /// Resumes hashing from a previously saved midstate.
    void restore_state(const State& state) noexcept;

private:
    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::uint64_t total_len_ = 0;
    std::size_t buffer_len_ = 0;
};

/// One-shot SHA-256.
Hash256 sha256(BytesView data) noexcept;

/// SHA-256 over the concatenation of two buffers (no copies).
Hash256 sha256_pair(BytesView a, BytesView b) noexcept;

/// Name of the compression backend selected at startup ("sha-ni" or
/// "portable"). Exposed for benchmarks and diagnostics.
[[nodiscard]] const char* sha256_backend() noexcept;

}  // namespace cres::crypto
