// SHA-256 (FIPS 180-4), implemented from scratch. This is the platform's
// security-grade hash: firmware measurement, evidence-log chaining,
// HMAC/HKDF, and the hash-based signature schemes all build on it.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace cres::crypto {

/// A 256-bit digest.
using Hash256 = std::array<std::uint8_t, 32>;

/// Converts a digest to an owning byte buffer.
Bytes hash_to_bytes(const Hash256& h);

/// Parses a 32-byte buffer into a digest. Throws CryptoError on size.
Hash256 hash_from_bytes(BytesView data);

/// Incremental SHA-256.
class Sha256 {
public:
    Sha256() noexcept;

    /// Absorbs more input.
    Sha256& update(BytesView data) noexcept;

    /// Finalizes and returns the digest. The object must not be reused
    /// afterwards except via reset().
    [[nodiscard]] Hash256 finish() noexcept;

    /// Restores the initial state.
    void reset() noexcept;

private:
    void compress(const std::uint8_t* block) noexcept;

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::uint64_t total_len_ = 0;
    std::size_t buffer_len_ = 0;
};

/// One-shot SHA-256.
Hash256 sha256(BytesView data) noexcept;

/// SHA-256 over the concatenation of two buffers (no copies).
Hash256 sha256_pair(BytesView a, BytesView b) noexcept;

}  // namespace cres::crypto
