// Winternitz one-time signatures (WOTS+-style, w = 16) over SHA-256.
// One key pair signs exactly one message; the Merkle scheme in
// merkle.h aggregates many WOTS key pairs into a many-time public key.
//
// This is the platform's digital-signature substitute for the RSA/ECC
// schemes listed in the paper's Table I: the secure-boot chain and
// attestation verification only require *some* unforgeable signature,
// and hash-based signatures are implementable from scratch and
// constant-time by construction.
#pragma once

#include <cstdint>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace cres::crypto {

/// WOTS parameters: w = 16 (4 bits per digit), 64 message digits +
/// 3 checksum digits = 67 hash chains of length 15.
struct WotsParams {
    static constexpr std::size_t kHashLen = 32;
    static constexpr unsigned kWinternitz = 16;
    static constexpr std::size_t kLen1 = 64;
    static constexpr std::size_t kLen2 = 3;
    static constexpr std::size_t kLen = kLen1 + kLen2;
    static constexpr unsigned kMaxSteps = kWinternitz - 1;
};

/// A WOTS signature: kLen intermediate chain values.
struct WotsSignature {
    std::vector<Hash256> chains;

    Bytes serialize() const;
    static WotsSignature deserialize(BytesView data);
};

/// One-time key pair. The secret seed must never sign twice.
class WotsKeyPair {
public:
    /// Derives the key pair deterministically from (seed, pub_seed).
    /// `pub_seed` is public randomization (domain separation).
    WotsKeyPair(const Hash256& secret_seed, const Hash256& pub_seed);

    /// Compressed public key: hash of all chain endpoints.
    [[nodiscard]] const Hash256& public_key() const noexcept { return pk_; }

    /// Signs a message (its SHA-256 is signed).
    [[nodiscard]] WotsSignature sign(BytesView message) const;

private:
    Hash256 secret_seed_;
    Hash256 pub_seed_;
    Hash256 pk_;
};

/// Recomputes the candidate public key from a signature; verification
/// succeeds when it equals the expected public key.
Hash256 wots_pk_from_signature(const WotsSignature& sig, BytesView message,
                               const Hash256& pub_seed);

/// Convenience: full verify.
bool wots_verify(const WotsSignature& sig, BytesView message,
                 const Hash256& public_key, const Hash256& pub_seed);

}  // namespace cres::crypto
