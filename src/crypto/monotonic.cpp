#include "crypto/monotonic.h"

#include "util/serial.h"

namespace cres::crypto {

std::uint64_t MonotonicCounterBank::value(
    const std::string& name) const noexcept {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool MonotonicCounterBank::advance(const std::string& name,
                                   std::uint64_t target) noexcept {
    auto& current = counters_[name];
    if (target < current) {
        ++tamper_attempts_;
        return false;
    }
    current = target;
    return true;
}

std::uint64_t MonotonicCounterBank::increment(const std::string& name) noexcept {
    return ++counters_[name];
}

Bytes MonotonicCounterBank::serialize() const {
    BinaryWriter w;
    w.u32(static_cast<std::uint32_t>(counters_.size()));
    for (const auto& [name, value] : counters_) {
        w.str(name);
        w.u64(value);
    }
    w.u64(tamper_attempts_);
    return w.take();
}

MonotonicCounterBank MonotonicCounterBank::deserialize(BytesView data) {
    BinaryReader r(data);
    MonotonicCounterBank bank;
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::string name = r.str();
        bank.counters_[name] = r.u64();
    }
    bank.tamper_attempts_ = r.u64();
    return bank;
}

}  // namespace cres::crypto
