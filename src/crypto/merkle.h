// Merkle many-time signature scheme (MSS) over WOTS+ one-time keys.
// A tree of height h yields 2^h signatures under one 32-byte root
// public key. The signer is stateful: each leaf signs at most once.
//
// Used as the firmware-signing "vendor key" for the secure-boot chain
// and as the SSM's evidence-sealing identity key.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/wots.h"
#include "util/bytes.h"

namespace cres::crypto {

/// Merkle signature: leaf index, one-time signature, and authentication
/// path from the leaf to the root.
struct MerkleSignature {
    std::uint32_t leaf_index = 0;
    WotsSignature ots;
    std::vector<Hash256> auth_path;

    Bytes serialize() const;
    static MerkleSignature deserialize(BytesView data);
};

/// Public verification key: tree root plus the public chain seed.
struct MerklePublicKey {
    Hash256 root{};
    Hash256 pub_seed{};
    std::uint32_t height = 0;

    Bytes serialize() const;
    static MerklePublicKey deserialize(BytesView data);
};

/// Stateful signer holding the full tree. Keygen cost is 2^h WOTS
/// keygens; heights 4-8 are typical in tests and benches.
class MerkleSigner {
public:
    /// Derives all leaves deterministically from `master_seed`.
    MerkleSigner(const Hash256& master_seed, std::uint32_t height);

    [[nodiscard]] const MerklePublicKey& public_key() const noexcept {
        return pk_;
    }

    /// Number of signatures still available.
    [[nodiscard]] std::uint32_t remaining() const noexcept;

    /// Signs with the next unused leaf. Throws CryptoError when the
    /// key is exhausted (one-time property is enforced, not advisory).
    MerkleSignature sign(BytesView message);

private:
    Hash256 master_seed_;
    Hash256 pub_seed_;
    std::uint32_t height_;
    std::uint32_t next_leaf_ = 0;
    // tree_[level][i]: level 0 = leaves (hash of WOTS pk), top = root.
    std::vector<std::vector<Hash256>> tree_;
    MerklePublicKey pk_;
};

/// Verifies a Merkle signature against the root public key.
bool merkle_verify(const MerkleSignature& sig, BytesView message,
                   const MerklePublicKey& pk);

}  // namespace cres::crypto
