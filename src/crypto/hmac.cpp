#include "crypto/hmac.h"

#include "util/error.h"

namespace cres::crypto {

namespace {

constexpr std::size_t kBlockSize = 64;

std::array<std::uint8_t, kBlockSize> normalize_key(BytesView key) noexcept {
    std::array<std::uint8_t, kBlockSize> block{};
    if (key.size() > kBlockSize) {
        const Hash256 digest = sha256(key);
        std::copy(digest.begin(), digest.end(), block.begin());
    } else {
        std::copy(key.begin(), key.end(), block.begin());
    }
    return block;
}

}  // namespace

HmacSha256::HmacSha256(BytesView key) noexcept {
    set_key(key);
}

void HmacSha256::set_key(BytesView key) noexcept {
    const auto block = normalize_key(key);

    std::array<std::uint8_t, kBlockSize> pad;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        pad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    }
    Sha256 h;
    h.update(pad);
    inner_ = h.save_state();

    for (std::size_t i = 0; i < kBlockSize; ++i) {
        pad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
    }
    h.reset();
    h.update(pad);
    outer_ = h.save_state();

    secure_wipe(std::span<std::uint8_t>(pad));
}

Hash256 HmacSha256::tag(BytesView message) const noexcept {
    Sha256 h;
    h.restore_state(inner_);
    h.update(message);
    const Hash256 inner_digest = h.finish();

    h.restore_state(outer_);
    h.update(inner_digest);
    return h.finish();
}

Hash256 HmacSha256::tag_pair(BytesView a, BytesView b) const noexcept {
    Sha256 h;
    h.restore_state(inner_);
    h.update(a).update(b);
    const Hash256 inner_digest = h.finish();

    h.restore_state(outer_);
    h.update(inner_digest);
    return h.finish();
}

bool HmacSha256::verify(BytesView message, BytesView tag_bytes) const noexcept {
    const Hash256 expected = tag(message);
    return ct_equal(expected, tag_bytes);
}

Hash256 hmac_sha256(BytesView key, BytesView message) noexcept {
    return HmacSha256(key).tag(message);
}

bool hmac_verify(BytesView key, BytesView message, BytesView tag) noexcept {
    const Hash256 expected = hmac_sha256(key, message);
    return ct_equal(expected, tag);
}

Hash256 hkdf_extract(BytesView salt, BytesView ikm) noexcept {
    return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(const Hash256& prk, BytesView info, std::size_t length) {
    constexpr std::size_t kHashLen = 32;
    if (length > 255 * kHashLen) {
        throw CryptoError("hkdf_expand: requested length too large");
    }
    // One keyed object serves every T(n) block: the PRK pads are
    // derived once instead of once per 32 output bytes.
    const HmacSha256 keyed(prk);
    Bytes out;
    out.reserve(length);
    Hash256 previous{};
    bool have_previous = false;
    std::uint8_t counter = 1;
    Bytes tail;
    tail.reserve(info.size() + 1);
    while (out.size() < length) {
        tail.assign(info.begin(), info.end());
        tail.push_back(counter++);
        const Hash256 t =
            have_previous ? keyed.tag_pair(previous, tail) : keyed.tag(tail);
        previous = t;
        have_previous = true;
        const std::size_t take = std::min(kHashLen, length - out.size());
        out.insert(out.end(), t.begin(),
                   t.begin() + static_cast<std::ptrdiff_t>(take));
    }
    return out;
}

Bytes hkdf(BytesView ikm, BytesView salt, std::string_view label,
           std::size_t length) {
    const Hash256 prk = hkdf_extract(salt, ikm);
    const Bytes info = to_bytes(label);
    return hkdf_expand(prk, info, length);
}

}  // namespace cres::crypto
