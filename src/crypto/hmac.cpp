#include "crypto/hmac.h"

#include "util/error.h"

namespace cres::crypto {

namespace {

constexpr std::size_t kBlockSize = 64;

std::array<std::uint8_t, kBlockSize> normalize_key(BytesView key) noexcept {
    std::array<std::uint8_t, kBlockSize> block{};
    if (key.size() > kBlockSize) {
        const Hash256 digest = sha256(key);
        std::copy(digest.begin(), digest.end(), block.begin());
    } else {
        std::copy(key.begin(), key.end(), block.begin());
    }
    return block;
}

}  // namespace

Hash256 hmac_sha256(BytesView key, BytesView message) noexcept {
    const auto block = normalize_key(key);

    std::array<std::uint8_t, kBlockSize> ipad;
    std::array<std::uint8_t, kBlockSize> opad;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
        opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(ipad).update(message);
    const Hash256 inner_digest = inner.finish();

    Sha256 outer;
    outer.update(opad).update(inner_digest);
    return outer.finish();
}

bool hmac_verify(BytesView key, BytesView message, BytesView tag) noexcept {
    const Hash256 expected = hmac_sha256(key, message);
    return ct_equal(expected, tag);
}

Hash256 hkdf_extract(BytesView salt, BytesView ikm) noexcept {
    return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(const Hash256& prk, BytesView info, std::size_t length) {
    constexpr std::size_t kHashLen = 32;
    if (length > 255 * kHashLen) {
        throw CryptoError("hkdf_expand: requested length too large");
    }
    Bytes out;
    out.reserve(length);
    Bytes previous;
    std::uint8_t counter = 1;
    while (out.size() < length) {
        Bytes block = previous;
        append(block, info);
        block.push_back(counter++);
        const Hash256 t = hmac_sha256(prk, block);
        previous.assign(t.begin(), t.end());
        const std::size_t take = std::min(kHashLen, length - out.size());
        out.insert(out.end(), t.begin(),
                   t.begin() + static_cast<std::ptrdiff_t>(take));
    }
    return out;
}

Bytes hkdf(BytesView ikm, BytesView salt, std::string_view label,
           std::size_t length) {
    const Hash256 prk = hkdf_extract(salt, ikm);
    const Bytes info = to_bytes(label);
    return hkdf_expand(prk, info, length);
}

}  // namespace cres::crypto
