#include "crypto/wots.h"

#include "crypto/hmac.h"
#include "util/error.h"
#include "util/serial.h"

namespace cres::crypto {

namespace {

using P = WotsParams;

/// One application of the chaining function at position (chain, step).
Hash256 chain_step(const Hash256& pub_seed, std::uint32_t chain,
                   std::uint32_t step, const Hash256& value) noexcept {
    std::uint8_t addr[8];
    for (int i = 0; i < 4; ++i) {
        addr[i] = static_cast<std::uint8_t>(chain >> (8 * i));
        addr[4 + i] = static_cast<std::uint8_t>(step >> (8 * i));
    }
    Sha256 h;
    h.update(pub_seed).update(BytesView(addr, 8)).update(value);
    return h.finish();
}

/// Advances `value` through steps [start, start+count).
Hash256 chain(const Hash256& pub_seed, std::uint32_t chain_index,
              unsigned start, unsigned count, Hash256 value) noexcept {
    for (unsigned s = start; s < start + count; ++s) {
        value = chain_step(pub_seed, chain_index, s, value);
    }
    return value;
}

/// Secret chain-start value for a given chain index.
Hash256 chain_secret(const Hash256& secret_seed, std::uint32_t index) {
    std::uint8_t idx[4];
    for (int i = 0; i < 4; ++i) {
        idx[i] = static_cast<std::uint8_t>(index >> (8 * i));
    }
    Sha256 h;
    h.update(secret_seed).update(BytesView(idx, 4));
    return h.finish();
}

/// Splits the message digest into kLen1 base-16 digits plus a kLen2-digit
/// checksum. The checksum makes digit-increase forgeries impossible.
std::array<unsigned, P::kLen> message_digits(BytesView message) {
    const Hash256 digest = sha256(message);
    std::array<unsigned, P::kLen> digits{};
    for (std::size_t i = 0; i < P::kLen1; ++i) {
        const std::uint8_t byte = digest[i / 2];
        digits[i] = (i % 2 == 0) ? (byte >> 4) : (byte & 0x0f);
    }
    unsigned checksum = 0;
    for (std::size_t i = 0; i < P::kLen1; ++i) {
        checksum += P::kMaxSteps - digits[i];
    }
    for (std::size_t i = 0; i < P::kLen2; ++i) {
        digits[P::kLen1 + i] = checksum & 0x0f;
        checksum >>= 4;
    }
    return digits;
}

Hash256 compress_endpoints(const std::vector<Hash256>& endpoints) {
    Sha256 h;
    for (const Hash256& e : endpoints) h.update(e);
    return h.finish();
}

}  // namespace

Bytes WotsSignature::serialize() const {
    BinaryWriter w;
    w.u32(static_cast<std::uint32_t>(chains.size()));
    for (const Hash256& c : chains) w.raw(c);
    return w.take();
}

WotsSignature WotsSignature::deserialize(BytesView data) {
    BinaryReader r(data);
    const std::uint32_t n = r.u32();
    if (n != P::kLen) {
        throw CryptoError("WotsSignature: bad chain count");
    }
    WotsSignature sig;
    sig.chains.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        sig.chains.push_back(hash_from_bytes(r.raw(P::kHashLen)));
    }
    return sig;
}

WotsKeyPair::WotsKeyPair(const Hash256& secret_seed, const Hash256& pub_seed)
    : secret_seed_(secret_seed), pub_seed_(pub_seed) {
    std::vector<Hash256> endpoints;
    endpoints.reserve(P::kLen);
    for (std::uint32_t i = 0; i < P::kLen; ++i) {
        endpoints.push_back(
            chain(pub_seed_, i, 0, P::kMaxSteps, chain_secret(secret_seed_, i)));
    }
    pk_ = compress_endpoints(endpoints);
}

WotsSignature WotsKeyPair::sign(BytesView message) const {
    const auto digits = message_digits(message);
    WotsSignature sig;
    sig.chains.reserve(P::kLen);
    for (std::uint32_t i = 0; i < P::kLen; ++i) {
        sig.chains.push_back(
            chain(pub_seed_, i, 0, digits[i], chain_secret(secret_seed_, i)));
    }
    return sig;
}

Hash256 wots_pk_from_signature(const WotsSignature& sig, BytesView message,
                               const Hash256& pub_seed) {
    if (sig.chains.size() != P::kLen) {
        throw CryptoError("wots_pk_from_signature: bad signature shape");
    }
    const auto digits = message_digits(message);
    std::vector<Hash256> endpoints;
    endpoints.reserve(P::kLen);
    for (std::uint32_t i = 0; i < P::kLen; ++i) {
        endpoints.push_back(chain(pub_seed, i, digits[i],
                                  P::kMaxSteps - digits[i], sig.chains[i]));
    }
    return compress_endpoints(endpoints);
}

bool wots_verify(const WotsSignature& sig, BytesView message,
                 const Hash256& public_key, const Hash256& pub_seed) {
    if (sig.chains.size() != P::kLen) return false;
    const Hash256 candidate = wots_pk_from_signature(sig, message, pub_seed);
    return ct_equal(candidate, public_key);
}

}  // namespace cres::crypto
