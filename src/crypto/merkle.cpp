#include "crypto/merkle.h"

#include "util/error.h"
#include "util/serial.h"

namespace cres::crypto {

namespace {

// The hashing helpers take the caller's Sha256 so tree construction and
// verification reuse one object via reset() instead of re-constructing
// per node, and hash leaf pairs straight from the tree storage with no
// intermediate copies.

/// Domain-separated leaf hash.
Hash256 leaf_hash(Sha256& h, const Hash256& wots_pk) noexcept {
    const std::uint8_t tag = 0x00;
    h.reset();
    h.update(BytesView(&tag, 1)).update(wots_pk);
    return h.finish();
}

/// Domain-separated interior-node hash.
Hash256 node_hash(Sha256& h, const Hash256& left,
                  const Hash256& right) noexcept {
    const std::uint8_t tag = 0x01;
    h.reset();
    h.update(BytesView(&tag, 1)).update(left).update(right);
    return h.finish();
}

Hash256 leaf_secret_seed(Sha256& h, const Hash256& master_seed,
                         std::uint32_t leaf) {
    std::uint8_t idx[4];
    for (int i = 0; i < 4; ++i) {
        idx[i] = static_cast<std::uint8_t>(leaf >> (8 * i));
    }
    const std::uint8_t tag = 0x02;
    h.reset();
    h.update(BytesView(&tag, 1)).update(master_seed).update(BytesView(idx, 4));
    return h.finish();
}

Hash256 derive_pub_seed(const Hash256& master_seed) {
    const std::uint8_t tag = 0x03;
    Sha256 h;
    h.update(BytesView(&tag, 1)).update(master_seed);
    return h.finish();
}

}  // namespace

Bytes MerkleSignature::serialize() const {
    BinaryWriter w;
    w.u32(leaf_index);
    w.blob(ots.serialize());
    w.u32(static_cast<std::uint32_t>(auth_path.size()));
    for (const Hash256& n : auth_path) w.raw(n);
    return w.take();
}

MerkleSignature MerkleSignature::deserialize(BytesView data) {
    BinaryReader r(data);
    MerkleSignature sig;
    sig.leaf_index = r.u32();
    const Bytes ots_bytes = r.blob();
    sig.ots = WotsSignature::deserialize(ots_bytes);
    const std::uint32_t n = r.u32();
    if (n > 64) throw CryptoError("MerkleSignature: auth path too long");
    sig.auth_path.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        sig.auth_path.push_back(hash_from_bytes(r.raw(32)));
    }
    return sig;
}

Bytes MerklePublicKey::serialize() const {
    BinaryWriter w;
    w.raw(root);
    w.raw(pub_seed);
    w.u32(height);
    return w.take();
}

MerklePublicKey MerklePublicKey::deserialize(BytesView data) {
    BinaryReader r(data);
    MerklePublicKey pk;
    pk.root = hash_from_bytes(r.raw(32));
    pk.pub_seed = hash_from_bytes(r.raw(32));
    pk.height = r.u32();
    return pk;
}

MerkleSigner::MerkleSigner(const Hash256& master_seed, std::uint32_t height)
    : master_seed_(master_seed),
      pub_seed_(derive_pub_seed(master_seed)),
      height_(height) {
    if (height_ == 0 || height_ > 20) {
        throw CryptoError("MerkleSigner: height must be in [1, 20]");
    }
    const std::uint32_t leaves = 1u << height_;

    Sha256 h;
    tree_.resize(height_ + 1);
    tree_[0].reserve(leaves);
    for (std::uint32_t i = 0; i < leaves; ++i) {
        const WotsKeyPair kp(leaf_secret_seed(h, master_seed_, i), pub_seed_);
        tree_[0].push_back(leaf_hash(h, kp.public_key()));
    }
    for (std::uint32_t level = 1; level <= height_; ++level) {
        const auto& below = tree_[level - 1];
        auto& current = tree_[level];
        current.reserve(below.size() / 2);
        for (std::size_t i = 0; i + 1 < below.size(); i += 2) {
            current.push_back(node_hash(h, below[i], below[i + 1]));
        }
    }

    pk_.root = tree_[height_][0];
    pk_.pub_seed = pub_seed_;
    pk_.height = height_;
}

std::uint32_t MerkleSigner::remaining() const noexcept {
    return (1u << height_) - next_leaf_;
}

MerkleSignature MerkleSigner::sign(BytesView message) {
    if (remaining() == 0) {
        throw CryptoError("MerkleSigner: key exhausted");
    }
    const std::uint32_t leaf = next_leaf_++;

    Sha256 h;
    const WotsKeyPair kp(leaf_secret_seed(h, master_seed_, leaf), pub_seed_);

    MerkleSignature sig;
    sig.leaf_index = leaf;
    sig.ots = kp.sign(message);
    sig.auth_path.reserve(height_);
    std::uint32_t index = leaf;
    for (std::uint32_t level = 0; level < height_; ++level) {
        const std::uint32_t sibling = index ^ 1u;
        sig.auth_path.push_back(tree_[level][sibling]);
        index >>= 1;
    }
    return sig;
}

bool merkle_verify(const MerkleSignature& sig, BytesView message,
                   const MerklePublicKey& pk) {
    if (sig.auth_path.size() != pk.height) return false;
    if (sig.leaf_index >= (1u << pk.height)) return false;

    Sha256 h;
    Hash256 node;
    try {
        node = leaf_hash(h,
                         wots_pk_from_signature(sig.ots, message, pk.pub_seed));
    } catch (const CryptoError&) {
        return false;
    }

    std::uint32_t index = sig.leaf_index;
    for (const Hash256& sibling : sig.auth_path) {
        node = (index & 1u) ? node_hash(h, sibling, node)
                            : node_hash(h, node, sibling);
        index >>= 1;
    }
    return ct_equal(node, pk.root);
}

}  // namespace cres::crypto
