#include "crypto/chacha20.h"

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace cres::crypto {

namespace {

std::uint32_t rotl(std::uint32_t x, int n) noexcept {
    return (x << n) | (x >> (32 - n));
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) noexcept {
    a += b;
    d = rotl(d ^ a, 16);
    c += d;
    b = rotl(b ^ c, 12);
    a += b;
    d = rotl(d ^ a, 8);
    c += d;
    b = rotl(b ^ c, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            std::uint32_t counter,
                                            const ChaChaNonce& nonce) noexcept {
    std::uint32_t state[16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
    state[12] = counter;
    for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

    std::uint32_t working[16];
    std::copy(std::begin(state), std::end(state), std::begin(working));

    for (int i = 0; i < 10; ++i) {
        quarter_round(working[0], working[4], working[8], working[12]);
        quarter_round(working[1], working[5], working[9], working[13]);
        quarter_round(working[2], working[6], working[10], working[14]);
        quarter_round(working[3], working[7], working[11], working[15]);
        quarter_round(working[0], working[5], working[10], working[15]);
        quarter_round(working[1], working[6], working[11], working[12]);
        quarter_round(working[2], working[7], working[8], working[13]);
        quarter_round(working[3], working[4], working[9], working[14]);
    }

    std::array<std::uint8_t, 64> out;
    for (int i = 0; i < 16; ++i) {
        store_le32(out.data() + 4 * i, working[i] + state[i]);
    }
    return out;
}

Bytes chacha20_crypt(const ChaChaKey& key, const ChaChaNonce& nonce,
                     std::uint32_t initial_counter, BytesView data) {
    Bytes out(data.begin(), data.end());
    std::uint32_t counter = initial_counter;
    std::size_t off = 0;
    while (off < out.size()) {
        const auto block = chacha20_block(key, counter++, nonce);
        const std::size_t take = std::min<std::size_t>(64, out.size() - off);
        for (std::size_t i = 0; i < take; ++i) out[off + i] ^= block[i];
        off += take;
    }
    return out;
}

ChaChaDrbg::ChaChaDrbg(BytesView seed) {
    const Hash256 h = sha256(seed);
    std::copy(h.begin(), h.end(), key_.begin());
}

void ChaChaDrbg::reseed(BytesView entropy) {
    Bytes material(key_.begin(), key_.end());
    append(material, entropy);
    const Hash256 h = sha256(material);
    std::copy(h.begin(), h.end(), key_.begin());
    secure_wipe(material);
}

void ChaChaDrbg::ratchet() {
    ChaChaNonce nonce{};
    const auto block = chacha20_block(key_, 0xffffffffu, nonce);
    std::copy(block.begin(), block.begin() + 32, key_.begin());
}

Bytes ChaChaDrbg::generate(std::size_t n) {
    ChaChaNonce nonce{};
    store_le32(nonce.data(), static_cast<std::uint32_t>(reseed_counter_));
    store_le32(nonce.data() + 4,
               static_cast<std::uint32_t>(reseed_counter_ >> 32));
    ++reseed_counter_;
    Bytes out(n, 0);
    std::uint32_t counter = 1;
    std::size_t off = 0;
    while (off < out.size()) {
        const auto block = chacha20_block(key_, counter++, nonce);
        const std::size_t take = std::min<std::size_t>(64, out.size() - off);
        std::copy(block.begin(), block.begin() + static_cast<std::ptrdiff_t>(take),
                  out.begin() + static_cast<std::ptrdiff_t>(off));
        off += take;
    }
    ratchet();
    return out;
}

}  // namespace cres::crypto
