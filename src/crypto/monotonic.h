// Non-volatile monotonic counters: the anti-rollback primitive for the
// secure-boot chain and update agent (the paper's Section IV attributes
// the TrustZone downgrade attack [16] to missing rollback prevention).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/bytes.h"

namespace cres::crypto {

/// A bank of named monotonic counters. advance() never goes backwards;
/// attempts to regress are counted as tamper evidence.
class MonotonicCounterBank {
public:
    /// Current value (0 when never written).
    [[nodiscard]] std::uint64_t value(const std::string& name) const noexcept;

    /// Raises the counter to at least `target`. Returns false (and
    /// records a tamper attempt) when target is below the current value.
    bool advance(const std::string& name, std::uint64_t target) noexcept;

    /// Increments by one and returns the new value.
    std::uint64_t increment(const std::string& name) noexcept;

    /// Number of rejected regression attempts (tamper telemetry).
    [[nodiscard]] std::uint64_t tamper_attempts() const noexcept {
        return tamper_attempts_;
    }

    /// Serializes the bank (for persistence across simulated reboots).
    [[nodiscard]] Bytes serialize() const;
    static MonotonicCounterBank deserialize(BytesView data);

private:
    std::map<std::string, std::uint64_t> counters_;
    std::uint64_t tamper_attempts_ = 0;
};

}  // namespace cres::crypto
