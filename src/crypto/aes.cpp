#include "crypto/aes.h"

#include "util/error.h"

namespace cres::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t xtime(std::uint8_t x) noexcept {
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) noexcept {
    std::uint8_t result = 0;
    while (b != 0) {
        if (b & 1) result ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return result;
}

std::uint32_t sub_word(std::uint32_t w) noexcept {
    return (static_cast<std::uint32_t>(kSbox[(w >> 24) & 0xff]) << 24) |
           (static_cast<std::uint32_t>(kSbox[(w >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(kSbox[(w >> 8) & 0xff]) << 8) |
           static_cast<std::uint32_t>(kSbox[w & 0xff]);
}

std::uint32_t rot_word(std::uint32_t w) noexcept {
    return (w << 8) | (w >> 24);
}

void add_round_key(std::uint8_t state[16], const std::uint32_t* rk) noexcept {
    for (int c = 0; c < 4; ++c) {
        state[4 * c] ^= static_cast<std::uint8_t>(rk[c] >> 24);
        state[4 * c + 1] ^= static_cast<std::uint8_t>(rk[c] >> 16);
        state[4 * c + 2] ^= static_cast<std::uint8_t>(rk[c] >> 8);
        state[4 * c + 3] ^= static_cast<std::uint8_t>(rk[c]);
    }
}

void sub_bytes(std::uint8_t state[16]) noexcept {
    for (int i = 0; i < 16; ++i) state[i] = kSbox[state[i]];
}

void inv_sub_bytes(std::uint8_t state[16]) noexcept {
    for (int i = 0; i < 16; ++i) state[i] = kInvSbox[state[i]];
}

// State layout: state[4*c + r] = byte at row r, column c (column-major,
// matching the FIPS 197 byte order of the input block).
void shift_rows(std::uint8_t s[16]) noexcept {
    std::uint8_t t;
    // Row 1: shift left by 1.
    t = s[1];
    s[1] = s[5];
    s[5] = s[9];
    s[9] = s[13];
    s[13] = t;
    // Row 2: shift left by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: shift left by 3 (= right by 1).
    t = s[15];
    s[15] = s[11];
    s[11] = s[7];
    s[7] = s[3];
    s[3] = t;
}

void inv_shift_rows(std::uint8_t s[16]) noexcept {
    std::uint8_t t;
    // Row 1: shift right by 1.
    t = s[13];
    s[13] = s[9];
    s[9] = s[5];
    s[5] = s[1];
    s[1] = t;
    // Row 2: shift right by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: shift right by 3 (= left by 1).
    t = s[3];
    s[3] = s[7];
    s[7] = s[11];
    s[11] = s[15];
    s[15] = t;
}

void mix_columns(std::uint8_t s[16]) noexcept {
    for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
    }
}

void inv_mix_columns(std::uint8_t s[16]) noexcept {
    for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                           gmul(a2, 13) ^ gmul(a3, 9));
        col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                           gmul(a2, 11) ^ gmul(a3, 13));
        col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                           gmul(a2, 14) ^ gmul(a3, 11));
        col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                           gmul(a2, 9) ^ gmul(a3, 14));
    }
}

}  // namespace

Aes128Key aes_key_from_bytes(BytesView data) {
    if (data.size() != 16) {
        throw CryptoError("aes_key_from_bytes: expected 16 bytes");
    }
    Aes128Key key;
    std::copy(data.begin(), data.end(), key.begin());
    return key;
}

Aes128::Aes128(const Aes128Key& key) noexcept {
    for (int i = 0; i < 4; ++i) {
        round_keys_[i] = (static_cast<std::uint32_t>(key[4 * i]) << 24) |
                         (static_cast<std::uint32_t>(key[4 * i + 1]) << 16) |
                         (static_cast<std::uint32_t>(key[4 * i + 2]) << 8) |
                         static_cast<std::uint32_t>(key[4 * i + 3]);
    }
    for (int i = 4; i < 44; ++i) {
        std::uint32_t temp = round_keys_[i - 1];
        if (i % 4 == 0) {
            temp = sub_word(rot_word(temp)) ^
                   (static_cast<std::uint32_t>(kRcon[i / 4 - 1]) << 24);
        }
        round_keys_[i] = round_keys_[i - 4] ^ temp;
    }
}

Aes128::~Aes128() {
    volatile std::uint32_t* p = round_keys_.data();
    for (std::size_t i = 0; i < round_keys_.size(); ++i) p[i] = 0;
}

void Aes128::encrypt_block(Aes128Block& block) const noexcept {
    std::uint8_t* s = block.data();
    add_round_key(s, round_keys_.data());
    for (int round = 1; round < 10; ++round) {
        sub_bytes(s);
        shift_rows(s);
        mix_columns(s);
        add_round_key(s, round_keys_.data() + 4 * round);
    }
    sub_bytes(s);
    shift_rows(s);
    add_round_key(s, round_keys_.data() + 40);
}

void Aes128::decrypt_block(Aes128Block& block) const noexcept {
    std::uint8_t* s = block.data();
    add_round_key(s, round_keys_.data() + 40);
    for (int round = 9; round >= 1; --round) {
        inv_shift_rows(s);
        inv_sub_bytes(s);
        add_round_key(s, round_keys_.data() + 4 * round);
        inv_mix_columns(s);
    }
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, round_keys_.data());
}

Bytes Aes128::cbc_encrypt(BytesView plaintext, const Aes128Block& iv) const {
    const std::size_t pad = 16 - plaintext.size() % 16;
    Bytes padded(plaintext.begin(), plaintext.end());
    padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

    Bytes out;
    out.reserve(padded.size());
    Aes128Block chain = iv;
    for (std::size_t off = 0; off < padded.size(); off += 16) {
        Aes128Block block;
        for (int i = 0; i < 16; ++i) {
            block[static_cast<std::size_t>(i)] =
                padded[off + static_cast<std::size_t>(i)] ^
                chain[static_cast<std::size_t>(i)];
        }
        encrypt_block(block);
        chain = block;
        out.insert(out.end(), block.begin(), block.end());
    }
    return out;
}

Bytes Aes128::cbc_decrypt(BytesView ciphertext, const Aes128Block& iv) const {
    if (ciphertext.empty() || ciphertext.size() % 16 != 0) {
        throw CryptoError("cbc_decrypt: ciphertext not a block multiple");
    }
    Bytes out;
    out.reserve(ciphertext.size());
    Aes128Block chain = iv;
    for (std::size_t off = 0; off < ciphertext.size(); off += 16) {
        Aes128Block block;
        std::copy(ciphertext.begin() + static_cast<std::ptrdiff_t>(off),
                  ciphertext.begin() + static_cast<std::ptrdiff_t>(off + 16),
                  block.begin());
        const Aes128Block next_chain = block;
        decrypt_block(block);
        for (int i = 0; i < 16; ++i) {
            block[static_cast<std::size_t>(i)] ^=
                chain[static_cast<std::size_t>(i)];
        }
        chain = next_chain;
        out.insert(out.end(), block.begin(), block.end());
    }
    const std::uint8_t pad = out.back();
    if (pad == 0 || pad > 16 || pad > out.size()) {
        throw CryptoError("cbc_decrypt: bad padding");
    }
    for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
        if (out[i] != pad) throw CryptoError("cbc_decrypt: bad padding");
    }
    out.resize(out.size() - pad);
    return out;
}

Bytes Aes128::ctr_crypt(BytesView data, const Aes128Block& nonce) const {
    Bytes out(data.begin(), data.end());
    Aes128Block counter = nonce;
    std::size_t off = 0;
    while (off < out.size()) {
        Aes128Block keystream = counter;
        encrypt_block(keystream);
        const std::size_t take = std::min<std::size_t>(16, out.size() - off);
        for (std::size_t i = 0; i < take; ++i) out[off + i] ^= keystream[i];
        off += take;
        // Increment the big-endian counter in the last 4 bytes.
        for (int i = 15; i >= 12; --i) {
            if (++counter[static_cast<std::size_t>(i)] != 0) break;
        }
    }
    return out;
}

}  // namespace cres::crypto
