// AES-128 (FIPS 197) with ECB block primitives and CBC/CTR modes.
// Used for firmware image confidentiality and sealed evidence export.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace cres::crypto {

/// A 128-bit AES key.
using Aes128Key = std::array<std::uint8_t, 16>;
/// A 128-bit block / IV / counter block.
using Aes128Block = std::array<std::uint8_t, 16>;

/// Parses a 16-byte buffer into a key. Throws CryptoError on size.
Aes128Key aes_key_from_bytes(BytesView data);

/// AES-128 with a precomputed key schedule.
class Aes128 {
public:
    explicit Aes128(const Aes128Key& key) noexcept;
    ~Aes128();

    Aes128(const Aes128&) = delete;
    Aes128& operator=(const Aes128&) = delete;

    /// Encrypts one 16-byte block in place.
    void encrypt_block(Aes128Block& block) const noexcept;
    /// Decrypts one 16-byte block in place.
    void decrypt_block(Aes128Block& block) const noexcept;

    /// CBC mode with PKCS#7 padding.
    Bytes cbc_encrypt(BytesView plaintext, const Aes128Block& iv) const;
    /// Throws CryptoError on bad padding or non-block-multiple input.
    Bytes cbc_decrypt(BytesView ciphertext, const Aes128Block& iv) const;

    /// CTR mode keystream xor (encrypt == decrypt).
    Bytes ctr_crypt(BytesView data, const Aes128Block& nonce) const;

private:
    std::array<std::uint32_t, 44> round_keys_;
};

}  // namespace cres::crypto
