#include "crypto/keystore.h"

namespace cres::crypto {

bool KeyStore::allowed(KeyAccess access, KeyRequester requester) noexcept {
    switch (access) {
        case KeyAccess::kAny:
            return true;
        case KeyAccess::kSecureOnly:
            return requester == KeyRequester::kSecure ||
                   requester == KeyRequester::kSsm;
        case KeyAccess::kSsmOnly:
            return requester == KeyRequester::kSsm;
    }
    return false;
}

void KeyStore::install(const std::string& name, Bytes material,
                       KeyAccess access) {
    auto it = keys_.find(name);
    if (it != keys_.end()) {
        secure_wipe(it->second.material);
    }
    keys_[name] = Entry{std::move(material), access, false};
}

std::optional<Bytes> KeyStore::read(const std::string& name,
                                    KeyRequester requester) const {
    const auto it = keys_.find(name);
    if (it == keys_.end() || it->second.zeroised) return std::nullopt;
    if (!allowed(it->second.access, requester)) {
        ++denied_reads_;
        return std::nullopt;
    }
    return it->second.material;
}

bool KeyStore::contains(const std::string& name) const noexcept {
    const auto it = keys_.find(name);
    return it != keys_.end() && !it->second.zeroised;
}

bool KeyStore::zeroise(const std::string& name) noexcept {
    const auto it = keys_.find(name);
    if (it == keys_.end() || it->second.zeroised) return false;
    secure_wipe(it->second.material);
    it->second.zeroised = true;
    return true;
}

std::size_t KeyStore::zeroise_all() noexcept {
    std::size_t wiped = 0;
    for (auto& [name, entry] : keys_) {
        if (!entry.zeroised) {
            secure_wipe(entry.material);
            entry.zeroised = true;
            ++wiped;
        }
    }
    return wiped;
}

std::size_t KeyStore::live_count() const noexcept {
    std::size_t n = 0;
    for (const auto& [name, entry] : keys_) {
        if (!entry.zeroised) ++n;
    }
    return n;
}

}  // namespace cres::crypto
