// In-memory key store modelling a device's protected key storage.
// Supports per-key access classes (who may read it) and zeroisation —
// the "key zeroisation" countermeasure from the paper's Table I is the
// Active Response Manager calling zeroise_all().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/bytes.h"

namespace cres::crypto {

/// Which execution context may read a key.
enum class KeyAccess : std::uint8_t {
    kAny,         ///< Readable by normal-world software.
    kSecureOnly,  ///< Readable only from the secure world / boot ROM.
    kSsmOnly,     ///< Readable only by the System Security Manager.
};

/// The requesting context, used to check KeyAccess.
enum class KeyRequester : std::uint8_t { kNormal, kSecure, kSsm };

/// Named symmetric/seed key material with access control and audit data.
class KeyStore {
public:
    /// Installs or replaces a key. Old material is wiped.
    void install(const std::string& name, Bytes material, KeyAccess access);

    /// Reads a key; returns nullopt when absent, zeroised or denied.
    [[nodiscard]] std::optional<Bytes> read(const std::string& name,
                                            KeyRequester requester) const;

    /// True when the key exists and has not been zeroised.
    [[nodiscard]] bool contains(const std::string& name) const noexcept;

    /// Wipes one key's material. Returns false when absent.
    bool zeroise(const std::string& name) noexcept;

    /// Wipes every key (panic response). Returns how many were wiped.
    std::size_t zeroise_all() noexcept;

    /// Number of live (non-zeroised) keys.
    [[nodiscard]] std::size_t live_count() const noexcept;

    /// Count of denied read attempts (telemetry for the monitors).
    [[nodiscard]] std::uint64_t denied_reads() const noexcept {
        return denied_reads_;
    }

private:
    struct Entry {
        Bytes material;
        KeyAccess access = KeyAccess::kAny;
        bool zeroised = false;
    };

    static bool allowed(KeyAccess access, KeyRequester requester) noexcept;

    std::map<std::string, Entry> keys_;
    mutable std::uint64_t denied_reads_ = 0;
};

}  // namespace cres::crypto
