#include "crypto/sha256.h"

#include <cstring>

#include "util/error.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define CRES_SHA256_HAS_SHANI 1
#include <immintrin.h>
#else
#define CRES_SHA256_HAS_SHANI 0
#endif

namespace cres::crypto {

namespace {

// The K constants are kept in this exact layout: the SHA-NI backend
// loads them four at a time with unaligned 128-bit loads.
alignas(16) constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
}

// Portable backend: rounds fully unrolled with the working variables
// rotating through registers and the message schedule kept in a 16-word
// circular window, so no 64-entry W array ever touches the stack.
#define CRES_ROTR(x, n) (((x) >> (n)) | ((x) << (32 - (n))))
#define CRES_S0(x) (CRES_ROTR(x, 2) ^ CRES_ROTR(x, 13) ^ CRES_ROTR(x, 22))
#define CRES_S1(x) (CRES_ROTR(x, 6) ^ CRES_ROTR(x, 11) ^ CRES_ROTR(x, 25))
#define CRES_G0(x) (CRES_ROTR(x, 7) ^ CRES_ROTR(x, 18) ^ ((x) >> 3))
#define CRES_G1(x) (CRES_ROTR(x, 17) ^ CRES_ROTR(x, 19) ^ ((x) >> 10))

#define CRES_RND(a, b, c, d, e, f, g, h, i)                              \
    do {                                                                 \
        const std::uint32_t t1 = (h) + CRES_S1(e) +                      \
                                 (((e) & (f)) ^ (~(e) & (g))) +          \
                                 kRoundConstants[i] + w[(i) & 15];       \
        const std::uint32_t t2 =                                         \
            CRES_S0(a) + (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));      \
        (d) += t1;                                                       \
        (h) = t1 + t2;                                                   \
    } while (0)

#define CRES_SCHED(i)                                                       \
    w[(i) & 15] += CRES_G1(w[((i) - 2) & 15]) + w[((i) - 7) & 15] +         \
                   CRES_G0(w[((i) - 15) & 15])

#define CRES_RND8(i)                              \
    CRES_RND(a, b, c, d, e, f, g, h, (i) + 0);    \
    CRES_RND(h, a, b, c, d, e, f, g, (i) + 1);    \
    CRES_RND(g, h, a, b, c, d, e, f, (i) + 2);    \
    CRES_RND(f, g, h, a, b, c, d, e, (i) + 3);    \
    CRES_RND(e, f, g, h, a, b, c, d, (i) + 4);    \
    CRES_RND(d, e, f, g, h, a, b, c, (i) + 5);    \
    CRES_RND(c, d, e, f, g, h, a, b, (i) + 6);    \
    CRES_RND(b, c, d, e, f, g, h, a, (i) + 7)

#define CRES_SCHED8(i)                                                     \
    CRES_SCHED((i) + 0); CRES_SCHED((i) + 1); CRES_SCHED((i) + 2);         \
    CRES_SCHED((i) + 3); CRES_SCHED((i) + 4); CRES_SCHED((i) + 5);         \
    CRES_SCHED((i) + 6); CRES_SCHED((i) + 7)

void compress_blocks_portable(std::uint32_t* state, const std::uint8_t* data,
                              std::size_t blocks) noexcept {
    std::uint32_t w[16];
    while (blocks-- > 0) {
        for (int i = 0; i < 16; ++i) w[i] = load_be32(data + i * 4);

        std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
        std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

        CRES_RND8(0);
        CRES_RND8(8);
        CRES_SCHED8(16); CRES_RND8(16);
        CRES_SCHED8(24); CRES_RND8(24);
        CRES_SCHED8(32); CRES_RND8(32);
        CRES_SCHED8(40); CRES_RND8(40);
        CRES_SCHED8(48); CRES_RND8(48);
        CRES_SCHED8(56); CRES_RND8(56);

        state[0] += a;
        state[1] += b;
        state[2] += c;
        state[3] += d;
        state[4] += e;
        state[5] += f;
        state[6] += g;
        state[7] += h;
        data += 64;
    }
}

#undef CRES_SCHED8
#undef CRES_RND8
#undef CRES_SCHED
#undef CRES_RND
#undef CRES_G1
#undef CRES_G0
#undef CRES_S1
#undef CRES_S0
#undef CRES_ROTR

#if CRES_SHA256_HAS_SHANI

// SHA-NI backend. Follows the canonical two-lane (ABEF/CDGH) round
// structure for the SHA extensions; K constants come from
// kRoundConstants so the same table serves both backends.
__attribute__((target("sha,sse4.1"))) void compress_blocks_shani(
    std::uint32_t* state, const std::uint8_t* data,
    std::size_t blocks) noexcept {
    const __m128i kShuffleMask =
        _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
    const auto kconst = [](int i) {
        return _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(&kRoundConstants[i]));
    };

    __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
    __m128i state1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));

    tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
    state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
    __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);     // ABEF
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);          // CDGH

    while (blocks-- > 0) {
        const __m128i abef_save = state0;
        const __m128i cdgh_save = state1;
        __m128i msg;

        // Rounds 0-3.
        __m128i msg0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
        msg0 = _mm_shuffle_epi8(msg0, kShuffleMask);
        msg = _mm_add_epi32(msg0, kconst(0));
        state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
        msg = _mm_shuffle_epi32(msg, 0x0E);
        state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

        // Rounds 4-7.
        __m128i msg1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
        msg1 = _mm_shuffle_epi8(msg1, kShuffleMask);
        msg = _mm_add_epi32(msg1, kconst(4));
        state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
        msg = _mm_shuffle_epi32(msg, 0x0E);
        state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);

        // Rounds 8-11.
        __m128i msg2 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
        msg2 = _mm_shuffle_epi8(msg2, kShuffleMask);
        msg = _mm_add_epi32(msg2, kconst(8));
        state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
        msg = _mm_shuffle_epi32(msg, 0x0E);
        state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);

        // Rounds 12-15.
        __m128i msg3 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
        msg3 = _mm_shuffle_epi8(msg3, kShuffleMask);

        // One scheduled quad: consumes m0, extends m1, pre-mixes m3.
#define CRES_SHANI_QUAD(m0, m1, m3, k)                        \
        msg = _mm_add_epi32(m0, kconst(k));                   \
        state1 = _mm_sha256rnds2_epu32(state1, state0, msg);  \
        tmp = _mm_alignr_epi8(m0, m3, 4);                     \
        m1 = _mm_add_epi32(m1, tmp);                          \
        m1 = _mm_sha256msg2_epu32(m1, m0);                    \
        msg = _mm_shuffle_epi32(msg, 0x0E);                   \
        state0 = _mm_sha256rnds2_epu32(state0, state1, msg)

        CRES_SHANI_QUAD(msg3, msg0, msg2, 12);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);  // Rounds 12-15.
        CRES_SHANI_QUAD(msg0, msg1, msg3, 16);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);  // Rounds 16-19.
        CRES_SHANI_QUAD(msg1, msg2, msg0, 20);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);  // Rounds 20-23.
        CRES_SHANI_QUAD(msg2, msg3, msg1, 24);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);  // Rounds 24-27.
        CRES_SHANI_QUAD(msg3, msg0, msg2, 28);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);  // Rounds 28-31.
        CRES_SHANI_QUAD(msg0, msg1, msg3, 32);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);  // Rounds 32-35.
        CRES_SHANI_QUAD(msg1, msg2, msg0, 36);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);  // Rounds 36-39.
        CRES_SHANI_QUAD(msg2, msg3, msg1, 40);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);  // Rounds 40-43.
        CRES_SHANI_QUAD(msg3, msg0, msg2, 44);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);  // Rounds 44-47.
        CRES_SHANI_QUAD(msg0, msg1, msg3, 48);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);  // Rounds 48-51.
        CRES_SHANI_QUAD(msg1, msg2, msg0, 52);    // Rounds 52-55.
        CRES_SHANI_QUAD(msg2, msg3, msg1, 56);    // Rounds 56-59.

#undef CRES_SHANI_QUAD

        // Rounds 60-63.
        msg = _mm_add_epi32(msg3, kconst(60));
        state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
        msg = _mm_shuffle_epi32(msg, 0x0E);
        state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);
        data += 64;
    }

    tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
    state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
    state0 = _mm_blend_epi16(tmp, state1, 0xF0);       // DCBA
    state1 = _mm_alignr_epi8(state1, tmp, 8);          // HGFE

    _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

#endif  // CRES_SHA256_HAS_SHANI

using CompressFn = void (*)(std::uint32_t*, const std::uint8_t*,
                            std::size_t) noexcept;

struct Backend {
    CompressFn fn;
    const char* name;
};

Backend select_backend() noexcept {
#if CRES_SHA256_HAS_SHANI
    if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1")) {
        return {&compress_blocks_shani, "sha-ni"};
    }
#endif
    return {&compress_blocks_portable, "portable"};
}

const Backend kBackend = select_backend();

}  // namespace

const char* sha256_backend() noexcept {
    return kBackend.name;
}

Bytes hash_to_bytes(const Hash256& h) {
    return Bytes(h.begin(), h.end());
}

Hash256 hash_from_bytes(BytesView data) {
    if (data.size() != 32) {
        throw CryptoError("hash_from_bytes: expected 32 bytes");
    }
    Hash256 h;
    std::copy(data.begin(), data.end(), h.begin());
    return h;
}

Sha256::Sha256() noexcept : state_(kInitialState), buffer_{} {}

void Sha256::reset() noexcept {
    state_ = kInitialState;
    total_len_ = 0;
    buffer_len_ = 0;
}

Sha256::State Sha256::save_state() const noexcept {
    State s;
    s.h = state_;
    s.buffer = buffer_;
    s.total_len = total_len_;
    s.buffer_len = buffer_len_;
    return s;
}

void Sha256::restore_state(const State& state) noexcept {
    state_ = state.h;
    buffer_ = state.buffer;
    total_len_ = state.total_len;
    buffer_len_ = state.buffer_len;
}

Sha256& Sha256::update(BytesView data) noexcept {
    total_len_ += data.size();
    std::size_t offset = 0;

    if (buffer_len_ > 0) {
        const std::size_t take =
            std::min<std::size_t>(64 - buffer_len_, data.size());
        std::copy(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(take),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(buffer_len_));
        buffer_len_ += take;
        offset = take;
        if (buffer_len_ == 64) {
            kBackend.fn(state_.data(), buffer_.data(), 1);
            buffer_len_ = 0;
        }
    }

    // Multi-block fast path: every whole block left in the input is
    // compressed in one backend call, straight from the caller's buffer.
    const std::size_t whole_blocks = (data.size() - offset) / 64;
    if (whole_blocks > 0) {
        kBackend.fn(state_.data(), data.data() + offset, whole_blocks);
        offset += whole_blocks * 64;
    }

    if (offset < data.size()) {
        const std::size_t rest = data.size() - offset;
        std::copy(data.begin() + static_cast<std::ptrdiff_t>(offset),
                  data.end(), buffer_.begin());
        buffer_len_ = rest;
    }
    return *this;
}

Hash256 Sha256::finish() noexcept {
    const std::uint64_t bit_len = total_len_ * 8;

    // Pad in place: 0x80, zeros to 56 mod 64, then the 64-bit length.
    buffer_[buffer_len_++] = 0x80;
    if (buffer_len_ > 56) {
        std::memset(buffer_.data() + buffer_len_, 0, 64 - buffer_len_);
        kBackend.fn(state_.data(), buffer_.data(), 1);
        buffer_len_ = 0;
    }
    std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
    for (int i = 0; i < 8; ++i) {
        buffer_[56 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
    kBackend.fn(state_.data(), buffer_.data(), 1);
    buffer_len_ = 0;

    Hash256 digest;
    for (int i = 0; i < 8; ++i) {
        digest[static_cast<std::size_t>(i) * 4] =
            static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
        digest[static_cast<std::size_t>(i) * 4 + 1] =
            static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
        digest[static_cast<std::size_t>(i) * 4 + 2] =
            static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
        digest[static_cast<std::size_t>(i) * 4 + 3] =
            static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
    }
    return digest;
}

Hash256 sha256(BytesView data) noexcept {
    Sha256 h;
    h.update(data);
    return h.finish();
}

Hash256 sha256_pair(BytesView a, BytesView b) noexcept {
    Sha256 h;
    h.update(a);
    h.update(b);
    return h.finish();
}

}  // namespace cres::crypto
