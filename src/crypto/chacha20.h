// ChaCha20 stream cipher (RFC 8439) and a ChaCha20-based deterministic
// random bit generator used as the platform CSPRNG (TRNG peripheral
// output is conditioned through it).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace cres::crypto {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

/// Produces the 64-byte ChaCha20 block for (key, counter, nonce).
std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            std::uint32_t counter,
                                            const ChaChaNonce& nonce) noexcept;

/// XORs data with the ChaCha20 keystream (encrypt == decrypt).
Bytes chacha20_crypt(const ChaChaKey& key, const ChaChaNonce& nonce,
                     std::uint32_t initial_counter, BytesView data);

/// Deterministic random bit generator with forward secrecy: after each
/// request the key is ratcheted so past output cannot be reconstructed
/// from a captured state (relevant to key-zeroisation countermeasures).
class ChaChaDrbg {
public:
    /// Seeds from arbitrary entropy (hashed to the working key).
    explicit ChaChaDrbg(BytesView seed);

    /// Mixes additional entropy into the state.
    void reseed(BytesView entropy);

    /// Generates n random bytes and ratchets the key.
    Bytes generate(std::size_t n);

    /// Convenience: fills a fixed-size array.
    template <std::size_t N>
    std::array<std::uint8_t, N> generate_array() {
        const Bytes b = generate(N);
        std::array<std::uint8_t, N> out;
        std::copy(b.begin(), b.end(), out.begin());
        return out;
    }

private:
    void ratchet();

    ChaChaKey key_;
    std::uint64_t reseed_counter_ = 0;
};

}  // namespace cres::crypto
