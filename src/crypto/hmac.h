// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). HMAC underpins the
// symmetric attestation protocol, authenticated M2M channels and the
// evidence-log sealing; HKDF derives per-purpose keys from device roots.
//
// Long-lived keys should use the keyed HmacSha256 object: it derives the
// ipad/opad midstates once per key, so each subsequent tag costs two
// fewer compressions than the one-shot hmac_sha256 (which re-derives
// both pads on every call).
#pragma once

#include <string_view>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace cres::crypto {

/// Computes HMAC-SHA256(key, message).
Hash256 hmac_sha256(BytesView key, BytesView message) noexcept;

/// Verifies a tag in constant time.
bool hmac_verify(BytesView key, BytesView message, BytesView tag) noexcept;

/// Reusable keyed HMAC-SHA256. Precomputes the inner (ipad) and outer
/// (opad) SHA-256 midstates at construction; tag() then runs from the
/// cached midstates. Produces tags bit-identical to hmac_sha256().
class HmacSha256 {
public:
    /// Derives midstates for `key` (any length; >64-byte keys are
    /// hashed first, per RFC 2104).
    explicit HmacSha256(BytesView key) noexcept;

    /// Re-keys the object in place.
    void set_key(BytesView key) noexcept;

    /// Computes HMAC(key, message) from the cached midstates.
    [[nodiscard]] Hash256 tag(BytesView message) const noexcept;

    /// HMAC over the concatenation of two buffers (no copies).
    [[nodiscard]] Hash256 tag_pair(BytesView a, BytesView b) const noexcept;

    /// Verifies a tag in constant time.
    [[nodiscard]] bool verify(BytesView message, BytesView tag) const noexcept;

private:
    Sha256::State inner_;  ///< Midstate after absorbing the ipad block.
    Sha256::State outer_;  ///< Midstate after absorbing the opad block.
};

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Hash256 hkdf_extract(BytesView salt, BytesView ikm) noexcept;

/// HKDF-Expand: derives `length` bytes from PRK and an info label.
/// Throws CryptoError when length > 255 * 32.
Bytes hkdf_expand(const Hash256& prk, BytesView info, std::size_t length);

/// One-call HKDF: extract then expand with a string label.
Bytes hkdf(BytesView ikm, BytesView salt, std::string_view label,
           std::size_t length);

}  // namespace cres::crypto
