// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). HMAC underpins the
// symmetric attestation protocol, authenticated M2M channels and the
// evidence-log sealing; HKDF derives per-purpose keys from device roots.
#pragma once

#include <string_view>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace cres::crypto {

/// Computes HMAC-SHA256(key, message).
Hash256 hmac_sha256(BytesView key, BytesView message) noexcept;

/// Verifies a tag in constant time.
bool hmac_verify(BytesView key, BytesView message, BytesView tag) noexcept;

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Hash256 hkdf_extract(BytesView salt, BytesView ikm) noexcept;

/// HKDF-Expand: derives `length` bytes from PRK and an info label.
/// Throws CryptoError when length > 255 * 32.
Bytes hkdf_expand(const Hash256& prk, BytesView info, std::size_t length);

/// One-call HKDF: extract then expand with a string label.
Bytes hkdf(BytesView ikm, BytesView salt, std::string_view label,
           std::size_t length);

}  // namespace cres::crypto
