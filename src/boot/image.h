// Firmware image format for the secure-boot chain.
//
// An image carries a header (name, security version, load address,
// entry point), a payload (machine code + data) and a Merkle signature
// by the vendor key over the header+payload digest. The security
// version feeds anti-rollback (Section IV of the paper attributes the
// TrustZone downgrade attack [16] to re-using verification material
// across versions).
#pragma once

#include <cstdint>
#include <string>

#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "mem/bus.h"
#include "util/bytes.h"

namespace cres::boot {

struct FirmwareImage {
    static constexpr std::uint32_t kMagic = 0x43524657;  // "CRFW"

    std::string name;
    std::uint32_t security_version = 0;
    mem::Addr load_addr = 0;
    mem::Addr entry_point = 0;
    Bytes payload;
    Bytes signature;  ///< Serialized MerkleSignature; empty when unsigned.

    /// Digest covering everything except the signature itself.
    [[nodiscard]] crypto::Hash256 digest() const;

    /// Full wire format (header + payload + signature).
    [[nodiscard]] Bytes serialize() const;

    /// Parses a wire-format image. Throws BootError on malformed input.
    static FirmwareImage parse(BytesView data);
};

/// Signs images with the vendor's (stateful) Merkle key.
class ImageSigner {
public:
    explicit ImageSigner(crypto::MerkleSigner& signer) : signer_(signer) {}

    /// Fills in image.signature. Throws CryptoError when the vendor key
    /// is exhausted.
    void sign(FirmwareImage& image);

private:
    crypto::MerkleSigner& signer_;
};

/// Verifies an image signature against the vendor public key.
[[nodiscard]] bool verify_image(const FirmwareImage& image,
                                const crypto::MerklePublicKey& vendor_pk);

}  // namespace cres::boot
