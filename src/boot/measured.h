// Measured boot: TPM-style Platform Configuration Registers. Every
// boot stage extends a PCR with the digest of what it is about to run;
// attestation quotes the PCR values so a verifier can detect any
// deviation from the provisioned software stack.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace cres::boot {

class PcrBank {
public:
    static constexpr std::size_t kPcrCount = 8;

    /// Conventional PCR allocation.
    static constexpr std::size_t kPcrBootRom = 0;
    static constexpr std::size_t kPcrFirmware = 1;
    static constexpr std::size_t kPcrConfig = 2;
    static constexpr std::size_t kPcrApplication = 3;

    PcrBank();

    /// pcr[i] = SHA256(pcr[i] || measurement). Throws Error on bad index.
    void extend(std::size_t index, const crypto::Hash256& measurement);

    [[nodiscard]] const crypto::Hash256& value(std::size_t index) const;

    /// Log of (index, measurement) pairs in extension order.
    struct LogEntry {
        std::size_t index;
        crypto::Hash256 measurement;
        std::string description;
    };
    void extend(std::size_t index, const crypto::Hash256& measurement,
                std::string description);
    [[nodiscard]] const std::vector<LogEntry>& log() const noexcept {
        return log_;
    }

    /// Digest binding all PCR values together (what a quote signs).
    [[nodiscard]] crypto::Hash256 composite() const;

    /// Resets to the power-on state (all zeros).
    void reset();

private:
    std::array<crypto::Hash256, kPcrCount> pcrs_;
    std::vector<LogEntry> log_;
    /// One hasher reused (via reset()) across extends and composites.
    crypto::Sha256 hasher_;
};

/// Replays an event log against a fresh bank; returns the composite.
/// Used by verifiers to check a quote against an expected log.
crypto::Hash256 replay_composite(const std::vector<PcrBank::LogEntry>& log);

}  // namespace cres::boot
