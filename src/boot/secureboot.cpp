#include "boot/secureboot.h"

#include <sstream>

#include "util/error.h"

namespace cres::boot {

std::string boot_status_name(BootStatus status) {
    switch (status) {
        case BootStatus::kSuccess: return "success";
        case BootStatus::kBadSignature: return "bad-signature";
        case BootStatus::kRollbackRejected: return "rollback-rejected";
        case BootStatus::kLoadFault: return "load-fault";
        case BootStatus::kPolicyRejected: return "policy-rejected";
    }
    return "?";
}

std::string_view admission_mode_name(AdmissionMode mode) noexcept {
    switch (mode) {
        case AdmissionMode::kOff: return "off";
        case AdmissionMode::kWarn: return "warn";
        case AdmissionMode::kDeny: return "deny";
    }
    return "?";
}

std::string BootReport::summary() const {
    std::ostringstream os;
    os << (success ? "BOOT OK" : "BOOT FAILED");
    for (const auto& stage : stages) {
        os << " | " << stage.image_name << " v" << stage.security_version
           << ": " << boot_status_name(stage.status);
    }
    return os.str();
}

BootRom::BootRom(crypto::MerklePublicKey vendor_pk,
                 crypto::MonotonicCounterBank& counters,
                 std::string counter_name)
    : vendor_pk_(std::move(vendor_pk)),
      counters_(counters),
      counter_name_(std::move(counter_name)) {}

StageResult BootRom::boot_stage(const FirmwareImage& image, mem::Ram& memory,
                                mem::Addr memory_base, PcrBank& pcrs,
                                std::uint64_t& cost_cycles) {
    StageResult result;
    result.image_name = image.name;
    result.security_version = image.security_version;

    // Cost model: hashing dominates; ~1 cycle/byte for the digest plus a
    // fixed signature-verification cost (hash chains over the WOTS sig).
    cost_cycles += image.payload.size() + 67 * 15 * 8;

    if (!verify_image(image, vendor_pk_)) {
        result.status = BootStatus::kBadSignature;
        return result;
    }

    if (strict_rollback_) {
        const std::uint64_t floor = counters_.value(counter_name_);
        if (image.security_version < floor) {
            result.status = BootStatus::kRollbackRejected;
            return result;
        }
    }

    if (admission_gate_ != nullptr) {
        // Static analysis scales with code size: a few model cycles per
        // instruction word for decode + CFG + passes.
        cost_cycles += (image.payload.size() / 4) * 3;
        if (!admission_gate_->admit(image).allow) {
            result.status = BootStatus::kPolicyRejected;
            return result;
        }
    }

    // Measure before executing (TCG "measure then load").
    pcrs.extend(PcrBank::kPcrFirmware, image.digest(), image.name);

    if (image.load_addr < memory_base ||
        image.load_addr - memory_base + image.payload.size() > memory.size()) {
        result.status = BootStatus::kLoadFault;
        return result;
    }
    memory.load(image.load_addr - memory_base, image.payload);

    if (strict_rollback_) {
        // Roll-forward commit: later images can never be older.
        (void)counters_.advance(counter_name_, image.security_version);
    }
    return result;
}

BootReport BootRom::boot_chain(const std::vector<FirmwareImage>& chain,
                               mem::Ram& memory, mem::Addr memory_base,
                               PcrBank& pcrs) {
    if (chain.empty()) {
        throw BootError("BootRom::boot_chain: empty chain");
    }
    BootReport report;
    for (const auto& image : chain) {
        StageResult stage = boot_stage(image, memory, memory_base, pcrs,
                                       report.verification_cost_cycles);
        const bool ok = stage.status == BootStatus::kSuccess;
        report.stages.push_back(std::move(stage));
        if (!ok) {
            report.success = false;
            return report;
        }
    }
    report.success = true;
    report.entry_point = chain.back().entry_point;
    return report;
}

}  // namespace cres::boot
