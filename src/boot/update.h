// A/B firmware update agent: staged install into the inactive slot,
// activation, roll-forward commit and roll-back to the last-known-good
// slot — the "Recovery Method: roll-back and roll-forward" requirement
// in Table I.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>

#include "boot/admission.h"
#include "boot/image.h"
#include "crypto/merkle.h"
#include "crypto/monotonic.h"

namespace cres::boot {

enum class UpdateStatus : std::uint8_t {
    kOk,
    kBadImage,
    kBadSignature,
    kVersionRegression,
    kPolicyRejected,  ///< Static analysis denied admission.
};

std::string update_status_name(UpdateStatus status);

class UpdateAgent {
public:
    UpdateAgent(crypto::MerklePublicKey vendor_pk,
                crypto::MonotonicCounterBank& counters,
                std::string counter_name = "fw_version");

    /// Installs wire-format image bytes into the inactive slot after
    /// verifying signature and anti-rollback.
    UpdateStatus install(BytesView image_bytes);

    /// Optional static-analysis admission gate, consulted after the
    /// signature and version checks. Not owned; nullptr = off.
    void set_admission_gate(ImageAdmissionGate* gate) noexcept {
        admission_gate_ = gate;
    }
    [[nodiscard]] ImageAdmissionGate* admission_gate() const noexcept {
        return admission_gate_;
    }

    /// Observes every rejected install: (status, image name, offered
    /// security version, current anti-rollback floor). The name and
    /// versions are zero/empty for images that failed to parse. Lets
    /// the platform surface rollback attempts as monitor events without
    /// polling rejected_installs().
    using RejectObserver =
        std::function<void(UpdateStatus status, const std::string& name,
                           std::uint64_t offered, std::uint64_t floor)>;
    void set_reject_observer(RejectObserver observer) {
        reject_observer_ = std::move(observer);
    }

    /// Swaps active/inactive. The new image runs provisionally until
    /// commit() — reboot_failed() rolls back instead.
    /// Returns false when the inactive slot is empty.
    bool activate();

    /// Marks the active image good and advances the rollback floor.
    void commit();

    /// Models a failed boot of the provisional image: reverts to the
    /// previous slot. Returns false when no fallback exists.
    bool reboot_failed();

    [[nodiscard]] std::optional<FirmwareImage> active_image() const;
    [[nodiscard]] std::optional<FirmwareImage> inactive_image() const;
    [[nodiscard]] bool provisional() const noexcept { return provisional_; }

    /// Telemetry for the monitors / evidence log.
    [[nodiscard]] std::uint32_t rejected_installs() const noexcept {
        return rejected_;
    }
    [[nodiscard]] std::uint32_t rollbacks() const noexcept {
        return rollbacks_;
    }

private:
    struct Slot {
        std::optional<FirmwareImage> image;
    };

    crypto::MerklePublicKey vendor_pk_;
    crypto::MonotonicCounterBank& counters_;
    std::string counter_name_;
    std::array<Slot, 2> slots_;
    std::size_t active_ = 0;
    bool provisional_ = false;
    std::uint32_t rejected_ = 0;
    std::uint32_t rollbacks_ = 0;
    ImageAdmissionGate* admission_gate_ = nullptr;
    RejectObserver reject_observer_;
};

}  // namespace cres::boot
