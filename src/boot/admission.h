// Pre-execution admission interface for the secure-boot chain and the
// A/B update agent: after signature and anti-rollback checks pass, an
// optional gate judges what the image's *code would do* (the static
// firmware verifier in src/analysis implements it). Kept as an
// abstract interface so cres_boot does not depend on the analyzer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cres::boot {

struct FirmwareImage;

enum class AdmissionMode : std::uint8_t {
    kOff,   ///< No static analysis.
    kWarn,  ///< Analyze and report; never block admission.
    kDeny,  ///< Reject images whose analysis finds policy violations.
};

std::string_view admission_mode_name(AdmissionMode mode) noexcept;

/// Outcome of one admission decision.
struct AdmissionVerdict {
    bool allow = true;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::string reason;  ///< Findings digest; empty when clean.
};

class ImageAdmissionGate {
public:
    virtual ~ImageAdmissionGate() = default;
    virtual AdmissionVerdict admit(const FirmwareImage& image) = 0;
};

}  // namespace cres::boot
