#include "boot/measured.h"

#include "util/error.h"

namespace cres::boot {

PcrBank::PcrBank() {
    reset();
}

void PcrBank::reset() {
    for (auto& pcr : pcrs_) pcr.fill(0);
    log_.clear();
}

void PcrBank::extend(std::size_t index, const crypto::Hash256& measurement) {
    extend(index, measurement, "");
}

void PcrBank::extend(std::size_t index, const crypto::Hash256& measurement,
                     std::string description) {
    if (index >= kPcrCount) {
        throw Error("PcrBank::extend: bad index");
    }
    hasher_.reset();
    hasher_.update(pcrs_[index]).update(measurement);
    pcrs_[index] = hasher_.finish();
    log_.push_back(LogEntry{index, measurement, std::move(description)});
}

const crypto::Hash256& PcrBank::value(std::size_t index) const {
    if (index >= kPcrCount) {
        throw Error("PcrBank::value: bad index");
    }
    return pcrs_[index];
}

crypto::Hash256 PcrBank::composite() const {
    crypto::Sha256 h;
    for (const auto& pcr : pcrs_) h.update(pcr);
    return h.finish();
}

crypto::Hash256 replay_composite(const std::vector<PcrBank::LogEntry>& log) {
    PcrBank bank;
    for (const auto& entry : log) {
        bank.extend(entry.index, entry.measurement);
    }
    return bank.composite();
}

}  // namespace cres::boot
