// Secure boot ROM: the immutable first stage of the chain of trust.
//
// Verifies each image's vendor signature, enforces anti-rollback via
// monotonic counters, measures every stage into the PCR bank, loads the
// payload into memory and reports the entry point of the final stage.
// A `strict_rollback` switch exists so experiments can reproduce the
// vulnerable configuration of [16] (signature checked, version not).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "boot/admission.h"
#include "boot/image.h"
#include "boot/measured.h"
#include "crypto/merkle.h"
#include "crypto/monotonic.h"
#include "mem/bus.h"
#include "mem/ram.h"

namespace cres::boot {

enum class BootStatus : std::uint8_t {
    kSuccess,
    kBadSignature,
    kRollbackRejected,
    kLoadFault,
    kPolicyRejected,  ///< Static analysis denied admission.
};

std::string boot_status_name(BootStatus status);

/// Per-stage outcome.
struct StageResult {
    std::string image_name;
    BootStatus status = BootStatus::kSuccess;
    std::uint32_t security_version = 0;
};

/// Chain outcome.
struct BootReport {
    bool success = false;
    std::vector<StageResult> stages;
    mem::Addr entry_point = 0;
    /// Cost model: cycles spent hashing/verifying (drives boot benches).
    std::uint64_t verification_cost_cycles = 0;

    [[nodiscard]] std::string summary() const;
};

class BootRom {
public:
    /// `counter_name` keys the anti-rollback counter in `counters`.
    BootRom(crypto::MerklePublicKey vendor_pk,
            crypto::MonotonicCounterBank& counters,
            std::string counter_name = "fw_version");

    /// Disables anti-rollback (the vulnerable configuration of [16]).
    void set_strict_rollback(bool strict) noexcept { strict_rollback_ = strict; }
    [[nodiscard]] bool strict_rollback() const noexcept {
        return strict_rollback_;
    }

    /// Optional static-analysis admission gate, consulted after the
    /// signature and anti-rollback checks. Not owned; nullptr = off.
    void set_admission_gate(ImageAdmissionGate* gate) noexcept {
        admission_gate_ = gate;
    }
    [[nodiscard]] ImageAdmissionGate* admission_gate() const noexcept {
        return admission_gate_;
    }

    /// Verifies, measures and loads one image. On success, advances the
    /// anti-rollback counter to the image's version ("roll-forward").
    StageResult boot_stage(const FirmwareImage& image, mem::Ram& memory,
                           mem::Addr memory_base, PcrBank& pcrs,
                           std::uint64_t& cost_cycles);

    /// Boots a multi-stage chain in order; stops at the first failure.
    BootReport boot_chain(const std::vector<FirmwareImage>& chain,
                          mem::Ram& memory, mem::Addr memory_base,
                          PcrBank& pcrs);

private:
    crypto::MerklePublicKey vendor_pk_;
    crypto::MonotonicCounterBank& counters_;
    std::string counter_name_;
    bool strict_rollback_ = true;
    ImageAdmissionGate* admission_gate_ = nullptr;
};

}  // namespace cres::boot
