#include "boot/image.h"

#include "util/error.h"
#include "util/serial.h"

namespace cres::boot {

crypto::Hash256 FirmwareImage::digest() const {
    BinaryWriter w;
    w.u32(kMagic);
    w.str(name);
    w.u32(security_version);
    w.u32(load_addr);
    w.u32(entry_point);
    w.blob(payload);
    return crypto::sha256(w.data());
}

Bytes FirmwareImage::serialize() const {
    BinaryWriter w;
    w.u32(kMagic);
    w.str(name);
    w.u32(security_version);
    w.u32(load_addr);
    w.u32(entry_point);
    w.blob(payload);
    w.blob(signature);
    return w.take();
}

FirmwareImage FirmwareImage::parse(BytesView data) {
    try {
        BinaryReader r(data);
        if (r.u32() != kMagic) {
            throw BootError("FirmwareImage: bad magic");
        }
        FirmwareImage image;
        image.name = r.str();
        image.security_version = r.u32();
        image.load_addr = r.u32();
        image.entry_point = r.u32();
        image.payload = r.blob();
        image.signature = r.blob();
        if (!r.done()) {
            // Trailing bytes are not covered by the digest: accepting
            // them would let one signed image have many wire forms.
            throw BootError("FirmwareImage: trailing bytes after image");
        }
        return image;
    } catch (const BootError&) {
        throw;
    } catch (const Error& e) {
        throw BootError(std::string("FirmwareImage: truncated image: ") +
                        e.what());
    }
}

void ImageSigner::sign(FirmwareImage& image) {
    const crypto::Hash256 d = image.digest();
    image.signature = signer_.sign(d).serialize();
}

bool verify_image(const FirmwareImage& image,
                  const crypto::MerklePublicKey& vendor_pk) {
    if (image.signature.empty()) return false;
    try {
        const auto sig = crypto::MerkleSignature::deserialize(image.signature);
        return crypto::merkle_verify(sig, image.digest(), vendor_pk);
    } catch (const Error&) {
        return false;
    }
}

}  // namespace cres::boot
