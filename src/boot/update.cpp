#include "boot/update.h"

#include "util/error.h"

namespace cres::boot {

std::string update_status_name(UpdateStatus status) {
    switch (status) {
        case UpdateStatus::kOk: return "ok";
        case UpdateStatus::kBadImage: return "bad-image";
        case UpdateStatus::kBadSignature: return "bad-signature";
        case UpdateStatus::kVersionRegression: return "version-regression";
        case UpdateStatus::kPolicyRejected: return "policy-rejected";
    }
    return "?";
}

UpdateAgent::UpdateAgent(crypto::MerklePublicKey vendor_pk,
                         crypto::MonotonicCounterBank& counters,
                         std::string counter_name)
    : vendor_pk_(std::move(vendor_pk)),
      counters_(counters),
      counter_name_(std::move(counter_name)) {}

UpdateStatus UpdateAgent::install(BytesView image_bytes) {
    const auto reject = [this](UpdateStatus status,
                               const FirmwareImage* image) {
        ++rejected_;
        if (reject_observer_) {
            reject_observer_(
                status, image != nullptr ? image->name : std::string(),
                image != nullptr ? image->security_version : 0,
                counters_.value(counter_name_));
        }
        return status;
    };
    FirmwareImage image;
    try {
        image = FirmwareImage::parse(image_bytes);
    } catch (const BootError&) {
        return reject(UpdateStatus::kBadImage, nullptr);
    }
    if (!verify_image(image, vendor_pk_)) {
        return reject(UpdateStatus::kBadSignature, &image);
    }
    if (image.security_version < counters_.value(counter_name_)) {
        return reject(UpdateStatus::kVersionRegression, &image);
    }
    if (admission_gate_ != nullptr && !admission_gate_->admit(image).allow) {
        return reject(UpdateStatus::kPolicyRejected, &image);
    }
    slots_[1 - active_].image = std::move(image);
    return UpdateStatus::kOk;
}

bool UpdateAgent::activate() {
    if (!slots_[1 - active_].image.has_value()) return false;
    active_ = 1 - active_;
    provisional_ = true;
    return true;
}

void UpdateAgent::commit() {
    provisional_ = false;
    if (slots_[active_].image.has_value()) {
        (void)counters_.advance(counter_name_,
                                slots_[active_].image->security_version);
    }
}

bool UpdateAgent::reboot_failed() {
    if (!provisional_) return false;
    if (!slots_[1 - active_].image.has_value()) return false;
    active_ = 1 - active_;
    provisional_ = false;
    ++rollbacks_;
    return true;
}

std::optional<FirmwareImage> UpdateAgent::active_image() const {
    return slots_[active_].image;
}

std::optional<FirmwareImage> UpdateAgent::inactive_image() const {
    return slots_[1 - active_].image;
}

}  // namespace cres::boot
