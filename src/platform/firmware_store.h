// Fleet-shared firmware byte store.
//
// Companion to the TranslationCache: where that deduplicates the
// *derived* superblock translation of an image, this deduplicates the
// image bytes themselves. Fleet nodes running the same measured
// firmware hand their app RAM one immutable shared copy of the code
// (mem::Ram::set_backing) instead of each holding a private one; a
// guest write promotes only the touched 4 KiB page to a private copy.
// A million-node estate running one control loop therefore stores the
// firmware once, not a million times — the memory half of the E13d
// bytes-per-node budget (docs/BENCHMARKS.md).
//
// Only immutable bytes are shared. Every node keeps private execution
// state, so the fleet's bit-identical-at-any-thread-count guarantee is
// unaffected (docs/FLEET.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "crypto/sha256.h"
#include "mem/bus.h"
#include "util/bytes.h"

namespace cres::platform {

class FirmwareStore {
public:
    /// Returns the canonical shared copy of `code` for `key`, adding it
    /// on the first request. Thread-safe: fleet workers enrol and
    /// reboot nodes concurrently.
    std::shared_ptr<const Bytes> get_or_add(const crypto::Hash256& key,
                                            BytesView code);

    /// Content key for images outside the secure-boot chain (debug
    /// loads): hash over the code bytes and their load address — the
    /// full identity of "these bytes at this place".
    [[nodiscard]] static crypto::Hash256 key_for(BytesView code,
                                                 mem::Addr origin);

    [[nodiscard]] std::uint64_t hits() const;
    [[nodiscard]] std::uint64_t misses() const;
    [[nodiscard]] std::size_t size() const;
    /// Bytes held by the store itself (what the whole fleet shares).
    [[nodiscard]] std::size_t stored_bytes() const;

private:
    mutable std::mutex mutex_;
    std::map<crypto::Hash256, std::shared_ptr<const Bytes>> images_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace cres::platform
