// Fleet correlation engine — the fleet tier of the device→fleet
// monitor hierarchy. It consumes the per-device SIEM records the Fleet
// drains in device-index order and detects cross-device campaigns that
// are invisible to any single device's SSM:
//
//   * Worm propagation: forged channel frames carry the claimed origin
//     in their sequence field; each (origin -> victim) advisory becomes
//     an edge in an infection graph, and a connected component growing
//     past `worm_min_devices` is a campaign — even though every single
//     device only ever saw a sub-streak advisory.
//
//   * Coordinated M2M replay: the same replayed sequence fingerprint
//     surfacing on >= `replay_min_devices` distinct devices inside a
//     window. One stale frame per device is advisory noise; the same
//     fingerprint fleet-wide is an orchestrated attack.
//
//   * Staggered downgrade: rolling waves of anti-rollback rejections
//     (version-regression installs) across >= `downgrade_min_devices`
//     devices inside a window — an estate-wide downgrade attempt
//     paced to stay under every per-device threshold.
//
// Detection is pure serial reduction over the drained stream, so the
// verdicts are bit-identical at any worker_threads setting. Detected
// campaigns land in the existing observability vocabulary: a fleet
// SpanTracer (detect latency = first evidence -> detection), fleet
// metrics counters/histograms, the fleet flight recorder, one SIEM
// campaign record, and a sealed fleet postmortem bundle.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/siem.h"
#include "obs/span.h"
#include "sim/simulator.h"

namespace cres::platform {

enum class CampaignKind : std::uint8_t {
    kWorm = 0,
    kCoordinatedReplay,
    kStaggeredDowngrade,
};
constexpr std::size_t kCampaignKindCount = 3;

[[nodiscard]] std::string_view campaign_kind_name(CampaignKind kind) noexcept;

struct FleetMonitorConfig {
    std::size_t device_count = 0;
    /// Infection-graph component size that flags a worm.
    std::size_t worm_min_devices = 8;
    /// Distinct devices reporting one replay fingerprint in-window.
    std::size_t replay_min_devices = 8;
    sim::Cycle replay_window = 60000;
    /// Distinct devices rejecting a downgrade install in-window.
    std::size_t downgrade_min_devices = 8;
    sim::Cycle downgrade_window = 200000;
};

/// One detected fleet-level campaign.
struct CampaignIncident {
    CampaignKind kind = CampaignKind::kWorm;
    std::uint64_t id = 0;
    std::uint64_t first_at = 0;     ///< Earliest contributing evidence.
    std::uint64_t detected_at = 0;  ///< Record that crossed the bar.
    std::uint64_t device_total = 0;
    /// Contributing device indices (ascending, capped at kDeviceSample
    /// so a 50k-device worm doesn't balloon the incident record).
    static constexpr std::size_t kDeviceSample = 64;
    std::vector<std::uint32_t> devices;
    /// Campaign-specific scalar: worm component root, replay sequence,
    /// downgrade offered version.
    std::uint64_t fingerprint = 0;
    std::string detail;
};

/// One reconstructed infection edge (a trace-carrying worm advisory).
struct ProvenanceEdge {
    std::uint32_t parent = 0;  ///< Claimed sender (sequence field).
    std::uint32_t child = 0;   ///< Victim that reported the frame.
    std::uint32_t hop = 0;     ///< Child's depth below patient zero.
    std::uint64_t span = 0;         ///< Infecting frame's span id.
    std::uint64_t parent_span = 0;  ///< Span that caused the infection.
    std::uint64_t at = 0;           ///< Victim's observation cycle.
};

/// Exact infection DAG reconstructed from propagated trace contexts —
/// the replacement for the blind union-find component on traced
/// estates: who patient zero was, who infected whom, and how deep the
/// propagation tree ran.
struct ProvenanceReport {
    bool traced = false;  ///< At least one traced worm edge seen.
    bool exact = false;   ///< Every in-range worm edge carried a trace.
    std::uint32_t patient_zero = 0;  ///< Trace origin (chain root).
    std::uint32_t max_hop = 0;       ///< Deepest reconstructed hop.
    std::vector<ProvenanceEdge> edges;  ///< First-per-victim, in order.
};

class FleetMonitor {
public:
    /// `registry`/`recorder` are the fleet-level instances (owned by
    /// the Fleet, merged/exported after the per-device artefacts).
    FleetMonitor(FleetMonitorConfig config, obs::MetricsRegistry& registry,
                 obs::FlightRecorder& recorder);

    /// Feeds one drained per-device record. Called serially in device-
    /// index order by Fleet::drain_siem().
    void observe(std::uint32_t device_index, const obs::SiemEvent& event);

    /// Appends one SIEM campaign record per newly detected campaign to
    /// the export stream (called at the end of each drain), then
    /// snapshots the stream chain head into the campaign's postmortem
    /// bundle.
    void flush(obs::SiemStream& stream);

    [[nodiscard]] const std::vector<CampaignIncident>& campaigns()
        const noexcept {
        return campaigns_;
    }
    [[nodiscard]] const std::vector<obs::PostmortemBundle>& postmortems()
        const noexcept {
        return postmortems_;
    }
    [[nodiscard]] const obs::SpanTracer& spans() const noexcept {
        return spans_;
    }

    /// The reconstructed infection DAG (empty/untraced when no worm
    /// advisory carried a trace context).
    [[nodiscard]] const ProvenanceReport& provenance() const noexcept {
        return provenance_;
    }

    /// Compact propagation-tree rendering: "p->c,p->c,..." sorted by
    /// parent then child, capped at `max_edges` (",..." suffix when
    /// truncated). Empty when untraced.
    [[nodiscard]] std::string propagation_tree(
        std::size_t max_edges = CampaignIncident::kDeviceSample) const;

    /// The provenance report as a JSON object (patient zero, depth,
    /// edge list capped at kDeviceSample) — embedded verbatim into
    /// sealed worm-campaign postmortem bundles.
    [[nodiscard]] std::string provenance_json() const;

private:
    void observe_worm(std::uint32_t victim, const obs::SiemEvent& event);
    void observe_replay(std::uint32_t device, const obs::SiemEvent& event);
    void observe_downgrade(std::uint32_t device, const obs::SiemEvent& event);
    /// Registers the campaign, emits spans/metrics/recorder records and
    /// stages the SIEM record for the next flush().
    void emit(CampaignKind kind, std::uint64_t first_at,
              std::uint64_t detected_at, std::uint64_t fingerprint,
              std::vector<std::uint32_t> devices, std::uint64_t device_total,
              std::string detail);

    [[nodiscard]] std::uint32_t find_root(std::uint32_t device);

    FleetMonitorConfig cfg_;
    obs::MetricsRegistry& registry_;
    obs::FlightRecorder& recorder_;
    obs::SpanTracer spans_;
    obs::Histogram* m_latency_;
    obs::Gauge* m_latency_p95_;
    obs::Histogram* m_depth_;
    obs::Counter* m_kind_[kCampaignKindCount];

    // Exact provenance (trace-carrying worm advisories). One edge per
    // victim (first wins — deterministic in the serial drain order);
    // untraced in-range edges poison exactness but still feed the
    // union-find fallback below.
    ProvenanceReport provenance_;
    std::vector<bool> prov_child_seen_;
    std::uint64_t untraced_worm_edges_ = 0;

    // Worm infection graph: union-find over device indices. size_ and
    // first_at_ are root-indexed; flagged_ roots already campaigned.
    std::vector<std::uint32_t> parent_;
    std::vector<std::uint32_t> rank_;
    std::vector<std::uint32_t> comp_size_;
    std::vector<std::uint64_t> comp_first_at_;
    std::vector<bool> comp_flagged_;
    /// Devices that contributed at least one worm edge (a lone device
    /// is not "infected" until an edge touches it).
    std::vector<bool> worm_member_;

    struct WindowTrack {
        /// device -> latest in-window sighting.
        std::map<std::uint32_t, std::uint64_t> last_seen;
        std::uint64_t first_at = 0;
        bool flagged = false;
    };
    std::map<std::uint64_t, WindowTrack> replay_by_fingerprint_;
    std::map<std::uint64_t, WindowTrack> downgrade_by_version_;

    std::vector<CampaignIncident> campaigns_;
    std::vector<obs::PostmortemBundle> postmortems_;
    std::size_t siem_published_ = 0;  ///< Campaigns already flushed.
};

}  // namespace cres::platform
