// Canonical SoC memory map shared by platforms, workloads and attacks.
#pragma once

#include "mem/bus.h"

namespace cres::platform {

// Application memory.
constexpr mem::Addr kAppRamBase = 0x0001'0000;
constexpr mem::Addr kAppRamSize = 0x0004'0000;  // 256 KiB.

// Within app RAM (offsets are absolute addresses).
constexpr mem::Addr kCodeBase = kAppRamBase;              // Program text.
constexpr mem::Addr kCodeSize = 0x0001'0000;              // 64 KiB.
constexpr mem::Addr kDataBase = kAppRamBase + kCodeSize;  // Data + heap.
constexpr mem::Addr kStackTop = kAppRamBase + kAppRamSize - 16;
constexpr mem::Addr kSecretBase = kDataBase + 0x8000;  // App secrets.
constexpr mem::Addr kSecretSize = 0x100;

// Peripherals.
constexpr mem::Addr kUartBase = 0x4000'0000;
constexpr mem::Addr kTimerBase = 0x4000'1000;
constexpr mem::Addr kWdogBase = 0x4000'2000;
constexpr mem::Addr kDmaBase = 0x4000'3000;
constexpr mem::Addr kSensorBase = 0x4000'4000;
constexpr mem::Addr kActuatorBase = 0x4000'5000;
constexpr mem::Addr kNicBase = 0x4000'6000;
constexpr mem::Addr kTrngBase = 0x4000'7000;
constexpr mem::Addr kPowerBase = 0x4000'8000;
constexpr mem::Addr kPeriphSize = 0x100;

// TEE secure memory (bus-mapped, secure-only — the baseline's weakness).
constexpr mem::Addr kTeeRamBase = 0x5000'0000;
constexpr mem::Addr kTeeRamSize = 0x1000;

// IRQ lines.
constexpr unsigned kIrqTimer = 0;
constexpr unsigned kIrqWatchdog = 1;
constexpr unsigned kIrqNic = 2;
constexpr unsigned kIrqDma = 3;
constexpr unsigned kIrqUart = 4;

// OS services (ecall numbers).
constexpr std::uint16_t kSvcHeartbeat = 1;  ///< Control-loop iteration.
constexpr std::uint16_t kSvcPutc = 2;       ///< Console: r1 = char.
constexpr std::uint16_t kSvcTelemetry = 3;  ///< Send r1 as telemetry.
constexpr std::uint16_t kSvcYield = 4;      ///< Idle hint.

}  // namespace cres::platform
