// Firmware-keyed analysis-report cache.
//
// The abstract-interpretation verifier (analysis/absint.h) is a pure
// function of (code bytes, load address, entry point) for a fixed
// admission policy, exactly like superblock translation — so a fleet
// estate proves each *distinct* firmware once and shares the resulting
// Report (findings + ProofAnnotations) read-only across every node
// that admits the same image. Keys use the same sha256(code ‖ base ‖
// entry) scheme as TranslationCache; in production the secure-boot
// measurement digest serves the same role.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "analysis/report.h"
#include "analysis/verifier.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace cres::platform {

class AnalysisCache {
public:
    /// All cached reports are produced under one policy — the fleet's
    /// shared admission policy. Mixing policies would need per-policy
    /// caches; the estate model deliberately runs one.
    AnalysisCache() = default;
    explicit AnalysisCache(analysis::Policy policy)
        : verifier_(std::move(policy)) {}

    /// Returns the cached report for `key`, analyzing (code, base,
    /// entry) on the first request. Thread-safe; the analysis runs
    /// outside the lock (racing nodes produce identical reports).
    std::shared_ptr<const analysis::Report> get_or_analyze(
        const crypto::Hash256& key, BytesView code, mem::Addr base,
        mem::Addr entry);

    /// Content key: identical scheme (and therefore identical keys) to
    /// TranslationCache::key_for — both artifacts describe the same
    /// immutable firmware content.
    [[nodiscard]] static crypto::Hash256 key_for(BytesView code,
                                                 mem::Addr base,
                                                 mem::Addr entry);

    /// The policy every cached report was produced under. Consumers
    /// with a different admission policy must not reuse these reports
    /// (node.cpp falls back to local analysis on mismatch).
    [[nodiscard]] const analysis::Policy& policy() const noexcept {
        return verifier_.policy();
    }

    [[nodiscard]] std::uint64_t hits() const;
    [[nodiscard]] std::uint64_t misses() const;
    [[nodiscard]] std::size_t size() const;

private:
    analysis::FirmwareVerifier verifier_;
    mutable std::mutex mutex_;
    std::map<crypto::Hash256, std::shared_ptr<const analysis::Report>>
        reports_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace cres::platform
