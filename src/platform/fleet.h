// Fleet management: the operator backend for a population of deployed
// devices — the "next-generation critical infrastructure" setting of
// the paper's title. The backend provisions per-device keys, runs
// periodic remote-attestation sweeps, collects signed SSM health
// reports, and localises compromised devices so field response can be
// targeted instead of fleet-wide.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dev/nic.h"
#include "net/attestation.h"
#include "obs/siem.h"
#include "platform/firmware_store.h"
#include "platform/fleet_monitor.h"
#include "platform/node.h"
#include "platform/workload.h"
#include "util/thread_pool.h"

namespace cres::platform {

struct FleetConfig {
    std::size_t device_count = 8;
    bool resilient = true;
    std::uint64_t seed = 1;
    ControlLoopOptions workload;

    /// Interrupt-driven (WFI) control loop instead of the busy-wait
    /// one: the idiomatic embedded structure, and the configuration
    /// where quiescence fast-forwarding pays — cores sleep between
    /// timer interrupts. `timer_period` paces the control step.
    bool interrupt_workload = false;
    std::uint32_t timer_period = 800;

    /// Event-kernel quiescence on every device (docs/SCHEDULER.md).
    /// Purely a speed knob: results are bit-identical with it off —
    /// the E13d differential tests enforce exactly that.
    bool quiescence = true;

    /// Share firmware bytes fleet-wide, copy-on-write (docs/FLEET.md
    /// "memory diet"): every node's app RAM reads code from one
    /// immutable store entry keyed by image hash. Off = each node
    /// holds a private copy (the E13d memory ablation).
    bool share_firmware = true;

    /// Per-node observability cost knobs, forwarded to NodeConfig.
    /// Large passive estates turn both down to hit bytes-per-node.
    bool metrics = true;
    std::size_t flight_recorder_capacity = 2048;

    /// Per-node SIEM staging-buffer slots (forwarded to NodeConfig).
    /// drain_siem() empties them; overflow between drains lands in
    /// cres_siem_dropped_total. 0 disables the export layer per node.
    std::size_t siem_buffer_capacity = 256;

    /// Cross-device causal tracing (forwarded to NodeConfig): every
    /// node's SecureChannel stamps/propagates trace contexts, and the
    /// campaign monitor reconstructs the exact infection DAG from them
    /// (docs/OBSERVABILITY.md "Causal tracing & provenance"). Off =
    /// v1 frames on the wire and union-find-only worm correlation.
    bool causal_tracing = true;

    /// Campaign-correlation thresholds (docs/OBSERVABILITY.md). The
    /// device_count field is ignored — the fleet fills it in.
    FleetMonitorConfig campaign;

    /// Fleet-level flight-recorder slots (campaign black box).
    std::size_t fleet_recorder_capacity = 1024;

    /// Worker threads for fleet phases (enrolment, run, sweeps, health
    /// collection). 0 = hardware concurrency; 1 = serial. Any value
    /// produces bit-identical verdicts, health summaries and evidence
    /// logs: each device-node is owned by exactly one worker per phase,
    /// per-device seeds derive from `seed ^ device_index`, and all
    /// reductions happen in device-index order.
    std::size_t worker_threads = 1;

    /// Guest-code superblock translation (docs/EXECUTION.md). The whole
    /// fleet shares one read-only translation per firmware image (all
    /// devices run the same measured workload); per-device execution
    /// state stays private, so determinism is unaffected. Off = every
    /// device interprets — the E13c ablation baseline.
    bool translate = true;

    /// Proof-carrying check elision on every device (docs/EXECUTION.md,
    /// docs/ANALYSIS.md): translated loads/stores the shared analysis
    /// artifact proved in-bounds + aligned skip their per-access
    /// checks. Purely a speed knob — lockstep-identical off/on.
    bool elide_proven_checks = true;
};

/// One attestation sweep across the fleet.
struct SweepResult {
    std::vector<net::AttestResult> verdicts;  ///< Per device.
    std::size_t trusted = 0;
    std::size_t flagged = 0;

    [[nodiscard]] std::vector<std::size_t> flagged_devices() const;
};

/// One health-report collection across the fleet.
struct HealthSummary {
    std::vector<core::HealthState> states;   ///< Per device.
    std::vector<bool> report_valid;          ///< Signature verified.
    std::size_t healthy = 0;
};

class Fleet {
public:
    explicit Fleet(FleetConfig config);
    ~Fleet();

    Fleet(const Fleet&) = delete;
    Fleet& operator=(const Fleet&) = delete;

    [[nodiscard]] std::size_t size() const noexcept {
        return devices_.size();
    }
    [[nodiscard]] const FleetConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] Node& device(std::size_t index) {
        return devices_.at(index)->node;
    }

    /// The wire between device `index` and its operator endpoint
    /// (attack models inject campaign traffic through it).
    [[nodiscard]] dev::Link& link(std::size_t index) {
        return devices_.at(index)->link;
    }

    /// Concurrency actually in use (config.worker_threads resolved, so
    /// 0 has become the hardware thread count).
    [[nodiscard]] std::size_t worker_threads() const noexcept {
        return pool_.thread_count();
    }

    /// The fleet-shared firmware-keyed translation cache.
    [[nodiscard]] const TranslationCache& translation_cache() const noexcept {
        return *translation_cache_;
    }

    /// The fleet-shared firmware-keyed analysis-report cache: one
    /// abstract-interpretation artifact per distinct firmware, shared
    /// by every device's admission gate and translator.
    [[nodiscard]] const AnalysisCache& analysis_cache() const noexcept {
        return *analysis_cache_;
    }

    /// The fleet-shared firmware byte store (one entry per distinct
    /// image; the whole estate's code bytes live here when
    /// cfg.share_firmware).
    [[nodiscard]] const FirmwareStore& firmware_store() const noexcept {
        return *firmware_store_;
    }

    /// Total cycles elided by quiescence fast-forwarding across the
    /// fleet (0 when cfg.quiescence is off) and total private RAM pages
    /// materialized — the two headline E13d telemetry series.
    [[nodiscard]] std::uint64_t fleet_cycles_skipped() const;
    [[nodiscard]] std::size_t fleet_resident_ram_bytes() const;

    /// Advances every device's simulation by `cycles`, sharded across
    /// the worker pool (each node's simulator is thread-confined to one
    /// worker for the whole call). Devices exchange traffic only with
    /// their own operator endpoint, so per-device state is independent
    /// of scheduling; `slice` bounds the quantum each device advances
    /// per inner step (kept for causality if devices ever talk to each
    /// other directly).
    void run(sim::Cycle cycles, sim::Cycle slice = 1000);

    /// Challenges every device and verifies its quote against the
    /// golden measurement captured at enrolment. The direct variant
    /// calls the device's attestation service in-process; the wire
    /// variant sends the challenge over the M2M link and waits for the
    /// quote frame to come back (`timeout` simulated cycles/device).
    SweepResult attestation_sweep();
    SweepResult attestation_sweep_wire(sim::Cycle timeout = 4000);

    /// Collects and verifies each device's signed SSM health report
    /// (passive devices report kHealthy with report_valid=false — they
    /// simply have nothing trustworthy to say).
    HealthSummary collect_health();

    /// Takes a known-good checkpoint on every device (call after the
    /// running-in period so recovery has something to restore).
    void checkpoint_all();

    /// Total control iterations across the fleet (service metric).
    [[nodiscard]] std::uint64_t fleet_iterations() const;

    /// Merged fleet-wide metrics snapshot: every device registry folded
    /// in device-index order (so the result is bit-identical at any
    /// worker_threads), plus fleet-level gauges (device count, healthy
    /// devices, fleet iterations). Serial by design — it is a reduction,
    /// not a phase.
    [[nodiscard]] obs::MetricsRegistry collect_metrics() const;

    /// Fleet-wide Chrome Trace artefact: every device's timeline
    /// appended in device-index order (one process track per device),
    /// so the JSON is bit-identical at any worker_threads. Serial by
    /// design — it is a reduction, not a phase.
    [[nodiscard]] std::string chrome_trace() const;

    /// Every sealed postmortem bundle across the fleet, in device-index
    /// then incident order (bit-identical at any worker_threads).
    [[nodiscard]] std::vector<std::string> sealed_postmortems() const;

    // --- SIEM export & campaign correlation --------------------------------
    /// Drains every device's SIEM staging buffer into the export stream
    /// in device-index order, feeds each record to the campaign
    /// correlation engine, anchors each contributing device's evidence
    /// head and flushes newly detected campaigns. Serial by design — it
    /// is a reduction, so the stream and the campaign verdicts are
    /// bit-identical at any worker_threads. Returns the records
    /// appended by this drain.
    std::size_t drain_siem();

    /// The fleet export stream (JSONL + syslog framings, hash-chained).
    [[nodiscard]] const obs::SiemStream& siem_stream() const noexcept {
        return *siem_stream_;
    }

    /// The HKDF-derived fleet export key — what an offline verifier
    /// (cres_siemtail) needs to check the stream chain.
    [[nodiscard]] const Bytes& siem_key() const noexcept {
        return siem_key_;
    }

    /// The cross-device campaign correlation engine.
    [[nodiscard]] const FleetMonitor& campaign_monitor() const noexcept {
        return *monitor_;
    }

    /// Fleet-level campaign postmortems, sealed under the SIEM export
    /// key (campaign order, bit-identical at any worker_threads).
    [[nodiscard]] std::vector<std::string> sealed_campaign_postmortems()
        const;

    /// Convenience for update-channel experiments: a vendor-signed
    /// firmware image carrying `security_version` (each call consumes
    /// one Merkle signature slot — sign once, install everywhere).
    [[nodiscard]] boot::FirmwareImage make_signed_image(
        const std::string& name, std::uint32_t security_version);

private:
    /// One allocation per enrolled device: the node and its operator
    /// endpoint live inline (a million-node estate previously paid four
    /// heap blocks plus pointer-chase indirection per device).
    struct Device {
        Device(NodeConfig node_config, std::string nic_name)
            : node(std::move(node_config)),
              operator_nic(std::move(nic_name)) {}

        Node node;
        dev::Nic operator_nic;
        dev::Link link;
        std::optional<net::AttestationVerifier> verifier;
        Bytes seal_key;  ///< For verifying health reports.
        /// Drops already surfaced in the export stream (drain_siem
        /// publishes only the delta since the previous drain).
        std::uint64_t siem_drops_reported = 0;
    };

    void schedule_pump(Node& node);
    /// Builds devices_[index] (enrolment: keys, golden measurement,
    /// workload). Thread-confined to one worker; deterministic because
    /// everything derives from `cfg_.seed ^ index`.
    void enrol_device(std::size_t index);
    /// Challenge/verify one device in-process (no wire).
    [[nodiscard]] net::AttestResult attest_device(Device& device);
    /// Index-ordered reduction of per-device verdicts into the counts.
    static void finalize_sweep(SweepResult& result);

    FleetConfig cfg_;
    crypto::MerkleSigner vendor_key_;
    ThreadPool pool_;
    Bytes siem_key_;
    /// Fleet-tier observability (campaign metrics/black box) — merged
    /// after the per-device registries in collect_metrics().
    obs::MetricsRegistry fleet_metrics_;
    obs::FlightRecorder fleet_recorder_;
    std::unique_ptr<obs::SiemStream> siem_stream_;
    std::unique_ptr<FleetMonitor> monitor_;
    std::shared_ptr<TranslationCache> translation_cache_;
    std::shared_ptr<AnalysisCache> analysis_cache_;
    std::shared_ptr<FirmwareStore> firmware_store_;
    /// Assembled once per fleet — every device runs the same firmware,
    /// so per-device assembly is pure enrolment overhead at scale.
    isa::Program program_;
    std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace cres::platform
