// Fleet management: the operator backend for a population of deployed
// devices — the "next-generation critical infrastructure" setting of
// the paper's title. The backend provisions per-device keys, runs
// periodic remote-attestation sweeps, collects signed SSM health
// reports, and localises compromised devices so field response can be
// targeted instead of fleet-wide.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dev/nic.h"
#include "net/attestation.h"
#include "platform/node.h"
#include "platform/workload.h"

namespace cres::platform {

struct FleetConfig {
    std::size_t device_count = 8;
    bool resilient = true;
    std::uint64_t seed = 1;
    ControlLoopOptions workload;
};

/// One attestation sweep across the fleet.
struct SweepResult {
    std::vector<net::AttestResult> verdicts;  ///< Per device.
    std::size_t trusted = 0;
    std::size_t flagged = 0;

    [[nodiscard]] std::vector<std::size_t> flagged_devices() const;
};

/// One health-report collection across the fleet.
struct HealthSummary {
    std::vector<core::HealthState> states;   ///< Per device.
    std::vector<bool> report_valid;          ///< Signature verified.
    std::size_t healthy = 0;
};

class Fleet {
public:
    explicit Fleet(FleetConfig config);
    ~Fleet();

    Fleet(const Fleet&) = delete;
    Fleet& operator=(const Fleet&) = delete;

    [[nodiscard]] std::size_t size() const noexcept {
        return devices_.size();
    }
    [[nodiscard]] Node& device(std::size_t index) {
        return *devices_.at(index).node;
    }

    /// Advances every device's simulation by `cycles` (interleaved in
    /// `slice`-cycle quanta so cross-device traffic stays causal).
    void run(sim::Cycle cycles, sim::Cycle slice = 1000);

    /// Challenges every device and verifies its quote against the
    /// golden measurement captured at enrolment. The direct variant
    /// calls the device's attestation service in-process; the wire
    /// variant sends the challenge over the M2M link and waits for the
    /// quote frame to come back (`timeout` simulated cycles/device).
    SweepResult attestation_sweep();
    SweepResult attestation_sweep_wire(sim::Cycle timeout = 4000);

    /// Collects and verifies each device's signed SSM health report
    /// (passive devices report kHealthy with report_valid=false — they
    /// simply have nothing trustworthy to say).
    HealthSummary collect_health();

    /// Takes a known-good checkpoint on every device (call after the
    /// running-in period so recovery has something to restore).
    void checkpoint_all();

    /// Total control iterations across the fleet (service metric).
    [[nodiscard]] std::uint64_t fleet_iterations() const;

private:
    void schedule_pump(Node& node);

    struct Device {
        std::unique_ptr<Node> node;
        std::unique_ptr<dev::Nic> operator_nic;
        std::unique_ptr<dev::Link> link;
        std::unique_ptr<net::AttestationVerifier> verifier;
        Bytes seal_key;  ///< For verifying health reports.
    };

    FleetConfig cfg_;
    crypto::MerkleSigner vendor_key_;
    std::vector<Device> devices_;
};

}  // namespace cres::platform
