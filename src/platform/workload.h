// Workload programs for the emulated SoC, written in CRV32 assembly and
// generated here so experiments can parameterise them.
//
// The flagship workload is a critical-infrastructure control loop
// (sense -> compute -> actuate -> kick watchdog -> heartbeat ->
// telemetry -> delay), structured so its saved return address lives on
// the stack during most of each period — the memory-corruption target
// for the control-flow-hijack attack class.
#pragma once

#include <cstdint>

#include "isa/assembler.h"
#include "platform/memmap.h"

namespace cres::platform {

struct ControlLoopOptions {
    double setpoint = 50.0;
    std::uint32_t delay_iterations = 200;  ///< Busy-wait per period.
    std::uint32_t watchdog_timeout = 8000;
    bool send_telemetry = true;
};

/// The control-loop firmware, assembled at kCodeBase.
isa::Program control_loop_program(const ControlLoopOptions& options = {});

/// A malicious gadget an attacker plants in the data region: it
/// exfiltrates the application secret over the NIC, then abuses the
/// actuator while kicking the watchdog to defeat the passive defence.
isa::Program exfil_gadget_program(mem::Addr origin);

/// Where the control loop keeps its saved return address while the
/// body of the loop executes (the stack-smash target).
constexpr mem::Addr saved_lr_slot() { return kStackTop - 4; }

/// Conventional spot for planting the gadget.
constexpr mem::Addr gadget_origin() { return kDataBase + 0x4000; }

/// A short batch job used by overhead/boot benches: computes a checksum
/// over a buffer and halts.
isa::Program checksum_program(std::uint32_t buffer_words);

/// Interrupt-driven variant of the control loop: the core sleeps in
/// WFI and the timer interrupt paces the control step — the idiomatic
/// embedded structure (and it exercises the interrupt delivery path
/// end to end).
isa::Program interrupt_control_loop_program(
    const ControlLoopOptions& options = {},
    std::uint32_t timer_period = 800);

}  // namespace cres::platform
