#include "platform/fleet_monitor.h"

#include <algorithm>
#include <utility>

#include "obs/syslog.h"

namespace cres::platform {

namespace {

constexpr std::uint64_t kUnset = ~std::uint64_t{0};

}  // namespace

std::string_view campaign_kind_name(CampaignKind kind) noexcept {
    switch (kind) {
        case CampaignKind::kWorm: return "worm-propagation";
        case CampaignKind::kCoordinatedReplay: return "coordinated-replay";
        case CampaignKind::kStaggeredDowngrade: return "staggered-downgrade";
    }
    return "?";
}

FleetMonitor::FleetMonitor(FleetMonitorConfig config,
                           obs::MetricsRegistry& registry,
                           obs::FlightRecorder& recorder)
    : cfg_(config),
      registry_(registry),
      recorder_(recorder),
      spans_(registry, "cres_fleet_csf"),
      m_latency_(&registry.histogram(
          "cres_fleet_campaign_detection_latency_cycles")),
      m_latency_p95_(&registry.gauge(
          "cres_fleet_campaign_detection_latency_p95_cycles")),
      m_depth_(&registry.histogram("cres_fleet_infection_depth")),
      prov_child_seen_(cfg_.device_count, false),
      parent_(cfg_.device_count),
      rank_(cfg_.device_count, 0),
      comp_size_(cfg_.device_count, 0),
      comp_first_at_(cfg_.device_count, kUnset),
      comp_flagged_(cfg_.device_count, false),
      worm_member_(cfg_.device_count, false) {
    for (std::uint32_t i = 0; i < parent_.size(); ++i) parent_[i] = i;
    for (std::size_t k = 0; k < kCampaignKindCount; ++k) {
        m_kind_[k] = &registry.counter(
            "cres_fleet_campaigns_total{kind=\"" +
            std::string(campaign_kind_name(static_cast<CampaignKind>(k))) +
            "\"}");
    }
    registry.set_help("cres_fleet_campaigns_total",
                      "Detected fleet-level campaigns by kind");
    registry.set_help("cres_fleet_campaign_detection_latency_cycles",
                      "First contributing evidence to campaign detection");
    registry.set_help("cres_fleet_campaign_detection_latency_p95_cycles",
                      "Estimated p95 of campaign detection latency");
    registry.set_help("cres_fleet_infection_depth",
                      "Reconstructed worm hop depth per traced edge");
}

std::uint32_t FleetMonitor::find_root(std::uint32_t device) {
    while (parent_[device] != device) {
        parent_[device] = parent_[parent_[device]];  // Path halving.
        device = parent_[device];
    }
    return device;
}

void FleetMonitor::observe(std::uint32_t device_index,
                           const obs::SiemEvent& event) {
    if (event.source == "network-monitor") {
        if (event.detail == "frame failed authentication") {
            observe_worm(device_index, event);
        } else if (event.detail == "replayed frame detected") {
            observe_replay(device_index, event);
        }
    } else if (event.source == "update-agent" &&
               event.detail == "rejected install (version-regression)") {
        observe_downgrade(device_index, event);
    }
}

void FleetMonitor::observe_worm(std::uint32_t victim,
                                const obs::SiemEvent& event) {
    // The forged frame's claimed sequence carries the sender's device
    // index — channel-peer metadata, not trusted content. Out-of-range
    // origins (ordinary forgery noise, real MITM garbage) contribute no
    // edge.
    const std::uint64_t claimed = event.a;
    if (claimed >= cfg_.device_count || victim >= cfg_.device_count) return;
    const auto origin = static_cast<std::uint32_t>(claimed);
    if (origin == victim) return;

    // Exact provenance: a propagated trace context names the true chain
    // root and the victim's depth, turning this advisory into a DAG edge
    // instead of an anonymous union-find merge. First edge per victim
    // wins (serial drain order makes that deterministic); any in-range
    // worm edge *without* a trace poisons exactness — the DAG can no
    // longer claim to be the whole story.
    if (event.traced) {
        provenance_.traced = true;
        if (event.trace_origin < cfg_.device_count) {
            provenance_.patient_zero = event.trace_origin;
        }
        if (!prov_child_seen_[victim]) {
            prov_child_seen_[victim] = true;
            provenance_.edges.push_back(ProvenanceEdge{
                origin, victim, event.trace_hop, event.trace_span,
                event.trace_parent, event.at});
            provenance_.max_hop =
                std::max(provenance_.max_hop, event.trace_hop);
            m_depth_->record(event.trace_hop);
        }
    } else {
        ++untraced_worm_edges_;
    }
    provenance_.exact = provenance_.traced && untraced_worm_edges_ == 0;

    const auto touch = [this, &event](std::uint32_t device) {
        const std::uint32_t root = find_root(device);
        if (!worm_member_[device]) {
            worm_member_[device] = true;
            ++comp_size_[root];
        }
        if (event.at < comp_first_at_[root]) comp_first_at_[root] = event.at;
    };
    touch(origin);
    touch(victim);

    std::uint32_t ra = find_root(origin);
    std::uint32_t rb = find_root(victim);
    if (ra != rb) {
        if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
        parent_[rb] = ra;
        if (rank_[ra] == rank_[rb]) ++rank_[ra];
        comp_size_[ra] += comp_size_[rb];
        comp_first_at_[ra] = std::min(comp_first_at_[ra], comp_first_at_[rb]);
        if (comp_flagged_[rb]) comp_flagged_[ra] = true;
    }

    const std::uint32_t root = find_root(victim);
    if (comp_flagged_[root] || comp_size_[root] < cfg_.worm_min_devices) {
        return;
    }
    comp_flagged_[root] = true;

    std::vector<std::uint32_t> members;
    for (std::uint32_t d = 0; d < cfg_.device_count; ++d) {
        if (!worm_member_[d] || find_root(d) != root) continue;
        if (members.size() < CampaignIncident::kDeviceSample) {
            members.push_back(d);
        }
    }
    emit(CampaignKind::kWorm, comp_first_at_[root], event.at, root,
         std::move(members), comp_size_[root],
         "worm propagation: infection graph reached " +
             std::to_string(comp_size_[root]) + " devices");
}

void FleetMonitor::observe_replay(std::uint32_t device,
                                  const obs::SiemEvent& event) {
    WindowTrack& track = replay_by_fingerprint_[event.a];
    if (track.flagged) return;
    for (auto it = track.last_seen.begin(); it != track.last_seen.end();) {
        if (it->second + cfg_.replay_window < event.at) {
            it = track.last_seen.erase(it);
        } else {
            ++it;
        }
    }
    track.last_seen[device] = event.at;
    if (track.last_seen.size() < cfg_.replay_min_devices) return;
    track.flagged = true;

    std::uint64_t first_at = kUnset;
    std::vector<std::uint32_t> members;
    for (const auto& [d, at] : track.last_seen) {
        first_at = std::min(first_at, at);
        if (members.size() < CampaignIncident::kDeviceSample) {
            members.push_back(d);
        }
    }
    emit(CampaignKind::kCoordinatedReplay, first_at, event.at, event.a,
         std::move(members), track.last_seen.size(),
         "coordinated replay: sequence " + std::to_string(event.a) +
             " replayed on " + std::to_string(track.last_seen.size()) +
             " devices");
}

void FleetMonitor::observe_downgrade(std::uint32_t device,
                                     const obs::SiemEvent& event) {
    WindowTrack& track = downgrade_by_version_[event.a];
    if (track.flagged) return;
    for (auto it = track.last_seen.begin(); it != track.last_seen.end();) {
        if (it->second + cfg_.downgrade_window < event.at) {
            it = track.last_seen.erase(it);
        } else {
            ++it;
        }
    }
    track.last_seen[device] = event.at;
    if (track.last_seen.size() < cfg_.downgrade_min_devices) return;
    track.flagged = true;

    std::uint64_t first_at = kUnset;
    std::vector<std::uint32_t> members;
    for (const auto& [d, at] : track.last_seen) {
        first_at = std::min(first_at, at);
        if (members.size() < CampaignIncident::kDeviceSample) {
            members.push_back(d);
        }
    }
    emit(CampaignKind::kStaggeredDowngrade, first_at, event.at, event.a,
         std::move(members), track.last_seen.size(),
         "staggered downgrade: version " + std::to_string(event.a) +
             " pushed to " + std::to_string(track.last_seen.size()) +
             " devices against floor " + std::to_string(event.b));
}

void FleetMonitor::emit(CampaignKind kind, std::uint64_t first_at,
                        std::uint64_t detected_at, std::uint64_t fingerprint,
                        std::vector<std::uint32_t> devices,
                        std::uint64_t device_total, std::string detail) {
    CampaignIncident incident;
    incident.kind = kind;
    incident.id = campaigns_.size();
    incident.first_at = first_at;
    incident.detected_at = detected_at;
    incident.device_total = device_total;
    incident.devices = std::move(devices);
    incident.fingerprint = fingerprint;
    incident.detail = std::move(detail);

    // Fleet CSF span: the campaign's lifetime runs from the earliest
    // contributing evidence to its detection; closing immediately makes
    // the span's total the detection latency.
    const std::uint64_t span = spans_.open(first_at);
    spans_.mark(span, obs::CsfPhase::kDetect, detected_at);
    spans_.close(span, detected_at);
    m_latency_->record(detected_at - first_at);
    m_latency_p95_->set(
        static_cast<std::int64_t>(m_latency_->estimate_quantile(0.95)));
    m_kind_[static_cast<std::size_t>(kind)]->inc();
    recorder_.record_slow(detected_at, "fleet-monitor", "campaign",
                          /*severity=*/3, obs::FlightRecordType::kInstant,
                          incident.id, fingerprint,
                          campaign_kind_name(kind));

    obs::PostmortemBundle bundle;
    bundle.device = "fleet";
    bundle.incident_id = incident.id;
    bundle.opened_at = first_at;
    bundle.closed_at = detected_at;
    bundle.window_begin = first_at;
    bundle.marked =
        (1U << static_cast<std::size_t>(obs::CsfPhase::kDetect)) |
        (1U << static_cast<std::size_t>(obs::CsfPhase::kRecover));
    bundle.phase_at[static_cast<std::size_t>(obs::CsfPhase::kDetect)] =
        detected_at;
    bundle.phase_at[static_cast<std::size_t>(obs::CsfPhase::kRecover)] =
        detected_at;
    postmortems_.push_back(std::move(bundle));

    campaigns_.push_back(std::move(incident));
}

std::string FleetMonitor::propagation_tree(std::size_t max_edges) const {
    if (provenance_.edges.empty()) return {};
    std::vector<std::pair<std::uint32_t, std::uint32_t>> sorted;
    sorted.reserve(provenance_.edges.size());
    for (const ProvenanceEdge& e : provenance_.edges) {
        sorted.emplace_back(e.parent, e.child);
    }
    std::sort(sorted.begin(), sorted.end());
    std::string out;
    std::size_t rendered = 0;
    for (const auto& [p, c] : sorted) {
        if (rendered == max_edges) {
            out += ",...";
            break;
        }
        if (!out.empty()) out += ',';
        out += std::to_string(p);
        out += "->";
        out += std::to_string(c);
        ++rendered;
    }
    return out;
}

std::string FleetMonitor::provenance_json() const {
    std::string out = "{\"traced\": ";
    out += provenance_.traced ? "true" : "false";
    out += ", \"exact\": ";
    out += provenance_.exact ? "true" : "false";
    out += ", \"patient_zero\": " + std::to_string(provenance_.patient_zero);
    out += ", \"max_hop\": " + std::to_string(provenance_.max_hop);
    out += ", \"edge_total\": " + std::to_string(provenance_.edges.size());
    out += ", \"edges\": [";
    const std::size_t cap =
        std::min(provenance_.edges.size(), CampaignIncident::kDeviceSample);
    for (std::size_t i = 0; i < cap; ++i) {
        const ProvenanceEdge& e = provenance_.edges[i];
        if (i != 0) out += ", ";
        out += "{\"parent\": " + std::to_string(e.parent);
        out += ", \"child\": " + std::to_string(e.child);
        out += ", \"hop\": " + std::to_string(e.hop);
        out += ", \"span\": " + std::to_string(e.span);
        out += ", \"parent_span\": " + std::to_string(e.parent_span);
        out += ", \"at\": " + std::to_string(e.at);
        out += "}";
    }
    out += "]}";
    return out;
}

void FleetMonitor::flush(obs::SiemStream& stream) {
    for (; siem_published_ < campaigns_.size(); ++siem_published_) {
        const CampaignIncident& incident = campaigns_[siem_published_];
        obs::SiemEvent record;
        record.at = incident.detected_at;
        record.kind = obs::SiemKind::kCampaign;
        record.severity = obs::rfc5424::kAlert;
        record.facility = obs::rfc5424::kFacAudit;
        record.category = "system";
        record.source = "fleet-monitor";
        record.resource = std::string(campaign_kind_name(incident.kind));
        record.detail = incident.detail;
        // Traced worm campaigns publish the reconstructed DAG as part of
        // the campaign record: attribution (patient zero) and the exact
        // propagation tree, not just a component size.
        if (incident.kind == CampaignKind::kWorm && provenance_.traced) {
            record.detail += "; patient zero device " +
                             std::to_string(provenance_.patient_zero) +
                             " (depth " +
                             std::to_string(provenance_.max_hop) + ", " +
                             (provenance_.exact ? "exact" : "partial") +
                             "); tree " + propagation_tree();
        }
        record.a = incident.device_total;
        record.b = incident.fingerprint;
        stream.append(obs::SiemStream::kFleetIndex, "fleet", record);

        // Anchor the campaign bundle to the export chain: the bundle
        // seals the head as of its own campaign record, so the bundle
        // and the stream corroborate each other offline.
        postmortems_[siem_published_].evidence_count = stream.records();
        postmortems_[siem_published_].evidence_head_hex = stream.head_hex();
    }

    // Edges keep accruing after detection; refresh every worm bundle's
    // embedded DAG on each flush so the final sealed artefact carries
    // the complete reconstruction (deterministic: the drain is serial).
    if (provenance_.traced) {
        const std::string dag = provenance_json();
        for (std::size_t i = 0; i < postmortems_.size(); ++i) {
            if (campaigns_[i].kind == CampaignKind::kWorm) {
                postmortems_[i].provenance_json = dag;
            }
        }
    }
}

}  // namespace cres::platform
