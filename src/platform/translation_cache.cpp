#include "platform/translation_cache.h"

#include "analysis/translate.h"

namespace cres::platform {

std::shared_ptr<const isa::TranslationImage> TranslationCache::get_or_build(
    const crypto::Hash256& key, BytesView code, mem::Addr base,
    mem::Addr entry, const analysis::ProofAnnotations* proofs) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = images_.find(key);
        if (it != images_.end()) {
            ++hits_;
            return it->second;
        }
    }
    // Build outside the lock: translation walks the whole image and two
    // nodes racing on the same key produce identical results (it is a
    // pure function of the inputs — a supplied proof artifact equals
    // the locally derived one), so the loser's copy is just dropped.
    auto image = analysis::translate_image_shared(code, base, entry, proofs);
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = images_.emplace(key, std::move(image));
    if (inserted) {
        ++misses_;
    } else {
        ++hits_;
    }
    return it->second;
}

crypto::Hash256 TranslationCache::key_for(BytesView code, mem::Addr base,
                                          mem::Addr entry) {
    std::uint8_t trailer[8];
    for (int i = 0; i < 4; ++i) {
        trailer[i] = static_cast<std::uint8_t>(base >> (8 * i));
        trailer[4 + i] = static_cast<std::uint8_t>(entry >> (8 * i));
    }
    return crypto::sha256_pair(code, BytesView{trailer, sizeof trailer});
}

std::uint64_t TranslationCache::hits() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t TranslationCache::misses() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t TranslationCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return images_.size();
}

}  // namespace cres::platform
