#include "platform/workload.h"

#include <sstream>

#include "dev/sensor.h"

namespace cres::platform {

isa::Program control_loop_program(const ControlLoopOptions& options) {
    const std::int32_t setpoint_fixed = dev::to_fixed(options.setpoint);
    std::ostringstream os;
    os << "start:\n"
       << "    li   sp, " << kStackTop << "\n"
       << "    la   r1, trap_handler\n"
       << "    csrw mtvec, r1\n"
       // Arm the watchdog.
       << "    li   r1, " << kWdogBase << "\n"
       << "    li   r2, " << options.watchdog_timeout << "\n"
       << "    sw   r2, r1, 4\n"  // TIMEOUT.
       << "    li   r2, 1\n"
       << "    sw   r2, r1, 8\n"  // CTRL enable.
       << "loop:\n"
       << "    call process\n"
       << "    j loop\n"
       << "process:\n"
       << "    addi sp, sp, -4\n"
       << "    sw   lr, sp, 0\n"  // Saved lr: the smash target.
       // Sense.
       << "    li   r1, " << kSensorBase << "\n"
       << "    lw   r2, r1, 0\n"
       // Compute: command = (setpoint - value) >> 2.
       << "    call compute\n"
       // Actuate.
       << "    li   r5, " << kActuatorBase << "\n"
       << "    sw   r4, r5, 0\n"
       // Kick the watchdog.
       << "    li   r6, " << kWdogBase << "\n"
       << "    sw   r0, r6, 0\n"
       // Heartbeat.
       << "    ecall " << kSvcHeartbeat << "\n";
    if (options.send_telemetry) {
        os << "    mv   r1, r2\n"
           << "    ecall " << kSvcTelemetry << "\n";
    }
    os << "    li   r7, " << options.delay_iterations << "\n"
       << "delay:\n"
       << "    addi r7, r7, -1\n"
       << "    bne  r7, r0, delay\n"
       << "    lw   lr, sp, 0\n"
       << "    addi sp, sp, 4\n"
       << "    ret\n"
       << "compute:\n"
       << "    li   r3, " << static_cast<std::uint32_t>(setpoint_fixed) << "\n"
       << "    sub  r4, r3, r2\n"
       << "    addi r8, r0, 2\n"
       << "    sra  r4, r4, r8\n"
       << "    ret\n"
       << "trap_handler:\n"
       // Count the fault and resume the main loop.
       << "    la   r9, fault_count\n"
       << "    lw   r10, r9, 0\n"
       << "    addi r10, r10, 1\n"
       << "    sw   r10, r9, 0\n"
       << "    la   r9, loop\n"
       << "    csrw mepc, r9\n"
       << "    mret\n"
       << "fault_count:\n"
       << "    .word 0\n";
    return isa::assemble(os.str(), kCodeBase);
}

isa::Program exfil_gadget_program(mem::Addr origin) {
    std::ostringstream os;
    const std::int32_t overdrive = dev::to_fixed(90.0);  // Way out of range.
    os << "gadget:\n"
       // Exfiltrate the application secret byte-by-byte over the NIC.
       << "    li   r1, " << kSecretBase << "\n"
       << "    li   r2, " << kNicBase << "\n"
       << "    li   r4, " << (kSecretBase + kSecretSize) << "\n"
       << "exfil:\n"
       << "    lb   r3, r1, 0\n"
       << "    sw   r3, r2, 0\n"  // TX_BYTE.
       << "    addi r1, r1, 1\n"
       << "    bltu r1, r4, exfil\n"
       << "    sw   r0, r2, 4\n"  // TX_SEND: the secret leaves the device.
       // Abuse the actuator while keeping the watchdog fed so the
       // passive platform never even reboots.
       << "    li   r5, " << kActuatorBase << "\n"
       << "    li   r6, " << static_cast<std::uint32_t>(overdrive) << "\n"
       << "    li   r7, " << kWdogBase << "\n"
       << "spam:\n"
       << "    sw   r6, r5, 0\n"
       << "    sw   r0, r7, 0\n"
       << "    li   r8, 50\n"
       << "gdelay:\n"
       << "    addi r8, r8, -1\n"
       << "    bne  r8, r0, gdelay\n"
       << "    j spam\n";
    return isa::assemble(os.str(), origin);
}

isa::Program interrupt_control_loop_program(const ControlLoopOptions& options,
                                            std::uint32_t timer_period) {
    const std::int32_t setpoint_fixed = dev::to_fixed(options.setpoint);
    std::ostringstream os;
    os << "start:\n"
       << "    li   sp, " << kStackTop << "\n"
       << "    la   r1, isr\n"
       << "    csrw mtvec, r1\n"
       // Watchdog.
       << "    li   r1, " << kWdogBase << "\n"
       << "    li   r2, " << options.watchdog_timeout << "\n"
       << "    sw   r2, r1, 4\n"
       << "    li   r2, 1\n"
       << "    sw   r2, r1, 8\n"
       // Timer: auto-reload at the control period.
       << "    li   r1, " << kTimerBase << "\n"
       << "    li   r2, " << timer_period << "\n"
       << "    sw   r2, r1, 4\n"  // COMPARE.
       << "    addi r2, r0, 3\n"  // Enable + auto-reload.
       << "    sw   r2, r1, 8\n"  // CTRL.
       // Unmask the timer interrupt (line 0) and enable globally.
       << "    addi r2, r0, " << (1u << kIrqTimer) << "\n"
       << "    csrw mie, r2\n"
       << "    addi r2, r0, 2\n"  // mstatus.MIE.
       << "    csrw mstatus, r2\n"
       << "idle:\n"
       << "    wfi\n"
       << "    j idle\n"
       // The ISR is the control step.
       << "isr:\n"
       << "    li   r1, " << kSensorBase << "\n"
       << "    lw   r2, r1, 0\n"
       << "    li   r3, " << static_cast<std::uint32_t>(setpoint_fixed) << "\n"
       << "    sub  r4, r3, r2\n"
       << "    addi r8, r0, 2\n"
       << "    sra  r4, r4, r8\n"
       << "    li   r5, " << kActuatorBase << "\n"
       << "    sw   r4, r5, 0\n"
       << "    li   r6, " << kWdogBase << "\n"
       << "    sw   r0, r6, 0\n"
       << "    ecall " << kSvcHeartbeat << "\n";
    if (options.send_telemetry) {
        os << "    mv   r1, r2\n"
           << "    ecall " << kSvcTelemetry << "\n";
    }
    os << "    mret\n";
    return isa::assemble(os.str(), kCodeBase);
}

isa::Program checksum_program(std::uint32_t buffer_words) {
    std::ostringstream os;
    os << "start:\n"
       << "    li   r1, " << kDataBase << "\n"
       << "    li   r2, " << buffer_words << "\n"
       << "    addi r3, r0, 0\n"
       << "sum:\n"
       << "    lw   r4, r1, 0\n"
       << "    add  r3, r3, r4\n"
       << "    addi r1, r1, 4\n"
       << "    addi r2, r2, -1\n"
       << "    bne  r2, r0, sum\n"
       << "    halt\n";
    return isa::assemble(os.str(), kCodeBase);
}

}  // namespace cres::platform
