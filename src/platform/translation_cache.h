// Firmware-keyed translation cache.
//
// Fleet nodes running the same measured firmware image share one
// immutable TranslationImage: the key is the image's measurement (the
// secure-boot digest, or a content hash for debug-loaded programs), and
// translation itself is a pure function of the bytes, so whichever
// node builds first the result is identical. Only the read-only
// translation is shared — every core keeps its own execution state —
// which preserves the fleet's bit-identical-at-any-thread-count
// guarantee while amortising translation cost across the population.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "crypto/sha256.h"
#include "isa/uop.h"
#include "util/bytes.h"

namespace cres::analysis {
struct ProofAnnotations;  // analysis/report.h
}

namespace cres::platform {

class TranslationCache {
public:
    /// Returns the cached translation for `key`, building it from
    /// (code, base, entry) on the first request. Thread-safe: nodes
    /// rebooting concurrently on worker threads hit this during a run.
    /// `proofs` optionally supplies a precomputed proof artifact (the
    /// analysis-report cache); null lets the translator derive one.
    std::shared_ptr<const isa::TranslationImage> get_or_build(
        const crypto::Hash256& key, BytesView code, mem::Addr base,
        mem::Addr entry, const analysis::ProofAnnotations* proofs = nullptr);

    /// Content key for images outside the secure-boot chain (debug
    /// loads): hash over code bytes, load address and entry point —
    /// the full input domain of the translator.
    [[nodiscard]] static crypto::Hash256 key_for(BytesView code,
                                                 mem::Addr base,
                                                 mem::Addr entry);

    [[nodiscard]] std::uint64_t hits() const;
    [[nodiscard]] std::uint64_t misses() const;
    [[nodiscard]] std::size_t size() const;

private:
    mutable std::mutex mutex_;
    std::map<crypto::Hash256, std::shared_ptr<const isa::TranslationImage>>
        images_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace cres::platform
