#include "platform/analysis_cache.h"

#include "platform/translation_cache.h"

namespace cres::platform {

std::shared_ptr<const analysis::Report> AnalysisCache::get_or_analyze(
    const crypto::Hash256& key, BytesView code, mem::Addr base,
    mem::Addr entry) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = reports_.find(key);
        if (it != reports_.end()) {
            ++hits_;
            return it->second;
        }
    }
    // Analyze outside the lock: the fixpoint is deterministic, so two
    // nodes racing on the same key produce identical reports and the
    // loser's copy is just dropped.
    auto report = std::make_shared<const analysis::Report>(
        verifier_.analyze(code, base, entry));
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = reports_.emplace(key, std::move(report));
    if (inserted) {
        ++misses_;
    } else {
        ++hits_;
    }
    return it->second;
}

crypto::Hash256 AnalysisCache::key_for(BytesView code, mem::Addr base,
                                       mem::Addr entry) {
    return TranslationCache::key_for(code, base, entry);
}

std::uint64_t AnalysisCache::hits() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t AnalysisCache::misses() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t AnalysisCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return reports_.size();
}

}  // namespace cres::platform
