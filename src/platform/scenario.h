// Scenario runner: the standard experiment harness used by benches,
// examples and integration tests.
//
// A scenario is one device node (passive or resilient) running the
// control-loop workload, linked over M2M to an operator peer that
// sends periodic commands and receives telemetry. Attacks are launched
// at a chosen cycle; the result captures service, containment,
// detection and evidence metrics — ground truth measured at the wire
// and the plant, independent of the defence's own telemetry.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "attack/attack_fwd.h"
#include "crypto/merkle.h"
#include "dev/nic.h"
#include "net/channel.h"
#include "platform/node.h"
#include "platform/workload.h"

namespace cres::platform {

struct ScenarioConfig {
    NodeConfig node;
    ControlLoopOptions workload;
    sim::Cycle warmup = 20000;    ///< Clean running-in before attack.
    sim::Cycle horizon = 200000;  ///< Total simulated cycles.
    std::uint64_t seed = 1;
};

struct ScenarioResult {
    // Service.
    std::uint64_t control_iterations = 0;
    std::uint64_t telemetry_frames = 0;
    std::uint64_t reboots = 0;
    sim::Cycle downtime_cycles = 0;

    // Containment (wire/plant ground truth).
    std::uint64_t leaked_bytes = 0;    ///< Secret bytes that left the device.
    std::uint64_t unsafe_commands = 0; ///< Actuator commands outside ±50.
    double actuator_travel = 0.0;

    // Detection & response (resilient platforms only).
    bool detected = false;
    bool responded = false;
    std::optional<sim::Cycle> detection_latency;
    std::uint64_t responses_executed = 0;
    std::uint64_t operator_alerts = 0;

    // Evidence.
    std::size_t evidence_records = 0;
    std::size_t attack_window_records = 0;  ///< Evidence from the attack era.
    bool evidence_chain_ok = false;

    // Attack ground truth.
    bool attack_succeeded = false;
};

class Scenario {
public:
    explicit Scenario(ScenarioConfig config);
    ~Scenario();

    /// The device under test.
    [[nodiscard]] Node& node() noexcept { return *node_; }
    /// The operator-side link endpoint (attack surface for MITM).
    [[nodiscard]] dev::Link& link() noexcept { return link_; }
    [[nodiscard]] dev::Nic& peer_nic() noexcept { return peer_nic_; }

    /// The provisioned secrets whose escape counts as a leak.
    [[nodiscard]] const std::vector<Bytes>& secrets() const noexcept {
        return secrets_;
    }

    /// The device's derived evidence-seal key — what an offline
    /// verifier holds to check sealed postmortem bundles and reports.
    [[nodiscard]] const Bytes& seal_key() const noexcept {
        return seal_key_;
    }

    /// Runs the scenario. `attack` may be null (clean baseline run);
    /// otherwise it is launched at `attack_at` (absolute cycle, should
    /// be >= warmup).
    ScenarioResult run(attack::Attack* attack, sim::Cycle attack_at = 0);

private:
    void pump_peer();
    std::uint64_t count_leaked(const Bytes& frame) const;

    ScenarioConfig cfg_;
    crypto::MerkleSigner vendor_key_;
    std::unique_ptr<Node> node_;
    dev::Nic peer_nic_;
    dev::Link link_;
    std::unique_ptr<net::SecureChannel> peer_channel_;
    std::vector<Bytes> secrets_;
    Bytes seal_key_;
    std::uint64_t leaked_bytes_ = 0;
};

}  // namespace cres::platform
