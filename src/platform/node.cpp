#include "platform/node.h"

#include "analysis/translate.h"
#include "crypto/hmac.h"
#include "net/attestation.h"
#include "util/error.h"

namespace cres::platform {

Node::Node(NodeConfig config)
    : cfg(std::move(config)),
      recorder(cfg.flight_recorder_capacity),
      siem(cfg.siem_buffer_capacity),
      app_ram("app_ram", kAppRamSize),
      tee_ram("tee_ram", kTeeRamSize),
      uart("uart"),
      timer("timer"),
      watchdog("wdog"),
      dma("dma", bus),
      sensor("sensor",
             [nominal = cfg.sensor_nominal](sim::Cycle c) {
                 // Gentle physical drift around the nominal value.
                 return nominal +
                        2.0 * static_cast<double>((c / 1000) % 5) / 5.0;
             },
             100),
      actuator("actuator", -100.0, 100.0),
      nic("nic"),
      trng("trng", cfg.seed ^ 0x74726e67u),
      power("power", 3.3, 45.0),
      cpu("cpu0", bus),
      tee(bus, kTeeRamBase, kTeeRamSize) {
    build_memory_map();
    sim.set_quiescence(cfg.quiescence);
    cpu.set_check_elision(cfg.elide_proven_checks);
    if (cfg.metrics) trace.bind_metrics(metrics);

    sim.add_tickable(&cpu);
    sim.add_tickable(&timer);
    sim.add_tickable(&watchdog);
    sim.add_tickable(&dma);
    sim.add_tickable(&sensor);
    sim.add_tickable(&actuator);
    sim.add_tickable(&power);

    auto raiser = [this](unsigned line) { cpu.raise_irq(line); };
    timer.connect_irq(raiser, kIrqTimer);
    watchdog.connect_irq(raiser, kIrqWatchdog);
    nic.connect_irq(raiser, kIrqNic);
    dma.connect_irq(raiser, kIrqDma);
    uart.connect_irq(raiser, kIrqUart);

    // The passive platform's only countermeasure: reboot on watchdog.
    watchdog.set_expiry_callback([this] { reboot("watchdog expiry"); });

    install_os_services();

    if (cfg.lockstep) {
        shadow_bus = std::make_unique<mem::Bus>();
        shadow_ram = std::make_unique<mem::Ram>("shadow_ram", kAppRamSize);
        shadow_bus->map(mem::RegionConfig{"app_ram", kAppRamBase,
                                          kAppRamSize, false, false},
                        *shadow_ram);
        mirror = std::make_unique<PeripheralMirror>();
        shadow_bus->map(mem::RegionConfig{"mirror", kUartBase, 0x10000,
                                          false, false},
                        *mirror);
        bus.add_observer(mirror.get());
        shadow_cpu = std::make_unique<isa::Cpu>("cpu0-shadow", *shadow_bus);
        shadow_cpu->set_check_elision(cfg.elide_proven_checks);
        // OS services are side-effect-free on the shadow.
        shadow_cpu->set_ecall_handler(
            [](isa::Cpu&, std::uint16_t) { return true; });
        sim.add_tickable(shadow_cpu.get());
    }

    if (cfg.resilient) {
        recovery = std::make_unique<core::RecoveryManager>(cpu, app_ram);
        degradation = std::make_unique<core::DegradationManager>();
        degradation->register_service(
            "telemetry", /*critical=*/false,
            [this](bool on) { telemetry_enabled_ = on; });
        degradation->register_service("control-loop", /*critical=*/true,
                                      [](bool) {});
        build_security_engine(to_bytes("factory-default-seal-key"));
    }
}

Node::~Node() = default;

void Node::build_memory_map() {
    bus.map(mem::RegionConfig{"app_ram", kAppRamBase, kAppRamSize, false,
                              false},
            app_ram);
    bus.map(mem::RegionConfig{"tee_ram", kTeeRamBase, kTeeRamSize,
                              /*secure_only=*/true, false},
            tee_ram);
    bus.map(mem::RegionConfig{"uart", kUartBase, kPeriphSize, false, false},
            uart);
    bus.map(mem::RegionConfig{"timer", kTimerBase, kPeriphSize, false, false},
            timer);
    bus.map(mem::RegionConfig{"wdog", kWdogBase, kPeriphSize, false, false},
            watchdog);
    bus.map(mem::RegionConfig{"dma", kDmaBase, kPeriphSize, false, false},
            dma);
    bus.map(mem::RegionConfig{"sensor", kSensorBase, kPeriphSize, false,
                              false},
            sensor);
    bus.map(mem::RegionConfig{"actuator", kActuatorBase, kPeriphSize, false,
                              false},
            actuator);
    bus.map(mem::RegionConfig{"nic", kNicBase, kPeriphSize, false, false},
            nic);
    bus.map(mem::RegionConfig{"trng", kTrngBase, kPeriphSize,
                              /*secure_only=*/true, false},
            trng);
    bus.map(mem::RegionConfig{"power", kPowerBase, kPeriphSize, false, false},
            power);
}

void Node::install_os_services() {
    cpu.set_ecall_handler([this](isa::Cpu& core, std::uint16_t service) {
        switch (service) {
            case kSvcHeartbeat:
                ++stats_.control_iterations;
                if (timing_monitor) timing_monitor->heartbeat("control-loop");
                trace.emit(sim.now(), "os", "heartbeat");
                return true;
            case kSvcPutc: {
                std::uint32_t io = core.reg(1) & 0xff;
                (void)bus.access(mem::BusOp::kWrite, kUartBase, 4, io,
                                 mem::BusAttr{mem::Master::kCpu, core.secure(),
                                              core.privileged()});
                return true;
            }
            case kSvcTelemetry: {
                if (telemetry_enabled_ && channel && nic.linked()) {
                    const std::uint32_t v = core.reg(1);
                    Bytes payload(4);
                    for (int i = 0; i < 4; ++i) {
                        payload[static_cast<std::size_t>(i)] =
                            static_cast<std::uint8_t>(v >> (8 * i));
                    }
                    channel->send(payload);
                    ++stats_.telemetry_frames;
                    if (channel->tracing() && recorder.capacity() > 0) {
                        // Flow endpoint: a send that continues an
                        // inbound causal chain (hop > 0) pairs with the
                        // receiver's "net-recv" record (same span id)
                        // as a Perfetto flow arrow. Root sends (plain
                        // operator telemetry) stay off the ring.
                        const net::TraceContext& t =
                            channel->last_sent_trace();
                        if (t.hop > 0) {
                            recorder.record_slow(
                                sim.now(), "net", "net-send", /*severity=*/0,
                                obs::FlightRecordType::kInstant, t.span_id,
                                (std::uint64_t{t.origin_device} << 32) |
                                    t.hop,
                                {});
                        }
                    }
                }
                return true;
            }
            case kSvcYield:
                return true;
            default:
                return false;  // Architectural trap.
        }
    });
}

std::string Node::default_policy() {
    return R"(
; Default cyber-resilience policy: category -> response strategy.
rule cf-hijack:     category=control-flow severity>=critical -> restore-checkpoint, alert-operator
rule code-tamper:   category=memory severity>=critical -> restore-checkpoint, alert-operator
rule exfiltration:  category=data-flow severity>=critical -> isolate-resource, zeroise-keys, alert-operator
rule mem-recon:     category=memory severity>=alert count=2 window=20000 -> alert-operator
rule config-drift:  category=bus-violation severity>=critical -> isolate-resource, alert-operator
rule bus-probing:   category=bus-violation severity>=alert count=3 window=5000 -> alert-operator
rule periph-unsafe: category=peripheral severity>=critical cooldown=5000 -> rate-limit, degrade, alert-operator
rule periph-odd:    category=peripheral severity>=alert count=3 window=20000 cooldown=10000 -> degrade, alert-operator
rule net-mitm:      category=network severity>=critical -> alert-operator
rule net-replay:    category=network severity>=alert cooldown=20000 -> alert-operator
rule task-stall:    category=timing severity>=alert -> restore-checkpoint, alert-operator
rule env-glitch:    category=environment severity>=alert -> alert-operator
)";
}

void Node::build_security_engine(Bytes seal_key) {
    // Detach previous tickable monitors (no-ops on first build).
    if (ssm) sim.remove_tickable(ssm.get());
    if (peripheral_monitor) sim.remove_tickable(peripheral_monitor.get());
    if (timing_monitor) sim.remove_tickable(timing_monitor.get());
    if (environment_monitor) sim.remove_tickable(environment_monitor.get());
    if (config_monitor) sim.remove_tickable(config_monitor.get());

    core::SsmConfig ssm_config;
    ssm_config.physically_isolated = cfg.ssm_isolated;
    ssm_config.poll_interval = cfg.ssm_poll_interval;
    ssm_config.seal_key = std::move(seal_key);
    ssm_config.device_name = cfg.name;
    ssm = std::make_unique<core::SystemSecurityManager>(sim, ssm_config);

    bus_monitor = std::make_unique<core::BusMonitor>(*ssm, sim, bus);
    cfi_monitor = std::make_unique<core::CfiMonitor>(*ssm, sim, cpu);
    memory_monitor = std::make_unique<core::MemoryMonitor>(*ssm, sim, bus);
    dift_monitor = std::make_unique<core::DiftMonitor>(*ssm, sim, bus);
    peripheral_monitor =
        std::make_unique<core::PeripheralMonitor>(*ssm, sim, bus);
    timing_monitor = std::make_unique<core::TimingMonitor>(*ssm, sim);
    network_monitor = std::make_unique<core::NetworkMonitor>(*ssm, sim);
    environment_monitor = std::make_unique<core::EnvironmentMonitor>(
        *ssm, sim, power, core::EnvironmentEnvelope{3.0, 3.6, -20.0, 85.0},
        50);
    config_monitor =
        std::make_unique<core::ConfigMonitor>(*ssm, sim, bus, 200);
    if (cfg.lockstep && shadow_cpu) {
        if (redundancy_monitor) sim.remove_tickable(redundancy_monitor.get());
        redundancy_monitor = std::make_unique<core::RedundancyMonitor>(
            *ssm, sim, cpu, *shadow_cpu, 64);
        sim.add_tickable(redundancy_monitor.get());
    }

    recovery->set_post_restore([this] {
        if (cfi_monitor) cfi_monitor->reset();
        resync_shadow();
        // Checkpoint restore rewrites RAM off-bus (no write watch
        // fires): rebuild the translation against the restored bytes.
        refresh_translation();
    });

    core::ResponseContext ctx;
    ctx.bus = &bus;
    ctx.cpu = &cpu;
    ctx.keystore = &keystore;
    ctx.update_agent = update_agent.get();
    ctx.recovery = recovery.get();
    ctx.degradation = degradation.get();
    ctx.ssm = ssm.get();
    ctx.sim = &sim;
    ctx.operator_alert = [this](const std::string& message) {
        ++stats_.operator_alerts;
        trace.emit(sim.now(), "response", "operator-alert", message);
        recorder.record_slow(sim.now(), "response", "operator-alert",
                             /*severity=*/2, obs::FlightRecordType::kInstant,
                             0, 0, message);
    };
    ctx.system_reset = [this] { reboot("response-manager reset"); };
    ctx.rate_limiter = [this](const std::string& resource) {
        // Temporarily fence the peripheral; lift the clamp shortly after.
        if (!bus.isolate_region(resource)) {
            return std::string("no such peripheral '") + resource + "'";
        }
        sim.schedule_in(500, "rate-limit-release " + resource,
                        [this, resource] {
                            (void)bus.isolate_region(resource, false);
                        });
        return std::string("clamped '") + resource + "' for 500 cycles";
    };
    response_manager = std::make_unique<core::ActiveResponseManager>(ctx);
    ssm->set_response_executor(response_manager.get());

    ssm->bind_siem(siem);

    if (cfg.metrics) {
        // Get-or-create registration: a rebuilt engine (re-keyed at
        // provision time) continues the existing metric series.
        siem.bind_metrics(metrics);
        ssm->bind_metrics(metrics);
        bus_monitor->bind_metrics(metrics);
        cfi_monitor->bind_metrics(metrics);
        memory_monitor->bind_metrics(metrics);
        dift_monitor->bind_metrics(metrics);
        peripheral_monitor->bind_metrics(metrics);
        timing_monitor->bind_metrics(metrics);
        network_monitor->bind_metrics(metrics);
        environment_monitor->bind_metrics(metrics);
        config_monitor->bind_metrics(metrics);
        if (redundancy_monitor) redundancy_monitor->bind_metrics(metrics);
        recovery->bind_metrics(metrics);
        degradation->bind_metrics(metrics);
        response_manager->bind_metrics(metrics);
    }

    if (recorder.capacity() > 0) {
        // Deterministic binding order => deterministic name-table ids.
        ssm->bind_recorder(recorder);
        bus_monitor->bind_recorder(recorder);
        cfi_monitor->bind_recorder(recorder);
        memory_monitor->bind_recorder(recorder);
        dift_monitor->bind_recorder(recorder);
        peripheral_monitor->bind_recorder(recorder);
        timing_monitor->bind_recorder(recorder);
        network_monitor->bind_recorder(recorder);
        environment_monitor->bind_recorder(recorder);
        config_monitor->bind_recorder(recorder);
        if (redundancy_monitor) redundancy_monitor->bind_recorder(recorder);
    }

    sim.add_tickable(ssm.get());
    sim.add_tickable(peripheral_monitor.get());
    sim.add_tickable(timing_monitor.get());
    sim.add_tickable(environment_monitor.get());
    sim.add_tickable(config_monitor.get());
}

void Node::provision(const crypto::MerklePublicKey& vendor_pk,
                     BytesView device_root) {
    const Bytes attest_key =
        crypto::hkdf(device_root, to_bytes(cfg.name), "attestation", 32);
    const Bytes channel_key =
        crypto::hkdf(device_root, to_bytes(cfg.name), "m2m-channel", 32);
    const Bytes seal_key =
        crypto::hkdf(device_root, to_bytes(cfg.name), "evidence-seal", 32);

    keystore.install("device-root",
                     Bytes(device_root.begin(), device_root.end()),
                     crypto::KeyAccess::kSsmOnly);
    keystore.install("attestation", attest_key,
                     crypto::KeyAccess::kSecureOnly);
    keystore.install("m2m-channel", channel_key,
                     crypto::KeyAccess::kSecureOnly);

    tee.provision_key("attest", attest_key);
    channel = std::make_unique<net::SecureChannel>(nic, channel_key);
    if (cfg.causal_tracing) channel->enable_tracing(cfg.device_index);

    rom = std::make_unique<boot::BootRom>(vendor_pk, counters);
    rom->set_strict_rollback(cfg.strict_rollback);
    update_agent = std::make_unique<boot::UpdateAgent>(vendor_pk, counters);
    update_agent->set_reject_observer([this](boot::UpdateStatus status,
                                             const std::string& name,
                                             std::uint64_t offered,
                                             std::uint64_t floor) {
        // Admission-gate rejects already surface through the gate's own
        // observer as critical boot events; everything else (rollback
        // attempts, bad signatures, garbage images) lands here as an
        // advisory the fleet tier can correlate into downgrade waves.
        if (status == boot::UpdateStatus::kPolicyRejected) return;
        trace.emit(sim.now(), "boot", "update-rejected",
                   update_status_name(status) + ": " + name);
        if (!ssm) return;
        core::MonitorEvent event;
        event.at = sim.now();
        event.monitor = "update-agent";
        event.category = core::EventCategory::kBoot;
        event.severity = core::EventSeverity::kAdvisory;
        event.resource = name.empty() ? "firmware" : name;
        event.detail = "rejected install (" + update_status_name(status) +
                       ")";
        event.a = offered;
        event.b = floor;
        ssm->submit(event);
    });

    if (cfg.admission_mode != boot::AdmissionMode::kOff) {
        admission_gate = std::make_unique<analysis::AnalysisGate>(
            cfg.admission_policy, cfg.admission_mode);
        admission_gate->set_observer([this](const boot::FirmwareImage& image,
                                            const analysis::Report& report,
                                            bool rejected) {
            if (cfg.metrics) {
                metrics.counter("cres_analysis_images_total").inc();
                if (report.errors() != 0) {
                    metrics.counter("cres_analysis_errors_total")
                        .inc(report.errors());
                }
                if (report.warnings() != 0) {
                    metrics.counter("cres_analysis_warnings_total")
                        .inc(report.warnings());
                }
                if (rejected) metrics.counter("cres_analysis_rejects").inc();
                if (report.proofs) {
                    metrics.counter("cres_analysis_proof_ops_total")
                        .inc(report.proofs->mem_ops);
                    metrics.counter("cres_analysis_proof_proven_total")
                        .inc(report.proofs->proven_ops);
                    metrics.counter("cres_analysis_proof_certificates")
                        .inc(report.proofs->certificates.size());
                }
            }
            trace.emit(sim.now(), "boot",
                       rejected ? "image-rejected" : "image-verified",
                       image.name + ": " + report.summary());
            // kWarn mode admits flawed images; run them interpreted so
            // the fast path never executes code the verifier distrusts.
            if (report.errors() != 0) translation_vetoed_ = true;
            if (!rejected) return;
            recorder.record_slow(sim.now(), "boot", "image-rejected",
                                 /*severity=*/3,
                                 obs::FlightRecordType::kInstant,
                                 report.errors(), report.warnings(),
                                 image.name + ": " + report.summary());
            if (ssm) {
                core::MonitorEvent event;
                event.at = sim.now();
                event.monitor = "static-verifier";
                event.category = core::EventCategory::kBoot;
                event.severity = core::EventSeverity::kCritical;
                event.resource = image.name;
                event.detail = report.summary();
                event.a = report.errors();
                event.b = report.warnings();
                ssm->submit(event);
            }
        });
        if (cfg.analysis_cache &&
            cfg.analysis_cache->policy() == cfg.admission_policy) {
            // Fleet-shared proofs: each distinct firmware is analyzed
            // once estate-wide; every other node admits from the
            // cached report (verdict logic still runs per node). A
            // node whose admission policy differs from the cache's
            // must not admit from it — it keeps local analysis so a
            // stricter policy is never silently judged under the
            // fleet default.
            admission_gate->set_report_provider(
                [this](const boot::FirmwareImage& image) {
                    if (cfg.metrics) {
                        metrics
                            .counter("cres_analysis_proof_artifacts_total")
                            .inc();
                    }
                    return cfg.analysis_cache->get_or_analyze(
                        AnalysisCache::key_for(image.payload,
                                               image.load_addr,
                                               image.entry_point),
                        image.payload, image.load_addr, image.entry_point);
                });
        }
        rom->set_admission_gate(admission_gate.get());
        update_agent->set_admission_gate(admission_gate.get());
    }

    // Re-key the security engine with the derived evidence key (the SSM
    // has no meaningful history at provision time).
    if (cfg.resilient) build_security_engine(seal_key);
}

boot::BootReport Node::secure_boot(
    const std::vector<boot::FirmwareImage>& chain) {
    if (!rom) throw PlatformError("Node: provision() before secure_boot()");
    boot_chain_ = chain;
    loaded_program_.reset();
    translation_vetoed_ = false;
    const boot::BootReport report =
        rom->boot_chain(chain, app_ram, kAppRamBase, pcrs);
    trace.emit(sim.now(), "boot", report.success ? "boot-ok" : "boot-fail",
               report.summary());
    if (report.success) {
        entry_ = report.entry_point;
        stats_.downtime_cycles += report.verification_cost_cycles;
        cpu.reset(entry_);
    }
    refresh_translation();
    return report;
}

void Node::load_and_start(const isa::Program& program) {
    if (program.origin < kAppRamBase) {
        throw PlatformError("Node: program origin below app RAM");
    }
    loaded_program_ = program;
    translation_vetoed_ = false;  // Debug loads bypass the gate.
    install_program_image(program);
    entry_ = program.origin;
    cpu.reset(entry_);
    if (shadow_cpu) {
        shadow_ram->load(program.origin - kAppRamBase, program.code);
        if (mirror) mirror->clear();
        shadow_cpu->reset(entry_);
    }
    refresh_translation();
}

void Node::install_program_image(const isa::Program& program) {
    const mem::Addr offset =
        static_cast<mem::Addr>(program.origin - kAppRamBase);
    if (cfg.firmware_store) {
        // Fleet memory diet: RAM reads the code from one fleet-shared
        // immutable copy; writes promote pages to private copies.
        app_ram.set_backing(
            cfg.firmware_store->get_or_add(
                FirmwareStore::key_for(program.code, program.origin),
                program.code),
            offset);
        return;
    }
    app_ram.load(offset, program.code);
}

void Node::refresh_translation() {
    cpu.clear_translation();
    if (shadow_cpu) shadow_cpu->clear_translation();
    if (!cfg.translate || translation_vetoed_) return;

    // Identify the source of the code currently in memory. Debug loads
    // key by content hash; secure-booted images key by their measured
    // digest, so fleet nodes running the same firmware share one entry.
    BytesView code;
    mem::Addr base = 0;
    crypto::Hash256 key{};
    if (loaded_program_.has_value() && entry_ == loaded_program_->origin) {
        code = loaded_program_->code;
        base = loaded_program_->origin;
        key = TranslationCache::key_for(code, base, entry_);
    } else {
        const boot::FirmwareImage* match = nullptr;
        for (const auto& image : boot_chain_) {
            if (entry_ >= image.load_addr &&
                entry_ - image.load_addr < image.payload.size()) {
                match = &image;
            }
        }
        if (match == nullptr) return;
        code = match->payload;
        base = match->load_addr;
        key = match->digest();
    }
    if (code.empty() || base < kAppRamBase) return;

    // The translation must describe the bytes actually in memory. A
    // mixed lifecycle (e.g. a debug load over a previously booted
    // chain) can leave RAM diverged from the candidate source; the
    // interpreter is always correct, so just skip installation then.
    if (!app_ram.matches(static_cast<mem::Addr>(base - kAppRamBase), code)) {
        return;
    }

    // Reuse the fleet-cached proof artifact when one is available so
    // the translator does not re-run the abstract interpreter. The
    // report shared_ptr must outlive the get_or_build call. The same
    // policy-identity rule as the admission gate applies: proofs from
    // a cache built under a different policy (non-canonical segments)
    // would break TranslationCache's assumption that an image is a
    // pure function of (code, base, entry).
    std::shared_ptr<const analysis::Report> cached_report;
    const analysis::ProofAnnotations* proofs = nullptr;
    if (cfg.analysis_cache &&
        cfg.analysis_cache->policy() == cfg.admission_policy) {
        cached_report = cfg.analysis_cache->get_or_analyze(
            AnalysisCache::key_for(code, base, entry_), code, base, entry_);
        if (cached_report && cached_report->proofs)
            proofs = cached_report->proofs.get();
    }

    std::shared_ptr<const isa::TranslationImage> image =
        cfg.translation_cache
            ? cfg.translation_cache->get_or_build(key, code, base, entry_,
                                                  proofs)
            : analysis::translate_image_shared(code, base, entry_, proofs);
    cpu.install_translation(image);
    if (shadow_cpu) shadow_cpu->install_translation(std::move(image));
}

void Node::reboot(const std::string& reason) {
    if (rebooting_) return;
    rebooting_ = true;
    ++stats_.reboots;
    stats_.downtime_cycles += cfg.reboot_downtime;
    cpu.halt();
    trace.emit(sim.now(), "system", "reboot", reason);
    recorder.record_slow(sim.now(), "system", "reboot", /*severity=*/2,
                         obs::FlightRecordType::kInstant, 0, 0, reason);

    if (!cfg.resilient) {
        // Volatile telemetry dies with the reset — the passive
        // platform's evidence-loss failure mode.
        trace.clear();
    }

    sim.schedule_in(cfg.reboot_downtime, "reboot: " + reason, [this] {
        rebooting_ = false;
        if (!boot_chain_.empty() && rom) {
            pcrs.reset();
            translation_vetoed_ = false;
            const boot::BootReport report =
                rom->boot_chain(boot_chain_, app_ram, kAppRamBase, pcrs);
            if (report.success) {
                entry_ = report.entry_point;
                cpu.reset(entry_);
            }
            refresh_translation();
            return;
        }
        if (loaded_program_.has_value()) {
            install_program_image(*loaded_program_);
            cpu.reset(loaded_program_->origin);
            refresh_translation();
        }
    });
}

void Node::pump_network() {
    while (auto frame = nic.receive_frame()) {
        // Attestation service: answer challenges from the secure world.
        if (const auto nonce = net::decode_challenge(*frame)) {
            const auto quote = tee.quote(pcrs, *nonce, "attest");
            if (quote && nic.linked()) {
                nic.send_frame(net::encode_quote(*quote));
            }
            continue;
        }
        // Everything else is authenticated channel traffic.
        if (channel) {
            const net::Received received = channel->process(*frame);
            if (received.trace && received.trace->hop > 0 &&
                recorder.capacity() > 0) {
                // Flow endpoint: pairs with the sender's "net-send"
                // record (same span id) as a Perfetto flow arrow. Only
                // chained frames (hop > 0) have a sender-side record,
                // so every "t" flow event has a matching "s".
                recorder.record_slow(
                    sim.now(), "net", "net-recv", /*severity=*/0,
                    obs::FlightRecordType::kInstant,
                    received.trace->span_id,
                    (std::uint64_t{received.trace->origin_device} << 32) |
                        received.trace->hop,
                    {});
            }
            if (network_monitor) {
                // The sequence number is channel-layer metadata: replay
                // fingerprints and forged-frame origin hints for the
                // fleet correlation tier. The claimed trace context
                // rides along for exact provenance reconstruction.
                network_monitor->note_rx(received.status,
                                         received.payload.size(),
                                         received.sequence, received.trace);
            }
        }
    }
}

void Node::resync_shadow() {
    if (!shadow_cpu || !shadow_ram) return;
    shadow_ram->load(0, app_ram.dump(0, app_ram.size()));
    if (mirror) mirror->clear();
    shadow_cpu->reset(cpu.pc());
    for (unsigned i = 1; i < 16; ++i) shadow_cpu->set_reg(i, cpu.reg(i));
    for (std::uint16_t i = 0; i < isa::kCsrCount; ++i) {
        if (i == isa::kCsrMcycle || i == isa::kCsrMinstret) continue;
        shadow_cpu->set_csr(i, cpu.csr(i));
    }
}

void Node::take_checkpoint() {
    if (recovery) (void)recovery->take_checkpoint(sim.now());
}

void Node::arm_resilience(const isa::Program& program) {
    if (!cfg.resilient) return;

    // CFI: every symbol is a legal call target; nothing else is.
    std::set<mem::Addr> targets;
    for (const auto& [name, addr] : program.symbols) targets.insert(addr);
    cfi_monitor->set_valid_targets(std::move(targets));

    // Memory: the text segment is code; secrets are watched.
    memory_monitor->protect_code_range(
        program.origin, static_cast<mem::Addr>(program.code.size()));
    memory_monitor->watch_sensitive("app-secrets", kSecretBase, kSecretSize,
                                    64, 10000);

    // DIFT: secrets (app + TEE key storage) are sources; NIC and UART
    // are public sinks.
    dift_monitor->add_source(kSecretBase, kSecretSize);
    dift_monitor->add_source(kTeeRamBase, kTeeRamSize);
    dift_monitor->add_sink_region("nic");
    dift_monitor->add_sink_region("uart");

    // Bus: DMA may only touch application RAM; debug/attacker masters
    // have no legitimate regions at runtime.
    bus_monitor->allow_master(mem::Master::kDma, {"app_ram"});
    bus_monitor->allow_master(mem::Master::kDebug, {});
    bus_monitor->allow_master(mem::Master::kAttacker, {});

    // Peripheral envelopes.
    peripheral_monitor->watch_actuator(
        "actuator", kActuatorBase + dev::Actuator::kRegCommand,
        core::ActuatorEnvelope{-50.0, 50.0, 20.0, 20, 2000});
    peripheral_monitor->watch_sensor(
        sensor,
        core::SensorEnvelope{cfg.sensor_nominal - 20.0,
                             cfg.sensor_nominal + 20.0, 10.0},
        100);

    // Liveness.
    timing_monitor->register_task("control-loop", 4000);

    // Golden interconnect configuration.
    config_monitor->snapshot_golden();

    // Identify: the asset inventory.
    auto& risks = ssm->risks();
    risks.add_asset("actuator", core::AssetKind::kPeripheral, 5, 3);
    risks.add_asset("sensor", core::AssetKind::kPeripheral, 4, 3);
    risks.add_asset("nic", core::AssetKind::kChannel, 3, 5);
    risks.add_asset("tee_ram", core::AssetKind::kKey, 5, 2);
    risks.add_asset("app_ram", core::AssetKind::kMemoryRegion, 4, 4);
    risks.add_asset("control-loop", core::AssetKind::kTask, 5, 3);

    // Policy.
    ssm->set_policy(core::PolicyEngine::parse(
        cfg.policy_dsl.empty() ? default_policy() : cfg.policy_dsl));
}

void Node::append_chrome_trace(obs::ChromeTrace& out) const {
    const std::uint32_t pid = out.process(cfg.name);

    if (ssm) {
        const std::uint32_t tid = out.thread(pid, "incidents");
        for (const auto& b : ssm->postmortems()) {
            out.complete(pid, tid,
                         "incident #" + std::to_string(b.incident_id),
                         "incident", b.opened_at, b.closed_at - b.opened_at);
            for (std::size_t p = 0; p < obs::kCsfPhaseCount; ++p) {
                if ((b.marked & (1U << p)) == 0U) continue;
                out.instant(
                    pid, tid,
                    obs::csf_phase_name(static_cast<obs::CsfPhase>(p)),
                    "csf", b.phase_at[p]);
            }
        }
        // Incidents still in progress: opened but never recovered.
        if (const obs::SpanTracer* spans = ssm->spans()) {
            for (const auto& m : spans->open_marks()) {
                out.instant(pid, tid,
                            "incident #" + std::to_string(m.id) + " (open)",
                            "incident", m.opened_at);
                for (std::size_t p = 0; p < obs::kCsfPhaseCount; ++p) {
                    if ((m.marked & (1U << p)) == 0U) continue;
                    out.instant(
                        pid, tid,
                        obs::csf_phase_name(static_cast<obs::CsfPhase>(p)),
                        "csf", m.at[p]);
                }
            }
        }
    }

    // Flight-recorder tracks: one thread per source, replayed oldest ->
    // newest; counter records become per-kind counter series on the
    // process track.
    recorder.for_each([&](const obs::FlightRecord& r) {
        if (r.type == obs::FlightRecordType::kCounter) {
            out.counter(pid, recorder.name(r.kind), r.at, r.a);
            return;
        }
        const std::uint32_t tid = out.thread(pid, recorder.name(r.source));
        // Causal-trace endpoints render as Chrome flow events: Perfetto
        // draws an arrow from each "net-send" to the "net-recv" with
        // the same span id (record scalar a), across device tracks.
        if (recorder.name(r.source) == "net") {
            const std::string_view kind = recorder.name(r.kind);
            if (kind == "net-send") {
                out.flow_start(pid, tid, "frame", "m2m-flow", r.at, r.a);
                return;
            }
            if (kind == "net-recv") {
                out.flow_step(pid, tid, "frame", "m2m-flow", r.at, r.a);
                return;
            }
        }
        out.instant(pid, tid, recorder.name(r.kind),
                    core::severity_name(
                        static_cast<core::EventSeverity>(r.severity)),
                    r.at, r.detail_view());
    });
}

std::string Node::chrome_trace() const {
    obs::ChromeTrace out;
    append_chrome_trace(out);
    return out.json();
}

}  // namespace cres::platform
