// A complete SoC node: CPU + bus + memory + peripherals + secure-boot
// substrate + TEE, optionally extended with the paper's resilience
// stack (SSM + monitors + active response + recovery + degradation).
//
//   Config{.resilient = false}  -> the PASSIVE baseline of Section IV:
//       trust-based protection only; its sole response is watchdog
//       reboot, its telemetry is volatile and dies with a reboot.
//   Config{.resilient = true}   -> the paper's architecture (Section V).
//
// Components are public members: the Node is the experiment bench that
// scenarios and attack models wire into; hiding the parts behind
// accessors would only add boilerplate between the bench and the DUT.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "analysis/verifier.h"
#include "boot/measured.h"
#include "boot/secureboot.h"
#include "boot/update.h"
#include "core/monitor/bus_monitor.h"
#include "core/monitor/cfi_monitor.h"
#include "core/monitor/config_monitor.h"
#include "core/monitor/dift_monitor.h"
#include "core/monitor/environment_monitor.h"
#include "core/monitor/memory_monitor.h"
#include "core/monitor/network_monitor.h"
#include "core/monitor/peripheral_monitor.h"
#include "core/monitor/redundancy_monitor.h"
#include "core/monitor/timing_monitor.h"
#include "core/response/degradation.h"
#include "core/response/recovery.h"
#include "core/response/response.h"
#include "core/ssm/ssm.h"
#include "crypto/keystore.h"
#include "crypto/merkle.h"
#include "crypto/monotonic.h"
#include "dev/actuator.h"
#include "dev/dma.h"
#include "dev/nic.h"
#include "dev/power.h"
#include "dev/sensor.h"
#include "dev/timer.h"
#include "dev/trng.h"
#include "dev/uart.h"
#include "dev/watchdog.h"
#include "isa/assembler.h"
#include "isa/cpu.h"
#include "mem/bus.h"
#include "mem/ram.h"
#include "net/channel.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/siem.h"
#include "platform/analysis_cache.h"
#include "platform/firmware_store.h"
#include "platform/lockstep.h"
#include "platform/memmap.h"
#include "platform/translation_cache.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "tee/tee.h"

namespace cres::platform {

struct NodeConfig {
    std::string name = "node0";
    std::uint64_t seed = 1;
    bool resilient = false;
    bool ssm_isolated = true;      ///< E9 ablation knob.
    bool lockstep = false;         ///< Shadow core + RedundancyMonitor.
    bool strict_rollback = true;   ///< E7/E10 vulnerable-boot knob.
    sim::Cycle ssm_poll_interval = 10;
    sim::Cycle reboot_downtime = 5000;  ///< Cycles a reboot costs.
    bool metrics = true;  ///< Bind the observability registry (false =
                          ///< compiled-in but unqueried: zero overhead).
    /// Flight-recorder ring slots (black-box capacity). 0 disables the
    /// recorder entirely: nothing binds, producers pay one null check.
    std::size_t flight_recorder_capacity = 2048;
    /// SIEM staging-buffer slots (fleet export backpressure bound). The
    /// fleet drains it in device-index order; overflow between drains
    /// is counted as cres_siem_dropped_total. 0 disables staging.
    std::size_t siem_buffer_capacity = 256;
    std::string policy_dsl;        ///< Empty = default policy.
    double sensor_nominal = 50.0;  ///< Physical signal baseline.
    /// Static firmware analysis at boot/update admission. kDeny rejects
    /// images whose analysis finds policy violations; kWarn only
    /// reports; kOff skips analysis entirely.
    boot::AdmissionMode admission_mode = boot::AdmissionMode::kDeny;
    /// Pass policy for the admission verifier (segments, stack budget,
    /// banned opcodes).
    analysis::Policy admission_policy{};
    /// Superblock translation of admitted firmware (docs/EXECUTION.md).
    /// Purely a speed knob: architectural behaviour is identical with
    /// it off. Images the admission gate flagged (kWarn mode) and
    /// self-modifying code fall back to the interpreter automatically.
    bool translate = true;
    /// Shared firmware-keyed cache (the Fleet passes one per fleet so
    /// nodes measuring the same image share a translation). Null =
    /// build privately per node.
    std::shared_ptr<TranslationCache> translation_cache;
    /// Shared firmware-keyed analysis-report cache: the admission gate
    /// reuses a fleet-cached Report (findings + proof artifact) instead
    /// of re-running the abstract interpreter per node, and the
    /// translator consumes the cached ProofAnnotations. Null = analyze
    /// privately per node.
    std::shared_ptr<AnalysisCache> analysis_cache;
    /// Proof-carrying check elision (docs/EXECUTION.md): translated
    /// loads/stores proven in-bounds + aligned skip their per-access
    /// MPU/alignment checks. Purely a speed knob — lockstep-identical
    /// to checked execution by construction.
    bool elide_proven_checks = true;
    /// Shared firmware byte store: debug loads install their code as a
    /// copy-on-write RAM backing from here instead of copying into
    /// private pages, so fleet nodes running the same image share the
    /// bytes (docs/FLEET.md "memory diet"). Null = private copy.
    std::shared_ptr<FirmwareStore> firmware_store;
    /// Event-kernel quiescence (docs/SCHEDULER.md): fast-forward over
    /// provably idle cycles. Purely a speed knob — architecture-level
    /// results are bit-identical with it off.
    bool quiescence = true;
    /// Cross-device causal tracing (net/trace.h): outbound M2M frames
    /// carry an HMAC-covered trace-context extension, and the context
    /// of each authenticated inbound frame becomes the parent of the
    /// frames its handling produces. Off = v1 frames on the wire and
    /// no per-frame trace work at all.
    bool causal_tracing = true;
    /// Fleet device index: the span-id namespace and provenance
    /// identity used when causal_tracing is on (the Fleet sets it at
    /// enrolment; standalone nodes keep 0).
    std::uint32_t device_index = 0;
};

/// Runtime service/health counters every experiment reads.
struct NodeStats {
    std::uint64_t control_iterations = 0;
    std::uint64_t telemetry_frames = 0;
    std::uint64_t reboots = 0;
    sim::Cycle downtime_cycles = 0;
    std::uint64_t operator_alerts = 0;
};

class Node {
public:
    explicit Node(NodeConfig config);
    ~Node();

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    // --- Lifecycle --------------------------------------------------------
    /// Factory provisioning: vendor public key, device root secret
    /// (keys derive from it), TEE attestation key.
    void provision(const crypto::MerklePublicKey& vendor_pk,
                   BytesView device_root);

    /// Secure-boots the chain; on success loads payloads and starts the
    /// CPU at the entry point. Returns the report either way.
    boot::BootReport secure_boot(
        const std::vector<boot::FirmwareImage>& chain);

    /// Loads an assembled program directly (test/bench shortcut that
    /// bypasses signature checks — factory debug port).
    void load_and_start(const isa::Program& program);

    /// Advances simulated time.
    void run(sim::Cycle cycles) { sim.run_for(cycles); }

    /// Watchdog/response-triggered reboot: CPU stalls for
    /// reboot_downtime cycles, then restarts at the last entry point.
    /// On the passive platform this also wipes the volatile trace —
    /// the evidence-loss failure mode the paper calls out.
    void reboot(const std::string& reason);

    // --- Resilience wiring (only present when config.resilient) ----------
    /// Installs the default policy (or config.policy_dsl) and golden
    /// references (bus config, CFI targets); call after secure_boot /
    /// load_and_start.
    void arm_resilience(const isa::Program& program);

    /// Takes a known-good checkpoint now.
    void take_checkpoint();

    /// (Re)installs the superblock translation of the currently loaded
    /// firmware on the CPU (and lockstep shadow). Called automatically
    /// at every point code memory is (re)established — secure boot,
    /// debug load, reboot, checkpoint restore; exposed for tests. A
    /// no-op (beyond clearing any stale translation) when cfg.translate
    /// is off or the admission gate flagged the running image.
    void refresh_translation();

    /// Drains and demultiplexes inbound NIC frames: attestation
    /// challenges are answered by the secure world (TEE quote over the
    /// current PCRs); everything else goes through the authenticated
    /// channel, with outcomes fed to the network monitor. Call
    /// periodically (the scenario/fleet runners schedule it).
    void pump_network();

    // --- Forensics export -------------------------------------------------
    /// Appends this node's timeline to a Chrome Trace builder: one
    /// process track named after the device, one thread track per
    /// flight-recorder source (counter records become counter series),
    /// plus an "incidents" track rendering closed incidents as duration
    /// spans with CSF phase marks and still-open incidents as instants.
    void append_chrome_trace(obs::ChromeTrace& out) const;

    /// The single-device trace artefact (Perfetto/chrome://tracing).
    [[nodiscard]] std::string chrome_trace() const;

    // --- Config/state -----------------------------------------------------
    [[nodiscard]] const NodeConfig& config() const noexcept { return cfg; }
    [[nodiscard]] NodeStats& stats() noexcept { return stats_; }
    [[nodiscard]] const NodeStats& stats() const noexcept { return stats_; }
    [[nodiscard]] mem::Addr entry_point() const noexcept { return entry_; }

    // --- Substrate (always present) ---------------------------------------
    NodeConfig cfg;
    sim::Simulator sim;
    sim::TraceStream trace;  ///< Volatile telemetry (passive platforms).
    /// Cycle-accurate metrics; security components bind when
    /// cfg.metrics and cfg.resilient (build_security_engine time); the
    /// trace stream's growth gauges bind whenever cfg.metrics.
    obs::MetricsRegistry metrics;
    /// Always-on black box (bounded ring; capacity from config, 0 =
    /// disabled). Monitors and the SSM bind to it on resilient nodes;
    /// rare platform events (reboot, operator alert) land directly.
    obs::FlightRecorder recorder;
    /// Bounded SIEM staging buffer the SSM frames records into; the
    /// fleet export layer drains it deterministically (obs/siem.h).
    obs::SiemBuffer siem;
    mem::Bus bus;
    mem::Ram app_ram;
    mem::Ram tee_ram;
    dev::Uart uart;
    dev::Timer timer;
    dev::Watchdog watchdog;
    dev::DmaEngine dma;
    dev::Sensor sensor;
    dev::Actuator actuator;
    dev::Nic nic;
    dev::Trng trng;
    dev::PowerSensor power;
    isa::Cpu cpu;

    crypto::KeyStore keystore;
    crypto::MonotonicCounterBank counters;
    boot::PcrBank pcrs;
    tee::Tee tee;
    std::unique_ptr<boot::BootRom> rom;
    std::unique_ptr<boot::UpdateAgent> update_agent;
    /// Static-analysis admission gate (null when admission_mode==kOff);
    /// wired into both the boot ROM and the update agent at provision.
    std::unique_ptr<analysis::AnalysisGate> admission_gate;
    std::unique_ptr<net::SecureChannel> channel;  ///< After provision().

    // --- Lockstep shadow core (config.lockstep) ----------------------------
    std::unique_ptr<mem::Bus> shadow_bus;
    std::unique_ptr<mem::Ram> shadow_ram;
    std::unique_ptr<isa::Cpu> shadow_cpu;
    std::unique_ptr<PeripheralMirror> mirror;

    /// Copies the primary's CPU+RAM state onto the shadow (used after
    /// checkpoint restores so the pair re-converges).
    void resync_shadow();

    // --- Resilience stack (null on the passive baseline) -------------------
    std::unique_ptr<core::SystemSecurityManager> ssm;
    std::unique_ptr<core::BusMonitor> bus_monitor;
    std::unique_ptr<core::CfiMonitor> cfi_monitor;
    std::unique_ptr<core::MemoryMonitor> memory_monitor;
    std::unique_ptr<core::DiftMonitor> dift_monitor;
    std::unique_ptr<core::PeripheralMonitor> peripheral_monitor;
    std::unique_ptr<core::TimingMonitor> timing_monitor;
    std::unique_ptr<core::NetworkMonitor> network_monitor;
    std::unique_ptr<core::EnvironmentMonitor> environment_monitor;
    std::unique_ptr<core::ConfigMonitor> config_monitor;
    std::unique_ptr<core::RedundancyMonitor> redundancy_monitor;
    std::unique_ptr<core::RecoveryManager> recovery;
    std::unique_ptr<core::DegradationManager> degradation;
    std::unique_ptr<core::ActiveResponseManager> response_manager;

    /// Default policy text used when config.policy_dsl is empty.
    static std::string default_policy();

private:
    void build_memory_map();
    void install_os_services();
    /// Places a debug-loaded program's code into app RAM: through the
    /// shared firmware store as a copy-on-write backing when one is
    /// configured, else as a private copy.
    void install_program_image(const isa::Program& program);
    /// (Re)builds SSM + monitors + response manager with the given
    /// evidence-sealing key. Called at construction (placeholder key)
    /// and again at provision time (HKDF-derived key).
    void build_security_engine(Bytes seal_key);

    NodeStats stats_;
    mem::Addr entry_ = kCodeBase;
    bool telemetry_enabled_ = true;
    bool rebooting_ = false;
    /// Admission gate reported errors on the running image (kWarn mode
    /// admits it anyway): run it interpreted, never from a translation.
    bool translation_vetoed_ = false;
    std::vector<boot::FirmwareImage> boot_chain_;
    std::optional<isa::Program> loaded_program_;
};

}  // namespace cres::platform
