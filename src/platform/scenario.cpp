#include "platform/scenario.h"

#include "attack/attack.h"  // Interface only; no link dependency.
#include "crypto/sha256.h"
#include "util/rng.h"

namespace cres::platform {

namespace {

crypto::Hash256 vendor_seed(std::uint64_t seed) {
    Bytes s(8);
    for (int i = 0; i < 8; ++i) {
        s[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(seed >> (8 * i));
    }
    return crypto::sha256(s);
}

}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : cfg_(std::move(config)),
      vendor_key_(vendor_seed(cfg_.seed), 4),
      peer_nic_("peer-nic") {
    cfg_.node.seed = cfg_.seed;
    node_ = std::make_unique<Node>(cfg_.node);

    link_.attach(node_->nic, peer_nic_);

    // Factory provisioning.
    Rng rng(cfg_.seed ^ 0xdeu);
    const Bytes device_root = rng.bytes(32);
    node_->provision(vendor_key_.public_key(), device_root);

    // The operator side shares the derived channel key.
    const Bytes channel_key = crypto::hkdf(
        device_root, to_bytes(cfg_.node.name), "m2m-channel", 32);
    peer_channel_ =
        std::make_unique<net::SecureChannel>(peer_nic_, channel_key);

    // Plant the application secret (e.g. customer data / credentials).
    Bytes secret = rng.bytes(kSecretSize);
    node_->app_ram.load(kSecretBase - kAppRamBase, secret);
    secrets_.push_back(std::move(secret));
    // The attestation key is also leak-relevant (bus-tamper target).
    secrets_.push_back(crypto::hkdf(device_root, to_bytes(cfg_.node.name),
                                    "attestation", 32));
    seal_key_ = crypto::hkdf(device_root, to_bytes(cfg_.node.name),
                             "evidence-seal", 32);

    // Start the workload and arm the defence.
    const isa::Program program = control_loop_program(cfg_.workload);
    node_->load_and_start(program);
    node_->arm_resilience(program);
}

Scenario::~Scenario() = default;

std::uint64_t Scenario::count_leaked(const Bytes& frame) const {
    // A frame counts as leakage if it contains any 8-byte window of a
    // protected secret; the whole frame is then attributed.
    constexpr std::size_t kWindow = 8;
    for (const Bytes& secret : secrets_) {
        if (secret.size() < kWindow) continue;
        for (std::size_t off = 0; off + kWindow <= secret.size();
             off += kWindow) {
            const auto begin = secret.begin() + static_cast<std::ptrdiff_t>(off);
            const auto it = std::search(frame.begin(), frame.end(), begin,
                                        begin + kWindow);
            if (it != frame.end()) return frame.size();
        }
    }
    return 0;
}

void Scenario::pump_peer() {
    // Operator side: drain telemetry and leaked frames, send a periodic
    // command, feed the node's channel poll loop.
    node_->sim.schedule_in(500, "peer-pump", [this] {
        // Everything arriving at the peer is "on the wire".
        while (auto frame = peer_nic_.receive_frame()) {
            leaked_bytes_ += count_leaked(*frame);
        }
        // Device side demuxes its NIC (attestation + channel traffic).
        node_->pump_network();
        pump_peer();
    });
}

ScenarioResult Scenario::run(attack::Attack* attack, sim::Cycle attack_at) {
    pump_peer();

    // Operator command traffic every 2000 cycles (replay/MITM fodder).
    std::function<void()> send_command = [this, &send_command] {
        peer_channel_->send(to_bytes("setpoint"));
        node_->sim.schedule_in(2000, "operator-command", send_command);
    };
    node_->sim.schedule_in(1000, "operator-command", send_command);

    node_->run(cfg_.warmup);
    node_->take_checkpoint();

    const sim::Cycle t_attack =
        attack != nullptr ? std::max(attack_at, node_->sim.now()) : 0;
    if (attack != nullptr) {
        attack->launch(*node_, t_attack);
    }

    node_->run(cfg_.horizon > node_->sim.now()
                   ? cfg_.horizon - node_->sim.now()
                   : 0);

    // Final wire drain.
    while (auto frame = peer_nic_.receive_frame()) {
        leaked_bytes_ += count_leaked(*frame);
    }

    ScenarioResult result;
    result.control_iterations = node_->stats().control_iterations;
    result.telemetry_frames = node_->stats().telemetry_frames;
    result.reboots = node_->stats().reboots;
    result.downtime_cycles = node_->stats().downtime_cycles;
    result.leaked_bytes = leaked_bytes_;

    for (const auto& command : node_->actuator.history()) {
        if (command.applied > 50.0 || command.applied < -50.0 ||
            command.clamped) {
            ++result.unsafe_commands;
        }
    }
    result.actuator_travel = node_->actuator.total_travel();

    if (node_->ssm) {
        const auto& dispatches = node_->ssm->dispatches();
        for (const auto& d : dispatches) {
            if (attack == nullptr || d.dispatched_at >= t_attack) {
                result.detected = true;
                if (!result.detection_latency.has_value()) {
                    result.detection_latency = d.dispatched_at - t_attack;
                }
            }
        }
        result.responded =
            node_->response_manager && node_->response_manager->total() > 0;
        result.responses_executed =
            node_->response_manager ? node_->response_manager->total() : 0;
        result.evidence_records = node_->ssm->evidence().size();
        result.evidence_chain_ok = node_->ssm->evidence().verify_chain();
        for (const auto& record : node_->ssm->evidence().records()) {
            if (attack != nullptr && record.at >= t_attack) {
                ++result.attack_window_records;
            }
        }
    } else {
        // Passive platform: its "evidence" is the volatile trace.
        result.evidence_records = node_->trace.size();
        result.evidence_chain_ok = false;  // No integrity protection at all.
        for (const auto& record : node_->trace.records()) {
            if (attack != nullptr && record.at >= t_attack) {
                ++result.attack_window_records;
            }
        }
    }
    result.operator_alerts = node_->stats().operator_alerts;
    result.attack_succeeded = attack != nullptr && attack->succeeded();
    return result;
}

}  // namespace cres::platform
