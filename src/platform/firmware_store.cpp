#include "platform/firmware_store.h"

namespace cres::platform {

std::shared_ptr<const Bytes> FirmwareStore::get_or_add(
    const crypto::Hash256& key, BytesView code) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = images_.find(key);
    if (it != images_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    auto image = std::make_shared<const Bytes>(code.begin(), code.end());
    images_.emplace(key, image);
    return image;
}

crypto::Hash256 FirmwareStore::key_for(BytesView code, mem::Addr origin) {
    crypto::Sha256 h;
    h.update(code);
    Bytes tail(4);
    for (int i = 0; i < 4; ++i) {
        tail[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(origin >> (8 * i));
    }
    h.update(tail);
    return h.finish();
}

std::uint64_t FirmwareStore::hits() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t FirmwareStore::misses() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t FirmwareStore::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return images_.size();
}

std::size_t FirmwareStore::stored_bytes() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& [key, image] : images_) total += image->size();
    return total;
}

}  // namespace cres::platform
