// Lockstep support: the shadow core executes the same program as the
// primary, but must observe identical peripheral inputs to stay in
// step. The PeripheralMirror records every device read the primary CPU
// performs (as a bus observer on the primary interconnect) and replays
// the values, in order, to the shadow core's bus — the standard
// "replicate the core, replay the I/O" lockstep construction. Shadow
// writes are accepted and discarded (only the primary drives the
// plant).
#pragma once

#include <deque>

#include "mem/bus.h"

namespace cres::platform {

class PeripheralMirror : public mem::BusTarget, public mem::BusObserver {
public:
    PeripheralMirror() = default;

    std::string_view name() const override { return "peripheral-mirror"; }

    // Observer side (primary bus): record CPU device reads.
    void on_transaction(const mem::BusTransaction& txn) override {
        if (txn.response != mem::BusResponse::kOk) return;
        if (txn.op == mem::BusOp::kWrite) return;
        if (txn.attr.master != mem::Master::kCpu) return;
        if (txn.region == "app_ram") return;  // RAM is replicated, not mirrored.
        replay_.push_back(txn.data);
    }

    // Target side (shadow bus): replay in order.
    mem::BusResponse read(mem::Addr /*offset*/, std::uint32_t /*size*/,
                          std::uint32_t& out,
                          const mem::BusAttr& /*attr*/) override {
        if (replay_.empty()) {
            ++underflows_;
            out = 0;
        } else {
            out = replay_.front();
            replay_.pop_front();
        }
        return mem::BusResponse::kOk;
    }

    mem::BusResponse write(mem::Addr /*offset*/, std::uint32_t /*size*/,
                           std::uint32_t /*value*/,
                           const mem::BusAttr& /*attr*/) override {
        return mem::BusResponse::kOk;  // Shadow outputs are discarded.
    }

    /// Replay starvation count: nonzero means the pair lost sync (the
    /// redundancy monitor will already have flagged the divergence).
    [[nodiscard]] std::uint64_t underflows() const noexcept {
        return underflows_;
    }

    void clear() noexcept { replay_.clear(); }

private:
    std::deque<std::uint32_t> replay_;
    std::uint64_t underflows_ = 0;
};

}  // namespace cres::platform
