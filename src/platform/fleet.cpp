#include "platform/fleet.h"

#include "boot/image.h"
#include "crypto/hmac.h"
#include "net/attestation.h"
#include "obs/syslog.h"
#include "platform/memmap.h"
#include "util/rng.h"

namespace cres::platform {

namespace {

crypto::Hash256 fleet_vendor_seed(std::uint64_t seed) {
    Bytes s(9, 0xf1);
    for (int i = 0; i < 8; ++i) {
        s[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(seed >> (8 * i));
    }
    return crypto::sha256(s);
}

/// Fleet SIEM export key: seed-derived root (distinct domain tag from
/// the vendor seed) stretched through HKDF like every device key.
Bytes fleet_siem_key(std::uint64_t seed) {
    Bytes s(9, 0x51);
    for (int i = 0; i < 8; ++i) {
        s[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(seed >> (8 * i));
    }
    const crypto::Hash256 root = crypto::sha256(s);
    return crypto::hkdf(Bytes(root.begin(), root.end()), to_bytes("fleet"),
                        "siem-export", 32);
}

FleetMonitorConfig campaign_config(const FleetConfig& cfg) {
    FleetMonitorConfig out = cfg.campaign;
    out.device_count = cfg.device_count;
    return out;
}

}  // namespace

std::vector<std::size_t> SweepResult::flagged_devices() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i] != net::AttestResult::kTrusted) out.push_back(i);
    }
    return out;
}

Fleet::Fleet(FleetConfig config)
    : cfg_(std::move(config)),
      vendor_key_(fleet_vendor_seed(cfg_.seed), 6),
      pool_(cfg_.worker_threads),
      siem_key_(fleet_siem_key(cfg_.seed)),
      fleet_recorder_(cfg_.fleet_recorder_capacity),
      siem_stream_(std::make_unique<obs::SiemStream>(siem_key_)),
      monitor_(std::make_unique<FleetMonitor>(campaign_config(cfg_),
                                              fleet_metrics_,
                                              fleet_recorder_)),
      translation_cache_(std::make_shared<TranslationCache>()),
      // Built from the same (default) admission policy enrol_device
      // leaves on every NodeConfig: nodes only reuse cached reports
      // when the policies are identical (node.cpp), so a mismatch
      // here would silently demote the cache to per-node analysis.
      analysis_cache_(std::make_shared<AnalysisCache>(analysis::Policy{})),
      firmware_store_(std::make_shared<FirmwareStore>()),
      // Every device runs the same firmware: assemble it once here,
      // not once per device inside enrolment.
      program_(cfg_.interrupt_workload
                   ? interrupt_control_loop_program(cfg_.workload,
                                                    cfg_.timer_period)
                   : control_loop_program(cfg_.workload)),
      devices_(cfg_.device_count) {
    // Enrolment is sharded like every other phase: device i's entire
    // identity derives from cfg_.seed ^ i, so workers never share
    // mutable state and the fleet is bit-identical at any thread count.
    pool_.parallel_for(devices_.size(),
                       [this](std::size_t i) { enrol_device(i); });
}

Fleet::~Fleet() = default;

void Fleet::enrol_device(std::size_t index) {
    // The determinism contract: per-device seed = fleet seed ⊕ index.
    // Everything below (device root, workload jitter, attestation
    // nonces) is derived from it, never from a fleet-shared stream.
    const std::uint64_t device_seed =
        cfg_.seed ^ static_cast<std::uint64_t>(index);
    Rng rng(device_seed ^ 0xf1ee7u);

    NodeConfig node_config;
    node_config.name = "device-" + std::to_string(index);
    node_config.resilient = cfg_.resilient;
    node_config.seed = device_seed;
    node_config.metrics = cfg_.metrics;
    node_config.flight_recorder_capacity = cfg_.flight_recorder_capacity;
    node_config.siem_buffer_capacity = cfg_.siem_buffer_capacity;
    node_config.causal_tracing = cfg_.causal_tracing;
    node_config.device_index = static_cast<std::uint32_t>(index);
    node_config.quiescence = cfg_.quiescence;
    node_config.translate = cfg_.translate;
    node_config.translation_cache = translation_cache_;
    node_config.analysis_cache = analysis_cache_;
    node_config.elide_proven_checks = cfg_.elide_proven_checks;
    if (cfg_.share_firmware) node_config.firmware_store = firmware_store_;

    devices_[index] = std::make_unique<Device>(
        std::move(node_config), "op-nic-" + std::to_string(index));
    Device& device = *devices_[index];
    const std::string& name = device.node.cfg.name;
    device.link.attach(device.node.nic, device.operator_nic);

    const Bytes device_root = rng.bytes(32);
    device.node.provision(vendor_key_.public_key(), device_root);
    device.seal_key =
        crypto::hkdf(device_root, to_bytes(name), "evidence-seal", 32);

    // Enrolment measurement: a per-device firmware digest.
    crypto::Hash256 fw_digest =
        crypto::sha256(to_bytes("fw-image-for-" + name));
    device.node.pcrs.extend(boot::PcrBank::kPcrFirmware, fw_digest, name);

    const Bytes attest_key =
        crypto::hkdf(device_root, to_bytes(name), "attestation", 32);
    device.verifier.emplace(device.node.pcrs.composite(), attest_key,
                            cfg_.seed ^ (0x1000 + index));

    device.node.load_and_start(program_);
    device.node.arm_resilience(program_);

    // Periodic NIC pump (attestation responder + channel demux).
    schedule_pump(device.node);
}

void Fleet::schedule_pump(Node& node) {
    node.sim.schedule_in(500, "nic-pump", [this, &node] {
        node.pump_network();
        schedule_pump(node);
    });
}

void Fleet::run(sim::Cycle cycles, sim::Cycle slice) {
    const sim::Cycle quantum = slice == 0 ? 1 : slice;
    pool_.parallel_for(devices_.size(), [&](std::size_t i) {
        Node& node = devices_[i]->node;
        sim::Cycle done = 0;
        while (done < cycles) {
            const sim::Cycle step = std::min(quantum, cycles - done);
            node.run(step);
            done += step;
        }
    });
}

void Fleet::finalize_sweep(SweepResult& result) {
    for (const net::AttestResult verdict : result.verdicts) {
        if (verdict == net::AttestResult::kTrusted) {
            ++result.trusted;
        } else {
            ++result.flagged;
        }
    }
}

net::AttestResult Fleet::attest_device(Device& device) {
    const Bytes challenge_wire = device.verifier->challenge();
    const auto nonce = net::decode_challenge(challenge_wire);
    if (!nonce) return net::AttestResult::kMalformed;

    // The device's secure-world attestation service answers.
    const auto quote =
        device.node.tee.quote(device.node.pcrs, *nonce, "attest");
    if (!quote) {
        // Zeroised / lost key: the device cannot produce a quote at
        // all. Treat as a failed attestation.
        return net::AttestResult::kBadTag;
    }
    return device.verifier->verify(net::encode_quote(*quote));
}

SweepResult Fleet::attestation_sweep() {
    SweepResult result;
    result.verdicts.assign(devices_.size(), net::AttestResult::kMalformed);
    pool_.parallel_for(devices_.size(), [&](std::size_t i) {
        result.verdicts[i] = attest_device(*devices_[i]);
    });
    finalize_sweep(result);
    return result;
}

SweepResult Fleet::attestation_sweep_wire(sim::Cycle timeout) {
    SweepResult result;
    result.verdicts.assign(devices_.size(), net::AttestResult::kMalformed);
    pool_.parallel_for(devices_.size(), [&](std::size_t i) {
        Device& device = *devices_[i];
        // Challenge goes out over the link...
        device.link.inject(device.verifier->challenge(), /*to_a=*/true);
        // ...the device answers during normal operation...
        device.node.run(timeout);
        // ...and the quote frame arrives at the operator NIC.
        net::AttestResult verdict = net::AttestResult::kMalformed;
        while (auto frame = device.operator_nic.receive_frame()) {
            if (const auto quote = net::decode_quote(*frame)) {
                verdict = device.verifier->verify(*frame);
                break;
            }
            // Telemetry frames etc. are skipped, not verdicts.
        }
        result.verdicts[i] = verdict;
    });
    finalize_sweep(result);
    return result;
}

HealthSummary Fleet::collect_health() {
    // Workers report into fixed per-device slots; the summary itself
    // (including its vector<bool>, which packs bits and so cannot take
    // concurrent writes) is reduced serially in device-index order.
    struct DeviceHealth {
        core::HealthState state = core::HealthState::kHealthy;
        bool valid = false;
    };
    std::vector<DeviceHealth> per_device(devices_.size());

    pool_.parallel_for(devices_.size(), [&](std::size_t i) {
        Device& device = *devices_[i];
        if (device.node.ssm && !device.node.ssm->disabled()) {
            const auto report = device.node.ssm->health_report();
            per_device[i].state = report.state;
            per_device[i].valid =
                core::SystemSecurityManager::verify_health_report(
                    report, device.seal_key);
        }
        // else: passive device or dead SSM — nothing attestable to say;
        // the defaults (kHealthy, invalid report) already say that.
    });

    HealthSummary summary;
    summary.states.reserve(per_device.size());
    summary.report_valid.reserve(per_device.size());
    for (const DeviceHealth& health : per_device) {
        summary.states.push_back(health.state);
        summary.report_valid.push_back(health.valid);
        if (health.valid && health.state == core::HealthState::kHealthy) {
            ++summary.healthy;
        }
    }
    return summary;
}

void Fleet::checkpoint_all() {
    pool_.parallel_for(devices_.size(), [&](std::size_t i) {
        devices_[i]->node.take_checkpoint();
    });
}

obs::MetricsRegistry Fleet::collect_metrics() const {
    obs::MetricsRegistry merged;
    std::size_t healthy = 0;
    std::uint64_t reboots = 0;
    std::uint64_t alerts = 0;
    std::uint64_t skipped = 0;
    for (const auto& device : devices_) {  // Index order: deterministic.
        // Unbound/empty registries (cfg.metrics off, or a device that
        // never registered a series) contribute nothing; count them so
        // a partial merge is visible instead of silent.
        if (device->node.metrics.size() == 0) {
            ++skipped;
        } else {
            merged.merge_from(device->node.metrics);
        }
        reboots += device->node.stats().reboots;
        alerts += device->node.stats().operator_alerts;
        if (device->node.ssm && !device->node.ssm->disabled() &&
            device->node.ssm->health() == core::HealthState::kHealthy) {
            ++healthy;
        }
    }
    // Fleet-tier series (campaign counters, detection latency) fold in
    // after the devices.
    merged.merge_from(fleet_metrics_);
    merged.set_help("cres_fleet_devices", "Enrolled devices in the estate");
    merged.set_help("cres_fleet_devices_healthy",
                    "Devices reporting kHealthy with a valid SSM");
    merged.counter("cres_fleet_merge_skipped_total").inc(skipped);
    merged.gauge("cres_fleet_devices")
        .set(static_cast<std::int64_t>(devices_.size()));
    merged.gauge("cres_fleet_devices_healthy")
        .set(static_cast<std::int64_t>(healthy));
    merged.counter("cres_fleet_iterations_total").inc(fleet_iterations());
    merged.counter("cres_fleet_reboots_total").inc(reboots);
    merged.counter("cres_fleet_operator_alerts_total").inc(alerts);
    return merged;
}

std::string Fleet::chrome_trace() const {
    obs::ChromeTrace out;
    for (const auto& device : devices_) {  // Index order: deterministic.
        device->node.append_chrome_trace(out);
    }
    if (!monitor_->campaigns().empty()) {
        const std::uint32_t pid = out.process("fleet");
        const std::uint32_t tid = out.thread(pid, "campaigns");
        for (const CampaignIncident& c : monitor_->campaigns()) {
            out.complete(pid, tid,
                         std::string(campaign_kind_name(c.kind)) + " #" +
                             std::to_string(c.id),
                         "campaign", c.first_at,
                         c.detected_at - c.first_at);
        }
    }
    return out.json();
}

std::size_t Fleet::drain_siem() {
    const std::uint64_t before = siem_stream_->records();
    for (std::size_t i = 0; i < devices_.size(); ++i) {  // Index order.
        Device& device = *devices_[i];
        Node& node = device.node;
        if (!node.siem.enabled()) continue;
        const std::vector<obs::SiemEvent> batch = node.siem.drain();
        const std::uint64_t drops = node.siem.dropped();
        if (batch.empty() && drops == device.siem_drops_reported) continue;
        const auto index = static_cast<std::uint32_t>(i);
        for (const obs::SiemEvent& event : batch) {
            siem_stream_->append(index, node.cfg.name, event);
            monitor_->observe(index, event);
        }
        // Backpressure accounting: records lost to a full staging buffer
        // since the previous drain surface as an explicit export record,
        // so a gap in the chain is attributable instead of silent.
        if (drops > device.siem_drops_reported) {
            obs::SiemEvent gap;
            gap.at = node.sim.now();
            gap.kind = obs::SiemKind::kState;
            gap.severity = obs::rfc5424::kWarning;
            gap.facility = obs::rfc5424::kFacAudit;
            gap.category = "system";
            gap.source = "siem-buffer";
            gap.resource = "staging";
            gap.detail = "dropped records since last drain";
            gap.a = drops - device.siem_drops_reported;
            gap.b = drops;
            siem_stream_->append(index, node.cfg.name, gap);
            device.siem_drops_reported = drops;
        }
        // Anchor the device's on-board evidence chain in the export so
        // the two artefacts corroborate each other offline.
        if (node.ssm) {
            siem_stream_->append_evidence_head(
                index, node.cfg.name, node.sim.now(),
                node.ssm->evidence().size(),
                to_hex(node.ssm->evidence().head()));
        }
    }
    monitor_->flush(*siem_stream_);
    return static_cast<std::size_t>(siem_stream_->records() - before);
}

std::vector<std::string> Fleet::sealed_campaign_postmortems() const {
    std::vector<std::string> out;
    const crypto::HmacSha256 sealer(siem_key_);
    for (const obs::PostmortemBundle& bundle : monitor_->postmortems()) {
        out.push_back(obs::seal_postmortem(bundle, sealer));
    }
    return out;
}

boot::FirmwareImage Fleet::make_signed_image(const std::string& name,
                                             std::uint32_t security_version) {
    boot::FirmwareImage image;
    image.name = name;
    image.security_version = security_version;
    image.load_addr = kAppRamBase;
    image.entry_point = kAppRamBase;
    image.payload = to_bytes("fw-payload-" + name);
    boot::ImageSigner(vendor_key_).sign(image);
    return image;
}

std::vector<std::string> Fleet::sealed_postmortems() const {
    std::vector<std::string> out;
    for (const auto& device : devices_) {  // Index order: deterministic.
        if (!device->node.ssm) continue;
        const std::size_t count = device->node.ssm->postmortems().size();
        for (std::size_t i = 0; i < count; ++i) {
            out.push_back(device->node.ssm->sealed_postmortem(i));
        }
    }
    return out;
}

std::uint64_t Fleet::fleet_iterations() const {
    std::uint64_t total = 0;
    for (const auto& device : devices_) {
        total += device->node.stats().control_iterations;
    }
    return total;
}

std::uint64_t Fleet::fleet_cycles_skipped() const {
    std::uint64_t total = 0;
    for (const auto& device : devices_) {
        total += device->node.sim.cycles_skipped();
    }
    return total;
}

std::size_t Fleet::fleet_resident_ram_bytes() const {
    std::size_t total = 0;
    for (const auto& device : devices_) {
        total += device->node.app_ram.resident_bytes() +
                 device->node.tee_ram.resident_bytes();
    }
    return total;
}

}  // namespace cres::platform
