#include "platform/fleet.h"

#include "crypto/hmac.h"
#include "net/attestation.h"
#include "util/rng.h"

namespace cres::platform {

namespace {

crypto::Hash256 fleet_vendor_seed(std::uint64_t seed) {
    Bytes s(9, 0xf1);
    for (int i = 0; i < 8; ++i) {
        s[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(seed >> (8 * i));
    }
    return crypto::sha256(s);
}

}  // namespace

std::vector<std::size_t> SweepResult::flagged_devices() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i] != net::AttestResult::kTrusted) out.push_back(i);
    }
    return out;
}

Fleet::Fleet(FleetConfig config)
    : cfg_(std::move(config)),
      vendor_key_(fleet_vendor_seed(cfg_.seed), 6) {
    Rng rng(cfg_.seed ^ 0xf1ee7u);

    for (std::size_t i = 0; i < cfg_.device_count; ++i) {
        Device device;

        NodeConfig node_config;
        node_config.name = "device-" + std::to_string(i);
        node_config.resilient = cfg_.resilient;
        node_config.seed = rng.next();
        device.node = std::make_unique<Node>(node_config);

        device.operator_nic =
            std::make_unique<dev::Nic>("op-nic-" + std::to_string(i));
        device.link = std::make_unique<dev::Link>();
        device.link->attach(device.node->nic, *device.operator_nic);

        const Bytes device_root = rng.bytes(32);
        device.node->provision(vendor_key_.public_key(), device_root);
        device.seal_key = crypto::hkdf(device_root,
                                       to_bytes(node_config.name),
                                       "evidence-seal", 32);

        // Enrolment measurement: a per-device firmware digest.
        crypto::Hash256 fw_digest = crypto::sha256(
            to_bytes("fw-image-for-" + node_config.name));
        device.node->pcrs.extend(boot::PcrBank::kPcrFirmware, fw_digest,
                                 node_config.name);

        const Bytes attest_key = crypto::hkdf(
            device_root, to_bytes(node_config.name), "attestation", 32);
        device.verifier = std::make_unique<net::AttestationVerifier>(
            device.node->pcrs.composite(), attest_key,
            cfg_.seed ^ (0x1000 + i));

        const isa::Program program = control_loop_program(cfg_.workload);
        device.node->load_and_start(program);
        device.node->arm_resilience(program);

        devices_.push_back(std::move(device));
        // Periodic NIC pump (attestation responder + channel demux).
        schedule_pump(*devices_.back().node);
    }
}

Fleet::~Fleet() = default;

void Fleet::schedule_pump(Node& node) {
    node.sim.schedule_in(500, "nic-pump", [this, &node] {
        node.pump_network();
        schedule_pump(node);
    });
}

void Fleet::run(sim::Cycle cycles, sim::Cycle slice) {
    if (slice == 0) slice = 1;
    sim::Cycle done = 0;
    while (done < cycles) {
        const sim::Cycle step = std::min(slice, cycles - done);
        for (auto& device : devices_) device.node->run(step);
        done += step;
    }
}

SweepResult Fleet::attestation_sweep() {
    SweepResult result;
    for (auto& device : devices_) {
        const Bytes challenge_wire = device.verifier->challenge();
        const auto nonce = net::decode_challenge(challenge_wire);

        net::AttestResult verdict = net::AttestResult::kMalformed;
        if (nonce) {
            // The device's secure-world attestation service answers.
            const auto quote =
                device.node->tee.quote(device.node->pcrs, *nonce, "attest");
            if (quote) {
                verdict = device.verifier->verify(net::encode_quote(*quote));
            } else {
                // Zeroised / lost key: the device cannot produce a
                // quote at all. Treat as a failed attestation.
                verdict = net::AttestResult::kBadTag;
            }
        }
        result.verdicts.push_back(verdict);
        if (verdict == net::AttestResult::kTrusted) {
            ++result.trusted;
        } else {
            ++result.flagged;
        }
    }
    return result;
}

SweepResult Fleet::attestation_sweep_wire(sim::Cycle timeout) {
    SweepResult result;
    for (auto& device : devices_) {
        // Challenge goes out over the link...
        device.link->inject(device.verifier->challenge(), /*to_a=*/true);
        // ...the device answers during normal operation...
        device.node->run(timeout);
        // ...and the quote frame arrives at the operator NIC.
        net::AttestResult verdict = net::AttestResult::kMalformed;
        while (auto frame = device.operator_nic->receive_frame()) {
            if (const auto quote = net::decode_quote(*frame)) {
                verdict = device.verifier->verify(*frame);
                break;
            }
            // Telemetry frames etc. are skipped, not verdicts.
        }
        result.verdicts.push_back(verdict);
        if (verdict == net::AttestResult::kTrusted) {
            ++result.trusted;
        } else {
            ++result.flagged;
        }
    }
    return result;
}

HealthSummary Fleet::collect_health() {
    HealthSummary summary;
    for (auto& device : devices_) {
        if (device.node->ssm && !device.node->ssm->disabled()) {
            const auto report = device.node->ssm->health_report();
            const bool valid =
                core::SystemSecurityManager::verify_health_report(
                    report, device.seal_key);
            summary.states.push_back(report.state);
            summary.report_valid.push_back(valid);
            if (valid && report.state == core::HealthState::kHealthy) {
                ++summary.healthy;
            }
        } else {
            // Passive device or dead SSM: nothing attestable to say.
            summary.states.push_back(core::HealthState::kHealthy);
            summary.report_valid.push_back(false);
        }
    }
    return summary;
}

void Fleet::checkpoint_all() {
    for (auto& device : devices_) device.node->take_checkpoint();
}

std::uint64_t Fleet::fleet_iterations() const {
    std::uint64_t total = 0;
    for (const auto& device : devices_) {
        total += device.node->stats().control_iterations;
    }
    return total;
}

}  // namespace cres::platform
