// Remote-attestation protocol: a verifier challenges a device with a
// nonce; the device answers with a signed quote over its measured-boot
// PCR composite. Freshness comes from the nonce, integrity from the
// HMAC under the provisioned attestation key.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "boot/measured.h"
#include "crypto/hmac.h"
#include "tee/tee.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace cres::net {

/// Wire encoding of a challenge.
Bytes encode_challenge(BytesView nonce);
/// Returns the nonce, or nullopt on malformed input.
std::optional<Bytes> decode_challenge(BytesView data);

/// Wire encoding of a quote response.
Bytes encode_quote(const tee::Quote& quote);
std::optional<tee::Quote> decode_quote(BytesView data);

enum class AttestResult : std::uint8_t {
    kTrusted,
    kStaleNonce,
    kBadTag,
    kWrongMeasurement,
    kMalformed,
};

std::string attest_result_name(AttestResult result);

/// Verifier state machine (runs on the operator's backend).
class AttestationVerifier {
public:
    /// `expected_composite` is the golden PCR composite; `key` the
    /// shared attestation key.
    AttestationVerifier(crypto::Hash256 expected_composite, Bytes key,
                        std::uint64_t rng_seed);

    /// Issues a fresh challenge (wire format).
    Bytes challenge();

    /// Checks a response against the outstanding challenge.
    AttestResult verify(BytesView response);

    [[nodiscard]] std::uint64_t attestations_passed() const noexcept {
        return passed_;
    }
    [[nodiscard]] std::uint64_t attestations_failed() const noexcept {
        return failed_;
    }

private:
    crypto::Hash256 expected_composite_;
    Bytes key_;
    Rng rng_;
    Bytes outstanding_nonce_;
    std::uint64_t passed_ = 0;
    std::uint64_t failed_ = 0;
};

}  // namespace cres::net
