#include "net/attestation.h"

#include "util/error.h"
#include "util/serial.h"

namespace cres::net {

namespace {
constexpr std::uint32_t kChallengeMagic = 0x43484c47;  // "CHLG"
constexpr std::uint32_t kQuoteMagic = 0x51554f54;      // "QUOT"
}  // namespace

Bytes encode_challenge(BytesView nonce) {
    BinaryWriter w;
    w.u32(kChallengeMagic);
    w.blob(nonce);
    return w.take();
}

std::optional<Bytes> decode_challenge(BytesView data) {
    try {
        BinaryReader r(data);
        if (r.u32() != kChallengeMagic) return std::nullopt;
        Bytes nonce = r.blob();
        if (!r.done()) return std::nullopt;
        return nonce;
    } catch (const Error&) {
        return std::nullopt;
    }
}

Bytes encode_quote(const tee::Quote& quote) {
    BinaryWriter w;
    w.u32(kQuoteMagic);
    w.raw(quote.composite);
    w.blob(quote.nonce);
    w.raw(quote.tag);
    return w.take();
}

std::optional<tee::Quote> decode_quote(BytesView data) {
    try {
        BinaryReader r(data);
        if (r.u32() != kQuoteMagic) return std::nullopt;
        tee::Quote q;
        q.composite = crypto::hash_from_bytes(r.raw(32));
        q.nonce = r.blob();
        q.tag = crypto::hash_from_bytes(r.raw(32));
        if (!r.done()) return std::nullopt;
        return q;
    } catch (const Error&) {
        return std::nullopt;
    }
}

std::string attest_result_name(AttestResult result) {
    switch (result) {
        case AttestResult::kTrusted: return "trusted";
        case AttestResult::kStaleNonce: return "stale-nonce";
        case AttestResult::kBadTag: return "bad-tag";
        case AttestResult::kWrongMeasurement: return "wrong-measurement";
        case AttestResult::kMalformed: return "malformed";
    }
    return "?";
}

AttestationVerifier::AttestationVerifier(crypto::Hash256 expected_composite,
                                         Bytes key, std::uint64_t rng_seed)
    : expected_composite_(expected_composite),
      key_(std::move(key)),
      rng_(rng_seed) {
    if (key_.empty()) throw NetError("AttestationVerifier: empty key");
}

Bytes AttestationVerifier::challenge() {
    outstanding_nonce_ = rng_.bytes(16);
    return encode_challenge(outstanding_nonce_);
}

AttestResult AttestationVerifier::verify(BytesView response) {
    const auto quote = decode_quote(response);
    if (!quote) {
        ++failed_;
        return AttestResult::kMalformed;
    }
    if (outstanding_nonce_.empty() || quote->nonce != outstanding_nonce_) {
        ++failed_;
        return AttestResult::kStaleNonce;
    }
    // One-shot nonce: a second response to the same challenge is stale.
    outstanding_nonce_.clear();

    Bytes message(quote->composite.begin(), quote->composite.end());
    append(message, quote->nonce);
    if (!crypto::hmac_verify(key_, message, quote->tag)) {
        ++failed_;
        return AttestResult::kBadTag;
    }
    if (!ct_equal(quote->composite, expected_composite_)) {
        ++failed_;
        return AttestResult::kWrongMeasurement;
    }
    ++passed_;
    return AttestResult::kTrusted;
}

}  // namespace cres::net
