#include "net/channel.h"

#include "util/error.h"
#include "util/serial.h"

namespace cres::net {

std::string recv_status_name(RecvStatus status) {
    switch (status) {
        case RecvStatus::kOk: return "ok";
        case RecvStatus::kMalformed: return "malformed";
        case RecvStatus::kBadTag: return "bad-tag";
        case RecvStatus::kReplay: return "replay";
    }
    return "?";
}

SecureChannel::SecureChannel(dev::Nic& nic, Bytes key)
    : nic_(nic), key_(std::move(key)), mac_(key_) {
    if (key_.empty()) throw NetError("SecureChannel: empty key");
}

void SecureChannel::send(BytesView payload) {
    BinaryWriter w;
    w.u64(next_seq_);
    w.blob(payload);
    if (traced_) {
        TraceContext ctx;
        ctx.span_id = (std::uint64_t{self_} << 32) | ++span_counter_;
        if (parent_) {
            ctx.origin_device = parent_->origin_device;
            ctx.hop = parent_->hop + 1;
            ctx.parent_span_id = parent_->span_id;
        } else {
            ctx.origin_device = self_;
        }
        write_trace(w, ctx);
        last_sent_trace_ = ctx;
    }
    const crypto::Hash256 tag = mac_.tag(w.data());
    w.raw(tag);
    ++next_seq_;
    ++sent_;
    nic_.send_frame(w.data());
}

std::optional<Received> SecureChannel::poll() {
    const auto frame = nic_.receive_frame();
    if (!frame) return std::nullopt;
    return process(*frame);
}

Received SecureChannel::process(BytesView frame) {
    Received out;
    if (frame.size() < 8 + 4 + 32) {
        ++rejected_malformed_;
        out.status = RecvStatus::kMalformed;
        return out;
    }
    const std::size_t body_len = frame.size() - 32;
    const BytesView body(frame.data(), body_len);
    const BytesView tag(frame.data() + body_len, 32);

    try {
        BinaryReader r(body);
        out.sequence = r.u64();
        out.payload = r.blob();
        if (!r.done()) {
            // v2 trace extension: exactly one, magic-tagged, covered by
            // the MAC. Any other trailing bytes are malformed, as in v1.
            if (r.remaining() != kTraceWireSize || r.u32() != kTraceMagic) {
                ++rejected_malformed_;
                out.status = RecvStatus::kMalformed;
                return out;
            }
            TraceContext ctx;
            ctx.origin_device = r.u32();
            ctx.hop = r.u32();
            ctx.span_id = r.u64();
            ctx.parent_span_id = r.u64();
            out.trace = ctx;
        }
    } catch (const Error&) {
        ++rejected_malformed_;
        out.status = RecvStatus::kMalformed;
        return out;
    }

    if (!mac_.verify(body, tag)) {
        ++rejected_tag_;
        out.status = RecvStatus::kBadTag;
        out.payload.clear();
        return out;
    }
    if (out.sequence <= last_accepted_seq_) {
        ++rejected_replay_;
        out.status = RecvStatus::kReplay;
        out.payload.clear();
        return out;
    }

    last_accepted_seq_ = out.sequence;
    ++accepted_;
    out.status = RecvStatus::kOk;
    if (traced_) {
        // Only authenticated frames open a causal epoch; an untraced
        // authenticated frame closes the previous one.
        if (out.trace) {
            parent_ = *out.trace;
        } else {
            parent_.reset();
        }
    }
    return out;
}

}  // namespace cres::net
