#include "net/channel.h"

#include "util/error.h"
#include "util/serial.h"

namespace cres::net {

std::string recv_status_name(RecvStatus status) {
    switch (status) {
        case RecvStatus::kOk: return "ok";
        case RecvStatus::kMalformed: return "malformed";
        case RecvStatus::kBadTag: return "bad-tag";
        case RecvStatus::kReplay: return "replay";
    }
    return "?";
}

SecureChannel::SecureChannel(dev::Nic& nic, Bytes key)
    : nic_(nic), key_(std::move(key)), mac_(key_) {
    if (key_.empty()) throw NetError("SecureChannel: empty key");
}

void SecureChannel::send(BytesView payload) {
    BinaryWriter w;
    w.u64(next_seq_);
    w.blob(payload);
    const crypto::Hash256 tag = mac_.tag(w.data());
    w.raw(tag);
    ++next_seq_;
    ++sent_;
    nic_.send_frame(w.data());
}

std::optional<Received> SecureChannel::poll() {
    const auto frame = nic_.receive_frame();
    if (!frame) return std::nullopt;
    return process(*frame);
}

Received SecureChannel::process(BytesView frame) {
    Received out;
    if (frame.size() < 8 + 4 + 32) {
        ++rejected_malformed_;
        out.status = RecvStatus::kMalformed;
        return out;
    }
    const std::size_t body_len = frame.size() - 32;
    const BytesView body(frame.data(), body_len);
    const BytesView tag(frame.data() + body_len, 32);

    try {
        BinaryReader r(body);
        out.sequence = r.u64();
        out.payload = r.blob();
        if (!r.done()) {
            ++rejected_malformed_;
            out.status = RecvStatus::kMalformed;
            return out;
        }
    } catch (const Error&) {
        ++rejected_malformed_;
        out.status = RecvStatus::kMalformed;
        return out;
    }

    if (!mac_.verify(body, tag)) {
        ++rejected_tag_;
        out.status = RecvStatus::kBadTag;
        out.payload.clear();
        return out;
    }
    if (out.sequence <= last_accepted_seq_) {
        ++rejected_replay_;
        out.status = RecvStatus::kReplay;
        out.payload.clear();
        return out;
    }

    last_accepted_seq_ = out.sequence;
    ++accepted_;
    out.status = RecvStatus::kOk;
    return out;
}

}  // namespace cres::net
