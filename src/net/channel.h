// Authenticated M2M messaging channel over a NIC link.
//
// Wire format per frame (v1):
//   u64 sequence | u32 payload length | payload | 32-byte HMAC-SHA256
// Traced frames (v2) insert an optional causal-trace extension between
// the payload and the tag:
//   ... payload | u32 "CTX1" | u32 origin | u32 hop | u64 span
//               | u64 parent-span | 32-byte HMAC-SHA256
// The tag covers everything before it, trace included; v1 frames still
// parse, and any trailing bytes that are not a well-formed extension
// are rejected as malformed exactly as under v1. Strictly-increasing
// sequence numbers give replay protection. This is the "secure, verify
// and avoid man-in-middle attacks" requirement of the paper's Respond
// section.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/hmac.h"
#include "dev/nic.h"
#include "net/trace.h"
#include "util/bytes.h"

namespace cres::net {

enum class RecvStatus : std::uint8_t {
    kOk,
    kMalformed,
    kBadTag,
    kReplay,
};

std::string recv_status_name(RecvStatus status);

struct Received {
    RecvStatus status = RecvStatus::kOk;
    std::uint64_t sequence = 0;
    Bytes payload;
    /// Trace extension, when the frame carried one. Like `sequence`,
    /// it is populated even for kBadTag/kReplay frames: *claimed*
    /// metadata that monitors may surface but must never trust.
    std::optional<TraceContext> trace;
};

class SecureChannel {
public:
    /// Both ends must share `key` (provisioned out of band).
    SecureChannel(dev::Nic& nic, Bytes key);

    /// Sends an authenticated frame.
    void send(BytesView payload);

    /// Processes the next received frame, if any. Authentication
    /// failures are *returned* (so monitors can count them), never
    /// silently dropped.
    [[nodiscard]] std::optional<Received> poll();

    /// Verifies one externally-supplied frame (for callers that demux
    /// the NIC themselves, e.g. to route attestation traffic).
    [[nodiscard]] Received process(BytesView frame);

    /// Enables causal tracing: outbound frames carry a TraceContext
    /// whose span id is `(self << 32) | counter`. The context of each
    /// *authenticated* inbound traced frame becomes the parent of the
    /// frames sent while handling it (until the next authenticated
    /// frame opens a new causal epoch). Claimed contexts on rejected
    /// frames are surfaced in Received but never adopted.
    void enable_tracing(std::uint32_t self) noexcept {
        traced_ = true;
        self_ = self;
    }
    [[nodiscard]] bool tracing() const noexcept { return traced_; }

    /// Context stamped on the most recent traced send. `span_id == 0`
    /// means no traced frame has been sent yet.
    [[nodiscard]] const TraceContext& last_sent_trace() const noexcept {
        return last_sent_trace_;
    }

    /// Current inbound parent context, if any.
    [[nodiscard]] const std::optional<TraceContext>& parent() const noexcept {
        return parent_;
    }
    void clear_parent() noexcept { parent_.reset(); }

    // Telemetry.
    [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
    [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
    [[nodiscard]] std::uint64_t rejected_tag() const noexcept {
        return rejected_tag_;
    }
    [[nodiscard]] std::uint64_t rejected_replay() const noexcept {
        return rejected_replay_;
    }
    [[nodiscard]] std::uint64_t rejected_malformed() const noexcept {
        return rejected_malformed_;
    }

private:
    dev::Nic& nic_;
    Bytes key_;
    /// Keyed once per channel: frame MACs reuse the cached ipad/opad
    /// midstates on both the send and verify paths.
    crypto::HmacSha256 mac_;
    std::uint64_t next_seq_ = 1;
    std::uint64_t last_accepted_seq_ = 0;
    bool traced_ = false;
    std::uint32_t self_ = 0;
    std::uint64_t span_counter_ = 0;
    TraceContext last_sent_trace_;
    std::optional<TraceContext> parent_;
    std::uint64_t sent_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_tag_ = 0;
    std::uint64_t rejected_replay_ = 0;
    std::uint64_t rejected_malformed_ = 0;
};

}  // namespace cres::net
