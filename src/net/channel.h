// Authenticated M2M messaging channel over a NIC link.
//
// Wire format per frame:
//   u64 sequence | u32 payload length | payload | 32-byte HMAC-SHA256
// The tag covers sequence + payload; strictly-increasing sequence
// numbers give replay protection. This is the "secure, verify and avoid
// man-in-middle attacks" requirement of the paper's Respond section.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/hmac.h"
#include "dev/nic.h"
#include "util/bytes.h"

namespace cres::net {

enum class RecvStatus : std::uint8_t {
    kOk,
    kMalformed,
    kBadTag,
    kReplay,
};

std::string recv_status_name(RecvStatus status);

struct Received {
    RecvStatus status = RecvStatus::kOk;
    std::uint64_t sequence = 0;
    Bytes payload;
};

class SecureChannel {
public:
    /// Both ends must share `key` (provisioned out of band).
    SecureChannel(dev::Nic& nic, Bytes key);

    /// Sends an authenticated frame.
    void send(BytesView payload);

    /// Processes the next received frame, if any. Authentication
    /// failures are *returned* (so monitors can count them), never
    /// silently dropped.
    [[nodiscard]] std::optional<Received> poll();

    /// Verifies one externally-supplied frame (for callers that demux
    /// the NIC themselves, e.g. to route attestation traffic).
    [[nodiscard]] Received process(BytesView frame);

    // Telemetry.
    [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
    [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
    [[nodiscard]] std::uint64_t rejected_tag() const noexcept {
        return rejected_tag_;
    }
    [[nodiscard]] std::uint64_t rejected_replay() const noexcept {
        return rejected_replay_;
    }
    [[nodiscard]] std::uint64_t rejected_malformed() const noexcept {
        return rejected_malformed_;
    }

private:
    dev::Nic& nic_;
    Bytes key_;
    /// Keyed once per channel: frame MACs reuse the cached ipad/opad
    /// midstates on both the send and verify paths.
    crypto::HmacSha256 mac_;
    std::uint64_t next_seq_ = 1;
    std::uint64_t last_accepted_seq_ = 0;
    std::uint64_t sent_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_tag_ = 0;
    std::uint64_t rejected_replay_ = 0;
    std::uint64_t rejected_malformed_ = 0;
};

}  // namespace cres::net
