// Compact causal trace context carried across devices as a versioned
// extension of the SecureChannel frame format (see net/channel.h).
//
// The context names the device that originated a causal chain, how many
// M2M hops the chain has travelled, and the span ids linking one frame
// to the frame whose handling produced it. FleetMonitor uses propagated
// contexts to reconstruct exact infection DAGs (patient zero, per-device
// hop depth) instead of blind union-find components, and ChromeTrace
// renders the span pairs as Perfetto flow arrows between device tracks.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/serial.h"

namespace cres::net {

/// One hop of cross-device causality. Span ids are allocated by the
/// sending channel as `(device_index << 32) | counter`, so they are
/// deterministic and globally unique without coordination.
struct TraceContext {
    std::uint32_t origin_device = 0;   ///< Device index of the chain root.
    std::uint32_t hop = 0;             ///< Hops travelled from the origin.
    std::uint64_t span_id = 0;         ///< This frame's span.
    std::uint64_t parent_span_id = 0;  ///< Causing frame's span (0 = root).

    friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Wire tag introducing the optional trace extension between the payload
/// blob and the frame MAC ("CTX1" little-endian). A trailing segment
/// that does not open with this magic is rejected as malformed, exactly
/// as any trailing garbage was under the v1 format.
inline constexpr std::uint32_t kTraceMagic = 0x31585443u;

/// Serialized extension size: magic + origin + hop + span + parent.
inline constexpr std::size_t kTraceWireSize = 4 + 4 + 4 + 8 + 8;

/// Appends the wire encoding of `ctx` (magic included). The extension
/// sits before the frame MAC, so the MAC covers it.
inline void write_trace(BinaryWriter& w, const TraceContext& ctx) {
    w.u32(kTraceMagic);
    w.u32(ctx.origin_device);
    w.u32(ctx.hop);
    w.u64(ctx.span_id);
    w.u64(ctx.parent_span_id);
}

}  // namespace cres::net
