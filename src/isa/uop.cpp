#include "isa/uop.h"

namespace cres::isa {

Uop predecode(std::uint32_t word, mem::Addr pc) noexcept {
    const Instruction insn = decode(word);
    Uop u;
    u.rd = insn.rd & 0x0f;
    u.rs1 = insn.rs1 & 0x0f;
    u.rs2 = insn.rs2 & 0x0f;
    u.imm = insn.imm;
    u.simm = static_cast<std::uint32_t>(insn.simm());
    u.raw = word;

    if (!is_valid_opcode(word)) {
        u.kind = UopKind::kInvalid;
        return u;
    }

    switch (insn.opcode) {
        case Opcode::kNop: u.kind = UopKind::kNop; break;
        case Opcode::kHalt: u.kind = UopKind::kHalt; break;
        case Opcode::kAdd: u.kind = UopKind::kAdd; break;
        case Opcode::kSub: u.kind = UopKind::kSub; break;
        case Opcode::kAnd: u.kind = UopKind::kAnd; break;
        case Opcode::kOr: u.kind = UopKind::kOr; break;
        case Opcode::kXor: u.kind = UopKind::kXor; break;
        case Opcode::kShl: u.kind = UopKind::kShl; break;
        case Opcode::kShr: u.kind = UopKind::kShr; break;
        case Opcode::kSra: u.kind = UopKind::kSra; break;
        case Opcode::kMul: u.kind = UopKind::kMul; break;
        case Opcode::kSlt: u.kind = UopKind::kSlt; break;
        case Opcode::kSltu: u.kind = UopKind::kSltu; break;
        case Opcode::kAddi: u.kind = UopKind::kAddi; break;
        case Opcode::kAndi: u.kind = UopKind::kAndi; break;
        case Opcode::kOri: u.kind = UopKind::kOri; break;
        case Opcode::kXori: u.kind = UopKind::kXori; break;
        case Opcode::kShli: u.kind = UopKind::kShli; break;
        case Opcode::kShri: u.kind = UopKind::kShri; break;
        case Opcode::kLui: u.kind = UopKind::kLui; break;

        case Opcode::kLw: u.kind = UopKind::kLoad; u.size = 4; break;
        case Opcode::kLh: u.kind = UopKind::kLoad; u.size = 2; break;
        case Opcode::kLb: u.kind = UopKind::kLoad; u.size = 1; break;
        case Opcode::kSw: u.kind = UopKind::kStore; u.size = 4; break;
        case Opcode::kSh: u.kind = UopKind::kStore; u.size = 2; break;
        case Opcode::kSb: u.kind = UopKind::kStore; u.size = 1; break;

        case Opcode::kBeq: u.kind = UopKind::kBeq; break;
        case Opcode::kBne: u.kind = UopKind::kBne; break;
        case Opcode::kBlt: u.kind = UopKind::kBlt; break;
        case Opcode::kBge: u.kind = UopKind::kBge; break;
        case Opcode::kBltu: u.kind = UopKind::kBltu; break;
        case Opcode::kBgeu: u.kind = UopKind::kBgeu; break;

        case Opcode::kJal: u.kind = UopKind::kJal; break;
        case Opcode::kJalr: u.kind = UopKind::kJalr; break;

        case Opcode::kEcall: u.kind = UopKind::kEcall; break;
        case Opcode::kMret: u.kind = UopKind::kMret; break;
        case Opcode::kSmc: u.kind = UopKind::kSmc; break;
        case Opcode::kSret: u.kind = UopKind::kSret; break;
        case Opcode::kCsrr: u.kind = UopKind::kCsrr; break;
        case Opcode::kCsrw: u.kind = UopKind::kCsrw; break;
        case Opcode::kWfi: u.kind = UopKind::kWfi; break;
    }

    switch (u.kind) {
        case UopKind::kBeq:
        case UopKind::kBne:
        case UopKind::kBlt:
        case UopKind::kBge:
        case UopKind::kBltu:
        case UopKind::kBgeu:
        case UopKind::kJal:
            u.target = pc + u.simm;
            break;
        default:
            break;
    }
    return u;
}

}  // namespace cres::isa
