#include "isa/cpu.h"

#include <algorithm>

#include "util/error.h"

namespace cres::isa {

namespace {

constexpr unsigned kLinkRegister = 14;

std::int32_t as_signed(std::uint32_t v) noexcept {
    return static_cast<std::int32_t>(v);
}

}  // namespace

Cpu::Cpu(std::string name, mem::Bus& bus) : name_(std::move(name)), bus_(bus) {}

void Cpu::reset(mem::Addr entry, bool secure) {
    regs_.fill(0);
    csrs_.fill(0);
    pc_ = entry;
    privileged_ = true;
    secure_ = secure;
    halted_ = false;
    waiting_ = false;
    stall_ = 0;
}

std::uint32_t Cpu::reg(unsigned index) const noexcept {
    return index < 16 ? regs_[index] : 0;
}

void Cpu::set_reg(unsigned index, std::uint32_t value) noexcept {
    if (index > 0 && index < 16) regs_[index] = value;
}

std::uint32_t Cpu::csr(std::uint16_t number) const {
    if (number >= kCsrCount) {
        throw IsaError("Cpu::csr: bad CSR " + std::to_string(number));
    }
    if (number == kCsrMcycle) return static_cast<std::uint32_t>(cycles_);
    if (number == kCsrMinstret) return static_cast<std::uint32_t>(instret_);
    return csrs_[number];
}

void Cpu::set_csr(std::uint16_t number, std::uint32_t value) {
    if (number >= kCsrCount) {
        throw IsaError("Cpu::set_csr: bad CSR " + std::to_string(number));
    }
    csrs_[number] = value;
}

void Cpu::raise_irq(unsigned line) {
    if (line >= 32) throw IsaError("raise_irq: line out of range");
    csrs_[kCsrMip] |= (1u << line);
    waiting_ = false;
}

void Cpu::clear_irq(unsigned line) noexcept {
    if (line < 32) csrs_[kCsrMip] &= ~(1u << line);
}

void Cpu::add_observer(CpuObserver* observer) {
    if (observer == nullptr) throw IsaError("Cpu::add_observer: null");
    observers_.push_back(observer);
}

void Cpu::remove_observer(CpuObserver* observer) noexcept {
    std::erase(observers_, observer);
}

void Cpu::notify_world_switch() {
    for (CpuObserver* o : observers_) o->on_world_switch(secure_);
}

void Cpu::trap(std::uint32_t cause, std::uint32_t tval, mem::Addr epc) {
    ++trap_count_;
    csrs_[kCsrMepc] = epc;
    csrs_[kCsrMcause] = cause;
    csrs_[kCsrMtval] = tval;

    std::uint32_t status = csrs_[kCsrMstatus];
    // Save previous privilege and interrupt-enable, then mask interrupts.
    if (privileged_) {
        status |= kMstatusMpp;
    } else {
        status &= ~kMstatusMpp;
    }
    if (status & kMstatusMie) {
        status |= kMstatusMpie;
    } else {
        status &= ~kMstatusMpie;
    }
    status &= ~kMstatusMie;
    csrs_[kCsrMstatus] = status;

    privileged_ = true;
    pc_ = csrs_[kCsrMtvec];
    for (CpuObserver* o : observers_) o->on_trap(cause, epc);

    // An unconfigured trap vector means the platform has no handler:
    // the core halts rather than executing from address 0 forever.
    if (csrs_[kCsrMtvec] == 0) {
        halted_ = true;
        for (CpuObserver* o : observers_) o->on_halt(epc);
    }
}

void Cpu::inject_trap(TrapCause cause, std::uint32_t tval) {
    trap(static_cast<std::uint32_t>(cause), tval, pc_);
}

bool Cpu::take_pending_interrupt() {
    if ((csrs_[kCsrMstatus] & kMstatusMie) == 0) return false;
    const std::uint32_t pending = csrs_[kCsrMip] & csrs_[kCsrMie];
    if (pending == 0) return false;
    unsigned line = 0;
    while (((pending >> line) & 1u) == 0) ++line;
    csrs_[kCsrMip] &= ~(1u << line);  // Edge-style acknowledge.
    trap(static_cast<std::uint32_t>(TrapCause::kInterruptBase) | line, 0, pc_);
    return true;
}

bool Cpu::load(mem::Addr addr, std::uint32_t size, std::uint32_t& out,
               mem::Addr insn_pc) {
    if (addr % size != 0) {
        trap(static_cast<std::uint32_t>(TrapCause::kMisalignedAccess), addr,
             insn_pc);
        return false;
    }
    const auto decision =
        mpu_.check(addr, size, mem::AccessType::kRead, privileged_);
    if (!decision.allowed) {
        trap(static_cast<std::uint32_t>(TrapCause::kMpuFault), addr, insn_pc);
        return false;
    }
    const mem::BusAttr attr{mem::Master::kCpu, secure_, privileged_};
    std::uint32_t value = 0;
    if (bus_.access(mem::BusOp::kRead, addr, size, value, attr) !=
        mem::BusResponse::kOk) {
        trap(static_cast<std::uint32_t>(TrapCause::kBusFault), addr, insn_pc);
        return false;
    }
    out = value;
    return true;
}

bool Cpu::store(mem::Addr addr, std::uint32_t size, std::uint32_t value,
                mem::Addr insn_pc) {
    if (addr % size != 0) {
        trap(static_cast<std::uint32_t>(TrapCause::kMisalignedAccess), addr,
             insn_pc);
        return false;
    }
    const auto decision =
        mpu_.check(addr, size, mem::AccessType::kWrite, privileged_);
    if (!decision.allowed) {
        trap(static_cast<std::uint32_t>(TrapCause::kMpuFault), addr, insn_pc);
        return false;
    }
    const mem::BusAttr attr{mem::Master::kCpu, secure_, privileged_};
    std::uint32_t io = value;
    if (bus_.access(mem::BusOp::kWrite, addr, size, io, attr) !=
        mem::BusResponse::kOk) {
        trap(static_cast<std::uint32_t>(TrapCause::kBusFault), addr, insn_pc);
        return false;
    }
    return true;
}

void Cpu::tick(sim::Cycle /*now*/) {
    ++cycles_;
    if (halted_ || waiting_) {
        // A pending enabled interrupt wakes a waiting core.
        if (waiting_) (void)take_pending_interrupt();
        return;
    }
    if (stall_ > 0) {
        --stall_;
        return;
    }
    (void)step();
}

bool Cpu::step() {
    if (halted_) return false;
    if (take_pending_interrupt()) return true;
    if (waiting_) return true;

    const mem::Addr insn_pc = pc_;

    // Fetch (with MPU execute check).
    const auto decision =
        mpu_.check(insn_pc, 4, mem::AccessType::kExecute, privileged_);
    if (!decision.allowed) {
        trap(static_cast<std::uint32_t>(TrapCause::kMpuFault), insn_pc,
             insn_pc);
        return true;
    }
    const mem::BusAttr attr{mem::Master::kCpu, secure_, privileged_};
    std::uint32_t word = 0;
    if (bus_.access(mem::BusOp::kFetch, insn_pc, 4, word, attr) !=
        mem::BusResponse::kOk) {
        trap(static_cast<std::uint32_t>(TrapCause::kBusFault), insn_pc,
             insn_pc);
        return true;
    }

    if (!is_valid_opcode(word)) {
        trap(static_cast<std::uint32_t>(TrapCause::kIllegalInstruction), word,
             insn_pc);
        return true;
    }

    const Instruction insn = decode(word);
    for (CpuObserver* o : observers_) o->on_instruction(insn_pc, insn);

    pc_ = insn_pc + 4;
    execute(insn, insn_pc);
    ++instret_;
    return !halted_;
}

void Cpu::execute(const Instruction& insn, mem::Addr insn_pc) {
    const std::uint32_t a = reg(insn.rs1);
    const std::uint32_t b = reg(insn.rs2);
    const std::int32_t simm = insn.simm();

    switch (insn.opcode) {
        case Opcode::kNop:
            break;
        case Opcode::kHalt:
            halted_ = true;
            for (CpuObserver* o : observers_) o->on_halt(insn_pc);
            break;

        case Opcode::kAdd: set_reg(insn.rd, a + b); break;
        case Opcode::kSub: set_reg(insn.rd, a - b); break;
        case Opcode::kAnd: set_reg(insn.rd, a & b); break;
        case Opcode::kOr: set_reg(insn.rd, a | b); break;
        case Opcode::kXor: set_reg(insn.rd, a ^ b); break;
        case Opcode::kShl: set_reg(insn.rd, a << (b & 31)); break;
        case Opcode::kShr: set_reg(insn.rd, a >> (b & 31)); break;
        case Opcode::kSra:
            set_reg(insn.rd,
                    static_cast<std::uint32_t>(as_signed(a) >>
                                               static_cast<int>(b & 31)));
            break;
        case Opcode::kMul:
            set_reg(insn.rd, a * b);
            stall_ += 2;
            break;
        case Opcode::kSlt:
            set_reg(insn.rd, as_signed(a) < as_signed(b) ? 1 : 0);
            break;
        case Opcode::kSltu: set_reg(insn.rd, a < b ? 1 : 0); break;

        case Opcode::kAddi:
            set_reg(insn.rd, a + static_cast<std::uint32_t>(simm));
            break;
        case Opcode::kAndi: set_reg(insn.rd, a & insn.imm); break;
        case Opcode::kOri: set_reg(insn.rd, a | insn.imm); break;
        case Opcode::kXori: set_reg(insn.rd, a ^ insn.imm); break;
        case Opcode::kShli: set_reg(insn.rd, a << (insn.imm & 31)); break;
        case Opcode::kShri: set_reg(insn.rd, a >> (insn.imm & 31)); break;
        case Opcode::kLui:
            set_reg(insn.rd, static_cast<std::uint32_t>(insn.imm) << 16);
            break;

        case Opcode::kLw:
        case Opcode::kLh:
        case Opcode::kLb: {
            const std::uint32_t size = insn.opcode == Opcode::kLw   ? 4
                                       : insn.opcode == Opcode::kLh ? 2
                                                                    : 1;
            std::uint32_t value = 0;
            if (load(a + static_cast<std::uint32_t>(simm), size, value,
                     insn_pc)) {
                set_reg(insn.rd, value);
                // Memory latency (cache hit/miss aware) becomes stall
                // cycles — the architectural timing side channel.
                stall_ += bus_.last_latency() - 1;
            }
            break;
        }
        case Opcode::kSw:
        case Opcode::kSh:
        case Opcode::kSb: {
            const std::uint32_t size = insn.opcode == Opcode::kSw   ? 4
                                       : insn.opcode == Opcode::kSh ? 2
                                                                    : 1;
            if (store(a + static_cast<std::uint32_t>(simm), size, reg(insn.rd),
                      insn_pc)) {
                stall_ += bus_.last_latency() - 1;
            }
            break;
        }

        case Opcode::kBeq:
        case Opcode::kBne:
        case Opcode::kBlt:
        case Opcode::kBge:
        case Opcode::kBltu:
        case Opcode::kBgeu: {
            // Branches carry the second comparand in the rd field.
            const std::uint32_t lhs = a;
            const std::uint32_t rhs = reg(insn.rd);
            bool taken = false;
            switch (insn.opcode) {
                case Opcode::kBeq: taken = lhs == rhs; break;
                case Opcode::kBne: taken = lhs != rhs; break;
                case Opcode::kBlt: taken = as_signed(lhs) < as_signed(rhs); break;
                case Opcode::kBge: taken = as_signed(lhs) >= as_signed(rhs); break;
                case Opcode::kBltu: taken = lhs < rhs; break;
                case Opcode::kBgeu: taken = lhs >= rhs; break;
                default: break;
            }
            if (taken) {
                pc_ = insn_pc + static_cast<std::uint32_t>(simm);
            }
            break;
        }

        case Opcode::kJal: {
            const mem::Addr target = insn_pc + static_cast<std::uint32_t>(simm);
            set_reg(insn.rd, insn_pc + 4);
            pc_ = target;
            if (insn.rd == kLinkRegister) {
                for (CpuObserver* o : observers_) o->on_call(insn_pc, target);
            }
            break;
        }
        case Opcode::kJalr: {
            const mem::Addr target =
                (a + static_cast<std::uint32_t>(simm)) & ~3u;
            const bool is_return =
                insn.rd == 0 && insn.rs1 == kLinkRegister && simm == 0;
            set_reg(insn.rd, insn_pc + 4);
            pc_ = target;
            if (is_return) {
                for (CpuObserver* o : observers_) o->on_return(insn_pc, target);
            } else if (insn.rd == kLinkRegister) {
                for (CpuObserver* o : observers_) o->on_call(insn_pc, target);
            }
            break;
        }

        case Opcode::kEcall: {
            if (ecall_handler_ && ecall_handler_(*this, insn.imm)) break;
            trap(static_cast<std::uint32_t>(TrapCause::kEcall), insn.imm,
                 insn_pc + 4);
            break;
        }
        case Opcode::kMret: {
            if (!privileged_) {
                trap(static_cast<std::uint32_t>(
                         TrapCause::kIllegalInstruction),
                     0, insn_pc);
                break;
            }
            std::uint32_t status = csrs_[kCsrMstatus];
            privileged_ = (status & kMstatusMpp) != 0;
            if (status & kMstatusMpie) {
                status |= kMstatusMie;
            } else {
                status &= ~kMstatusMie;
            }
            csrs_[kCsrMstatus] = status;
            pc_ = csrs_[kCsrMepc];
            break;
        }
        case Opcode::kSmc: {
            if (!privileged_) {
                trap(static_cast<std::uint32_t>(TrapCause::kSecurityFault),
                     insn.imm, insn_pc);
                break;
            }
            if (csrs_[kCsrStvec] == 0) {
                // No secure world installed.
                trap(static_cast<std::uint32_t>(TrapCause::kSecurityFault),
                     insn.imm, insn_pc);
                break;
            }
            csrs_[kCsrSepc] = insn_pc + 4;
            secure_ = true;
            pc_ = csrs_[kCsrStvec];
            notify_world_switch();
            break;
        }
        case Opcode::kSret: {
            if (!secure_ || !privileged_) {
                trap(static_cast<std::uint32_t>(TrapCause::kSecurityFault), 0,
                     insn_pc);
                break;
            }
            secure_ = false;
            pc_ = csrs_[kCsrSepc];
            notify_world_switch();
            break;
        }
        case Opcode::kCsrr: {
            if (!privileged_) {
                trap(static_cast<std::uint32_t>(
                         TrapCause::kIllegalInstruction),
                     insn.imm, insn_pc);
                break;
            }
            if (insn.imm >= kCsrCount) {
                trap(static_cast<std::uint32_t>(
                         TrapCause::kIllegalInstruction),
                     insn.imm, insn_pc);
                break;
            }
            if ((insn.imm == kCsrStvec || insn.imm == kCsrSepc) && !secure_) {
                trap(static_cast<std::uint32_t>(TrapCause::kSecurityFault),
                     insn.imm, insn_pc);
                break;
            }
            set_reg(insn.rd, csr(insn.imm));
            break;
        }
        case Opcode::kCsrw: {
            if (!privileged_ || insn.imm >= kCsrCount ||
                insn.imm == kCsrMcycle || insn.imm == kCsrMinstret) {
                trap(static_cast<std::uint32_t>(
                         TrapCause::kIllegalInstruction),
                     insn.imm, insn_pc);
                break;
            }
            if ((insn.imm == kCsrStvec || insn.imm == kCsrSepc) && !secure_) {
                trap(static_cast<std::uint32_t>(TrapCause::kSecurityFault),
                     insn.imm, insn_pc);
                break;
            }
            csrs_[insn.imm] = reg(insn.rs1);
            for (CpuObserver* o : observers_) {
                o->on_csr_write(insn.imm, reg(insn.rs1));
            }
            break;
        }
        case Opcode::kWfi:
            waiting_ = true;
            break;
    }
}

}  // namespace cres::isa
