#include "isa/cpu.h"

#include <algorithm>
#include <cassert>

#include "util/error.h"

namespace cres::isa {

namespace {

constexpr unsigned kLinkRegister = 14;

std::int32_t as_signed(std::uint32_t v) noexcept {
    return static_cast<std::int32_t>(v);
}

}  // namespace

Cpu::Cpu(std::string name, mem::Bus& bus) : name_(std::move(name)), bus_(bus) {}

void Cpu::reset(mem::Addr entry, bool secure) {
    regs_.fill(0);
    csrs_.fill(0);
    pc_ = entry;
    privileged_ = true;
    secure_ = secure;
    halted_ = false;
    waiting_ = false;
    stall_ = 0;
    elide_live_ = false;
}

std::uint32_t Cpu::reg(unsigned index) const noexcept {
    assert(index < 16 && "Cpu::reg: register index out of range");
    return index < 16 ? regs_[index] : 0;
}

void Cpu::set_reg(unsigned index, std::uint32_t value) noexcept {
    assert(index < 16 && "Cpu::set_reg: register index out of range");
    if (index > 0 && index < 16) regs_[index] = value;
}

std::uint32_t Cpu::csr(std::uint16_t number) const {
    if (number >= kCsrCount) {
        throw IsaError("Cpu::csr: bad CSR " + std::to_string(number));
    }
    if (number == kCsrMcycle) return static_cast<std::uint32_t>(cycles_);
    if (number == kCsrMinstret) return static_cast<std::uint32_t>(instret_);
    return csrs_[number];
}

void Cpu::set_csr(std::uint16_t number, std::uint32_t value) {
    if (number >= kCsrCount) {
        throw IsaError("Cpu::set_csr: bad CSR " + std::to_string(number));
    }
    csrs_[number] = value;
}

void Cpu::raise_irq(unsigned line) {
    if (line >= 32) throw IsaError("raise_irq: line out of range");
    csrs_[kCsrMip] |= (1u << line);
    waiting_ = false;
}

void Cpu::clear_irq(unsigned line) noexcept {
    if (line < 32) csrs_[kCsrMip] &= ~(1u << line);
}

void Cpu::add_observer(CpuObserver* observer) {
    if (observer == nullptr) throw IsaError("Cpu::add_observer: null");
    observers_.push_back(observer);
}

void Cpu::remove_observer(CpuObserver* observer) noexcept {
    std::erase(observers_, observer);
}

void Cpu::notify_world_switch() {
    for (CpuObserver* o : observers_) o->on_world_switch(secure_);
}

void Cpu::install_translation(std::shared_ptr<const TranslationImage> image) {
    clear_translation();
    if (image == nullptr || image->uops.empty()) return;
    translation_ = std::move(image);
    env_valid_ = false;
    // Any successful write into the covered window — any master — drops
    // the translation: self-modifying or tampered code must execute
    // through the interpreter, which fetches the real bytes.
    bus_.set_write_watch(
        translation_->base, translation_->size_bytes,
        [this](mem::Addr /*addr*/, std::uint32_t /*size*/) {
            clear_translation();
        });
}

void Cpu::clear_translation() noexcept {
    if (translation_ == nullptr) return;
    translation_.reset();
    env_valid_ = false;
    elide_live_ = false;
    bus_.clear_write_watch();
}

bool Cpu::translation_usable() {
    if (translation_ == nullptr) return false;
    if (env_valid_ && env_mpu_generation_ == mpu_.generation() &&
        env_bus_generation_ == bus_.config_generation() &&
        env_privileged_ == privileged_ && env_secure_ == secure_) {
        return env_usable_;
    }
    env_mpu_generation_ = mpu_.generation();
    env_bus_generation_ = bus_.config_generation();
    env_privileged_ = privileged_;
    env_secure_ = secure_;
    env_valid_ = true;

    // Check elision is only admissible while the MPU is disabled: the
    // static proofs are stated against the SoC segment map, and an MPU
    // program can be strictly tighter than it. With the MPU off, an
    // elided access and a checked access behave identically (the MPU
    // check is a no-op and alignment was proven), so lockstep with the
    // interpreter is preserved by construction.
    env_elide_ = elide_enabled_ && !mpu_.enabled();

    // Whole-window bus probe is sound: bus regions never overlap, so a
    // window decoded by one fetchable region implies every 4-byte fetch
    // inside it succeeds. MPU regions may overlap, so execute permission
    // is probed at fetch granularity, exactly as the interpreter checks.
    const mem::BusAttr attr{mem::Master::kCpu, secure_, privileged_};
    bool usable = bus_.fetch_allowed(translation_->base,
                                     translation_->size_bytes, attr);
    const mem::Addr end = translation_->base + translation_->size_bytes;
    for (mem::Addr a = translation_->base; usable && a < end; a += 4) {
        usable = mpu_.allows(a, 4, mem::AccessType::kExecute, privileged_);
    }
    env_usable_ = usable;
    return env_usable_;
}

void Cpu::trap(std::uint32_t cause, std::uint32_t tval, mem::Addr epc) {
    ++trap_count_;
    elide_live_ = false;  // Vector entry is computed control flow.
    csrs_[kCsrMepc] = epc;
    csrs_[kCsrMcause] = cause;
    csrs_[kCsrMtval] = tval;

    std::uint32_t status = csrs_[kCsrMstatus];
    // Save previous privilege and interrupt-enable, then mask interrupts.
    if (privileged_) {
        status |= kMstatusMpp;
    } else {
        status &= ~kMstatusMpp;
    }
    if (status & kMstatusMie) {
        status |= kMstatusMpie;
    } else {
        status &= ~kMstatusMpie;
    }
    status &= ~kMstatusMie;
    csrs_[kCsrMstatus] = status;

    privileged_ = true;
    pc_ = csrs_[kCsrMtvec];
    for (CpuObserver* o : observers_) o->on_trap(cause, epc);

    // An unconfigured trap vector means the platform has no handler:
    // the core halts rather than executing from address 0 forever.
    if (csrs_[kCsrMtvec] == 0) {
        halted_ = true;
        for (CpuObserver* o : observers_) o->on_halt(epc);
    }
}

void Cpu::inject_trap(TrapCause cause, std::uint32_t tval) {
    trap(static_cast<std::uint32_t>(cause), tval, pc_);
}

bool Cpu::take_pending_interrupt() {
    if ((csrs_[kCsrMstatus] & kMstatusMie) == 0) return false;
    const std::uint32_t pending = csrs_[kCsrMip] & csrs_[kCsrMie];
    if (pending == 0) return false;
    unsigned line = 0;
    while (((pending >> line) & 1u) == 0) ++line;
    csrs_[kCsrMip] &= ~(1u << line);  // Edge-style acknowledge.
    trap(static_cast<std::uint32_t>(TrapCause::kInterruptBase) | line, 0, pc_);
    return true;
}

bool Cpu::load(mem::Addr addr, std::uint32_t size, std::uint32_t& out,
               mem::Addr insn_pc, bool elide) {
    if (elide) {
        ++elided_ops_;
    } else {
        if (addr % size != 0) {
            trap(static_cast<std::uint32_t>(TrapCause::kMisalignedAccess),
                 addr, insn_pc);
            return false;
        }
        const auto decision =
            mpu_.check(addr, size, mem::AccessType::kRead, privileged_);
        if (!decision.allowed) {
            trap(static_cast<std::uint32_t>(TrapCause::kMpuFault), addr,
                 insn_pc);
            return false;
        }
    }
    const mem::BusAttr attr{mem::Master::kCpu, secure_, privileged_};
    std::uint32_t value = 0;
    if (bus_.access(mem::BusOp::kRead, addr, size, value, attr) !=
        mem::BusResponse::kOk) {
        trap(static_cast<std::uint32_t>(TrapCause::kBusFault), addr, insn_pc);
        return false;
    }
    out = value;
    return true;
}

bool Cpu::store(mem::Addr addr, std::uint32_t size, std::uint32_t value,
                mem::Addr insn_pc, bool elide) {
    if (elide) {
        ++elided_ops_;
    } else {
        if (addr % size != 0) {
            trap(static_cast<std::uint32_t>(TrapCause::kMisalignedAccess),
                 addr, insn_pc);
            return false;
        }
        const auto decision =
            mpu_.check(addr, size, mem::AccessType::kWrite, privileged_);
        if (!decision.allowed) {
            trap(static_cast<std::uint32_t>(TrapCause::kMpuFault), addr,
                 insn_pc);
            return false;
        }
    }
    const mem::BusAttr attr{mem::Master::kCpu, secure_, privileged_};
    std::uint32_t io = value;
    if (bus_.access(mem::BusOp::kWrite, addr, size, io, attr) !=
        mem::BusResponse::kOk) {
        trap(static_cast<std::uint32_t>(TrapCause::kBusFault), addr, insn_pc);
        return false;
    }
    return true;
}

void Cpu::tick(sim::Cycle /*now*/) {
    ++cycles_;
    if (halted_ || waiting_) {
        // A pending enabled interrupt wakes a waiting core.
        if (waiting_) (void)take_pending_interrupt();
        return;
    }
    if (stall_ > 0) {
        --stall_;
        return;
    }
    (void)step();
}

sim::Cycle Cpu::next_activity(sim::Cycle now) {
    if (halted_) return kIdleForever;
    if (waiting_) {
        // A deliverable interrupt is taken on the very next tick;
        // otherwise the core sleeps until raise_irq clears waiting_
        // (which only happens on an actually stepped cycle).
        return irq_deliverable() ? now : kIdleForever;
    }
    if (stall_ > 0) return now + stall_;
    return now;
}

void Cpu::skip(sim::Cycle /*now*/, sim::Cycle cycles) {
    cycles_ += cycles;
    if (!halted_ && !waiting_ && stall_ > 0) {
        stall_ -= static_cast<std::uint32_t>(
            cycles < stall_ ? cycles : stall_);
    }
}

bool Cpu::step() {
    if (halted_) return false;
    if (take_pending_interrupt()) return true;
    if (waiting_) return true;

    const mem::Addr insn_pc = pc_;

    // Tier-1/2 fast path: retire straight from the translation, eliding
    // the per-instruction MPU execute check, bus fetch and decode. All
    // three are proven for the whole window by translation_usable() and
    // the image's `translated` flags; the write watch guarantees the
    // predecoded bytes still match memory.
    if (translation_ != nullptr && (insn_pc & 3u) == 0 &&
        translation_->contains(insn_pc)) {
        const std::size_t idx = (insn_pc - translation_->base) >> 2;
        const std::uint8_t flags = translation_->translated[idx];
        if ((flags & TranslationImage::kTranslated) != 0 &&
            translation_usable()) {
            // Reaching a superblock entry word re-arms check elision:
            // every safe bit is proven for any machine state at its
            // block's entry, so elision is sound from here until the
            // next computed control transfer.
            if ((flags & TranslationImage::kBlockStart) != 0) {
                elide_live_ = true;
            }
            // Copied by value: exec_one may store into the code window,
            // firing the write watch that frees this very image.
            const Uop u = translation_->uops[idx];
            if (!observers_.empty()) {
                const Instruction insn = decode(u.raw);
                for (CpuObserver* o : observers_) {
                    o->on_instruction(insn_pc, insn);
                }
            }
            pc_ = insn_pc + 4;
            exec_one(u, insn_pc);
            ++instret_;
            ++translated_instret_;
            return !halted_;
        }
    }

    // Tier 0: the interpreter. Fetch (with MPU execute check).
    const auto decision =
        mpu_.check(insn_pc, 4, mem::AccessType::kExecute, privileged_);
    if (!decision.allowed) {
        trap(static_cast<std::uint32_t>(TrapCause::kMpuFault), insn_pc,
             insn_pc);
        return true;
    }
    const mem::BusAttr attr{mem::Master::kCpu, secure_, privileged_};
    std::uint32_t word = 0;
    if (bus_.access(mem::BusOp::kFetch, insn_pc, 4, word, attr) !=
        mem::BusResponse::kOk) {
        trap(static_cast<std::uint32_t>(TrapCause::kBusFault), insn_pc,
             insn_pc);
        return true;
    }

    if (!is_valid_opcode(word)) {
        trap(static_cast<std::uint32_t>(TrapCause::kIllegalInstruction), word,
             insn_pc);
        return true;
    }

    const Instruction insn = decode(word);
    for (CpuObserver* o : observers_) o->on_instruction(insn_pc, insn);

    pc_ = insn_pc + 4;
    exec_one(predecode(word, insn_pc), insn_pc);
    ++instret_;
    return !halted_;
}

std::uint64_t Cpu::run_steps(std::uint64_t max_steps) {
    std::uint64_t done = 0;
    while (done < max_steps) {
        if (halted_) break;
        if (take_pending_interrupt()) {
            ++done;
            continue;
        }
        if (waiting_) break;

#if defined(__GNUC__) || defined(__clang__)
        // Tier 2: computed-goto threaded dispatch. Pin the image for the
        // burst — a store below may fire the bus write watch and clear
        // translation_ mid-instruction; the local reference keeps the
        // micro-ops alive until the burst unwinds.
        const std::shared_ptr<const TranslationImage> image = translation_;
        if (image != nullptr && observers_.empty() && translation_usable()) {
            const std::uint64_t before = done;
            const Uop* const uops = image->uops.data();
            const std::uint8_t* const translated = image->translated.data();
            const mem::Addr base = image->base;
            const std::uint32_t size = image->size_bytes;
            const Uop* up = nullptr;
            mem::Addr insn_pc = 0;
            std::uint8_t wflags = 0;

            // Indexed by UopKind. System ops and kInvalid go through the
            // generic executor and end the burst (they can trap, switch
            // privilege/world or reconfigure the environment).
            static const void* const kDispatch[kUopKindCount] = {
                &&op_nop,  &&op_halt, &&op_add,   &&op_sub,  &&op_and,
                &&op_or,   &&op_xor,  &&op_shl,   &&op_shr,  &&op_sra,
                &&op_mul,  &&op_slt,  &&op_sltu,  &&op_addi, &&op_andi,
                &&op_ori,  &&op_xori, &&op_shli,  &&op_shri, &&op_lui,
                &&op_load, &&op_store, &&op_beq,  &&op_bne,  &&op_blt,
                &&op_bge,  &&op_bltu, &&op_bgeu,  &&op_jal,  &&op_jalr,
                &&op_slow, &&op_slow, &&op_slow,  &&op_slow, &&op_slow,
                &&op_slow, &&op_wfi,  &&op_slow,
            };

        dispatch:
            if (done == max_steps) goto burst_end;
            if (irq_deliverable()) goto burst_end;
            insn_pc = pc_;
            if ((insn_pc & 3u) != 0 || insn_pc - base >= size) goto burst_end;
            wflags = translated[(insn_pc - base) >> 2];
            if ((wflags & TranslationImage::kTranslated) == 0) goto burst_end;
            if ((wflags & TranslationImage::kBlockStart) != 0) {
                elide_live_ = true;  // Superblock entry: re-arm elision.
            }
            up = &uops[(insn_pc - base) >> 2];
            pc_ = insn_pc + 4;
            goto* kDispatch[static_cast<std::size_t>(up->kind)];

        op_nop:
            goto retire;
        op_halt:
            halted_ = true;
            goto retire_end;
        op_add:
            set_reg(up->rd, regs_[up->rs1] + regs_[up->rs2]);
            goto retire;
        op_sub:
            set_reg(up->rd, regs_[up->rs1] - regs_[up->rs2]);
            goto retire;
        op_and:
            set_reg(up->rd, regs_[up->rs1] & regs_[up->rs2]);
            goto retire;
        op_or:
            set_reg(up->rd, regs_[up->rs1] | regs_[up->rs2]);
            goto retire;
        op_xor:
            set_reg(up->rd, regs_[up->rs1] ^ regs_[up->rs2]);
            goto retire;
        op_shl:
            set_reg(up->rd, regs_[up->rs1] << (regs_[up->rs2] & 31));
            goto retire;
        op_shr:
            set_reg(up->rd, regs_[up->rs1] >> (regs_[up->rs2] & 31));
            goto retire;
        op_sra:
            set_reg(up->rd,
                    static_cast<std::uint32_t>(
                        as_signed(regs_[up->rs1]) >>
                        static_cast<int>(regs_[up->rs2] & 31)));
            goto retire;
        op_mul:
            set_reg(up->rd, regs_[up->rs1] * regs_[up->rs2]);
            stall_ += 2;
            goto retire;
        op_slt:
            set_reg(up->rd,
                    as_signed(regs_[up->rs1]) < as_signed(regs_[up->rs2]) ? 1
                                                                          : 0);
            goto retire;
        op_sltu:
            set_reg(up->rd, regs_[up->rs1] < regs_[up->rs2] ? 1 : 0);
            goto retire;
        op_addi:
            set_reg(up->rd, regs_[up->rs1] + up->simm);
            goto retire;
        op_andi:
            set_reg(up->rd, regs_[up->rs1] & up->imm);
            goto retire;
        op_ori:
            set_reg(up->rd, regs_[up->rs1] | up->imm);
            goto retire;
        op_xori:
            set_reg(up->rd, regs_[up->rs1] ^ up->imm);
            goto retire;
        op_shli:
            set_reg(up->rd, regs_[up->rs1] << (up->imm & 31));
            goto retire;
        op_shri:
            set_reg(up->rd, regs_[up->rs1] >> (up->imm & 31));
            goto retire;
        op_lui:
            set_reg(up->rd, static_cast<std::uint32_t>(up->imm) << 16);
            goto retire;
        op_load: {
            std::uint32_t value = 0;
            if (!load(regs_[up->rs1] + up->simm, up->size, value, insn_pc,
                      (up->safe & Uop::kSafeLoad) != 0 && env_elide_ &&
                          elide_live_)) {
                goto retire_end;  // Trapped: pc is at the handler.
            }
            set_reg(up->rd, value);
            stall_ += bus_.last_latency() - 1;
            goto retire;
        }
        op_store:
            if (!store(regs_[up->rs1] + up->simm, up->size, regs_[up->rd],
                       insn_pc,
                       (up->safe & Uop::kSafeStore) != 0 && env_elide_ &&
                           elide_live_)) {
                goto retire_end;  // Trapped: pc is at the handler.
            }
            stall_ += bus_.last_latency() - 1;
            // The store may have hit the code window and dropped the
            // translation; the dispatch header reads the pinned (stale)
            // image, so unwind and let the outer loop re-evaluate.
            if (translation_.get() != image.get()) goto retire_end;
            goto retire;
        op_beq:
            if (regs_[up->rs1] == regs_[up->rd]) pc_ = up->target;
            goto retire;
        op_bne:
            if (regs_[up->rs1] != regs_[up->rd]) pc_ = up->target;
            goto retire;
        op_blt:
            if (as_signed(regs_[up->rs1]) < as_signed(regs_[up->rd])) {
                pc_ = up->target;
            }
            goto retire;
        op_bge:
            if (as_signed(regs_[up->rs1]) >= as_signed(regs_[up->rd])) {
                pc_ = up->target;
            }
            goto retire;
        op_bltu:
            if (regs_[up->rs1] < regs_[up->rd]) pc_ = up->target;
            goto retire;
        op_bgeu:
            if (regs_[up->rs1] >= regs_[up->rd]) pc_ = up->target;
            goto retire;
        op_jal:
            set_reg(up->rd, insn_pc + 4);
            pc_ = up->target;
            goto retire;
        op_jalr: {
            const mem::Addr target = (regs_[up->rs1] + up->simm) & ~3u;
            set_reg(up->rd, insn_pc + 4);
            pc_ = target;
            elide_live_ = false;  // Computed transfer: drop elision.
            goto retire;
        }
        op_wfi:
            waiting_ = true;
            goto retire_end;
        op_slow:
            exec_one(*up, insn_pc);
            goto retire_end;

        retire:
            ++instret_;
            ++translated_instret_;
            ++done;
            goto dispatch;
        retire_end:
            ++instret_;
            ++translated_instret_;
            ++done;
            goto burst_end;

        burst_end:
            if (done != before) continue;
            // Fall through: pc left the translated window with no
            // progress — interpret one instruction below.
        }
#endif
        // Tier 0/1 for this step: the interpreter, or the translated
        // fast path inside step() when observers need synthesizing.
        if (!step()) break;
        ++done;
    }
    return done;
}

void Cpu::exec_one(const Uop& u, mem::Addr insn_pc) {
    const std::uint32_t a = reg(u.rs1);
    const std::uint32_t b = reg(u.rs2);

    switch (u.kind) {
        case UopKind::kNop:
            break;
        case UopKind::kHalt:
            halted_ = true;
            for (CpuObserver* o : observers_) o->on_halt(insn_pc);
            break;

        case UopKind::kAdd: set_reg(u.rd, a + b); break;
        case UopKind::kSub: set_reg(u.rd, a - b); break;
        case UopKind::kAnd: set_reg(u.rd, a & b); break;
        case UopKind::kOr: set_reg(u.rd, a | b); break;
        case UopKind::kXor: set_reg(u.rd, a ^ b); break;
        case UopKind::kShl: set_reg(u.rd, a << (b & 31)); break;
        case UopKind::kShr: set_reg(u.rd, a >> (b & 31)); break;
        case UopKind::kSra:
            set_reg(u.rd,
                    static_cast<std::uint32_t>(as_signed(a) >>
                                               static_cast<int>(b & 31)));
            break;
        case UopKind::kMul:
            set_reg(u.rd, a * b);
            stall_ += 2;
            break;
        case UopKind::kSlt:
            set_reg(u.rd, as_signed(a) < as_signed(b) ? 1 : 0);
            break;
        case UopKind::kSltu: set_reg(u.rd, a < b ? 1 : 0); break;

        case UopKind::kAddi: set_reg(u.rd, a + u.simm); break;
        case UopKind::kAndi: set_reg(u.rd, a & u.imm); break;
        case UopKind::kOri: set_reg(u.rd, a | u.imm); break;
        case UopKind::kXori: set_reg(u.rd, a ^ u.imm); break;
        case UopKind::kShli: set_reg(u.rd, a << (u.imm & 31)); break;
        case UopKind::kShri: set_reg(u.rd, a >> (u.imm & 31)); break;
        case UopKind::kLui:
            set_reg(u.rd, static_cast<std::uint32_t>(u.imm) << 16);
            break;

        case UopKind::kLoad: {
            std::uint32_t value = 0;
            if (load(a + u.simm, u.size, value, insn_pc,
                     (u.safe & Uop::kSafeLoad) != 0 && env_elide_ &&
                         elide_live_)) {
                set_reg(u.rd, value);
                // Memory latency (cache hit/miss aware) becomes stall
                // cycles — the architectural timing side channel.
                stall_ += bus_.last_latency() - 1;
            }
            break;
        }
        case UopKind::kStore: {
            if (store(a + u.simm, u.size, reg(u.rd), insn_pc,
                      (u.safe & Uop::kSafeStore) != 0 && env_elide_ &&
                          elide_live_)) {
                stall_ += bus_.last_latency() - 1;
            }
            break;
        }

        case UopKind::kBeq:
        case UopKind::kBne:
        case UopKind::kBlt:
        case UopKind::kBge:
        case UopKind::kBltu:
        case UopKind::kBgeu: {
            // Branches carry the second comparand in the rd field.
            const std::uint32_t lhs = a;
            const std::uint32_t rhs = reg(u.rd);
            bool taken = false;
            switch (u.kind) {
                case UopKind::kBeq: taken = lhs == rhs; break;
                case UopKind::kBne: taken = lhs != rhs; break;
                case UopKind::kBlt:
                    taken = as_signed(lhs) < as_signed(rhs);
                    break;
                case UopKind::kBge:
                    taken = as_signed(lhs) >= as_signed(rhs);
                    break;
                case UopKind::kBltu: taken = lhs < rhs; break;
                case UopKind::kBgeu: taken = lhs >= rhs; break;
                default: break;
            }
            if (taken) pc_ = u.target;
            break;
        }

        case UopKind::kJal: {
            set_reg(u.rd, insn_pc + 4);
            pc_ = u.target;
            if (u.rd == kLinkRegister) {
                for (CpuObserver* o : observers_) {
                    o->on_call(insn_pc, u.target);
                }
            }
            break;
        }
        case UopKind::kJalr: {
            const mem::Addr target = (a + u.simm) & ~3u;
            const bool is_return =
                u.rd == 0 && u.rs1 == kLinkRegister && u.simm == 0;
            set_reg(u.rd, insn_pc + 4);
            pc_ = target;
            elide_live_ = false;  // Computed transfer: drop elision.
            if (is_return) {
                for (CpuObserver* o : observers_) o->on_return(insn_pc, target);
            } else if (u.rd == kLinkRegister) {
                for (CpuObserver* o : observers_) o->on_call(insn_pc, target);
            }
            break;
        }

        case UopKind::kEcall: {
            if (ecall_handler_ && ecall_handler_(*this, u.imm)) break;
            trap(static_cast<std::uint32_t>(TrapCause::kEcall), u.imm,
                 insn_pc + 4);
            break;
        }
        case UopKind::kMret: {
            if (!privileged_) {
                trap(static_cast<std::uint32_t>(
                         TrapCause::kIllegalInstruction),
                     0, insn_pc);
                break;
            }
            std::uint32_t status = csrs_[kCsrMstatus];
            privileged_ = (status & kMstatusMpp) != 0;
            if (status & kMstatusMpie) {
                status |= kMstatusMie;
            } else {
                status &= ~kMstatusMie;
            }
            csrs_[kCsrMstatus] = status;
            pc_ = csrs_[kCsrMepc];
            elide_live_ = false;  // Computed transfer: drop elision.
            break;
        }
        case UopKind::kSmc: {
            if (!privileged_) {
                trap(static_cast<std::uint32_t>(TrapCause::kSecurityFault),
                     u.imm, insn_pc);
                break;
            }
            if (csrs_[kCsrStvec] == 0) {
                // No secure world installed.
                trap(static_cast<std::uint32_t>(TrapCause::kSecurityFault),
                     u.imm, insn_pc);
                break;
            }
            csrs_[kCsrSepc] = insn_pc + 4;
            secure_ = true;
            pc_ = csrs_[kCsrStvec];
            elide_live_ = false;  // Computed transfer: drop elision.
            notify_world_switch();
            break;
        }
        case UopKind::kSret: {
            if (!secure_ || !privileged_) {
                trap(static_cast<std::uint32_t>(TrapCause::kSecurityFault), 0,
                     insn_pc);
                break;
            }
            secure_ = false;
            pc_ = csrs_[kCsrSepc];
            elide_live_ = false;  // Computed transfer: drop elision.
            notify_world_switch();
            break;
        }
        case UopKind::kCsrr: {
            if (!privileged_) {
                trap(static_cast<std::uint32_t>(
                         TrapCause::kIllegalInstruction),
                     u.imm, insn_pc);
                break;
            }
            if (u.imm >= kCsrCount) {
                trap(static_cast<std::uint32_t>(
                         TrapCause::kIllegalInstruction),
                     u.imm, insn_pc);
                break;
            }
            if ((u.imm == kCsrStvec || u.imm == kCsrSepc) && !secure_) {
                trap(static_cast<std::uint32_t>(TrapCause::kSecurityFault),
                     u.imm, insn_pc);
                break;
            }
            set_reg(u.rd, csr(u.imm));
            break;
        }
        case UopKind::kCsrw: {
            if (!privileged_ || u.imm >= kCsrCount || u.imm == kCsrMcycle ||
                u.imm == kCsrMinstret) {
                trap(static_cast<std::uint32_t>(
                         TrapCause::kIllegalInstruction),
                     u.imm, insn_pc);
                break;
            }
            if ((u.imm == kCsrStvec || u.imm == kCsrSepc) && !secure_) {
                trap(static_cast<std::uint32_t>(TrapCause::kSecurityFault),
                     u.imm, insn_pc);
                break;
            }
            csrs_[u.imm] = reg(u.rs1);
            for (CpuObserver* o : observers_) {
                o->on_csr_write(u.imm, reg(u.rs1));
            }
            break;
        }
        case UopKind::kWfi:
            waiting_ = true;
            break;

        case UopKind::kInvalid:
            // Unreachable from the fast paths (invalid words are never
            // marked translated); the interpreter rejects them before
            // decode. Kept for defence in depth.
            trap(static_cast<std::uint32_t>(TrapCause::kIllegalInstruction),
                 u.raw, insn_pc);
            break;
    }
}

}  // namespace cres::isa
