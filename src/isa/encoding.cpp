#include "isa/encoding.h"

#include <map>

namespace cres::isa {

namespace {

const std::map<Opcode, std::string>& mnemonic_table() {
    static const std::map<Opcode, std::string> table = {
        {Opcode::kNop, "nop"},     {Opcode::kHalt, "halt"},
        {Opcode::kAdd, "add"},     {Opcode::kSub, "sub"},
        {Opcode::kAnd, "and"},     {Opcode::kOr, "or"},
        {Opcode::kXor, "xor"},     {Opcode::kShl, "shl"},
        {Opcode::kShr, "shr"},     {Opcode::kSra, "sra"},
        {Opcode::kMul, "mul"},     {Opcode::kSlt, "slt"},
        {Opcode::kSltu, "sltu"},   {Opcode::kAddi, "addi"},
        {Opcode::kAndi, "andi"},   {Opcode::kOri, "ori"},
        {Opcode::kXori, "xori"},   {Opcode::kShli, "shli"},
        {Opcode::kShri, "shri"},   {Opcode::kLui, "lui"},
        {Opcode::kLw, "lw"},       {Opcode::kLh, "lh"},
        {Opcode::kLb, "lb"},       {Opcode::kSw, "sw"},
        {Opcode::kSh, "sh"},       {Opcode::kSb, "sb"},
        {Opcode::kBeq, "beq"},     {Opcode::kBne, "bne"},
        {Opcode::kBlt, "blt"},     {Opcode::kBge, "bge"},
        {Opcode::kBltu, "bltu"},   {Opcode::kBgeu, "bgeu"},
        {Opcode::kJal, "jal"},     {Opcode::kJalr, "jalr"},
        {Opcode::kEcall, "ecall"}, {Opcode::kMret, "mret"},
        {Opcode::kSmc, "smc"},     {Opcode::kSret, "sret"},
        {Opcode::kCsrr, "csrr"},   {Opcode::kCsrw, "csrw"},
        {Opcode::kWfi, "wfi"},
    };
    return table;
}

}  // namespace

std::string opcode_name(Opcode op) {
    const auto& table = mnemonic_table();
    const auto it = table.find(op);
    return it == table.end() ? "?" : it->second;
}

std::optional<Opcode> opcode_from_name(const std::string& mnemonic) {
    for (const auto& [op, name] : mnemonic_table()) {
        if (name == mnemonic) return op;
    }
    return std::nullopt;
}

std::uint32_t encode(const Instruction& insn) noexcept {
    // rs2 lives in imm bits [15:12]; an instruction uses one or the
    // other (see encoding.h), so OR-ing both is safe.
    return (static_cast<std::uint32_t>(insn.opcode) << 24) |
           (static_cast<std::uint32_t>(insn.rd & 0x0f) << 20) |
           (static_cast<std::uint32_t>(insn.rs1 & 0x0f) << 16) |
           (static_cast<std::uint32_t>(insn.rs2 & 0x0f) << 12) |
           static_cast<std::uint32_t>(insn.imm);
}

Instruction decode(std::uint32_t word) noexcept {
    Instruction insn;
    insn.opcode = static_cast<Opcode>((word >> 24) & 0xff);
    insn.rd = static_cast<std::uint8_t>((word >> 20) & 0x0f);
    insn.rs1 = static_cast<std::uint8_t>((word >> 16) & 0x0f);
    insn.imm = static_cast<std::uint16_t>(word & 0xffff);
    insn.rs2 = static_cast<std::uint8_t>((word >> 12) & 0x0f);
    return insn;
}

bool is_valid_opcode(std::uint32_t word) noexcept {
    const auto op = static_cast<Opcode>((word >> 24) & 0xff);
    return mnemonic_table().count(op) != 0;
}

std::string trap_cause_name(std::uint32_t cause) {
    if (cause >= static_cast<std::uint32_t>(TrapCause::kInterruptBase)) {
        return "interrupt-" + std::to_string(cause & 0x7fffffff);
    }
    switch (static_cast<TrapCause>(cause)) {
        case TrapCause::kIllegalInstruction: return "illegal-instruction";
        case TrapCause::kBusFault: return "bus-fault";
        case TrapCause::kMpuFault: return "mpu-fault";
        case TrapCause::kEcall: return "ecall";
        case TrapCause::kSecurityFault: return "security-fault";
        case TrapCause::kMisalignedAccess: return "misaligned-access";
        default: return "unknown-" + std::to_string(cause);
    }
}

}  // namespace cres::isa
