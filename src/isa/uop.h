// Predecoded micro-op form of CRV32 and the superblock translation
// image the two-tier execution engine runs from.
//
// Tier 1 (threaded dispatch, Cpu::run_steps) and tier 2 (the per-step
// fast path in Cpu::step) both execute Uops instead of re-decoding the
// instruction word on every retirement. A TranslationImage is built
// once per firmware image (src/analysis/translate.h drives the CFG
// builder over the code), is immutable afterwards, and is shared
// read-only between every core running the same measured image — the
// per-node execution state stays entirely inside each Cpu, which is
// what keeps the parallel fleet bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/encoding.h"
#include "mem/bus.h"

namespace cres::isa {

/// Micro-op kinds. Loads/stores collapse to one kind each (the width
/// moves into Uop::size); everything else maps 1:1 onto the ISA.
/// kInvalid marks words whose opcode field is undefined — they are
/// never marked translated, so execution reaches them only through the
/// interpreter, which raises the architectural illegal-instruction
/// trap.
enum class UopKind : std::uint8_t {
    kNop = 0,
    kHalt,
    kAdd,
    kSub,
    kAnd,
    kOr,
    kXor,
    kShl,
    kShr,
    kSra,
    kMul,
    kSlt,
    kSltu,
    kAddi,
    kAndi,
    kOri,
    kXori,
    kShli,
    kShri,
    kLui,
    kLoad,
    kStore,
    kBeq,
    kBne,
    kBlt,
    kBge,
    kBltu,
    kBgeu,
    kJal,
    kJalr,
    kEcall,
    kMret,
    kSmc,
    kSret,
    kCsrr,
    kCsrw,
    kWfi,
    kInvalid,
};

inline constexpr std::size_t kUopKindCount =
    static_cast<std::size_t>(UopKind::kInvalid) + 1;

/// One predecoded instruction. All fields the executor needs are
/// precomputed: the sign-extended immediate, the absolute branch/jal
/// target (pc-relative arithmetic done at translation time) and the
/// access width. `raw` keeps the original word so observer callbacks
/// can be synthesized exactly as the interpreter would emit them.
struct Uop {
    /// Uop::safe bit values. analysis::ProofAnnotations uses the same
    /// encoding (kLoadProven/kStoreProven), copied verbatim by the
    /// translator.
    static constexpr std::uint8_t kSafeLoad = 1;
    static constexpr std::uint8_t kSafeStore = 2;

    UopKind kind = UopKind::kInvalid;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint8_t size = 0;      ///< Access width for kLoad/kStore.
    std::uint8_t safe = 0;      ///< Proof bits (analysis::ProofAnnotations):
                                ///< access proven in-bounds + aligned, so the
                                ///< executor may elide its MPU/bounds checks.
    std::uint16_t imm = 0;      ///< Raw imm16 (CSR number, ecall service).
    std::uint32_t simm = 0;     ///< sext(imm16), two's complement.
    std::uint32_t target = 0;   ///< pc + sext(imm) for branches/jal.
    std::uint32_t raw = 0;      ///< Original instruction word.
};

/// Predecodes one instruction word fetched from `pc`. Words with an
/// undefined opcode come back as kInvalid.
[[nodiscard]] Uop predecode(std::uint32_t word, mem::Addr pc) noexcept;

/// One CFG-discovered superblock: a maximal single-entry straight-line
/// run of translated words (see src/analysis/cfg.h for how blocks are
/// discovered; docs/EXECUTION.md for the lifecycle).
struct Superblock {
    mem::Addr start = 0;
    mem::Addr end = 0;  ///< One past the last word (exclusive).
    bool terminal = false;       ///< Ends in halt/mret/sret/ret.
    bool indirect_exit = false;  ///< Ends in an unresolved jalr.
};

/// The immutable translation of one firmware image: a flat per-word
/// micro-op array plus the superblock table. Words the CFG proved
/// reachable-and-valid are marked `translated`; everything else (data
/// words, unreachable code, undefined opcodes, gadgets injected
/// outside the image) executes through the interpreter.
struct TranslationImage {
    mem::Addr base = 0;            ///< Load address of the image.
    std::uint32_t size_bytes = 0;  ///< Word-aligned image extent.
    mem::Addr entry = 0;           ///< Entry point the CFG explored from.

    /// Per-word flag bits in `translated`.
    static constexpr std::uint8_t kTranslated = 1;  ///< Fast-path eligible.
    static constexpr std::uint8_t kBlockStart = 2;  ///< Superblock entry word.

    std::vector<Uop> uops;                  ///< One per 32-bit word.
    std::vector<std::uint8_t> translated;   ///< Bitmask of the flags above.
    std::vector<Superblock> blocks;         ///< Sorted by start address.
    std::size_t translated_words = 0;

    [[nodiscard]] bool contains(mem::Addr pc) const noexcept {
        return pc - base < size_bytes;
    }
    /// Fraction of image words covered by superblocks (0 when empty).
    [[nodiscard]] double coverage() const noexcept {
        return uops.empty() ? 0.0
                            : static_cast<double>(translated_words) /
                                  static_cast<double>(uops.size());
    }
};

}  // namespace cres::isa
