// CRV32 CPU: a two-tier guest-execution engine.
//
// Models the architectural surface the paper's monitors observe:
// privilege (machine/user), security state (secure/non-secure world),
// MPU-checked memory accesses, traps, interrupts, CSRs and cycle
// accounting. Monitors attach as CpuObservers; they see instruction
// retirement, calls/returns (for control-flow integrity), traps and
// world switches.
//
// Execution tiers (docs/EXECUTION.md has the full design):
//   0. Interpreter — fetch through MPU+bus, decode, execute. Always
//      available; the reference semantics every other tier must match
//      instruction-for-instruction.
//   1. Translated step() — with a TranslationImage installed, step()
//      retires predecoded micro-ops directly, eliding the fetch
//      (validity guaranteed by the image + environment stamps). Used
//      by tick(), so cycle accounting is untouched.
//   2. run_steps() — computed-goto threaded dispatch over the micro-op
//      stream for step-driven callers (benches, batch simulation).
// All tiers share one semantics implementation (exec_one); tiers 1-2
// only change how the next micro-op is obtained.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/encoding.h"
#include "isa/uop.h"
#include "mem/bus.h"
#include "mem/mpu.h"
#include "sim/simulator.h"

namespace cres::isa {

class Cpu;

/// Hook interface for monitors and tracing.
class CpuObserver {
public:
    virtual ~CpuObserver() = default;
    virtual void on_instruction(mem::Addr pc, const Instruction& insn) {
        (void)pc;
        (void)insn;
    }
    /// A call: jal/jalr writing the link register.
    virtual void on_call(mem::Addr from, mem::Addr target) {
        (void)from;
        (void)target;
    }
    /// A return: jalr r0, lr, 0 style.
    virtual void on_return(mem::Addr from, mem::Addr target) {
        (void)from;
        (void)target;
    }
    virtual void on_trap(std::uint32_t cause, mem::Addr pc) {
        (void)cause;
        (void)pc;
    }
    virtual void on_halt(mem::Addr pc) { (void)pc; }
    virtual void on_world_switch(bool secure) { (void)secure; }
    virtual void on_csr_write(std::uint16_t csr, std::uint32_t value) {
        (void)csr;
        (void)value;
    }
};

/// Optional OS-service hook: when set, an ecall is first offered to the
/// handler (modelling firmware services); returning true suppresses the
/// architectural trap.
using EcallHandler = std::function<bool(Cpu&, std::uint16_t service)>;

class Cpu : public sim::Tickable {
public:
    Cpu(std::string name, mem::Bus& bus);

    /// Resets registers and enters machine mode at `entry`.
    void reset(mem::Addr entry, bool secure = false);

    /// One simulation cycle: either retires an instruction or burns a
    /// stall cycle (loads/stores and mul are multi-cycle).
    void tick(sim::Cycle now) override;

    /// Quiescence (docs/SCHEDULER.md): a halted core — or one parked in
    /// WFI with no deliverable interrupt — is idle until externally
    /// re-armed (raise_irq wakes a waiting core); a stalling core wakes
    /// when the stall drains. Idle ticks only advance mcycle, which
    /// skip() replays in O(1).
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) override;
    void skip(sim::Cycle now, sim::Cycle cycles) override;

    /// Executes exactly one instruction (ignoring stall modelling).
    /// Returns false when halted.
    bool step();

    /// Executes up to `max_steps` step events with threaded dispatch
    /// over the installed translation, falling back to step() outside
    /// it. A step event is one instruction retirement or one trap /
    /// interrupt delivery — exactly what one step() call performs.
    /// Returns the number of events executed; stops early when the core
    /// halts or parks in WFI. Architecturally equivalent to calling
    /// step() in a loop — same regs/CSRs/instret/trap history — and,
    /// like step(), it accumulates but does not burn stall cycles.
    std::uint64_t run_steps(std::uint64_t max_steps);

    // --- Translation (tier 1/2 execution) -------------------------------
    /// Installs a predecoded translation of guest code memory. The image
    /// is shared (typically fleet-wide, keyed by firmware digest) and
    /// immutable; the CPU registers a bus write watch over the covered
    /// window so any successful write — any master — invalidates it.
    void install_translation(std::shared_ptr<const TranslationImage> image);

    /// Drops the installed translation and its write watch; execution
    /// reverts to the plain interpreter. Safe to call from within the
    /// write-watch callback (i.e. mid-instruction on self-modification).
    void clear_translation() noexcept;

    [[nodiscard]] bool translation_active() const noexcept {
        return translation_ != nullptr;
    }
    [[nodiscard]] const TranslationImage* translation() const noexcept {
        return translation_.get();
    }
    /// Instructions retired via the translated fast path (tier 1/2).
    [[nodiscard]] std::uint64_t translated_instret() const noexcept {
        return translated_instret_;
    }

    /// Enables/disables proof-carrying check elision (on by default).
    /// When on, loads/stores whose Uop::safe proof bit is set skip the
    /// per-access alignment and MPU checks on the translated tiers —
    /// but only while the MPU is disabled (proofs are stated against
    /// the SoC segment map, not the current MPU program) and execution
    /// has entered the current superblock through its entry word
    /// (computed control flow drops the guard; see docs/EXECUTION.md).
    void set_check_elision(bool on) noexcept {
        elide_enabled_ = on;
        elide_live_ = false;
        env_valid_ = false;
    }
    [[nodiscard]] bool check_elision_enabled() const noexcept {
        return elide_enabled_;
    }
    /// Memory accesses retired with their checks elided.
    [[nodiscard]] std::uint64_t elided_ops() const noexcept {
        return elided_ops_;
    }

    // --- Architectural state -------------------------------------------
    /// Register access. Valid indices are 0..15; out-of-range indices
    /// assert in debug builds. Release builds keep the historical
    /// hardened behaviour: out-of-range reads return 0, out-of-range
    /// writes are ignored (as are writes to r0, which is hardwired zero).
    [[nodiscard]] std::uint32_t reg(unsigned index) const noexcept;
    void set_reg(unsigned index, std::uint32_t value) noexcept;
    [[nodiscard]] mem::Addr pc() const noexcept { return pc_; }
    void set_pc(mem::Addr pc) noexcept {
        pc_ = pc;
        // External redirection invalidates the superblock-entry
        // assumption behind check elision until the next block entry.
        elide_live_ = false;
    }
    [[nodiscard]] bool privileged() const noexcept { return privileged_; }
    [[nodiscard]] bool secure() const noexcept { return secure_; }
    [[nodiscard]] bool halted() const noexcept { return halted_; }
    [[nodiscard]] bool waiting() const noexcept { return waiting_; }
    /// Drops privilege to user mode (used by the OS model after boot).
    void enter_user_mode() noexcept { privileged_ = false; }

    [[nodiscard]] std::uint32_t csr(std::uint16_t number) const;
    void set_csr(std::uint16_t number, std::uint32_t value);

    [[nodiscard]] mem::Mpu& mpu() noexcept { return mpu_; }
    [[nodiscard]] const mem::Mpu& mpu() const noexcept { return mpu_; }

    // --- Interrupts -----------------------------------------------------
    void raise_irq(unsigned line);
    void clear_irq(unsigned line) noexcept;

    // --- Hooks ----------------------------------------------------------
    void add_observer(CpuObserver* observer);
    void remove_observer(CpuObserver* observer) noexcept;
    void set_ecall_handler(EcallHandler handler) {
        ecall_handler_ = std::move(handler);
    }

    // --- Telemetry -------------------------------------------------------
    [[nodiscard]] std::uint64_t instret() const noexcept { return instret_; }
    [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
    [[nodiscard]] std::uint64_t trap_count() const noexcept {
        return trap_count_;
    }
    [[nodiscard]] std::string_view name() const noexcept { return name_; }

    /// Forces an architectural trap from outside (used by the response
    /// manager to preempt a task).
    void inject_trap(TrapCause cause, std::uint32_t tval = 0);

    /// Stops the core (response: task kill). reset() restarts it.
    void halt() noexcept { halted_ = true; }

private:
    /// The single semantics implementation all execution tiers share.
    /// Executes one predecoded micro-op; pc_ has already been advanced
    /// to insn_pc + 4 (traps and branches overwrite it).
    void exec_one(const Uop& u, mem::Addr insn_pc);
    void trap(std::uint32_t cause, std::uint32_t tval, mem::Addr epc);
    bool take_pending_interrupt();

    /// True when the installed translation is still valid for the
    /// current execution environment (MPU/bus configuration, privilege
    /// and security state). Cached per environment generation; the
    /// revalidation probes are silent (no faults, no bus transactions).
    bool translation_usable();
    [[nodiscard]] bool irq_deliverable() const noexcept {
        return (csrs_[kCsrMstatus] & kMstatusMie) != 0 &&
               (csrs_[kCsrMip] & csrs_[kCsrMie]) != 0;
    }

    /// Memory helpers; on fault they trap and return false. `elide`
    /// skips the alignment and MPU checks (proven statically); the bus
    /// access itself always happens.
    bool load(mem::Addr addr, std::uint32_t size, std::uint32_t& out,
              mem::Addr insn_pc, bool elide = false);
    bool store(mem::Addr addr, std::uint32_t size, std::uint32_t value,
               mem::Addr insn_pc, bool elide = false);

    void notify_world_switch();

    std::string name_;
    mem::Bus& bus_;
    mem::Mpu mpu_;

    std::array<std::uint32_t, 16> regs_{};
    mem::Addr pc_ = 0;
    bool privileged_ = true;
    bool secure_ = false;
    bool halted_ = true;
    bool waiting_ = false;

    std::array<std::uint32_t, kCsrCount> csrs_{};

    std::uint64_t instret_ = 0;
    std::uint64_t cycles_ = 0;
    std::uint64_t trap_count_ = 0;
    std::uint32_t stall_ = 0;

    std::vector<CpuObserver*> observers_;
    EcallHandler ecall_handler_;

    // Translation state. The image is shared and immutable; everything
    // mutable about execution stays in this Cpu (per-node state), which
    // is what keeps fleet-parallel runs bit-identical to serial runs.
    std::shared_ptr<const TranslationImage> translation_;
    std::uint64_t translated_instret_ = 0;
    // Proof-carrying check elision (ProofAnnotations → Uop::safe).
    bool elide_enabled_ = true;  ///< Knob (NodeConfig/FleetConfig).
    bool elide_live_ = false;    ///< Entered this block via its entry word.
    bool env_elide_ = false;     ///< Environment admits elision (MPU off).
    std::uint64_t elided_ops_ = 0;
    // Environment stamp for the cached translation-validity verdict.
    std::uint64_t env_mpu_generation_ = 0;
    std::uint64_t env_bus_generation_ = 0;
    bool env_privileged_ = false;
    bool env_secure_ = false;
    bool env_valid_ = false;   ///< Stamp matches current environment.
    bool env_usable_ = false;  ///< Verdict cached under that stamp.
};

}  // namespace cres::isa
