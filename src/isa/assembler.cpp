#include "isa/assembler.h"

#include <cctype>
#include <functional>
#include <sstream>
#include <vector>

#include "isa/encoding.h"
#include "util/error.h"

namespace cres::isa {

namespace {

struct Token {
    std::string text;
};

/// One source statement after lexing.
struct Statement {
    std::size_t line_no = 0;
    std::string mnemonic;             // Lower-case, or ".word" etc.
    std::vector<std::string> operands;
    std::string ascii_payload;        // For .ascii only.
};

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
    throw IsaError("asm line " + std::to_string(line_no) + ": " + message);
}

std::string lower(std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return s;
}

std::optional<std::uint8_t> parse_register(const std::string& name) {
    const std::string n = lower(name);
    if (n == "zero") return 0;
    if (n == "sp") return 13;
    if (n == "lr") return 14;
    if (n.size() >= 2 && n[0] == 'r') {
        int v = 0;
        for (std::size_t i = 1; i < n.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(n[i]))) {
                return std::nullopt;
            }
            v = v * 10 + (n[i] - '0');
        }
        if (v >= 0 && v <= 15) return static_cast<std::uint8_t>(v);
    }
    return std::nullopt;
}

std::optional<std::uint16_t> parse_csr(const std::string& name) {
    static const std::map<std::string, std::uint16_t> csrs = {
        {"mstatus", kCsrMstatus}, {"mepc", kCsrMepc},
        {"mcause", kCsrMcause},   {"mtval", kCsrMtval},
        {"mtvec", kCsrMtvec},     {"mscratch", kCsrMscratch},
        {"stvec", kCsrStvec},     {"sepc", kCsrSepc},
        {"mie", kCsrMie},         {"mip", kCsrMip},
        {"mcycle", kCsrMcycle},   {"minstret", kCsrMinstret},
    };
    const auto it = csrs.find(lower(name));
    if (it != csrs.end()) return it->second;
    return std::nullopt;
}

std::optional<std::int64_t> parse_number(const std::string& text) {
    if (text.empty()) return std::nullopt;
    std::size_t i = 0;
    bool negative = false;
    if (text[0] == '-') {
        negative = true;
        i = 1;
    }
    if (i >= text.size()) return std::nullopt;
    std::int64_t value = 0;
    if (text.size() > i + 1 && text[i] == '0' &&
        (text[i + 1] == 'x' || text[i + 1] == 'X')) {
        i += 2;
        if (i >= text.size()) return std::nullopt;
        for (; i < text.size(); ++i) {
            const char c = static_cast<char>(std::tolower(text[i]));
            int digit;
            if (c >= '0' && c <= '9') digit = c - '0';
            else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
            else return std::nullopt;
            value = value * 16 + digit;
        }
    } else {
        for (; i < text.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
                return std::nullopt;
            }
            value = value * 10 + (text[i] - '0');
        }
    }
    return negative ? -value : value;
}

/// Lexes the source into statements; labels are returned via callback.
std::vector<Statement> lex(const std::string& source,
                           const std::function<void(std::size_t, std::string,
                                                    std::size_t)>& on_label) {
    std::vector<Statement> statements;
    std::istringstream in(source);
    std::string raw_line;
    std::size_t line_no = 0;

    while (std::getline(in, raw_line)) {
        ++line_no;
        // Strip comments (respecting none inside .ascii quotes).
        std::string line;
        bool in_quote = false;
        for (char c : raw_line) {
            if (c == '"') in_quote = !in_quote;
            if (!in_quote && (c == ';' || c == '#')) break;
            line.push_back(c);
        }

        // Peel off leading labels.
        std::size_t pos = 0;
        while (true) {
            while (pos < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[pos]))) {
                ++pos;
            }
            std::size_t end = pos;
            while (end < line.size() && line[end] != ':' &&
                   !std::isspace(static_cast<unsigned char>(line[end]))) {
                ++end;
            }
            if (end < line.size() && line[end] == ':' && end > pos) {
                on_label(line_no, line.substr(pos, end - pos),
                         statements.size());
                pos = end + 1;
                continue;
            }
            break;
        }

        const std::string rest = line.substr(pos);
        if (rest.find_first_not_of(" \t\r") == std::string::npos) continue;

        Statement st;
        st.line_no = line_no;

        std::size_t i = 0;
        while (i < rest.size() &&
               std::isspace(static_cast<unsigned char>(rest[i]))) {
            ++i;
        }
        std::size_t m_end = i;
        while (m_end < rest.size() &&
               !std::isspace(static_cast<unsigned char>(rest[m_end]))) {
            ++m_end;
        }
        st.mnemonic = lower(rest.substr(i, m_end - i));
        i = m_end;

        if (st.mnemonic == ".ascii") {
            const std::size_t open = rest.find('"', i);
            const std::size_t close = rest.rfind('"');
            if (open == std::string::npos || close <= open) {
                fail(line_no, ".ascii expects a quoted string");
            }
            st.ascii_payload = rest.substr(open + 1, close - open - 1);
        } else {
            // Comma/space separated operands.
            std::string operand;
            for (; i <= rest.size(); ++i) {
                const char c = i < rest.size() ? rest[i] : ',';
                if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
                    if (!operand.empty()) {
                        st.operands.push_back(operand);
                        operand.clear();
                    }
                } else {
                    operand.push_back(c);
                }
            }
        }
        statements.push_back(std::move(st));
    }
    return statements;
}

/// Size in bytes of one statement.
std::size_t statement_size(const Statement& st) {
    if (st.mnemonic == ".word") return 4 * st.operands.size();
    if (st.mnemonic == ".space") {
        const auto n = parse_number(st.operands.empty() ? "" : st.operands[0]);
        if (!n || *n < 0) fail(st.line_no, ".space expects a size");
        return static_cast<std::size_t>(*n);
    }
    if (st.mnemonic == ".ascii") return st.ascii_payload.size();
    if (st.mnemonic == "li" || st.mnemonic == "la") return 8;
    return 4;
}

class Encoder {
public:
    Encoder(const std::map<std::string, mem::Addr>& symbols, mem::Addr origin)
        : symbols_(symbols), origin_(origin) {}

    void encode_statement(const Statement& st, mem::Addr addr, Bytes& out) {
        if (st.mnemonic == ".word") {
            for (const auto& op : st.operands) {
                emit_word(out, resolve_value(st, op));
            }
            return;
        }
        if (st.mnemonic == ".space") {
            const auto n = parse_number(st.operands[0]);
            out.insert(out.end(), static_cast<std::size_t>(*n), 0);
            return;
        }
        if (st.mnemonic == ".ascii") {
            for (char c : st.ascii_payload) {
                out.push_back(static_cast<std::uint8_t>(c));
            }
            return;
        }
        // Pseudo-instructions.
        if (st.mnemonic == "li" || st.mnemonic == "la") {
            require_operands(st, 2);
            const std::uint8_t rd = reg(st, 0);
            const std::uint32_t value = resolve_value(st, st.operands[1]);
            emit(out, Instruction{Opcode::kLui, rd, 0, 0,
                                  static_cast<std::uint16_t>(value >> 16)});
            emit(out, Instruction{Opcode::kOri, rd, rd, 0,
                                  static_cast<std::uint16_t>(value & 0xffff)});
            return;
        }
        if (st.mnemonic == "mv") {
            require_operands(st, 2);
            emit(out, Instruction{Opcode::kAddi, reg(st, 0), reg(st, 1), 0, 0});
            return;
        }
        if (st.mnemonic == "ret") {
            require_operands(st, 0);
            emit(out, Instruction{Opcode::kJalr, 0, 14, 0, 0});
            return;
        }
        if (st.mnemonic == "call") {
            require_operands(st, 1);
            emit(out, Instruction{Opcode::kJal, 14, 0, 0,
                                  rel_imm(st, st.operands[0], addr)});
            return;
        }
        if (st.mnemonic == "j") {
            require_operands(st, 1);
            emit(out, Instruction{Opcode::kJal, 0, 0, 0,
                                  rel_imm(st, st.operands[0], addr)});
            return;
        }

        const auto opcode = opcode_from_name(st.mnemonic);
        if (!opcode) fail(st.line_no, "unknown mnemonic '" + st.mnemonic + "'");
        encode_native(st, *opcode, addr, out);
    }

private:
    void encode_native(const Statement& st, Opcode op, mem::Addr addr,
                       Bytes& out) {
        Instruction insn;
        insn.opcode = op;
        switch (op) {
            case Opcode::kNop:
            case Opcode::kHalt:
            case Opcode::kMret:
            case Opcode::kSret:
            case Opcode::kWfi:
                require_operands(st, 0);
                break;
            case Opcode::kAdd:
            case Opcode::kSub:
            case Opcode::kAnd:
            case Opcode::kOr:
            case Opcode::kXor:
            case Opcode::kShl:
            case Opcode::kShr:
            case Opcode::kSra:
            case Opcode::kMul:
            case Opcode::kSlt:
            case Opcode::kSltu:
                require_operands(st, 3);
                insn.rd = reg(st, 0);
                insn.rs1 = reg(st, 1);
                insn.rs2 = reg(st, 2);
                break;
            case Opcode::kAddi:
            case Opcode::kAndi:
            case Opcode::kOri:
            case Opcode::kXori:
            case Opcode::kShli:
            case Opcode::kShri:
            case Opcode::kLw:
            case Opcode::kLh:
            case Opcode::kLb:
            case Opcode::kSw:
            case Opcode::kSh:
            case Opcode::kSb:
            case Opcode::kJalr:
                require_operands(st, 3);
                insn.rd = reg(st, 0);
                insn.rs1 = reg(st, 1);
                insn.imm = imm16(st, st.operands[2]);
                break;
            case Opcode::kLui:
                require_operands(st, 2);
                insn.rd = reg(st, 0);
                insn.imm = imm16(st, st.operands[1]);
                break;
            case Opcode::kBeq:
            case Opcode::kBne:
            case Opcode::kBlt:
            case Opcode::kBge:
            case Opcode::kBltu:
            case Opcode::kBgeu:
                require_operands(st, 3);
                // Second comparand travels in the rd field.
                insn.rs1 = reg(st, 0);
                insn.rd = reg(st, 1);
                insn.imm = rel_imm(st, st.operands[2], addr);
                break;
            case Opcode::kJal:
                require_operands(st, 2);
                insn.rd = reg(st, 0);
                insn.imm = rel_imm(st, st.operands[1], addr);
                break;
            case Opcode::kEcall:
            case Opcode::kSmc:
                if (st.operands.size() > 1) {
                    fail(st.line_no, "expected at most one operand");
                }
                if (!st.operands.empty()) {
                    insn.imm = imm16(st, st.operands[0]);
                }
                break;
            case Opcode::kCsrr: {
                require_operands(st, 2);
                insn.rd = reg(st, 0);
                const auto csr = csr_number(st, st.operands[1]);
                insn.imm = csr;
                break;
            }
            case Opcode::kCsrw: {
                require_operands(st, 2);
                const auto csr = csr_number(st, st.operands[0]);
                insn.imm = csr;
                insn.rs1 = reg(st, 1);
                break;
            }
        }
        emit(out, insn);
    }

    void require_operands(const Statement& st, std::size_t n) {
        if (st.operands.size() != n) {
            fail(st.line_no, "expected " + std::to_string(n) + " operands, got " +
                                 std::to_string(st.operands.size()));
        }
    }

    std::uint8_t reg(const Statement& st, std::size_t index) {
        const auto r = parse_register(st.operands[index]);
        if (!r) fail(st.line_no, "bad register '" + st.operands[index] + "'");
        return *r;
    }

    std::uint16_t csr_number(const Statement& st, const std::string& text) {
        const auto named = parse_csr(text);
        if (named) return *named;
        const auto n = parse_number(text);
        if (n && *n >= 0 && *n < kCsrCount) {
            return static_cast<std::uint16_t>(*n);
        }
        fail(st.line_no, "bad CSR '" + text + "'");
    }

    std::uint32_t resolve_value(const Statement& st, const std::string& text) {
        const auto n = parse_number(text);
        if (n) return static_cast<std::uint32_t>(*n);
        const auto it = symbols_.find(text);
        if (it != symbols_.end()) return it->second;
        fail(st.line_no, "undefined symbol '" + text + "'");
    }

    std::uint16_t imm16(const Statement& st, const std::string& text) {
        const auto n = parse_number(text);
        std::int64_t value;
        if (n) {
            value = *n;
        } else {
            const auto it = symbols_.find(text);
            if (it == symbols_.end()) {
                fail(st.line_no, "undefined symbol '" + text + "'");
            }
            value = it->second;
        }
        if (value < -32768 || value > 65535) {
            fail(st.line_no, "immediate out of 16-bit range: " + text);
        }
        return static_cast<std::uint16_t>(value & 0xffff);
    }

    std::uint16_t rel_imm(const Statement& st, const std::string& text,
                          mem::Addr addr) {
        const auto n = parse_number(text);
        std::int64_t offset;
        if (n) {
            offset = *n;
        } else {
            const auto it = symbols_.find(text);
            if (it == symbols_.end()) {
                fail(st.line_no, "undefined label '" + text + "'");
            }
            offset = static_cast<std::int64_t>(it->second) -
                     static_cast<std::int64_t>(addr);
        }
        if (offset < -32768 || offset > 32767) {
            fail(st.line_no, "branch target out of range: " + text);
        }
        return static_cast<std::uint16_t>(offset & 0xffff);
    }

    void emit(Bytes& out, const Instruction& insn) {
        emit_word(out, encode(insn));
    }

    void emit_word(Bytes& out, std::uint32_t word) {
        out.push_back(static_cast<std::uint8_t>(word));
        out.push_back(static_cast<std::uint8_t>(word >> 8));
        out.push_back(static_cast<std::uint8_t>(word >> 16));
        out.push_back(static_cast<std::uint8_t>(word >> 24));
    }

    const std::map<std::string, mem::Addr>& symbols_;
    mem::Addr origin_;
};

}  // namespace

mem::Addr Program::symbol(const std::string& name) const {
    const auto it = symbols.find(name);
    if (it == symbols.end()) {
        throw IsaError("Program::symbol: undefined symbol '" + name + "'");
    }
    return it->second;
}

Program assemble(const std::string& source, mem::Addr origin) {
    // Pass 0: lex, collecting label positions by statement index.
    std::vector<std::pair<std::string, std::size_t>> labels;
    std::vector<std::size_t> label_lines;
    auto on_label = [&labels, &label_lines](std::size_t line_no,
                                            std::string name,
                                            std::size_t stmt_index) {
        labels.emplace_back(std::move(name), stmt_index);
        label_lines.push_back(line_no);
    };
    const std::vector<Statement> statements = lex(source, on_label);

    // Pass 1: statement addresses.
    std::vector<mem::Addr> addresses(statements.size() + 1, origin);
    for (std::size_t i = 0; i < statements.size(); ++i) {
        addresses[i + 1] =
            addresses[i] + static_cast<mem::Addr>(statement_size(statements[i]));
    }

    Program program;
    program.origin = origin;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const auto& [name, stmt_index] = labels[i];
        if (program.symbols.count(name) != 0) {
            fail(label_lines[i], "duplicate label '" + name + "'");
        }
        program.symbols[name] = addresses[stmt_index];
    }

    // Pass 2: encode.
    Encoder encoder(program.symbols, origin);
    for (std::size_t i = 0; i < statements.size(); ++i) {
        encoder.encode_statement(statements[i], addresses[i], program.code);
    }
    return program;
}

}  // namespace cres::isa
