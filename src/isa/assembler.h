// Two-pass assembler for CRV32 assembly text.
//
// Syntax:
//   label:                     ; labels end with ':'
//       addi r1, r0, 10        ; comments start with ';' or '#'
//       beq  r1, r0, done      ; branch targets may be labels
//       li   r2, 0x12345678    ; pseudo: lui+ori (always 2 words)
//       la   r3, buffer        ; pseudo: li of a label address
//       call func              ; pseudo: jal lr, func
//       ret                    ; pseudo: jalr r0, lr, 0
//       j    loop              ; pseudo: jal r0, loop
//       mv   r4, r5            ; pseudo: addi r4, r5, 0
//   .word 0xdeadbeef           ; literal 32-bit data
//   .space 64                  ; zero-filled bytes
//   .ascii "text"              ; raw characters
//
// Registers: r0..r15, aliases zero (r0), sp (r13), lr (r14).
// CSRs by name (mstatus, mepc, ...) or number.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "mem/bus.h"
#include "util/bytes.h"

namespace cres::isa {

/// Assembled output: machine code plus the symbol table.
struct Program {
    Bytes code;
    std::map<std::string, mem::Addr> symbols;
    mem::Addr origin = 0;

    /// Address of a label. Throws IsaError when undefined.
    [[nodiscard]] mem::Addr symbol(const std::string& name) const;
};

/// Assembles `source` for load address `origin`.
/// Throws IsaError with a line-numbered message on any syntax error.
Program assemble(const std::string& source, mem::Addr origin = 0);

}  // namespace cres::isa
