// CRV32: the platform's 32-bit RISC ISA.
//
// Fixed 32-bit instruction words:
//   [31:24] opcode   [23:20] rd   [19:16] rs1   [15:12] rs2   [15:0] imm16
// rs2 and imm16 overlap: register-register ALU ops use rs2 (imm must be
// the rs2 nibble only), immediate/memory/jump ops use imm16. Branches
// need two comparands *and* an offset, so they carry the second
// comparand in the rd field (rd is not written by branches).
//
// 16 registers: r0 hardwired to zero, r13 = sp, r14 = lr by convention.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace cres::isa {

enum class Opcode : std::uint8_t {
    kNop = 0x00,
    kHalt = 0x01,

    // Register-register ALU.
    kAdd = 0x10,
    kSub = 0x11,
    kAnd = 0x12,
    kOr = 0x13,
    kXor = 0x14,
    kShl = 0x15,
    kShr = 0x16,
    kSra = 0x17,
    kMul = 0x18,
    kSlt = 0x19,   ///< rd = (rs1 < rs2) signed.
    kSltu = 0x1a,  ///< rd = (rs1 < rs2) unsigned.

    // Immediate ALU.
    kAddi = 0x20,  ///< rd = rs1 + sext(imm).
    kAndi = 0x21,  ///< rd = rs1 & zext(imm).
    kOri = 0x22,
    kXori = 0x23,
    kShli = 0x24,  ///< Shift by imm & 31.
    kShri = 0x25,
    kLui = 0x26,  ///< rd = imm << 16.

    // Loads: rd = mem[rs1 + sext(imm)].
    kLw = 0x30,
    kLh = 0x31,  ///< Zero-extended halfword.
    kLb = 0x32,  ///< Zero-extended byte.
    // Stores: mem[rs1 + sext(imm)] = rd.
    kSw = 0x33,
    kSh = 0x34,
    kSb = 0x35,

    // Branches: compare rs1, rs2; target = pc + sext(imm).
    kBeq = 0x40,
    kBne = 0x41,
    kBlt = 0x42,  ///< Signed.
    kBge = 0x43,  ///< Signed.
    kBltu = 0x44,
    kBgeu = 0x45,

    // Jumps.
    kJal = 0x46,   ///< rd = pc + 4; pc += sext(imm).
    kJalr = 0x47,  ///< rd = pc + 4; pc = (rs1 + sext(imm)) & ~3.

    // System.
    kEcall = 0x50,  ///< Trap to machine mode (imm = service number).
    kMret = 0x51,   ///< Return from machine trap.
    kSmc = 0x52,    ///< Secure monitor call: enter secure world.
    kSret = 0x53,   ///< Return from secure world.
    kCsrr = 0x54,   ///< rd = csr[imm].
    kCsrw = 0x55,   ///< csr[imm] = rs1.
    kWfi = 0x56,    ///< Wait for interrupt.
};

/// Returns the mnemonic ("add"), or "?" for unknown opcodes.
std::string opcode_name(Opcode op);

/// Returns the opcode for a mnemonic, or nullopt.
std::optional<Opcode> opcode_from_name(const std::string& mnemonic);

/// Decoded instruction fields.
struct Instruction {
    Opcode opcode = Opcode::kNop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint16_t imm = 0;

    /// Sign-extended immediate.
    [[nodiscard]] std::int32_t simm() const noexcept {
        return static_cast<std::int16_t>(imm);
    }
};

/// Packs an instruction into a word.
std::uint32_t encode(const Instruction& insn) noexcept;

/// Unpacks a word. Never fails structurally; the CPU rejects unknown
/// opcodes at execution time.
Instruction decode(std::uint32_t word) noexcept;

/// True when the word's opcode field holds a defined opcode.
bool is_valid_opcode(std::uint32_t word) noexcept;

/// CSR numbers.
enum Csr : std::uint16_t {
    kCsrMstatus = 0,   ///< bit0 MPP (prev priv), bit1 MIE, bit2 MPIE.
    kCsrMepc = 1,
    kCsrMcause = 2,
    kCsrMtval = 3,
    kCsrMtvec = 4,
    kCsrMscratch = 5,
    kCsrStvec = 6,   ///< Secure-world entry vector (secure-writable only).
    kCsrSepc = 7,
    kCsrMie = 8,
    kCsrMip = 9,
    kCsrMcycle = 10,   ///< Read-only low 32 bits of the cycle counter.
    kCsrMinstret = 11, ///< Read-only instruction count.
    kCsrCount = 12,
};

/// mstatus bits.
constexpr std::uint32_t kMstatusMpp = 1u << 0;   ///< Previous privilege.
constexpr std::uint32_t kMstatusMie = 1u << 1;   ///< Interrupts enabled.
constexpr std::uint32_t kMstatusMpie = 1u << 2;  ///< Previous MIE.

/// Trap causes (mcause values).
enum class TrapCause : std::uint32_t {
    kIllegalInstruction = 1,
    kBusFault = 2,
    kMpuFault = 3,
    kEcall = 4,
    kSecurityFault = 5,   ///< SMC/SRET misuse, secure CSR from non-secure.
    kMisalignedAccess = 6,
    kInterruptBase = 0x80000000,  ///< kInterruptBase | irq line.
};

std::string trap_cause_name(std::uint32_t cause);

}  // namespace cres::isa
