// Fleet operations: the operator's view of a deployed device
// population — enrolment, routine attestation sweeps, an incident, and
// targeted field response based on localisation.
//
//   ./build/examples/fleet_operations
#include <iostream>

#include "attack/attacks.h"
#include "platform/fleet.h"

using namespace cres;

namespace {

void print_sweep(const platform::SweepResult& sweep,
                 const platform::HealthSummary& health) {
    std::cout << "  device   attestation          health       evidence\n";
    for (std::size_t i = 0; i < sweep.verdicts.size(); ++i) {
        std::cout << "  #" << i << "       "
                  << net::attest_result_name(sweep.verdicts[i]);
        for (std::size_t pad =
                 net::attest_result_name(sweep.verdicts[i]).size();
             pad < 21; ++pad) {
            std::cout << ' ';
        }
        std::cout << core::health_state_name(health.states[i]);
        for (std::size_t pad =
                 core::health_state_name(health.states[i]).size();
             pad < 13; ++pad) {
            std::cout << ' ';
        }
        std::cout << (health.report_valid[i] ? "verified" : "-") << "\n";
    }
}

}  // namespace

int main() {
    std::cout << "== Fleet operations: 6 resilient devices ==\n\n";

    platform::FleetConfig config;
    config.device_count = 6;
    config.resilient = true;
    config.seed = 2025;
    // 0 = use every hardware thread. Results are identical at any
    // thread count (same seed => same verdicts, health and evidence);
    // the knob only changes wall time. See docs/FLEET.md.
    config.worker_threads = 0;
    platform::Fleet fleet(config);

    std::cout << "[t=0] fleet enrolled: " << fleet.size()
              << " devices, golden measurements captured ("
              << fleet.worker_threads() << " worker threads)\n";
    fleet.run(20000);
    fleet.checkpoint_all();  // Known-good snapshots for recovery.

    std::cout << "\n[t=20k] routine sweep — all quiet:\n";
    {
        const auto sweep = fleet.attestation_sweep();
        const auto health = fleet.collect_health();
        print_sweep(sweep, health);
    }

    // Trouble: device 1 gets a firmware implant (will measure wrong on
    // attestation), device 4 suffers a runtime breach (firmware intact,
    // evidence log tells the story).
    std::cout << "\n[t=25k] incidents: implant on #1, runtime breach on #4\n";
    crypto::Hash256 implant;
    implant.fill(0x66);
    fleet.device(1).pcrs.extend(boot::PcrBank::kPcrFirmware, implant,
                                "unsigned-implant");
    attack::StackSmashAttack smash;
    smash.launch(fleet.device(4), fleet.device(4).sim.now() + 5000);
    fleet.run(40000);

    std::cout << "\n[t=60k] incident sweep:\n";
    const auto sweep = fleet.attestation_sweep();
    const auto health = fleet.collect_health();
    print_sweep(sweep, health);

    std::cout << "\noperator triage:\n";
    for (const auto i : sweep.flagged_devices()) {
        std::cout << "  -> device #" << i
                  << ": failed attestation — schedule re-flash from "
                     "known-good image (roll-forward)\n";
    }
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        const auto& log = fleet.device(i).ssm->evidence();
        if (log.size() > 2) {
            std::cout << "  -> device #" << i << ": " << log.size()
                      << " evidence records (chain "
                      << (log.verify_chain() ? "verifies" : "BROKEN")
                      << ") — export for forensics:\n";
            std::size_t shown = 0;
            for (const auto& record : log.records()) {
                if (record.kind == "action" && shown++ < 3) {
                    std::cout << "       [" << record.at << "] "
                              << record.detail << "\n";
                }
            }
            // Off-device forensic handover.
            const Bytes wire = log.serialize();
            std::cout << "       exported " << wire.size()
                      << " bytes of sealed evidence\n";
        }
    }

    std::cout << "\nfleet service total: " << fleet.fleet_iterations()
              << " control iterations across the incident window\n";
    std::cout << "\nTakeaway: attestation localises *provisioning/firmware* "
                 "compromise; the SSM evidence stream localises *runtime* "
                 "compromise — the fleet needs both, and the paper's "
                 "architecture provides the second.\n";
    return 0;
}
