// Forensics demo: the paper's evidence story end to end. A breach hits
// two devices — one passive, one resilient. Afterwards an investigator
// tries to reconstruct what happened and to prove the record's
// integrity to a third party (regulator / insurer).
//
// Writes two machine-readable artefacts for the resilient device:
//   trace.json       (env CRES_TRACE_JSON)      Perfetto/chrome://tracing
//   postmortem.json  (env CRES_POSTMORTEM_JSON) sealed incident bundle
//
//   ./build/examples/forensics_demo
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "attack/attacks.h"
#include "core/ssm/report.h"
#include "obs/postmortem.h"
#include "platform/scenario.h"

using namespace cres;

namespace {

platform::ScenarioConfig make_config(bool resilient) {
    platform::ScenarioConfig config;
    config.node.name = resilient ? "device-B-resilient" : "device-A-passive";
    config.node.resilient = resilient;
    config.warmup = 20000;
    config.horizon = 140000;
    config.seed = 123;
    return config;
}

std::string out_path(const char* env, const char* fallback) {
    const char* value = std::getenv(env);
    return value != nullptr && *value != '\0' ? value : fallback;
}

void write_file(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    out << content;
}

}  // namespace

int main() {
    std::cout << "== Post-incident forensics: passive vs resilient ==\n";
    std::cout << "incident: stack-smash breach at t=30k, device crash "
                 "(watchdog reboot) at t=80k\n\n";

    // ---- Device A: passive ------------------------------------------------
    {
        platform::Scenario scenario(make_config(false));
        attack::StackSmashAttack smash;
        attack::TaskHangAttack hang;
        hang.launch(scenario.node(), 80000);
        const auto r = scenario.run(&smash, 30000);

        std::cout << "--- device A (passive trust-based architecture) ---\n";
        std::cout << "secret leaked: " << r.leaked_bytes
                  << " bytes; reboots: " << r.reboots << "\n";
        const auto& trace = scenario.node().trace;
        std::cout << "investigator finds " << trace.size()
                  << " volatile trace records\n";
        std::size_t attack_era = 0;
        for (const auto& record : trace.records()) {
            if (record.at >= 30000 && record.at < 80000) ++attack_era;
        }
        std::cout << "records covering the breach window (30k-80k): "
                  << attack_era << " (the reboot wiped them)\n";
        std::cout << "integrity provable to a third party: no — plain "
                     "records, writable by the same malware that caused "
                     "the breach\n\n";
    }

    // ---- Device B: resilient ----------------------------------------------
    {
        platform::Scenario scenario(make_config(true));
        attack::StackSmashAttack smash;
        attack::TaskHangAttack hang;
        hang.launch(scenario.node(), 80000);
        const auto r = scenario.run(&smash, 30000);

        std::cout << "--- device B (cyber-resilient architecture) ---\n";
        std::cout << "secret leaked: " << r.leaked_bytes
                  << " bytes; reboots: " << r.reboots << "\n";

        auto& log = scenario.node().ssm->evidence();
        std::cout << "investigator finds " << log.size()
                  << " evidence records in SSM-private storage\n";

        std::cout << "\nreconstructed timeline (breach window):\n";
        for (const auto& record : log.records()) {
            if (record.at >= 29000 && record.at <= 90000 &&
                record.kind != "event") {
                std::cout << "  [" << record.at << "] " << record.kind
                          << ": " << record.detail << "\n";
            }
        }

        // Integrity: the chain verifies, and the signed health report
        // binds the head to the device identity.
        std::cout << "\nhash chain verifies: "
                  << (log.verify_chain() ? "yes" : "no") << "\n";
        const auto report = scenario.node().ssm->health_report();
        std::cout << "signed health report: state="
                  << core::health_state_name(report.state)
                  << ", evidence head sealed over " << report.evidence_seal.count
                  << " records\n";

        // What if the malware had scrubbed a record?
        core::EvidenceLog tampered = log;
        tampered.tamper_detail(tampered.size() / 2, "nothing to see here");
        std::cout << "after simulated log scrubbing, chain verifies: "
                  << (tampered.verify_chain() ? "yes" : "no")
                  << "  <- tampering is self-evident\n";

        // The communicable artefact: a rendered incident report.
        std::cout << "\n"
                  << core::generate_incident_report(log, "device-B").render();

        // The quantitative companion: the device's cycle-accurate
        // metrics snapshot — how fast the CSF lifecycle actually ran.
        const auto& metrics = scenario.node().metrics;
        std::cout << "\nmetrics snapshot (Prometheus exposition):\n"
                  << metrics.prometheus();
        if (const auto* detect = metrics.find_histogram(
                "cres_csf_detect_latency_cycles");
            detect != nullptr && detect->count() > 0) {
            std::cout << "incident detect latency: " << detect->min()
                      << ".." << detect->max() << " cycles over "
                      << detect->count() << " incident(s)\n";
        }

        // The black box: bounded flight-recorder ring + sealed bundle.
        auto& node = scenario.node();
        std::cout << "\nflight recorder: " << node.recorder.size() << "/"
                  << node.recorder.capacity() << " records live, "
                  << node.recorder.total_emitted() << " emitted, "
                  << node.recorder.evicted() << " evicted\n";

        const std::string trace_path =
            out_path("CRES_TRACE_JSON", "trace.json");
        write_file(trace_path, node.chrome_trace());
        std::cout << "wrote timeline " << trace_path
                  << " (open in Perfetto / chrome://tracing)\n";

        const auto& postmortems = node.ssm->postmortems();
        std::cout << "sealed postmortem bundles: " << postmortems.size()
                  << "\n";
        if (!postmortems.empty()) {
            const std::string sealed = node.ssm->sealed_postmortem(0);
            const std::string pm_path =
                out_path("CRES_POSTMORTEM_JSON", "postmortem.json");
            write_file(pm_path, sealed);
            std::cout << "wrote bundle " << pm_path << " (incident #"
                      << postmortems.front().incident_id << ", "
                      << postmortems.front().telemetry.size()
                      << " telemetry records, window "
                      << postmortems.front().window_begin << ".."
                      << postmortems.front().closed_at << ")\n";

            // Offline verification: the artefact alone + the seal key.
            const bool ok =
                obs::verify_postmortem(sealed, scenario.seal_key());
            std::cout << "offline HMAC verification: "
                      << (ok ? "pass" : "FAIL") << "\n";
            std::string flipped = sealed;
            flipped[flipped.size() / 2] ^= 0x01;
            const bool tampered_ok =
                obs::verify_postmortem(flipped, scenario.seal_key());
            std::cout << "after 1-byte flip, verification: "
                      << (tampered_ok ? "PASS (bad!)" : "fail")
                      << "  <- tampering is self-evident\n";
        }

        // And truncation?
        const auto seal = log.seal();
        core::EvidenceLog truncated = log;
        truncated.wipe();
        std::cout << "after simulated wipe, seal verifies: "
                  << (core::EvidenceLog::verify_seal(
                          truncated, seal, to_bytes("wrong-key"))
                          ? "yes"
                          : "no")
                  << "  <- loss is self-evident\n";
    }

    std::cout << "\nThis is the paper's core claim made concrete: without "
                 "an independent monitoring/evidence plane, a breach ends "
                 "the story; with one, the story survives the breach.\n";
    return 0;
}
