// Forensics demo: the paper's evidence story end to end. A breach hits
// two devices — one passive, one resilient. Afterwards an investigator
// tries to reconstruct what happened and to prove the record's
// integrity to a third party (regulator / insurer).
//
//   ./build/examples/forensics_demo
#include <iostream>

#include "attack/attacks.h"
#include "core/ssm/report.h"
#include "platform/scenario.h"

using namespace cres;

namespace {

platform::ScenarioConfig make_config(bool resilient) {
    platform::ScenarioConfig config;
    config.node.name = resilient ? "device-B-resilient" : "device-A-passive";
    config.node.resilient = resilient;
    config.warmup = 20000;
    config.horizon = 140000;
    config.seed = 123;
    return config;
}

}  // namespace

int main() {
    std::cout << "== Post-incident forensics: passive vs resilient ==\n";
    std::cout << "incident: stack-smash breach at t=30k, device crash "
                 "(watchdog reboot) at t=80k\n\n";

    // ---- Device A: passive ------------------------------------------------
    {
        platform::Scenario scenario(make_config(false));
        attack::StackSmashAttack smash;
        attack::TaskHangAttack hang;
        hang.launch(scenario.node(), 80000);
        const auto r = scenario.run(&smash, 30000);

        std::cout << "--- device A (passive trust-based architecture) ---\n";
        std::cout << "secret leaked: " << r.leaked_bytes
                  << " bytes; reboots: " << r.reboots << "\n";
        const auto& trace = scenario.node().trace;
        std::cout << "investigator finds " << trace.size()
                  << " volatile trace records\n";
        std::size_t attack_era = 0;
        for (const auto& record : trace.records()) {
            if (record.at >= 30000 && record.at < 80000) ++attack_era;
        }
        std::cout << "records covering the breach window (30k-80k): "
                  << attack_era << " (the reboot wiped them)\n";
        std::cout << "integrity provable to a third party: no — plain "
                     "records, writable by the same malware that caused "
                     "the breach\n\n";
    }

    // ---- Device B: resilient ----------------------------------------------
    {
        platform::Scenario scenario(make_config(true));
        attack::StackSmashAttack smash;
        attack::TaskHangAttack hang;
        hang.launch(scenario.node(), 80000);
        const auto r = scenario.run(&smash, 30000);

        std::cout << "--- device B (cyber-resilient architecture) ---\n";
        std::cout << "secret leaked: " << r.leaked_bytes
                  << " bytes; reboots: " << r.reboots << "\n";

        auto& log = scenario.node().ssm->evidence();
        std::cout << "investigator finds " << log.size()
                  << " evidence records in SSM-private storage\n";

        std::cout << "\nreconstructed timeline (breach window):\n";
        for (const auto& record : log.records()) {
            if (record.at >= 29000 && record.at <= 90000 &&
                record.kind != "event") {
                std::cout << "  [" << record.at << "] " << record.kind
                          << ": " << record.detail << "\n";
            }
        }

        // Integrity: the chain verifies, and the signed health report
        // binds the head to the device identity.
        std::cout << "\nhash chain verifies: "
                  << (log.verify_chain() ? "yes" : "no") << "\n";
        const auto report = scenario.node().ssm->health_report();
        std::cout << "signed health report: state="
                  << core::health_state_name(report.state)
                  << ", evidence head sealed over " << report.evidence_seal.count
                  << " records\n";

        // What if the malware had scrubbed a record?
        core::EvidenceLog tampered = log;
        tampered.tamper_detail(tampered.size() / 2, "nothing to see here");
        std::cout << "after simulated log scrubbing, chain verifies: "
                  << (tampered.verify_chain() ? "yes" : "no")
                  << "  <- tampering is self-evident\n";

        // The communicable artefact: a rendered incident report.
        std::cout << "\n"
                  << core::generate_incident_report(log, "device-B").render();

        // The quantitative companion: the device's cycle-accurate
        // metrics snapshot — how fast the CSF lifecycle actually ran.
        const auto& metrics = scenario.node().metrics;
        std::cout << "\nmetrics snapshot (Prometheus exposition):\n"
                  << metrics.prometheus();
        if (const auto* detect = metrics.find_histogram(
                "cres_csf_detect_latency_cycles");
            detect != nullptr && detect->count() > 0) {
            std::cout << "incident detect latency: " << detect->min()
                      << ".." << detect->max() << " cycles over "
                      << detect->count() << " incident(s)\n";
        }

        // And truncation?
        const auto seal = log.seal();
        core::EvidenceLog truncated = log;
        truncated.wipe();
        std::cout << "after simulated wipe, seal verifies: "
                  << (core::EvidenceLog::verify_seal(
                          truncated, seal, to_bytes("wrong-key"))
                          ? "yes"
                          : "no")
                  << "  <- loss is self-evident\n";
    }

    std::cout << "\nThis is the paper's core claim made concrete: without "
                 "an independent monitoring/evidence plane, a breach ends "
                 "the story; with one, the story survives the breach.\n";
    return 0;
}
