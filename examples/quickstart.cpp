// Quickstart: build a cyber-resilient SoC node, secure-boot a signed
// firmware image, run the control workload, inject an attack, and
// watch the platform detect, respond, recover — and keep the evidence.
//
//   ./build/examples/quickstart
#include <iostream>

#include "attack/attacks.h"
#include "boot/image.h"
#include "platform/scenario.h"

using namespace cres;

int main() {
    std::cout << "== CRES quickstart ==\n\n";

    // 1. Configure a resilient node (set resilient=false to see the
    //    passive baseline fail instead).
    platform::ScenarioConfig config;
    config.node.name = "demo-node";
    config.node.resilient = true;
    config.warmup = 20000;    // Cycles of clean operation first.
    config.horizon = 120000;  // Total simulated cycles.
    config.seed = 2024;

    // The Scenario assembles everything: SoC (CPU, bus, MPU,
    // peripherals), secure-boot substrate, TEE, the SSM + monitors +
    // active response stack, an M2M link to an operator peer, and the
    // control-loop firmware.
    platform::Scenario scenario(config);
    std::cout << "node assembled: " << scenario.node().bus.regions().size()
              << " bus regions, resilience stack "
              << (scenario.node().ssm ? "armed" : "absent") << "\n";

    // 2. Choose an attack: a stack smash that pivots into planted
    //    shellcode which exfiltrates the device secret and abuses the
    //    actuator.
    attack::StackSmashAttack attack;
    std::cout << "attack: " << attack.name() << " — " << attack.mechanism()
              << "\n\n";

    // 3. Run: 20k clean cycles, attack at 30k, observe to 120k.
    const platform::ScenarioResult result = scenario.run(&attack, 30000);

    // 4. What happened?
    std::cout << "control iterations : " << result.control_iterations << "\n";
    std::cout << "secret bytes leaked: " << result.leaked_bytes << "\n";
    std::cout << "unsafe actuator ops: " << result.unsafe_commands << "\n";
    std::cout << "detected           : " << (result.detected ? "yes" : "no");
    if (result.detection_latency) {
        std::cout << " (latency " << *result.detection_latency << " cycles)";
    }
    std::cout << "\nresponses executed : " << result.responses_executed
              << "\n";
    std::cout << "operator alerts    : " << result.operator_alerts << "\n";
    std::cout << "evidence records   : " << result.evidence_records
              << " (chain verifies: "
              << (result.evidence_chain_ok ? "yes" : "no") << ")\n\n";

    // 5. The forensic trail: the SSM's hash-chained evidence log holds
    //    the whole story — events, decisions, actions, state changes.
    std::cout << "last evidence records:\n";
    const auto& records = scenario.node().ssm->evidence().records();
    const std::size_t start = records.size() > 8 ? records.size() - 8 : 0;
    for (std::size_t i = start; i < records.size(); ++i) {
        std::cout << "  [" << records[i].at << "] " << records[i].kind
                  << ": " << records[i].detail << "\n";
    }

    std::cout << "\nfinal health: "
              << core::health_state_name(scenario.node().ssm->health())
              << "\n";
    return 0;
}
