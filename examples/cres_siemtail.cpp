// cres_siemtail: offline SIEM export verifier and campaign viewer.
//
// Verifies the fleet export stream's HMAC hash chain (obs/siem.h) the
// same way an off-device SIEM would — holding only the JSONL text and
// the export key — and pretty-prints the stream: per-severity record
// counts, per-device contributions and every fleet-level campaign
// record.
//
//   cres_siemtail --key <hex> <stream.jsonl>
//   cres_siemtail --demo
//
// Options:
//   --key <hex>   fleet export key (HKDF output, hex-encoded)
//   --demo        run a built-in 64-device estate through all three
//                 campaign classes (worm / coordinated replay /
//                 staggered downgrade), export, verify and display —
//                 no input file. The demo fails unless every campaign
//                 is detected, the chain verifies, and a 1-byte flip
//                 breaks it.
//   --stats       machine-grepping mode: per-kind and per-severity
//                 record counts, staging-buffer drop totals and the
//                 chain verdict, one `stat <name> <value>` line each.
//                 Composes with both the offline form and --demo.
//
// Exit status: 0 verified, 2 verification/detection failure, 64
// usage/input error.
#include <array>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "attack/campaigns.h"
#include "obs/siem.h"
#include "obs/syslog.h"
#include "platform/fleet.h"
#include "util/bytes.h"

namespace {

using namespace cres;

int usage() {
    std::cerr << "usage: cres_siemtail [--stats] --key <hex> <stream.jsonl>\n"
                 "       cres_siemtail [--stats] --demo\n";
    return 64;
}

/// Minimal field extraction from one exported record line. The format
/// is fixed (obs/siem.cpp renders it), so plain string search is
/// enough — no JSON parser, mirroring the offline chain verifier.
std::string field_str(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t begin = line.find(needle);
    if (begin == std::string::npos) return {};
    const std::size_t start = begin + needle.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos) return {};
    return line.substr(start, end - start);
}

std::uint64_t field_u64(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t begin = line.find(needle);
    if (begin == std::string::npos) return 0;
    return std::strtoull(line.c_str() + begin + needle.size(), nullptr, 10);
}

/// --stats mode: counts every record class and the backpressure drops
/// the estate surfaced, one greppable `stat <name> <value>` line each.
/// Runs the chain verifier too — stats over a forged stream are worse
/// than no stats.
int stats_stream(const std::string& jsonl, BytesView key) {
    const obs::SiemVerifyResult verdict = obs::SiemStream::verify(jsonl, key);
    std::cout << "stat chain " << (verdict.ok ? "ok" : "FAILED") << "\n"
              << "stat records " << verdict.records << "\n";
    if (!verdict.ok) {
        std::cout << "stat bad_line " << verdict.bad_line << "\n";
        return 2;
    }

    constexpr std::array<std::string_view, 7> kKinds = {
        "event",         "alert",         "state", "incident-open",
        "incident-close", "evidence-head", "campaign"};
    std::array<std::uint64_t, kKinds.size()> by_kind{};
    std::array<std::uint64_t, 8> by_severity{};
    std::uint64_t drop_records = 0;
    std::uint64_t drop_total = 0;
    std::uint64_t traced = 0;

    std::istringstream in(jsonl);
    std::string line;
    std::getline(in, line);  // Header (already verified).
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        ++by_severity[field_u64(line, "severity") & 0x7];
        const std::string kind = field_str(line, "kind");
        for (std::size_t k = 0; k < kKinds.size(); ++k) {
            if (kind == kKinds[k]) ++by_kind[k];
        }
        if (line.find("\"trace\":{") != std::string::npos) ++traced;
        // Backpressure accounting records (platform/fleet.cpp): a =
        // records dropped since the previous drain.
        if (field_str(line, "source") == "siem-buffer") {
            ++drop_records;
            drop_total += field_u64(line, "a");
        }
    }

    for (std::size_t k = 0; k < kKinds.size(); ++k) {
        std::cout << "stat kind." << kKinds[k] << " " << by_kind[k] << "\n";
    }
    for (std::size_t s = 0; s < by_severity.size(); ++s) {
        std::cout << "stat severity."
                  << obs::rfc5424::severity_keyword(
                         static_cast<std::uint8_t>(s))
                  << " " << by_severity[s] << "\n";
    }
    std::cout << "stat traced " << traced << "\n"
              << "stat drop.records " << drop_records << "\n"
              << "stat drop.total " << drop_total << "\n";
    return 0;
}

/// Verifies and summarizes one exported stream. Returns the exit code.
int tail_stream(const std::string& jsonl, BytesView key) {
    const obs::SiemVerifyResult verdict = obs::SiemStream::verify(jsonl, key);
    if (!verdict.ok) {
        std::cout << "chain: FAILED at line " << verdict.bad_line << " ("
                  << verdict.reason << ")\n";
        return 2;
    }

    std::array<std::uint64_t, 8> by_severity{};
    std::uint64_t alerts = 0;
    std::uint64_t incidents = 0;
    std::uint64_t anchors = 0;
    std::size_t campaigns = 0;
    std::ostringstream campaign_lines;

    std::istringstream in(jsonl);
    std::string line;
    std::getline(in, line);  // Header (already verified).
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        ++by_severity[field_u64(line, "severity") & 0x7];
        const std::string kind = field_str(line, "kind");
        if (kind == "alert") ++alerts;
        if (kind == "incident-open") ++incidents;
        if (kind == "evidence-head") ++anchors;
        if (kind == "campaign") {
            ++campaigns;
            campaign_lines << "  [" << field_u64(line, "at") << "] "
                           << field_str(line, "resource") << " across "
                           << field_u64(line, "a") << " devices: "
                           << field_str(line, "detail") << "\n";
        }
    }

    std::cout << "chain: ok (" << verdict.records << " records)\n"
              << "severity:";
    for (std::size_t s = 0; s < by_severity.size(); ++s) {
        if (by_severity[s] == 0) continue;
        std::cout << " " << obs::rfc5424::severity_keyword(
                         static_cast<std::uint8_t>(s))
                  << "=" << by_severity[s];
    }
    std::cout << "\nalerts: " << alerts << "  incidents-opened: "
              << incidents << "  evidence-anchors: " << anchors << "\n";
    if (campaigns != 0) {
        std::cout << "campaigns (" << campaigns << "):\n"
                  << campaign_lines.str();
    } else {
        std::cout << "campaigns: none\n";
    }
    return 0;
}

int run_demo(bool stats) {
    platform::FleetConfig config;
    config.device_count = 64;
    config.seed = 11;
    config.worker_threads = 0;
    platform::Fleet fleet(config);

    attack::WormCampaign worm;
    attack::CoordinatedReplayCampaign replay;
    attack::StaggeredDowngradeCampaign downgrade;
    worm.launch(fleet);
    replay.launch(fleet);
    downgrade.launch(fleet);

    fleet.run(80000);
    fleet.drain_siem();

    const std::string& jsonl = fleet.siem_stream().jsonl();
    // CI hook: dump the raw stream so the pipeline can jq-validate the
    // JSONL framing and archive the artefact.
    if (const char* dump = std::getenv("CRES_SIEM_JSONL")) {
        std::ofstream out(dump, std::ios::binary);
        out << jsonl;
        std::cerr << "wrote stream to " << dump << "\n";
    }
    // CI hook: dump the fleet Chrome trace so the pipeline can
    // jq-validate the causal flow events ("s"/"t" pairing).
    if (const char* dump = std::getenv("CRES_TRACE_JSON")) {
        std::ofstream out(dump, std::ios::binary);
        out << fleet.chrome_trace();
        std::cerr << "wrote chrome trace to " << dump << "\n";
    }
    std::cout << "== demo estate: 64 devices, 3 campaigns ==\n";
    const int rc = stats ? stats_stream(jsonl, fleet.siem_key())
                         : tail_stream(jsonl, fleet.siem_key());
    if (rc != 0) return rc;

    // The demo's own bar: all three campaign classes detected...
    std::array<bool, platform::kCampaignKindCount> seen{};
    for (const auto& c : fleet.campaign_monitor().campaigns()) {
        seen[static_cast<std::size_t>(c.kind)] = true;
    }
    if (!seen[0] || !seen[1] || !seen[2]) {
        std::cout << "demo: FAILED (campaign classes detected: worm="
                  << seen[0] << " replay=" << seen[1] << " downgrade="
                  << seen[2] << ")\n";
        return 2;
    }
    // ...and tamper evidence: flipping one byte must break the chain.
    std::string tampered = jsonl;
    tampered[tampered.size() / 2] ^= 0x01;
    if (obs::SiemStream::verify(tampered, fleet.siem_key()).ok) {
        std::cout << "demo: FAILED (tampered stream still verifies)\n";
        return 2;
    }
    std::cout << "demo: ok (all campaign classes detected; 1-byte flip "
                 "breaks the chain)\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string key_hex;
    std::string path;
    bool demo = false;
    bool stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--key") {
            if (i + 1 >= argc) return usage();
            key_hex = argv[++i];
        } else if (arg == "--demo") {
            demo = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "cres_siemtail: unknown option '" << arg << "'\n";
            return usage();
        } else {
            path = arg;
        }
    }

    if (demo) return run_demo(stats);
    if (key_hex.empty() || path.empty()) return usage();

    Bytes key;
    try {
        key = from_hex(key_hex);
    } catch (const std::exception&) {
        std::cerr << "cres_siemtail: --key is not valid hex\n";
        return 64;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "cres_siemtail: cannot open '" << path << "'\n";
        return 64;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return stats ? stats_stream(buffer.str(), key)
                 : tail_stream(buffer.str(), key);
}
