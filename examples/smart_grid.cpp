// Smart-grid feeder scenario: a substation controller holds a feeder
// voltage steady by commanding a tap-changer. An adversary first
// spoofs the voltage sensor, then escalates to a control-flow hijack.
// Run side-by-side on the passive baseline and the resilient platform
// to see the difference in physical impact and situational awareness.
//
//   ./build/examples/smart_grid
#include <iostream>

#include "attack/attacks.h"
#include "platform/scenario.h"

using namespace cres;

namespace {

struct GridOutcome {
    std::uint64_t control_iterations;
    std::uint64_t unsafe_commands;
    double actuator_travel;
    std::uint64_t leaked_bytes;
    bool detected;
    std::uint64_t operator_alerts;
    std::uint64_t reboots;
};

GridOutcome run_grid(bool resilient) {
    platform::ScenarioConfig config;
    config.node.name = resilient ? "substation-resilient"
                                 : "substation-passive";
    config.node.resilient = resilient;
    config.node.sensor_nominal = 50.0;  // "Feeder voltage" (arbitrary units).
    config.warmup = 20000;
    config.horizon = 200000;
    config.seed = 31;

    platform::Scenario scenario(config);

    // Wave 1 (t=30k): sensor spoof — fabricated under-voltage drives
    // the controller to slam the tap-changer.
    attack::SensorSpoofAttack spoof(/*spoof_value=*/500.0);
    // Wave 2 (t=100k): stack smash into exfil/abuse shellcode.
    attack::StackSmashAttack smash;
    smash.launch(scenario.node(), 100000);

    const auto r = scenario.run(&spoof, 30000);
    return GridOutcome{r.control_iterations, r.unsafe_commands,
                       r.actuator_travel,   r.leaked_bytes,
                       r.detected,          r.operator_alerts,
                       r.reboots};
}

void report(const char* title, const GridOutcome& o) {
    std::cout << title << "\n"
              << "  control iterations      : " << o.control_iterations << "\n"
              << "  unsafe tap commands     : " << o.unsafe_commands << "\n"
              << "  tap-changer travel      : " << o.actuator_travel
              << " (mechanical wear proxy)\n"
              << "  credential bytes leaked : " << o.leaked_bytes << "\n"
              << "  incidents detected      : " << (o.detected ? "yes" : "no")
              << "\n"
              << "  operator notifications  : " << o.operator_alerts << "\n"
              << "  hard reboots            : " << o.reboots << "\n\n";
}

}  // namespace

int main() {
    std::cout << "== Smart-grid feeder under a two-wave attack ==\n\n"
              << "wave 1 @30k : voltage-sensor spoof (fabricated physics)\n"
              << "wave 2 @100k: stack smash -> credential exfil + tap abuse\n\n";

    report("--- passive substation controller ---", run_grid(false));
    report("--- cyber-resilient substation controller ---", run_grid(true));

    std::cout
        << "Reading the result: the passive controller acts on fabricated\n"
        << "physics (abusive tap commands, mechanical wear), leaks its\n"
        << "credentials in wave 2, and the operator never hears a thing.\n"
        << "The resilient controller flags the implausible sensor feed,\n"
        << "degrades gracefully (telemetry shed, control continues),\n"
        << "contains the wave-2 exfiltration before the frame leaves, and\n"
        << "pages the operator with a verifiable evidence trail.\n";
    return 0;
}
