// cres_lint: offline static firmware auditor.
//
// Runs the same verifier the secure-boot admission gate runs, over a
// wire-format firmware image (boot::FirmwareImage::serialize) or a raw
// code blob, and prints the findings report. An image this tool flags
// with errors is exactly an image a deny-mode node refuses to boot.
//
//   cres_lint [options] <image.fw>
//   cres_lint [options] --raw --load-addr 0x10000 --entry 0x10000 <code.bin>
//   cres_lint --demo
//
// Options:
//   --unprivileged         ban mret/sret/smc/csrw/wfi
//   --max-stack <bytes>    worst-case stack budget (default 8192)
//   --warnings-as-errors   warnings also fail the audit
//   --raw                  input is a raw code section, not an image
//   --load-addr <addr>     raw mode: section load address
//   --entry <addr>         raw mode: entry point
//   --json                 machine-readable report on stdout (one JSON
//                          object per image; --demo emits an array)
//   --demo                 analyze a built-in clean and a built-in
//                          malicious image (no input file)
//   --help                 print this help and exit 0
//
// Exit status: 0 clean, 2 findings fail policy, 64 usage/input error.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/verifier.h"
#include "boot/image.h"
#include "isa/assembler.h"
#include "platform/memmap.h"
#include "platform/workload.h"

namespace {

using namespace cres;

const char* const kHelp =
    "usage: cres_lint [options] <image.fw>\n"
    "       cres_lint [options] --raw --load-addr A --entry A <code.bin>\n"
    "       cres_lint [options] --demo\n"
    "\n"
    "Runs the secure-boot admission verifier offline: CFG construction,\n"
    "abstract-interpretation bounds/taint analysis and the policy pass\n"
    "pipeline (docs/ANALYSIS.md). An image flagged with errors here is\n"
    "exactly an image a deny-mode node refuses to boot.\n"
    "\n"
    "options:\n"
    "  --unprivileged         ban mret/sret/smc/csrw/wfi\n"
    "  --max-stack <bytes>    worst-case stack budget (default 8192)\n"
    "  --warnings-as-errors   warnings also fail the audit\n"
    "  --raw                  input is a raw code section, not an image\n"
    "  --load-addr <addr>     raw mode: section load address\n"
    "  --entry <addr>         raw mode: entry point\n"
    "  --json                 machine-readable report on stdout (one\n"
    "                         JSON object per image; --demo emits an\n"
    "                         array of two)\n"
    "  --demo                 analyze a built-in clean and a built-in\n"
    "                         malicious image (no input file)\n"
    "  --help                 print this help and exit\n"
    "\n"
    "exit status:\n"
    "  0   the image passes policy (ADMISSIBLE) / --demo verdicts split\n"
    "      as expected / --help\n"
    "  2   findings fail policy (REJECTED in deny mode)\n"
    "  64  usage error, unreadable input or malformed image\n";

int usage() {
    std::cerr << kHelp;
    return 64;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string hex_addr(mem::Addr addr) {
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

/// One image's audit as a JSON object (stable machine interface: the
/// CI jq checks and fleet tooling consume this).
std::string render_json(const std::string& name, mem::Addr load_addr,
                        mem::Addr entry, const analysis::Report& report,
                        bool pass) {
    std::ostringstream os;
    os << "{\"name\":\"" << json_escape(name) << "\","
       << "\"load_addr\":\"" << hex_addr(load_addr) << "\","
       << "\"entry\":\"" << hex_addr(entry) << "\","
       << "\"verdict\":\"" << (pass ? "admissible" : "rejected") << "\","
       << "\"errors\":" << report.errors() << ","
       << "\"warnings\":" << report.warnings() << ","
       << "\"infos\":" << report.count(analysis::Severity::kInfo) << ","
       << "\"stats\":{"
       << "\"words\":" << report.words << ","
       << "\"tail_bytes\":" << report.tail_bytes << ","
       << "\"reachable_insns\":" << report.reachable_insns << ","
       << "\"blocks\":" << report.blocks << ","
       << "\"indirect_jumps\":" << report.indirect_jumps << ","
       << "\"max_stack_bytes\":" << report.max_stack_bytes << ","
       << "\"stack_bounded\":" << (report.stack_bounded ? "true" : "false")
       << "},";
    os << "\"proof\":{";
    if (report.proofs) {
        os << "\"mem_ops\":" << report.proofs->mem_ops << ","
           << "\"proven_ops\":" << report.proofs->proven_ops << ","
           << "\"coverage\":" << report.proofs->coverage() << ","
           << "\"certificates\":[";
        bool first = true;
        for (const auto& cert : report.proofs->certificates) {
            if (!first) os << ",";
            first = false;
            os << "{\"entry\":\"" << hex_addr(cert.entry) << "\","
               << "\"bound_bytes\":" << cert.bound_bytes << ","
               << "\"bounded\":" << (cert.bounded ? "true" : "false") << "}";
        }
        os << "]";
    } else {
        os << "\"mem_ops\":0,\"proven_ops\":0,\"coverage\":0,"
           << "\"certificates\":[]";
    }
    os << "},\"findings\":[";
    bool first = true;
    for (const auto& f : report.findings) {
        if (!first) os << ",";
        first = false;
        os << "{\"severity\":\"" << analysis::severity_name(f.severity)
           << "\",\"pass\":\"" << analysis::pass_name(f.pass)
           << "\",\"addr\":\"" << hex_addr(f.addr) << "\",\"code\":\""
           << json_escape(f.code) << "\",\"detail\":\""
           << json_escape(f.detail) << "\"}";
    }
    os << "],\"taint_traces\":[";
    first = true;
    for (const auto& t : report.taint_traces) {
        if (!first) os << ",";
        first = false;
        os << "{\"source\":\"" << json_escape(t.source)
           << "\",\"source_pc\":\"" << hex_addr(t.source_pc)
           << "\",\"sink\":\"" << json_escape(t.sink) << "\",\"sink_pc\":\""
           << hex_addr(t.sink_pc) << "\"}";
    }
    os << "]}";
    return os.str();
}

/// Analyzes one payload and prints the report. Returns the exit code.
/// In JSON mode the object is appended to `json_out` instead of being
/// printed (the caller decides between object and array framing).
int audit(const analysis::FirmwareVerifier& verifier, const std::string& name,
          BytesView code, mem::Addr load_addr, mem::Addr entry,
          std::string* json_out) {
    const analysis::Report report = verifier.analyze(code, load_addr, entry);
    const bool pass =
        report.admissible(verifier.policy().warnings_as_errors);
    if (json_out != nullptr) {
        *json_out += render_json(name, load_addr, entry, report, pass);
        return pass ? 0 : 2;
    }
    std::cout << "== " << name << " @ 0x" << std::hex << load_addr
              << " entry 0x" << entry << std::dec << " ==\n"
              << report.render() << "\n";
    std::cout << "verdict: " << (pass ? "ADMISSIBLE" : "REJECTED") << "\n";
    return pass ? 0 : 2;
}

/// A deliberately hostile image: patches its own reachable code (W^X),
/// jumps into the data segment through a materialized pointer, and
/// dispatches through a NIC-controlled function pointer (taint).
isa::Program malicious_demo_program() {
    return isa::assemble(R"(
    start:
        li    sp, 0x4fff0
        la    r1, start
        li    r2, 0
        sw    r2, r1, 0        ; store over reachable code: W^X violation
        li    r4, 0x40006000
        lw    r5, r4, 0        ; NIC RX read: untrusted source
        jalr  r0, r5, 0        ; tainted dispatch: net data becomes pc
        halt
    )",
                         cres::platform::kCodeBase);
}

int run_demo(const analysis::FirmwareVerifier& verifier, bool json) {
    std::string json_buf;
    std::string* out = json ? &json_buf : nullptr;
    const isa::Program good = platform::control_loop_program();
    const int good_rc = audit(verifier, "control-loop (clean)", good.code,
                              good.origin, good.symbol("start"), out);
    if (json) {
        json_buf += ",";
    } else {
        std::cout << "\n";
    }
    const isa::Program bad = malicious_demo_program();
    const int bad_rc = audit(verifier, "wx-implant (malicious)", bad.code,
                             bad.origin, bad.symbol("start"), out);
    if (json) std::cout << "[" << json_buf << "]\n";
    // The demo succeeds when the verifier tells the two apart.
    return (good_rc == 0 && bad_rc != 0) ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
    analysis::Policy policy;
    bool raw = false;
    bool demo = false;
    bool json = false;
    mem::Addr load_addr = platform::kCodeBase;
    mem::Addr entry = platform::kCodeBase;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return (i + 1 < argc) ? argv[++i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            std::cout << kHelp;
            return 0;
        } else if (arg == "--unprivileged") {
            policy.banned_opcodes =
                analysis::Policy::unprivileged().banned_opcodes;
        } else if (arg == "--warnings-as-errors") {
            policy.warnings_as_errors = true;
        } else if (arg == "--max-stack") {
            const char* v = next();
            if (v == nullptr) return usage();
            policy.max_stack_bytes =
                static_cast<std::uint32_t>(std::stoul(v, nullptr, 0));
        } else if (arg == "--raw") {
            raw = true;
        } else if (arg == "--load-addr") {
            const char* v = next();
            if (v == nullptr) return usage();
            load_addr = std::stoul(v, nullptr, 0);
        } else if (arg == "--entry") {
            const char* v = next();
            if (v == nullptr) return usage();
            entry = std::stoul(v, nullptr, 0);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--demo") {
            demo = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "cres_lint: unknown option '" << arg << "'\n";
            return usage();
        } else {
            path = arg;
        }
    }

    const analysis::FirmwareVerifier verifier(std::move(policy));
    if (demo) return run_demo(verifier, json);
    if (path.empty()) return usage();

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "cres_lint: cannot open '" << path << "'\n";
        return 64;
    }
    const Bytes data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());

    auto emit = [&](const std::string& name, BytesView code, mem::Addr base,
                    mem::Addr at) {
        std::string json_buf;
        const int rc =
            audit(verifier, name, code, base, at, json ? &json_buf : nullptr);
        if (json) std::cout << json_buf << "\n";
        return rc;
    };

    if (raw) {
        return emit(path, data, load_addr, entry);
    }
    try {
        const boot::FirmwareImage image = boot::FirmwareImage::parse(data);
        return emit(image.name, image.payload, image.load_addr,
                    image.entry_point);
    } catch (const std::exception& e) {
        std::cerr << "cres_lint: '" << path
                  << "' is not a valid firmware image: " << e.what()
                  << "\n       (use --raw for bare code sections)\n";
        return 64;
    }
}
