// cres_lint: offline static firmware auditor.
//
// Runs the same verifier the secure-boot admission gate runs, over a
// wire-format firmware image (boot::FirmwareImage::serialize) or a raw
// code blob, and prints the findings report. An image this tool flags
// with errors is exactly an image a deny-mode node refuses to boot.
//
//   cres_lint [options] <image.fw>
//   cres_lint [options] --raw --load-addr 0x10000 --entry 0x10000 <code.bin>
//   cres_lint --demo
//
// Options:
//   --unprivileged         ban mret/sret/smc/csrw/wfi
//   --max-stack <bytes>    worst-case stack budget (default 8192)
//   --warnings-as-errors   warnings also fail the audit
//   --raw                  input is a raw code section, not an image
//   --load-addr <addr>     raw mode: section load address
//   --entry <addr>         raw mode: entry point
//   --demo                 analyze a built-in clean and a built-in
//                          malicious image (no input file)
//
// Exit status: 0 clean, 2 findings fail policy, 64 usage/input error.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "boot/image.h"
#include "isa/assembler.h"
#include "platform/memmap.h"
#include "platform/workload.h"

namespace {

using namespace cres;

int usage() {
    std::cerr
        << "usage: cres_lint [--unprivileged] [--max-stack N]\n"
           "                 [--warnings-as-errors] <image.fw>\n"
           "       cres_lint [options] --raw --load-addr A --entry A "
           "<code.bin>\n"
           "       cres_lint [options] --demo\n";
    return 64;
}

/// Analyzes one payload and prints the report. Returns the exit code.
int audit(const analysis::FirmwareVerifier& verifier, const std::string& name,
          BytesView code, mem::Addr load_addr, mem::Addr entry) {
    const analysis::Report report = verifier.analyze(code, load_addr, entry);
    std::cout << "== " << name << " @ 0x" << std::hex << load_addr
              << " entry 0x" << entry << std::dec << " ==\n"
              << report.render() << "\n";
    const bool pass =
        report.admissible(verifier.policy().warnings_as_errors);
    std::cout << "verdict: " << (pass ? "ADMISSIBLE" : "REJECTED") << "\n";
    return pass ? 0 : 2;
}

/// A deliberately hostile image: patches its own reachable code (W^X)
/// and jumps into the data segment through a materialized pointer.
isa::Program malicious_demo_program() {
    return isa::assemble(R"(
    start:
        li    sp, 0x4fff0
        la    r1, start
        li    r2, 0
        sw    r2, r1, 0        ; store over reachable code: W^X violation
        li    r3, 0x20000
        jalr  r0, r3, 0        ; transfer into the data segment
        halt
    )",
                         cres::platform::kCodeBase);
}

int run_demo(const analysis::FirmwareVerifier& verifier) {
    const isa::Program good = platform::control_loop_program();
    const int good_rc = audit(verifier, "control-loop (clean)", good.code,
                              good.origin, good.symbol("start"));
    std::cout << "\n";
    const isa::Program bad = malicious_demo_program();
    const int bad_rc = audit(verifier, "wx-implant (malicious)", bad.code,
                             bad.origin, bad.symbol("start"));
    // The demo succeeds when the verifier tells the two apart.
    return (good_rc == 0 && bad_rc != 0) ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
    analysis::Policy policy;
    bool raw = false;
    bool demo = false;
    mem::Addr load_addr = platform::kCodeBase;
    mem::Addr entry = platform::kCodeBase;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return (i + 1 < argc) ? argv[++i] : nullptr;
        };
        if (arg == "--unprivileged") {
            policy.banned_opcodes =
                analysis::Policy::unprivileged().banned_opcodes;
        } else if (arg == "--warnings-as-errors") {
            policy.warnings_as_errors = true;
        } else if (arg == "--max-stack") {
            const char* v = next();
            if (v == nullptr) return usage();
            policy.max_stack_bytes =
                static_cast<std::uint32_t>(std::stoul(v, nullptr, 0));
        } else if (arg == "--raw") {
            raw = true;
        } else if (arg == "--load-addr") {
            const char* v = next();
            if (v == nullptr) return usage();
            load_addr = std::stoul(v, nullptr, 0);
        } else if (arg == "--entry") {
            const char* v = next();
            if (v == nullptr) return usage();
            entry = std::stoul(v, nullptr, 0);
        } else if (arg == "--demo") {
            demo = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "cres_lint: unknown option '" << arg << "'\n";
            return usage();
        } else {
            path = arg;
        }
    }

    const analysis::FirmwareVerifier verifier(std::move(policy));
    if (demo) return run_demo(verifier);
    if (path.empty()) return usage();

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "cres_lint: cannot open '" << path << "'\n";
        return 64;
    }
    const Bytes data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());

    if (raw) {
        return audit(verifier, path, data, load_addr, entry);
    }
    try {
        const boot::FirmwareImage image = boot::FirmwareImage::parse(data);
        return audit(verifier, image.name, image.payload, image.load_addr,
                     image.entry_point);
    } catch (const std::exception& e) {
        std::cerr << "cres_lint: '" << path
                  << "' is not a valid firmware image: " << e.what()
                  << "\n       (use --raw for bare code sections)\n";
        return 64;
    }
}
