// Industrial M2M gateway scenario: a field device reports telemetry to
// an operator backend over an authenticated channel, and the backend
// periodically challenges the device to attest its firmware state.
// A man-in-the-middle tampers with traffic and replays captured
// frames; later the device's firmware is modified. The channel and the
// attestation protocol catch each step.
//
//   ./build/examples/industrial_gateway
#include <iostream>

#include "attack/attacks.h"
#include "boot/image.h"
#include "net/attestation.h"
#include "platform/scenario.h"

using namespace cres;

int main() {
    std::cout << "== Industrial gateway: authenticated M2M + remote "
                 "attestation ==\n\n";

    platform::ScenarioConfig config;
    config.node.name = "field-device";
    config.node.resilient = true;
    config.warmup = 20000;
    config.horizon = 160000;
    config.seed = 64;

    platform::Scenario scenario(config);
    auto& node = scenario.node();

    // --- Remote attestation, pre-attack -------------------------------
    // The backend knows the golden PCR composite (from the signed build)
    // and shares the device's attestation key.
    crypto::Hash256 firmware_digest;
    firmware_digest.fill(0x42);
    node.pcrs.extend(boot::PcrBank::kPcrFirmware, firmware_digest,
                     "field-fw v7");

    const Bytes attest_key = *node.keystore.read(
        "attestation", crypto::KeyRequester::kSecure);
    net::AttestationVerifier verifier(node.pcrs.composite(), attest_key,
                                      99);

    auto attest_once = [&](const char* when) {
        const Bytes challenge = verifier.challenge();
        const auto nonce = net::decode_challenge(challenge);
        const auto quote = node.tee.quote(node.pcrs, *nonce, "attest");
        const auto verdict = verifier.verify(net::encode_quote(*quote));
        std::cout << "attestation (" << when
                  << "): " << net::attest_result_name(verdict) << "\n";
    };
    attest_once("factory state");

    // --- Live traffic under an active MITM ----------------------------
    attack::MitmTamperAttack mitm(scenario.link());
    attack::ReplayAttack replay(scenario.link(), /*victim_is_a=*/true);
    replay.launch(node, 70000);  // Replay wave after the tamper wave.

    const auto result = scenario.run(&mitm, 30000);

    std::cout << "\nchannel statistics after the MITM campaign:\n"
              << "  frames accepted      : " << node.channel->accepted()
              << "\n"
              << "  tampered (bad tag)   : " << node.channel->rejected_tag()
              << "\n"
              << "  replays rejected     : "
              << node.channel->rejected_replay() << "\n"
              << "  incidents detected   : "
              << (result.detected ? "yes" : "no") << "\n"
              << "  operator alerts      : " << result.operator_alerts
              << "\n";

    // --- Attestation after a firmware implant --------------------------
    // The attacker modifies the firmware; measured boot would extend a
    // different digest on the next boot.
    crypto::Hash256 implant;
    implant.fill(0x66);
    node.pcrs.extend(boot::PcrBank::kPcrFirmware, implant, "implant");
    attest_once("after firmware implant");

    // And a forged quote without the key fails outright.
    const Bytes challenge = verifier.challenge();
    const auto nonce = net::decode_challenge(challenge);
    tee::Quote forged;
    forged.composite = node.pcrs.composite();
    forged.nonce = *nonce;
    forged.tag.fill(0xab);  // Attacker has no attestation key.
    std::cout << "attestation (forged quote): "
              << net::attest_result_name(
                     verifier.verify(net::encode_quote(forged)))
              << "\n";

    std::cout << "\nbackend tally: passed=" << verifier.attestations_passed()
              << " failed=" << verifier.attestations_failed() << "\n";
    return 0;
}
