// E5 — Service availability and graceful degradation under an attack
// campaign. Availability = control-loop iterations achieved relative
// to a clean run of the same platform. The paper's §V-3: the resilient
// architecture "gracefully degrades system functionality while
// maintaining critical services"; the passive baseline's only move is
// a reboot (full service gap) or nothing at all.
#include <functional>
#include <memory>

#include "attack/attacks.h"
#include "bench_util.h"
#include "platform/scenario.h"

namespace {

using namespace cres;

struct Campaign {
    std::string name;
    // Attacks with launch offsets relative to warmup.
    std::vector<std::pair<
        std::function<std::unique_ptr<attack::Attack>(platform::Scenario&)>,
        sim::Cycle>>
        waves;
};

struct Run {
    std::uint64_t iterations = 0;
    std::uint64_t telemetry = 0;
    std::uint64_t reboots = 0;
    sim::Cycle downtime = 0;
};

Run run_campaign(const Campaign& campaign, bool resilient,
                 std::uint64_t seed) {
    platform::ScenarioConfig config;
    config.node.name = resilient ? "res" : "pas";
    config.node.resilient = resilient;
    config.warmup = 20000;
    config.horizon = 220000;
    config.seed = seed;

    platform::Scenario scenario(config);
    // Launch every wave; Scenario::run() handles the first attack, the
    // rest schedule themselves directly.
    std::vector<std::unique_ptr<attack::Attack>> attacks;
    for (const auto& [make, offset] : campaign.waves) {
        attacks.push_back(make(scenario));
    }
    for (std::size_t i = 1; i < attacks.size(); ++i) {
        attacks[i]->launch(scenario.node(),
                           20000 + campaign.waves[i].second);
    }
    const auto r = scenario.run(
        attacks.empty() ? nullptr : attacks[0].get(),
        attacks.empty() ? 0 : 20000 + campaign.waves[0].second);
    return Run{r.control_iterations, r.telemetry_frames, r.reboots,
               r.downtime_cycles};
}

}  // namespace

int main() {
    const Campaign clean{"clean", {}};
    const Campaign single_hang{
        "task hang",
        {{[](platform::Scenario&) {
              return std::make_unique<attack::TaskHangAttack>();
          },
          10000}}};
    const Campaign storm{
        "attack storm (hang + spoof + smash)",
        {{[](platform::Scenario&) {
              return std::make_unique<attack::TaskHangAttack>();
          },
          10000},
         {[](platform::Scenario&) {
              return std::make_unique<attack::SensorSpoofAttack>();
          },
          60000},
         {[](platform::Scenario&) {
              return std::make_unique<attack::StackSmashAttack>();
          },
          110000}}};

    bench::section(
        "E5 — Service availability under attack campaigns "
        "(iterations relative to the platform's own clean run)");

    bench::Table table({"campaign", "platform", "ctrl iters", "avail %",
                        "telemetry frames", "reboots", "downtime (cyc)"});

    for (const bool resilient : {false, true}) {
        const Run baseline = run_campaign(clean, resilient, 77);
        for (const Campaign* campaign : {&clean, &single_hang, &storm}) {
            const Run r = run_campaign(*campaign, resilient, 77);
            const double availability =
                100.0 * static_cast<double>(r.iterations) /
                static_cast<double>(baseline.iterations);
            table.row(campaign->name, resilient ? "resilient" : "passive",
                      r.iterations, bench::fmt_double(availability, 1),
                      r.telemetry, r.reboots, r.downtime);
        }
    }
    table.print();

    std::cout << "\nExpected shape: under attack the resilient platform "
                 "keeps critical-loop availability near 100% (checkpoint "
                 "restore instead of reboot; degradation sheds telemetry, "
                 "not control), while the passive platform loses whole "
                 "watchdog+reboot windows per incident and its telemetry "
                 "availability tracks its control loss.\n";
    return 0;
}
