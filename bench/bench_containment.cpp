// E4 — Containment: ground-truth damage (secret bytes on the wire,
// unsafe actuator commands) for the exfiltration/abuse attack classes,
// passive baseline vs resilient platform. The paper's §V-3 claims
// active response can isolate a compromised resource before the damage
// completes; the passive platform has no response path at all.
#include <functional>
#include <memory>

#include "attack/attacks.h"
#include "bench_util.h"
#include "platform/scenario.h"

namespace {

using namespace cres;

struct Case {
    std::string name;
    std::function<std::unique_ptr<attack::Attack>(platform::Scenario&)> make;
};

struct Outcome {
    std::uint64_t leaked = 0;
    std::uint64_t unsafe = 0;
    bool detected = false;
    std::uint64_t responses = 0;
};

Outcome run_case(const Case& c, bool resilient, std::uint64_t seed) {
    platform::ScenarioConfig config;
    config.node.name = resilient ? "res" : "pas";
    config.node.resilient = resilient;
    config.warmup = 20000;
    config.horizon = 140000;
    config.seed = seed;

    platform::Scenario scenario(config);
    auto atk = c.make(scenario);
    const auto r = scenario.run(atk.get(), 30000);
    return Outcome{r.leaked_bytes, r.unsafe_commands, r.detected,
                   r.responses_executed};
}

}  // namespace

int main() {
    const std::vector<Case> cases = {
        {"stack-smash exfil + actuator abuse",
         [](platform::Scenario&) {
             return std::make_unique<attack::StackSmashAttack>();
         }},
        {"debug code injection",
         [](platform::Scenario&) {
             return std::make_unique<attack::CodeInjectionAttack>();
         }},
        {"DMA exfiltration",
         [](platform::Scenario&) {
             return std::make_unique<attack::DmaExfilAttack>();
         }},
        {"bus-attribute tamper (key theft)",
         [](platform::Scenario&) {
             return std::make_unique<attack::BusTamperAttack>();
         }},
        {"sensor spoof (plant abuse)",
         [](platform::Scenario&) {
             return std::make_unique<attack::SensorSpoofAttack>();
         }},
    };

    bench::section(
        "E4 — Containment: damage before the defence stops the attack "
        "(passive vs resilient)");

    bench::Table table({"attack", "platform", "leaked bytes",
                        "unsafe actuator cmds", "detected", "responses"});

    for (const auto& c : cases) {
        const Outcome passive = run_case(c, false, 55);
        const Outcome resilient = run_case(c, true, 55);
        table.row(c.name, "passive", passive.leaked, passive.unsafe,
                  bench::yesno(passive.detected), passive.responses);
        table.row("", "resilient", resilient.leaked, resilient.unsafe,
                  bench::yesno(resilient.detected), resilient.responses);
    }
    table.print();

    std::cout << "\nExpected shape: the passive platform leaks the full "
                 "secret and absorbs sustained plant abuse with zero "
                 "detections; the resilient platform cuts leakage to (near) "
                 "zero and curtails abuse via isolation/rate-limit/degrade."
                 "\n";
    return 0;
}
