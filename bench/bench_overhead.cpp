// E8b — Monitoring overhead: the paper's monitors sit beside the
// pipeline, so guest progress (simulated service throughput) must be
// unchanged; the cost appears as host-side simulation time. We measure
// both: guest control iterations (architectural overhead) and host
// wall time per configuration (emulation overhead proxy for monitor
// hardware cost), monitor by monitor.
#include <chrono>
#include <cstdlib>
#include <fstream>

#include "bench_util.h"
#include "platform/scenario.h"

namespace {

using namespace cres;

struct Measurement {
    std::uint64_t iterations = 0;
    double wall_ms = 0.0;
    std::uint64_t events = 0;
};

Measurement measure(bool resilient,
                    const std::function<void(platform::Node&)>& configure,
                    bool metrics = true,
                    std::size_t recorder_capacity = 2048) {
    platform::ScenarioConfig config;
    config.node.name = "ovh";
    config.node.resilient = resilient;
    config.node.metrics = metrics;
    config.node.flight_recorder_capacity = recorder_capacity;
    config.warmup = 5000;
    config.horizon = 120000;
    config.seed = 21;

    platform::Scenario scenario(config);
    if (configure) configure(scenario.node());

    const auto t0 = std::chrono::steady_clock::now();
    const auto r = scenario.run(nullptr);
    const auto t1 = std::chrono::steady_clock::now();

    Measurement m;
    m.iterations = r.control_iterations;
    m.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    m.events =
        scenario.node().ssm ? scenario.node().ssm->events_processed() : 0;
    return m;
}

void disable_all(platform::Node& node) {
    node.bus_monitor->set_enabled(false);
    node.cfi_monitor->set_enabled(false);
    node.memory_monitor->set_enabled(false);
    node.dift_monitor->set_enabled(false);
    node.peripheral_monitor->set_enabled(false);
    node.timing_monitor->set_enabled(false);
    node.network_monitor->set_enabled(false);
    node.environment_monitor->set_enabled(false);
    node.config_monitor->set_enabled(false);
}

}  // namespace

int main() {
    bench::section(
        "E8b — Per-monitor overhead (clean workload, 120k cycles)");

    const Measurement passive = measure(false, nullptr);

    struct Config {
        std::string name;
        std::function<void(platform::Node&)> configure;
    };
    const std::vector<Config> configs = {
        {"passive (no security stack)", nullptr},
        {"resilient, all monitors off", [](platform::Node& n) {
             disable_all(n);
         }},
        {"resilient, bus monitor only", [](platform::Node& n) {
             disable_all(n);
             n.bus_monitor->set_enabled(true);
         }},
        {"resilient, CFI monitor only", [](platform::Node& n) {
             disable_all(n);
             n.cfi_monitor->set_enabled(true);
         }},
        {"resilient, memory monitor only", [](platform::Node& n) {
             disable_all(n);
             n.memory_monitor->set_enabled(true);
         }},
        {"resilient, DIFT monitor only", [](platform::Node& n) {
             disable_all(n);
             n.dift_monitor->set_enabled(true);
         }},
        {"resilient, peripheral monitor only", [](platform::Node& n) {
             disable_all(n);
             n.peripheral_monitor->set_enabled(true);
         }},
        {"resilient, full stack", nullptr},
    };

    bench::Table table({"configuration", "ctrl iterations",
                        "guest overhead %", "host wall (ms)", "ssm events"});
    for (const auto& config : configs) {
        const bool resilient = config.name != configs[0].name;
        const Measurement m = measure(resilient, config.configure);
        const double guest_overhead =
            100.0 * (1.0 - static_cast<double>(m.iterations) /
                               static_cast<double>(passive.iterations));
        table.row(config.name, m.iterations,
                  bench::fmt_double(guest_overhead, 2),
                  bench::fmt_double(m.wall_ms, 1), m.events);
    }
    table.print();

    std::cout << "\nExpected shape: guest overhead ~0% for every "
                 "configuration (the monitors are parallel hardware, not "
                 "inline checks); the cost shows up only as host emulation "
                 "time, growing with observation fan-out.\n";

    // --- Metrics hot-path overhead: full stack, registry bound vs not.
    // Best-of-N wall times so scheduler noise does not drown the signal
    // (the acceptance bar is <2% with metrics on).
    bench::section("Metrics overhead (full stack, bound vs unbound)");
    // Interleave the two configurations and keep the best of each so
    // machine-load drift hits both sides equally.
    Measurement metrics_off;
    Measurement metrics_on;
    metrics_off.wall_ms = 1e300;
    metrics_on.wall_ms = 1e300;
    for (int i = 0; i < 7; ++i) {
        const Measurement off = measure(true, nullptr, false);
        if (off.wall_ms < metrics_off.wall_ms) metrics_off = off;
        const Measurement on = measure(true, nullptr, true);
        if (on.wall_ms < metrics_on.wall_ms) metrics_on = on;
    }
    const double metrics_overhead =
        100.0 * (metrics_on.wall_ms / metrics_off.wall_ms - 1.0);

    bench::Table metrics_table(
        {"configuration", "ctrl iterations", "host wall (ms)", "overhead %"});
    metrics_table.row("resilient, metrics unbound", metrics_off.iterations,
                      bench::fmt_double(metrics_off.wall_ms, 2), "-");
    metrics_table.row("resilient, metrics bound", metrics_on.iterations,
                      bench::fmt_double(metrics_on.wall_ms, 2),
                      bench::fmt_double(metrics_overhead, 2));
    metrics_table.print();

    // --- Flight-recorder hot-path overhead: full stack, black-box ring
    // bound vs capacity 0 (nothing binds; producers pay one null
    // check). Same interleaved best-of-7 discipline; the acceptance bar
    // is <=3% bound, 0 unbound.
    bench::section("Flight recorder overhead (full stack, bound vs unbound)");
    Measurement recorder_off;
    Measurement recorder_on;
    recorder_off.wall_ms = 1e300;
    recorder_on.wall_ms = 1e300;
    for (int i = 0; i < 7; ++i) {
        const Measurement off = measure(true, nullptr, true, 0);
        if (off.wall_ms < recorder_off.wall_ms) recorder_off = off;
        const Measurement on = measure(true, nullptr, true, 2048);
        if (on.wall_ms < recorder_on.wall_ms) recorder_on = on;
    }
    const double recorder_overhead =
        100.0 * (recorder_on.wall_ms / recorder_off.wall_ms - 1.0);

    bench::Table recorder_table(
        {"configuration", "ctrl iterations", "host wall (ms)", "overhead %"});
    recorder_table.row("resilient, recorder unbound (capacity 0)",
                       recorder_off.iterations,
                       bench::fmt_double(recorder_off.wall_ms, 2), "-");
    recorder_table.row("resilient, recorder bound (capacity 2048)",
                       recorder_on.iterations,
                       bench::fmt_double(recorder_on.wall_ms, 2),
                       bench::fmt_double(recorder_overhead, 2));
    recorder_table.print();

    // --- Metrics snapshot artifact for CI (and eyeballing).
    {
        platform::ScenarioConfig config;
        config.node.name = "ovh";
        config.node.resilient = true;
        config.warmup = 5000;
        config.horizon = 120000;
        config.seed = 21;
        platform::Scenario scenario(config);
        (void)scenario.run(nullptr);

        const char* path_env = std::getenv("CRES_METRICS_JSON");
        const std::string path =
            path_env ? path_env : "metrics_snapshot.json";
        std::ofstream out(path);
        if (out) {
            // Registry snapshot plus the recorder bound-vs-unbound
            // numbers, one artifact (registry json() ends in \n).
            std::string metrics_json = scenario.node().metrics.json();
            while (!metrics_json.empty() && metrics_json.back() == '\n') {
                metrics_json.pop_back();
            }
            out << "{\"metrics\": " << metrics_json
                << ",\n \"recorder_overhead\": {\"unbound_wall_ms\": "
                << recorder_off.wall_ms
                << ", \"bound_wall_ms\": " << recorder_on.wall_ms
                << ", \"overhead_pct\": " << recorder_overhead << "}}\n";
            std::cout << "\nwrote " << path << "\n";
        } else {
            std::cerr << "cannot write " << path << "\n";
        }
    }
    return 0;
}
