// E11 — Response-strategy ablation: the same attack under policies of
// increasing activeness. Quantifies the paper's argument that
// detection alone (or alerting alone) is not cyber resilience — the
// *active* response path is what buys containment, and recovery is
// what buys availability.
#include <functional>
#include <memory>

#include "attack/attacks.h"
#include "bench_util.h"
#include "platform/scenario.h"

namespace {

using namespace cres;

struct Strategy {
    std::string name;
    std::string dsl;
};

struct Outcome {
    std::uint64_t leaked = 0;
    std::uint64_t unsafe = 0;
    std::uint64_t iterations = 0;
    std::uint64_t alerts = 0;
    bool detected = false;
};

Outcome run_with_policy(const std::string& dsl,
                        const std::function<std::unique_ptr<attack::Attack>(
                            platform::Scenario&)>& make_attack) {
    platform::ScenarioConfig config;
    config.node.name = "abl";
    config.node.resilient = true;
    config.node.policy_dsl = dsl;
    config.warmup = 20000;
    config.horizon = 140000;
    config.seed = 66;

    platform::Scenario scenario(config);
    auto atk = make_attack(scenario);
    const auto r = scenario.run(atk.get(), 30000);
    return Outcome{r.leaked_bytes, r.unsafe_commands, r.control_iterations,
                   r.operator_alerts, r.detected};
}

}  // namespace

int main() {
    const std::vector<Strategy> strategies = {
        {"detect-only (log)",
         "rule all: severity>=alert -> log-only\n"},
        {"detect + alert",
         "rule all: severity>=alert cooldown=5000 -> alert-operator\n"},
        {"detect + isolate",
         "rule flow: category=data-flow severity>=critical -> isolate-resource\n"
         "rule cfg: category=bus-violation severity>=critical -> isolate-resource\n"
         "rule periph: category=peripheral severity>=critical cooldown=5000 -> rate-limit\n"},
        {"full active policy (default)", platform::Node::default_policy()},
    };

    struct Case {
        std::string name;
        std::function<std::unique_ptr<attack::Attack>(platform::Scenario&)>
            make;
    };
    const std::vector<Case> cases = {
        {"stack-smash exfil",
         [](platform::Scenario&) {
             return std::make_unique<attack::StackSmashAttack>();
         }},
        {"sensor spoof",
         [](platform::Scenario&) {
             return std::make_unique<attack::SensorSpoofAttack>();
         }},
    };

    bench::section(
        "E11 — Response-strategy ablation: same attack, increasingly "
        "active policies");

    bench::Table table({"attack", "policy", "detected", "leaked bytes",
                        "unsafe cmds", "ctrl iterations", "alerts"});
    for (const auto& c : cases) {
        for (const auto& s : strategies) {
            const Outcome o = run_with_policy(s.dsl, c.make);
            table.row(&s == &strategies[0] ? c.name : "", s.name,
                      bench::yesno(o.detected), o.leaked, o.unsafe,
                      o.iterations, o.alerts);
        }
    }
    table.print();

    std::cout << "\nExpected shape: detection without response sees the "
                 "breach but leaks like the passive baseline; adding "
                 "alerting informs the operator but still leaks; the "
                 "isolate/rate-limit tier contains the damage; the full "
                 "policy additionally recovers the task, preserving "
                 "availability.\n";
    return 0;
}
