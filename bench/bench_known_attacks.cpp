// E10 — Known-weakness matrix: every modelled attack class from the
// paper's Section IV discussion, run against both architectures. Rows
// report attack ground truth (did it achieve its objective) and the
// platform's detect/respond/evidence outcome — the qualitative Table I
// gap ("no response/recovery methods") made quantitative.
#include <functional>
#include <memory>

#include "attack/attacks.h"
#include "bench_util.h"
#include "platform/scenario.h"

namespace {

using namespace cres;

struct Case {
    std::string name;
    std::string mechanism;
    std::function<std::unique_ptr<attack::Attack>(platform::Scenario&)> make;
};

}  // namespace

int main() {
    const std::vector<Case> cases = {
        {"stack smash -> shellcode", "memory-corruption pivot [15]",
         [](platform::Scenario&) {
             return std::make_unique<attack::StackSmashAttack>();
         }},
        {"debug code injection", "JTAG-class text rewrite",
         [](platform::Scenario&) {
             return std::make_unique<attack::CodeInjectionAttack>();
         }},
        {"DMA exfiltration", "peripheral-master abuse",
         [](platform::Scenario&) {
             return std::make_unique<attack::DmaExfilAttack>();
         }},
        {"bus attribute tamper", "TrustZone attribute clearing [34]",
         [](platform::Scenario&) {
             return std::make_unique<attack::BusTamperAttack>();
         }},
        {"sensor spoof", "fabricated physics feed",
         [](platform::Scenario&) {
             return std::make_unique<attack::SensorSpoofAttack>();
         }},
        {"M2M replay", "captured-frame replay",
         [](platform::Scenario& s) {
             return std::make_unique<attack::ReplayAttack>(s.link(), true);
         }},
        {"M2M tamper", "active man-in-the-middle",
         [](platform::Scenario& s) {
             return std::make_unique<attack::MitmTamperAttack>(s.link());
         }},
        {"task hang", "crash/starvation",
         [](platform::Scenario&) {
             return std::make_unique<attack::TaskHangAttack>();
         }},
        {"voltage glitch", "fault injection",
         [](platform::Scenario&) {
             return std::make_unique<attack::GlitchAttack>();
         }},
        {"address-space probe", "reconnaissance",
         [](platform::Scenario&) {
             return std::make_unique<attack::BusProbeAttack>();
         }},
        {"SSM kill", "security-function attack [32]",
         [](platform::Scenario&) {
             return std::make_unique<attack::SsmKillAttack>();
         }},
    };

    bench::section(
        "E10 — Known-attack matrix: objective achieved vs platform "
        "response (passive | resilient)");

    bench::Table table({"attack (mechanism)", "platform",
                        "objective achieved", "detected", "responded",
                        "attack-era evidence", "evidence verifiable"});

    for (const auto& c : cases) {
        for (const bool resilient : {false, true}) {
            platform::ScenarioConfig config;
            config.node.name = resilient ? "res" : "pas";
            config.node.resilient = resilient;
            config.warmup = 20000;
            config.horizon = 120000;
            config.seed = 11;

            platform::Scenario scenario(config);
            auto atk = c.make(scenario);
            const auto r = scenario.run(atk.get(), 30000);
            table.row(resilient ? "" : c.name + " (" + c.mechanism + ")",
                      resilient ? "resilient" : "passive",
                      bench::yesno(r.attack_succeeded),
                      bench::yesno(r.detected), bench::yesno(r.responded),
                      r.attack_window_records,
                      bench::yesno(r.evidence_chain_ok));
        }
    }
    table.print();

    std::cout << "\nExpected shape: on the passive column attacks achieve "
                 "their objectives with zero detection/response and little "
                 "or no surviving evidence; on the resilient column every "
                 "class is detected, most objectives are denied or cut "
                 "short, and the attack era is fully evidenced. (SSM kill "
                 "fails on the resilient platform by construction — that "
                 "row is the paper's isolation requirement.)\n";
    return 0;
}
