// E14 — Dynamic redundancy (Table I, recover row): lockstep process
// pair under a single-event-upset (SEU) campaign. Measures detection
// rate and latency vs the compare interval, and service availability
// with and without the pair+restore path.
#include "bench_util.h"
#include "platform/scenario.h"

namespace {

using namespace cres;

struct SeuRun {
    std::uint64_t divergences = 0;
    std::uint64_t restores = 0;
    std::uint64_t iterations = 0;
    std::uint64_t seus = 0;
};

SeuRun run_campaign(bool lockstep, std::uint64_t seed,
                    sim::Cycle compare_interval = 64) {
    platform::ScenarioConfig config;
    config.node.name = "seu";
    config.node.resilient = true;
    config.node.lockstep = lockstep;
    config.warmup = 15000;
    config.horizon = 150000;
    config.seed = seed;

    platform::Scenario scenario(config);
    auto& node = scenario.node();
    if (lockstep && compare_interval != 64) {
        // Rebuild the monitor at the requested interval.
        node.sim.remove_tickable(node.redundancy_monitor.get());
        node.redundancy_monitor =
            std::make_unique<core::RedundancyMonitor>(
                *node.ssm, node.sim, node.cpu, *node.shadow_cpu,
                compare_interval);
        node.sim.add_tickable(node.redundancy_monitor.get());
    }

    // SEU campaign: a register bit flip every 20k cycles.
    SeuRun result;
    Rng rng(seed ^ 0x5e5eull);
    for (sim::Cycle at = 25000; at < 140000; at += 20000) {
        ++result.seus;
        node.sim.schedule_at(at, "seu", [&node, &rng] {
            const unsigned reg = 1 + static_cast<unsigned>(rng.uniform(12));
            node.cpu.set_reg(reg,
                             node.cpu.reg(reg) ^
                                 (1u << rng.uniform(32)));
        });
    }

    const auto r = scenario.run(nullptr);
    result.iterations = r.control_iterations;
    result.divergences = node.redundancy_monitor
                             ? node.redundancy_monitor->divergences()
                             : 0;
    result.restores = node.recovery ? node.recovery->restores() : 0;
    return result;
}

}  // namespace

int main() {
    bench::section(
        "E14a — SEU campaign (6 upsets): plain core vs lockstep pair");
    {
        bench::Table table({"configuration", "SEUs injected",
                            "divergences flagged", "checkpoint restores",
                            "ctrl iterations"});
        const SeuRun plain = run_campaign(false, 73);
        const SeuRun pair = run_campaign(true, 73);
        table.row("single core (no redundancy)", plain.seus,
                  plain.divergences, plain.restores, plain.iterations);
        table.row("lockstep pair + restore", pair.seus, pair.divergences,
                  pair.restores, pair.iterations);
        table.print();
        std::cout << "\nExpected shape: without redundancy, silent data "
                     "corruption passes unnoticed (zero detections) unless "
                     "it happens to crash the loop; the pair flags every "
                     "upset that lands in live state and recovery restores "
                     "a clean snapshot each time.\n";
    }

    bench::section("E14b — Detection latency vs compare interval");
    {
        bench::Table table({"compare interval (cyc)", "divergences",
                            "restores", "ctrl iterations"});
        for (const sim::Cycle interval : {16u, 64u, 256u, 1024u}) {
            const SeuRun r = run_campaign(true, 74, interval);
            table.row(interval, r.divergences, r.restores, r.iterations);
        }
        table.print();
        std::cout << "\nExpected shape: coarser comparison still catches "
                     "persistent corruption (the state stays wrong until "
                     "compared) but pays more exposure time per upset; "
                     "the compare interval buys checker bandwidth, not "
                     "coverage, for persistent faults.\n";
    }
    return 0;
}
